"""Ablation: SGX sensitivity across the full YCSB workload suite.

Figure 8b uses only workload A (50/50 read/update).  This ablation runs
litedb under all six core YCSB mixes and reports each platform's relative
throughput.  The spread that emerges: scan-heavy E is SGX's worst case
(large per-op footprints keep missing through the MEE), the
recency-skewed D its best (hot working set stays decrypted in the LLC),
while HyperEnclave stays uniformly within a few percent of baseline.
"""

from __future__ import annotations

from repro.analysis.tables import TextTable, fmt_ratio
from repro.apps.litedb import LiteDb
from repro.apps.ycsb import SCAN_LENGTH, load_phase, workload
from repro.monitor.structs import EnclaveConfig, EnclaveMode
from repro.platform import TeePlatform
from repro.sdk.image import EnclaveImage

from .conftest import BENCH_MACHINE

WORKLOADS = ["A", "B", "C", "D", "E", "F"]
N_RECORDS = 40_000
OPS = 2_500
VALUE_SIZE = 1024
SQL_LAYER_CYCLES = 16_000

EDL = "enclave { trusted { public uint64 run(uint64 w); }; untrusted { }; };"


def _drive(ctx, db: LiteDb, letter: str) -> None:
    for op in workload(letter, N_RECORDS, OPS, value_size=VALUE_SIZE):
        ctx.compute(SQL_LAYER_CYCLES)
        if op.kind == "read":
            db.get(op.key)
        elif op.kind == "update":
            db.update(op.key, op.value)
        elif op.kind == "insert":
            db.put(op.key, op.value)
        elif op.kind == "scan":
            db.scan(op.key, SCAN_LENGTH)


def _measure(platform, ctx, letter: str) -> float:
    db = LiteDb(ctx, value_size=VALUE_SIZE)
    for op in load_phase(N_RECORDS, value_size=VALUE_SIZE):
        db.put(op.key, op.value)
    with platform.machine.cycles.measure() as span:
        _drive(ctx, db, letter)
    return span.elapsed


def _measure_enclave(mode: EnclaveMode, letter: str) -> float:
    platform = (TeePlatform.intel_sgx(BENCH_MACHINE)
                if mode is EnclaveMode.SGX
                else TeePlatform.hyperenclave(BENCH_MACHINE))
    image = EnclaveImage.build(
        "ycsb-mix", EDL, {"run": lambda ctx, w: 0},
        EnclaveConfig(mode=mode, heap_size=512 * 1024 * 1024,
                      tcs_count=1))
    handle = platform.load_enclave(image)
    measured = {}

    def t_run(ctx, w):
        measured["cycles"] = _measure(platform, ctx, letter)
        return 0

    handle.image.trusted_funcs["run"] = t_run
    handle.proxies.run(w=0)
    handle.destroy()
    return measured["cycles"]


def run_experiment():
    results = {"GU-Enclave": [], "SGX": []}
    for letter in WORKLOADS:
        native_platform = TeePlatform.native(BENCH_MACHINE)
        native = _measure(native_platform,
                          native_platform.native_context(), letter)
        results["GU-Enclave"].append(
            native / _measure_enclave(EnclaveMode.GU, letter))
        results["SGX"].append(
            native / _measure_enclave(EnclaveMode.SGX, letter))
    return results


def test_ablation_ycsb_mix(benchmark, record_result):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = TextTable(
        title="Ablation: relative throughput across YCSB workloads "
              "(40k records)",
        headers=["workload", "GU-Enclave", "SGX"])
    for i, letter in enumerate(WORKLOADS):
        table.add_row(letter, fmt_ratio(results["GU-Enclave"][i]),
                      fmt_ratio(results["SGX"][i]))
    table.show()
    record_result("ablation_ycsb_mix",
                  {"workloads": WORKLOADS, **results})
    benchmark.extra_info.update(
        {f"{k}@{w}": v for k, vs in results.items()
         for w, v in zip(WORKLOADS, vs)})

    by_letter = dict(zip(WORKLOADS, results["SGX"]))
    gu_by_letter = dict(zip(WORKLOADS, results["GU-Enclave"]))
    # HyperEnclave stays close to baseline on every mix.
    for letter, value in gu_by_letter.items():
        assert value > 0.93, (letter, value)
    # SGX is always worse than HyperEnclave...
    for letter in WORKLOADS:
        assert by_letter[letter] < gu_by_letter[letter], letter
    # ...suffers most on the scan-heavy mix...
    assert by_letter["E"] == min(by_letter.values()), by_letter
    assert by_letter["E"] < by_letter["C"] - 0.10, by_letter
    # ...and least on the recency-skewed mix (hot set stays cached).
    assert by_letter["D"] == max(by_letter.values()), by_letter
