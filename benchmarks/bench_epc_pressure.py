"""Timeline scenario: two tenants contending for a tiny EPC pool.

Two GU enclaves ("tenant-a", "tenant-b") each own a working set of
:data:`WORKING_SET_PAGES` pages; together the sets exceed the ~14 MB
EPC pool, so every full sweep by one tenant evicts the other's resident
pages through the monitor's reclaim path.  Each sweep is driven through
real ``sweep`` ECALLs (one per :data:`CHUNK_PAGES`-page chunk), so the
scenario exercises the whole edge-call stack: under a request tracer
(``python -m repro.bench run epc_pressure --requests``) every chunk is
a traced request whose causal tree shows the page-fault/swap storms it
hit, and the artifact ends in the per-request cross-tenant interference
table; under a timeline sampler (``--timeline``) the same run yields
the canonical pressure trace with per-interval (victim, aggressor)
episode attribution — the two reports agree by construction.

The figures are deterministic fault/steal counts — no host time — so
the scenario doubles as an ordinary (non-gated) ablation benchmark.
"""

from __future__ import annotations

from repro.analysis.tables import TextTable
from repro.hw.machine import MachineConfig
from repro.hw.phys import PAGE_SIZE
from repro.monitor.enclave import ENCLAVE_BASE_VA
from repro.monitor.structs import EnclaveConfig, EnclaveMode
from repro.platform import TeePlatform
from repro.sdk.image import EnclaveImage

TINY = MachineConfig(
    phys_size=256 * 1024 * 1024,
    reserved_base=128 * 1024 * 1024,
    reserved_size=16 * 1024 * 1024,        # ~14 MB EPC after monitor
)

EDL = ("enclave { trusted { public uint64 sweep(uint64 chunk); }; "
       "untrusted { }; };")
WORKING_SET_PAGES = 2048                   # 8 MB each; 16 MB combined
CHUNK_PAGES = 256                          # pages per sweep ECALL
ROUNDS = 3
TENANTS = ("tenant-a", "tenant-b")
BASE_VA = ENCLAVE_BASE_VA + 128 * PAGE_SIZE


def _sweep_chunk(ctx, chunk):
    """Trusted: touch every page of one working-set chunk in order.

    Returns the number of pages that faulted (demand commit or swap-in
    through RustMonitor) — the reads themselves take the real fault
    path inside this ECALL, so a request tracer sees the storm.
    """
    faults = 0
    for i in range(CHUNK_PAGES):
        page_va = BASE_VA + (chunk * CHUNK_PAGES + i) * PAGE_SIZE
        if ctx.enclave.page_at(page_va) is None:
            faults += 1
        ctx.read(page_va, 8)
    return faults


def _build_tenant(platform, name):
    image = EnclaveImage.build(
        name, EDL, {"sweep": _sweep_chunk},
        EnclaveConfig(mode=EnclaveMode.GU, heap_size=16 * 1024 * 1024,
                      tcs_count=1))
    handle = platform.load_enclave(image)
    eid = handle.enclave_id
    platform.monitor.reserve_region(eid, BASE_VA,
                                    WORKING_SET_PAGES * PAGE_SIZE)
    telemetry = platform.machine.telemetry
    for observer in (telemetry.timeline, telemetry.requests):
        if observer is not None:
            observer.name_tenant(eid, name)
    return handle, eid


def run_experiment():
    platform = TeePlatform.hyperenclave(TINY)
    monitor = platform.monitor
    tenants = [_build_tenant(platform, name) for name in TENANTS]
    chunks = WORKING_SET_PAGES // CHUNK_PAGES

    faults = {name: 0 for name in TENANTS}
    for _ in range(ROUNDS):
        for name, (handle, _) in zip(TENANTS, tenants):
            for chunk in range(chunks):
                faults[name] += handle.ecall("sweep", chunk=chunk)

    swap_outs = {name: monitor._swap_states[eid]._version
                 for name, (_, eid) in zip(TENANTS, tenants)}
    cross_steals = sum(count for (victim, aggressor), count
                       in monitor.epc_steals.items()
                       if victim != aggressor)
    figures = {
        "faults_tenant_a": faults["tenant-a"],
        "faults_tenant_b": faults["tenant-b"],
        "swap_outs_tenant_a": swap_outs["tenant-a"],
        "swap_outs_tenant_b": swap_outs["tenant-b"],
        "cross_tenant_steals": cross_steals,
        "epc_free_frames_end": monitor.epc_pool.free_pages,
        "sweep_ecalls": ROUNDS * len(TENANTS) * chunks,
    }
    for handle, _ in tenants:
        handle.destroy()
    return figures


def test_epc_pressure(benchmark, record_result):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = TextTable(
        title="Two-tenant EPC pressure (counts)",
        headers=["metric", "value"])
    for key in sorted(r):
        table.add_row(key, f"{r[key]:,}")
    table.show()
    record_result("epc_pressure", r)
    benchmark.extra_info.update(r)

    # Round 1 commits each set once; rounds 2+ re-fault pages the other
    # tenant evicted, so both tenants fault well beyond their set size.
    assert r["faults_tenant_a"] > WORKING_SET_PAGES
    assert r["faults_tenant_b"] > WORKING_SET_PAGES
    # The contention is mutual: each tenant's sweep steals frames from
    # the other, so cross-tenant steals dominate the reclaim traffic.
    assert r["cross_tenant_steals"] > 0
    assert r["swap_outs_tenant_a"] > 0 and r["swap_outs_tenant_b"] > 0
