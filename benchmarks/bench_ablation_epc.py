"""Ablation: enclave-memory capacity and the paging cliff.

SGX1 fixes the EPC at ~93 MB; HyperEnclave's reserved region is a boot
parameter (the paper configures 24 GB).  This ablation sweeps the
protected-memory capacity under a random-access working set and shows
the paging cliff tracking the capacity — the quantitative version of the
paper's argument for configurable reserved memory (Sec 7.4 / Fig 8b).
"""

from __future__ import annotations

from repro.analysis.tables import series
from repro.apps.membench import measure_latency

WORKING_SET = 256 * 1024 * 1024
CAPACITIES_MB = [32, 64, 93, 128, 256, 512]


def run_experiment():
    latencies = []
    for capacity_mb in CAPACITIES_MB:
        point = measure_latency("intel-mee", "random", WORKING_SET,
                                epc_bytes=capacity_mb * 1024 * 1024)
        latencies.append(point.cycles_per_access)
    unconstrained = measure_latency("amd-sme", "random",
                                    WORKING_SET).cycles_per_access
    return latencies, unconstrained


def test_ablation_epc_capacity(benchmark, record_result):
    latencies, unconstrained = benchmark.pedantic(run_experiment, rounds=1,
                                                  iterations=1)

    table = series(
        "Ablation: random-access latency over a 256 MB working set vs "
        "protected-memory capacity (cycles/access)",
        [f"{mb}MB" for mb in CAPACITIES_MB],
        {"SGX-style paged EPC": latencies,
         "HyperEnclave reserved (no paging)":
             [unconstrained] * len(CAPACITIES_MB)},
        x_label="capacity")
    table.show()
    record_result("ablation_epc", {
        "capacities_mb": CAPACITIES_MB, "latencies": latencies,
        "hyperenclave_flat": unconstrained})
    benchmark.extra_info["cliff_ratio"] = latencies[0] / latencies[-1]

    # Latency falls monotonically as capacity covers more of the set...
    assert all(a >= b * 0.98 for a, b in zip(latencies, latencies[1:]))
    # ...collapses once capacity >= working set (no faults at 256/512MB)...
    assert latencies[0] > 20 * latencies[-1]
    # ...and the capacity-sufficient configs match the no-paging design.
    assert latencies[-1] < unconstrained * 3
