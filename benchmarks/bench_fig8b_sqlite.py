"""Figure 8b: in-memory SQLite (litedb) under YCSB-A vs record count.

Paper shape: on SGX throughput is ~75% of baseline while the database
fits in the EPC, and drops to ~50% once it exceeds ~90 MB (EPC paging);
on HyperEnclave both GU- and HU-Enclave stay within ~5% of baseline (SME
has no integrity metadata and the reserved enclave memory is 24 GB).

The client is embedded in the enclave (no edge calls in the hot loop),
exactly like the paper's setup.
"""

from __future__ import annotations

from repro.analysis.tables import series
from repro.apps.litedb import LiteDb
from repro.apps.ycsb import load_phase, workload_a
from repro.monitor.structs import EnclaveConfig, EnclaveMode
from repro.platform import TeePlatform
from repro.sdk.image import EnclaveImage

from .conftest import BENCH_MACHINE

VALUE_SIZE = 1024
RECORD_COUNTS = [10_000, 40_000, 80_000, 120_000, 160_000]
OPS = 6_000
# litedb is only the storage engine; real SQLite spends most of each YCSB
# operation in the SQL layer (parser, planner, VDBE interpretation).
# Charge that layer explicitly so per-op costs are SQLite-shaped.
SQL_LAYER_CYCLES = 16_000

DB_EDL = """
enclave {
    trusted { public uint64 ycsb_run(uint64 n_records, uint64 n_ops); };
    untrusted { };
};
"""


def _run_ycsb(ctx, n_records: int, n_ops: int) -> int:
    db = LiteDb(ctx, value_size=VALUE_SIZE)
    for op in load_phase(n_records, value_size=VALUE_SIZE):
        db.put(op.key, op.value)
    done = 0
    for op in workload_a(n_records, n_ops, value_size=VALUE_SIZE):
        ctx.compute(SQL_LAYER_CYCLES)
        if op.kind == "read":
            db.get(op.key)
        else:
            db.update(op.key, op.value)
        done += 1
    return done


def t_ycsb_run(ctx, n_records, n_ops):
    return _run_ycsb(ctx, int(n_records), int(n_ops))


def _image(mode):
    return EnclaveImage.build(
        "litedb", DB_EDL, {"ycsb_run": t_ycsb_run},
        EnclaveConfig(mode=mode, heap_size=512 * 1024 * 1024,
                      stack_size=64 * 1024, tcs_count=1))


def _ops_cycles_native(n_records: int) -> float:
    platform = TeePlatform.native(BENCH_MACHINE)
    ctx = platform.native_context()
    db = LiteDb(ctx, value_size=VALUE_SIZE)
    for op in load_phase(n_records, value_size=VALUE_SIZE):
        db.put(op.key, op.value)
    with platform.machine.cycles.measure() as span:
        for op in workload_a(n_records, OPS, value_size=VALUE_SIZE):
            ctx.compute(SQL_LAYER_CYCLES)
            if op.kind == "read":
                db.get(op.key)
            else:
                db.update(op.key, op.value)
    return span.elapsed


def _ops_cycles_enclave(mode: EnclaveMode, n_records: int) -> float:
    if mode is EnclaveMode.SGX:
        platform = TeePlatform.intel_sgx(BENCH_MACHINE)
    else:
        platform = TeePlatform.hyperenclave(BENCH_MACHINE)
    handle = platform.load_enclave(_image(mode))
    ctx = handle.ctx

    # Run load + measure inside one long ECALL, like the paper's embedded
    # client.  We split it so only the operation phase is measured.
    measured = {}

    def t_split(c, n_records, n_ops):
        db = LiteDb(c, value_size=VALUE_SIZE)
        for op in load_phase(int(n_records), value_size=VALUE_SIZE):
            db.put(op.key, op.value)
        with c._machine.cycles.measure() as span:
            for op in workload_a(int(n_records), int(n_ops),
                                 value_size=VALUE_SIZE):
                c.compute(SQL_LAYER_CYCLES)
                if op.kind == "read":
                    db.get(op.key)
                else:
                    db.update(op.key, op.value)
        measured["cycles"] = span.elapsed
        return 0

    handle.image.trusted_funcs["ycsb_run"] = t_split
    handle.proxies.ycsb_run(n_records=n_records, n_ops=OPS)
    handle.destroy()
    return measured["cycles"]


def run_experiment():
    throughput = {"GU-Enclave": [], "HU-Enclave": [], "SGX": []}
    for n_records in RECORD_COUNTS:
        native = _ops_cycles_native(n_records)
        throughput["GU-Enclave"].append(
            native / _ops_cycles_enclave(EnclaveMode.GU, n_records))
        throughput["HU-Enclave"].append(
            native / _ops_cycles_enclave(EnclaveMode.HU, n_records))
        throughput["SGX"].append(
            native / _ops_cycles_enclave(EnclaveMode.SGX, n_records))
    return throughput


def test_fig8b_sqlite_ycsb(benchmark, record_result):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    db_sizes_mb = [n * (VALUE_SIZE + 64) / 1e6 for n in RECORD_COUNTS]
    table = series(
        "Figure 8b: litedb YCSB-A throughput relative to baseline",
        [f"{n // 1000}k (~{mb:.0f}MB)"
         for n, mb in zip(RECORD_COUNTS, db_sizes_mb)],
        results, x_label="records")
    table.show()
    record_result("fig8b_sqlite", {"records": RECORD_COUNTS, **results})
    benchmark.extra_info.update(
        {f"{k}@{n}": v for k, vs in results.items()
         for n, v in zip(RECORD_COUNTS, vs)})

    # HyperEnclave: < ~5% overhead at every size, both modes.
    for mode in ("GU-Enclave", "HU-Enclave"):
        for value in results[mode]:
            assert value > 0.90, (mode, value)

    # SGX: clearly below HyperEnclave while in-EPC...
    assert results["SGX"][0] < min(results["GU-Enclave"][0],
                                   results["HU-Enclave"][0])
    # The 40k/80k points are the in-EPC plateau (the 10k database is
    # largely LLC-resident, so its gap is smaller).
    plateau = (results["SGX"][1] + results["SGX"][2]) / 2
    out_epc = results["SGX"][-1]
    assert results["SGX"][0] < 0.96
    assert 0.65 < plateau < 0.92, plateau
    # ...and a visible cliff once the DB exceeds the 93 MB EPC.
    assert out_epc < plateau - 0.15, (plateau, out_epc)
    assert 0.20 < out_epc < 0.65, out_epc
