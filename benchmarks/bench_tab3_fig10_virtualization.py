"""Table 3 + Figure 10: virtualization overhead on the normal VM.

The primary OS runs demoted inside the normal VM; the paper measures
LMBench micro-ops, SPEC CPU 2017 INTSpeed, and a kernel build, finding
<1% overhead in most benchmarks ("HyperEnclave avoids massive VM-exits by
pass-through most devices ... and installs huge pages in NPT").

We run the LMBench suite and the SPEC-like kernels natively and in the
normal VM.  VM costs come from amortized huge-page NPT fills and timer
ticks that now take a VM exit.
"""

from __future__ import annotations

from repro.analysis.tables import TextTable, fmt_ratio
from repro.apps.lmbench import ALL_OPS, cycles_to_us, run_suite
from repro.apps.speccpu import KERNELS as SPEC_KERNELS
from repro.hw import costs
from repro.platform import TeePlatform

from .conftest import BENCH_MACHINE

TIMER_INTERVAL = 400_000.0       # cycles between timer ticks
SPEC_REPS = 4


def _lmbench(platform) -> dict[str, float]:
    return {name: r.cycles
            for name, r in run_suite(platform.machine,
                                     platform.kernel).items()}


def _spec(platform, *, in_vm: bool) -> dict[str, float]:
    ctx = platform.native_context() if platform.kind == "native" else None
    if ctx is None:
        # The normal VM: same context type, but timer ticks cost a VM exit.
        native = TeePlatform.native(BENCH_MACHINE)
        ctx = native.native_context()
        machine = native.machine
    else:
        machine = platform.machine
    results = {}
    for name, kernel in SPEC_KERNELS.items():
        kernel(ctx, 1)       # warm
        with machine.cycles.measure() as span:
            for rep in range(SPEC_REPS):
                kernel(ctx, 2 + rep)
        cycles = span.elapsed
        ticks = cycles / TIMER_INTERVAL
        if in_vm:
            # Each timer tick takes a VM exit + entry on top of the
            # native interrupt cost.
            cycles += ticks * costs.HYPERCALL_ROUNDTRIP
        results[name] = cycles
    return results


def _kernel_build(platform) -> float:
    from repro.apps.kbuild import build
    return build(platform.machine, platform.kernel, n_units=25)


def run_experiment():
    native = TeePlatform.native(BENCH_MACHINE)
    vm = TeePlatform.hyperenclave(BENCH_MACHINE)
    return {
        "lmbench_native": _lmbench(native),
        "lmbench_vm": _lmbench(vm),
        "spec_native": _spec(native, in_vm=False),
        "spec_vm": _spec(vm, in_vm=True),
        "kbuild_native": _kernel_build(native),
        "kbuild_vm": _kernel_build(vm),
    }


def test_tab3_fig10_virtualization(benchmark, record_result):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = TextTable(
        title="Table 3: LMBench, native vs normal VM (microseconds)",
        headers=["op", "native (us)", "normal VM (us)", "overhead"])
    lm_overheads = {}
    for name in ALL_OPS:
        native, vm = r["lmbench_native"][name], r["lmbench_vm"][name]
        lm_overheads[name] = vm / native - 1
        table.add_row(name, f"{cycles_to_us(native):.4f}",
                      f"{cycles_to_us(vm):.4f}",
                      f"{lm_overheads[name] * 100:.2f}%")
    table.show()

    fig10 = TextTable(
        title="Figure 10: SPEC-CPU-like kernels, normal-VM overhead",
        headers=["kernel", "overhead"])
    spec_overheads = {}
    for name in sorted(SPEC_KERNELS):
        native, vm = r["spec_native"][name], r["spec_vm"][name]
        spec_overheads[name] = vm / native - 1
        fig10.add_row(name, f"{spec_overheads[name] * 100:.2f}%")
    fig10.show()

    kbuild_overhead = r["kbuild_vm"] / r["kbuild_native"] - 1
    print(f"\nKernel build: native {r['kbuild_native']:,.0f} cycles, "
          f"normal VM {r['kbuild_vm']:,.0f} cycles "
          f"(overhead {kbuild_overhead * 100:.2f}%)")

    record_result("tab3_fig10_virtualization",
                  {"lmbench": lm_overheads, "spec": spec_overheads,
                   "kbuild": kbuild_overhead})
    benchmark.extra_info.update(
        {f"lmbench/{k}": v for k, v in lm_overheads.items()})
    benchmark.extra_info.update(
        {f"spec/{k}": v for k, v in spec_overheads.items()})

    # Paper: virtualization overhead < 1% in most benchmarks; allow a
    # couple of memory-management-heavy micro-ops to reach a few percent.
    for name, overhead in spec_overheads.items():
        assert -0.01 <= overhead < 0.01, (name, overhead)
    assert -0.01 <= kbuild_overhead < 0.02, kbuild_overhead
    small = sum(1 for o in lm_overheads.values() if o < 0.01)
    assert small >= len(lm_overheads) - 2, lm_overheads
    for name, overhead in lm_overheads.items():
        assert -0.01 <= overhead < 0.05, (name, overhead)
