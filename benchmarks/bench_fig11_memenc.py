"""Figure 11: memory-encryption overhead, sequential vs random access.

Latency per 8-byte access over buffers from 16 KB to 256 MB on the
HyperEnclave memory system (AMD SME) and the SGX memory system (Intel
MEE + 93 MB EPC), normalized to each configuration's 16 KB point.

Paper shape: negligible overhead inside the 8 MB LLC; beyond it the
normalized latency reaches ~2.4x (seq) / ~25x (random) on HyperEnclave
and ~3x / ~30x on SGX; past the 93 MB EPC, SGX additionally pays paging,
reaching ~45x (seq) and ~1000x (random), while HyperEnclave stays flat
(its reserved enclave memory is 24 GB).
"""

from __future__ import annotations

from repro.analysis.tables import series
from repro.apps.membench import (BUFFER_SIZES, latency_curve,
                                 normalized_overhead)
from repro.hw import costs

LLC_INDEX = next(i for i, s in enumerate(BUFFER_SIZES)
                 if s > costs.LLC_SIZE)
EPC_INDEX = next(i for i, s in enumerate(BUFFER_SIZES)
                 if s > costs.SGX_EPC_SIZE)


def run_experiment():
    curves = {}
    for pattern in ("seq", "random"):
        curves[f"plain/{pattern}"] = latency_curve("none", pattern)
        curves[f"hyperenclave/{pattern}"] = latency_curve(
            "amd-sme", pattern)
        curves[f"sgx/{pattern}"] = latency_curve(
            "intel-mee", pattern, epc_bytes=costs.SGX_EPC_SIZE)
    return curves


def test_fig11_memory_encryption(benchmark, record_result):
    curves = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    normalized = {name: normalized_overhead(points)
                  for name, points in curves.items()}
    table = series(
        "Figure 11: per-access latency normalized to the 16 KB point",
        [f"{s // 1024}KB" if s < 1 << 20 else f"{s >> 20}MB"
         for s in BUFFER_SIZES],
        normalized, x_label="buffer")
    table.show()
    record_result("fig11_memenc", {
        "buffer_sizes": BUFFER_SIZES,
        "normalized": normalized,
        "raw_cycles_per_access": {
            name: [p.cycles_per_access for p in points]
            for name, points in curves.items()}})
    benchmark.extra_info.update(
        {f"{name}@max": values[-1] for name, values in normalized.items()})

    # Inside the LLC: flat for everyone.
    for name, values in normalized.items():
        for v in values[:LLC_INDEX]:
            assert v < 2.5, (name, v)

    he_seq = normalized["hyperenclave/seq"]
    he_rand = normalized["hyperenclave/random"]
    sgx_seq = normalized["sgx/seq"]
    sgx_rand = normalized["sgx/random"]

    # Beyond the LLC but inside the EPC: HyperEnclave ~2-3x seq /
    # ~20-40x random; SGX somewhat worse at both (MEE metadata).
    mid = EPC_INDEX - 1
    assert 1.5 < he_seq[mid] < 4.5, he_seq[mid]
    assert 15 < he_rand[mid] < 45, he_rand[mid]
    assert sgx_seq[mid] > he_seq[mid]
    assert sgx_rand[mid] > he_rand[mid]
    assert sgx_rand[mid] < 70

    # Beyond the EPC: SGX pays paging (paper: ~45x seq, ~1000x random);
    # HyperEnclave stays on its plateau.
    assert 20 < sgx_seq[-1] < 90, sgx_seq[-1]
    assert 300 < sgx_rand[-1] < 3000, sgx_rand[-1]
    assert he_seq[-1] < 5
    assert he_rand[-1] < 45
