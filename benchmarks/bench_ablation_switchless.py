"""Ablation: switchless OCALLs (the optimization the paper cites [66]).

Switchless calls replace the world switch with a shared-ring handoff to a
busy-polling untrusted worker.  This ablation measures (a) the raw OCALL
latency with and without switchless mode per enclave operation mode, and
(b) the burned-worker cost that pays for it — quantifying when the trade
is worth it (OCALL-heavy servers) and when it isn't (rare OCALLs waste a
core).
"""

from __future__ import annotations

from repro.analysis.tables import TextTable, fmt_cycles
from repro.hw import costs
from repro.monitor.structs import EnclaveMode

from .conftest import load_platform_and_handle, median_cycles

MODES = [("HU-Enclave", EnclaveMode.HU), ("GU-Enclave", EnclaveMode.GU),
         ("P-Enclave", EnclaveMode.P), ("Intel SGX", EnclaveMode.SGX)]
ITERATIONS = 101


def measure_mode(mode: EnclaveMode) -> dict[str, float]:
    platform, handle = load_platform_and_handle(mode)
    machine = platform.machine
    measured = {}

    def entry(ctx):
        with machine.cycles.measure() as span:
            ctx.ocall("ocall_nop")
        measured["cycles"] = span.elapsed
        return 0

    handle.image.trusted_funcs["nop"] = lambda ctx: entry(ctx)

    def one_ocall():
        handle.proxies.nop()
        return measured["cycles"]

    regular = median_cycles(machine, one_ocall, ITERATIONS)
    regular = measured["cycles"]
    handle.enable_switchless()
    handle.proxies.nop()
    switchless = measured["cycles"]
    worker_cycles = handle.switchless_worker_cycles
    handle.destroy()
    return {"regular": regular, "switchless": switchless,
            "worker": worker_cycles}


def run_experiment():
    return {label: measure_mode(mode) for label, mode in MODES}


def test_ablation_switchless(benchmark, record_result):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = TextTable(
        title="Ablation: OCALL latency, world-switch vs switchless (cycles)",
        headers=["platform", "regular OCALL", "switchless OCALL",
                 "speedup"])
    for label, _ in MODES:
        r = results[label]
        table.add_row(label, fmt_cycles(r["regular"]),
                      fmt_cycles(r["switchless"]),
                      f"{r['regular'] / r['switchless']:.1f}x")
    table.show()
    record_result("ablation_switchless", results)
    benchmark.extra_info.update(
        {f"{label}/{k}": v for label, r in results.items()
         for k, v in r.items()})

    expected = (costs.SWITCHLESS_ENQUEUE_CYCLES
                + costs.SWITCHLESS_POLL_INTERVAL_CYCLES / 2
                + costs.SWITCHLESS_COMPLETE_CYCLES)
    for label, _ in MODES:
        r = results[label]
        # Regular OCALLs land on Table 1; switchless is mode-independent.
        assert r["switchless"] == expected, label
        assert r["regular"] / r["switchless"] > 5, label
    # SGX gains the most: its world switch is the most expensive.
    gains = {label: results[label]["regular"] / results[label]["switchless"]
             for label, _ in MODES}
    assert gains["Intel SGX"] == max(gains.values())
