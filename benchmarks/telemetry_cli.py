"""Benchmark-side telemetry plumbing (``--telemetry-out``) — thin wrapper.

The sink itself lives in :mod:`repro.telemetry.sink` (machines register
with it automatically at construction); this module re-exports the old
names so existing imports keep working, keeps :func:`run_cli` for the
per-benchmark ``main()`` entry points with the original flags
(``--telemetry-out``, ``--top``), and adds a generalized CLI over the
:mod:`repro.bench` registry::

    python -m benchmarks.telemetry_cli table1_edge_calls \
        --telemetry-out out.json --profile-out out.profile.json

which works for *any* registered benchmark, not just Table 1.
"""

from __future__ import annotations

import argparse
import json

from repro.telemetry.sink import (TelemetrySink, activate, capture,  # noqa: F401
                                  current, deactivate)


def _emit(sink: TelemetrySink, args) -> None:
    """Write the requested outputs for one captured run."""
    if args.telemetry_out and sink.items:
        snapshot_path, trace_path = sink.write(args.telemetry_out)
        print()
        print(sink.report(args.top))
        print()
        print(f"telemetry snapshot: {snapshot_path}")
        print(f"chrome trace:       {trace_path} "
              f"(load in https://ui.perfetto.dev)")
    profile_out = getattr(args, "profile_out", None)
    if profile_out and sink.items:
        import pathlib

        from repro.profiler import profile_document, write_collapsed
        document = profile_document(sink.items)
        path = pathlib.Path(profile_out)
        path.write_text(json.dumps(document, indent=2, sort_keys=True))
        collapsed = write_collapsed(path.with_suffix(".collapsed"),
                                    document)
        print(f"cycle profile:      {path}")
        print(f"collapsed stacks:   {collapsed} "
              f"(load with flamegraph.pl or speedscope)")


def _parser(description: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--telemetry-out", metavar="PATH", default=None,
                        help="write a telemetry JSON snapshot here (plus "
                             "a Chrome trace next to it)")
    parser.add_argument("--profile-out", metavar="PATH", default=None,
                        help="write the exact cycle profile here (plus a "
                             "flamegraph-ready .collapsed next to it)")
    parser.add_argument("--top", type=int, default=10, metavar="N",
                        help="rows in the printed top-N digest")
    return parser


def _captured(fn, args):
    """Run ``fn`` under a sink iff any telemetry output was requested —
    with no output flags the benchmark runs with telemetry disabled,
    exactly as before."""
    if not (args.telemetry_out or args.profile_out):
        return fn(), None
    with capture() as sink:
        results = fn()
    return results, sink


def run_cli(description: str, run_experiment, argv=None) -> int:
    """Standalone-benchmark main: run the experiment, honouring
    ``--telemetry-out`` (and printing the top-N digest when set)."""
    args = _parser(description).parse_args(argv)
    results, sink = _captured(run_experiment, args)
    print(json.dumps(results, indent=2, sort_keys=True, default=str))
    if sink is not None:
        _emit(sink, args)
    return 0


def main(argv=None) -> int:
    """The generalized entry point: run any registered benchmark."""
    from repro.bench.registry import REGISTRY, resolve
    parser = _parser("run one registered benchmark with telemetry capture")
    parser.add_argument("benchmark", metavar="NAME",
                        help="a benchmark name from `python -m repro.bench "
                             "list` (e.g. table1_edge_calls)")
    args = parser.parse_args(argv)
    try:
        (spec,) = resolve([args.benchmark])
    except KeyError:
        parser.error(f"unknown benchmark {args.benchmark!r}; known: "
                     f"{', '.join(sorted(REGISTRY))}")
    figures, sink = _captured(spec.run, args)
    print(json.dumps(figures, indent=2, sort_keys=True, default=str))
    if sink is not None:
        _emit(sink, args)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
