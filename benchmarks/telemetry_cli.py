"""Benchmark-side telemetry plumbing (``--telemetry-out``).

A :class:`TelemetrySink` collects every ``(label, Telemetry)`` pair the
benchmarks create while it is active; at the end of the run it writes the
JSON snapshot plus the Chrome trace via
:func:`repro.telemetry.export.write_telemetry`.

Two entry points activate a sink:

* the pytest option ``--telemetry-out PATH`` (wired in ``conftest.py``),
  covering ``pytest benchmarks/ --telemetry-out out.json``;
* :func:`run_cli`, the ``python -m benchmarks.bench_table1_edge_calls
  --telemetry-out out.json`` path used by the CI smoke job.

``load_platform_and_handle`` consults :func:`current` so platform
creation registers its machine automatically; when no sink is active the
benchmarks run exactly as before — telemetry stays disabled and the
calibrated cycle counts are untouched.
"""

from __future__ import annotations

import argparse
import json

from repro.telemetry import Telemetry
from repro.telemetry.export import top_report, snapshot_document, \
    write_telemetry

_ACTIVE: "TelemetrySink | None" = None


class TelemetrySink:
    """Collects the telemetry hubs of every machine a run creates."""

    def __init__(self) -> None:
        self._items: list[tuple[str, Telemetry]] = []
        self._labels: set[str] = set()

    def register(self, label: str, telemetry: Telemetry) -> str:
        """Track one machine's telemetry (enabling it); returns the
        de-duplicated label actually used."""
        base, n = label, 1
        while label in self._labels:
            n += 1
            label = f"{base}-{n}"
        self._labels.add(label)
        telemetry.enable()
        self._items.append((label, telemetry))
        return label

    @property
    def items(self) -> list[tuple[str, Telemetry]]:
        """The registered ``(label, telemetry)`` pairs, in creation order."""
        return list(self._items)

    def write(self, snapshot_path) -> tuple:
        """Write snapshot + Chrome trace; returns both paths."""
        return write_telemetry(snapshot_path, self._items)

    def report(self, n: int = 10) -> str:
        """The plain-text top-N digest for this run."""
        return top_report(snapshot_document(self._items), n)


def activate(sink: TelemetrySink) -> None:
    """Make ``sink`` the process-wide active sink."""
    global _ACTIVE
    _ACTIVE = sink


def deactivate() -> None:
    """Clear the active sink."""
    global _ACTIVE
    _ACTIVE = None


def current() -> TelemetrySink | None:
    """The active sink, or None when telemetry was not requested."""
    return _ACTIVE


def run_cli(description: str, run_experiment, argv=None) -> int:
    """Standalone-benchmark main: run the experiment, honouring
    ``--telemetry-out`` (and printing the top-N digest when set)."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--telemetry-out", metavar="PATH", default=None,
                        help="write a telemetry JSON snapshot here (plus "
                             "a Chrome trace next to it)")
    parser.add_argument("--top", type=int, default=10, metavar="N",
                        help="rows in the printed top-N digest")
    args = parser.parse_args(argv)

    sink = None
    if args.telemetry_out:
        sink = TelemetrySink()
        activate(sink)
    try:
        results = run_experiment()
    finally:
        deactivate()

    print(json.dumps(results, indent=2, sort_keys=True, default=str))
    if sink is not None:
        snapshot_path, trace_path = sink.write(args.telemetry_out)
        print()
        print(sink.report(args.top))
        print()
        print(f"telemetry snapshot: {snapshot_path}")
        print(f"chrome trace:       {trace_path} "
              f"(load in https://ui.perfetto.dev)")
    return 0
