"""Figure 7: marshalling-buffer overhead for ECALLs and OCALLs.

The paper measures edge calls moving 64 B - 16 KB in the "in", "out" and
"in&out" directions, comparing a GU-Enclave using the marshalling buffer
against a GU variant without it (direct copies, the insecure design) —
the data is CLFLUSHed before each call.

Paper shape: ECALL overhead grows ~linearly with size, reaching ~8% (in),
~11% (out), ~21% (in&out) at 16 KB; OCALL overhead is negligible because
``sgx_ocalloc`` frames live in the marshalling buffer already.
"""

from __future__ import annotations

import statistics

from repro.analysis.tables import TextTable, series
from repro.monitor.structs import EnclaveMode
from repro.platform import TeePlatform

from .conftest import BENCH_MACHINE, empty_image, register_empty_ocalls

SIZES = [64, 256, 1024, 4096, 16384]
ITERATIONS = 51

_ECALLS = {"in": ("nop_in", True), "out": ("nop_out", False),
           "in&out": ("nop_inout", True)}
_OCALLS = {"in": "do_ocall_in", "out": "do_ocall_out",
           "in&out": "do_ocall_inout"}


def _measure(handle, call, direction, size, *, ocall: bool) -> float:
    machine = handle.machine
    payload = b"\xA5" * size

    def op():
        # The no-msbuf variant stages [in] data into fresh enclave heap;
        # reset the arena so the bench can't exhaust it.
        handle.ctx.heap_reset()
        # CLFLUSH the payload region so copies start cold (paper setup).
        machine.llc.flush_range(handle.msbuf_vma.start,
                                handle.msbuf_vma.size)
        if ocall:
            getattr(handle.proxies, call)(n=size)
        else:
            name, needs_data = _ECALLS[direction]
            kwargs = {"n": size}
            if needs_data:
                kwargs["data"] = payload
            getattr(handle.proxies, name)(**kwargs)

    op()
    samples = []
    for _ in range(ITERATIONS):
        with machine.cycles.measure() as span:
            op()
        samples.append(span.elapsed)
    return statistics.median(samples)


def run_experiment():
    results = {"ecall": {}, "ocall": {}}
    for use_ms in (True, False):
        platform = TeePlatform.hyperenclave(BENCH_MACHINE)
        handle = platform.load_enclave(empty_image(EnclaveMode.GU),
                                       use_marshalling=use_ms)
        register_empty_ocalls(handle)
        key = "ms" if use_ms else "noms"
        for direction in _ECALLS:
            results["ecall"].setdefault(direction, {})[key] = [
                _measure(handle, _ECALLS[direction][0], direction, size,
                         ocall=False) for size in SIZES]
        for direction, call in _OCALLS.items():
            results["ocall"].setdefault(direction, {})[key] = [
                _measure(handle, call, direction, size, ocall=True)
                for size in SIZES]
        handle.destroy()

    overheads = {}
    for kind in ("ecall", "ocall"):
        overheads[kind] = {}
        for direction, runs in results[kind].items():
            overheads[kind][direction] = [
                ms / noms - 1.0
                for ms, noms in zip(runs["ms"], runs["noms"])]
    return overheads


def test_fig7_marshalling_overhead(benchmark, record_result):
    overheads = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    for kind in ("ecall", "ocall"):
        table = series(
            f"Figure 7 ({kind.upper()}s): marshalling-buffer overhead "
            f"(fraction) vs payload size",
            SIZES,
            {direction: overheads[kind][direction]
             for direction in ("in", "out", "in&out")},
            x_label="bytes")
        table.show()
    record_result("fig7_marshalling", overheads)
    benchmark.extra_info.update({
        f"{kind}/{direction}@16K": overheads[kind][direction][-1]
        for kind in overheads for direction in overheads[kind]})

    ecall = overheads["ecall"]
    # ECALL overhead grows with size...
    for direction in ("in", "out", "in&out"):
        assert ecall[direction][-1] > ecall[direction][0]
    # ...landing near the paper's 16 KB numbers (8% / 11% / 21%).
    assert 0.04 < ecall["in"][-1] < 0.14
    assert 0.04 < ecall["out"][-1] < 0.16
    assert 0.10 < ecall["in&out"][-1] < 0.28
    assert ecall["in&out"][-1] > ecall["in"][-1]

    # OCALL overhead is negligible at every size (the ocalloc design).
    for direction in ("in", "out", "in&out"):
        for value in overheads["ocall"][direction]:
            assert abs(value) < 0.03, (direction, value)
