"""Ablation: monitor-managed enclave page swapping under memory pressure.

Sec 3.2 mentions page swapping as one source of enclave faults; our
monitor implements the EWB/ELDU analog (encrypted, integrity-protected,
versioned blobs in untrusted memory).  This ablation measures the raw
swap round trip and then runs a working set larger than a deliberately
tiny EPC pool, comparing against the same workload with ample memory —
quantifying what the paper's 24 GB reservation buys.
"""

from __future__ import annotations

import random

from repro.analysis.tables import TextTable, fmt_cycles
from repro.hw.machine import MachineConfig
from repro.hw.phys import PAGE_SIZE
from repro.monitor.enclave import ENCLAVE_BASE_VA
from repro.monitor.structs import EnclaveConfig, EnclaveMode
from repro.platform import TeePlatform
from repro.sdk.image import EnclaveImage

TINY = MachineConfig(
    phys_size=256 * 1024 * 1024,
    reserved_base=128 * 1024 * 1024,
    reserved_size=16 * 1024 * 1024,        # ~14 MB EPC after monitor
)
AMPLE = MachineConfig(
    phys_size=2 * 1024 * 1024 * 1024,
    reserved_base=1024 * 1024 * 1024,
    reserved_size=512 * 1024 * 1024,
)

EDL = "enclave { trusted { public uint64 nop(); }; untrusted { }; };"
WORKING_SET_PAGES = 8192                   # 32 MB, beyond the tiny pool
TOUCHES = 9_000


def _build(platform):
    image = EnclaveImage.build(
        "swap-bench", EDL, {"nop": lambda ctx: 0},
        EnclaveConfig(mode=EnclaveMode.GU, heap_size=64 * 1024 * 1024,
                      tcs_count=1))
    handle = platform.load_enclave(image)
    monitor = platform.monitor
    eid = handle.enclave_id
    base = ENCLAVE_BASE_VA + 128 * PAGE_SIZE
    monitor.reserve_region(eid, base, WORKING_SET_PAGES * PAGE_SIZE)
    return handle, monitor, eid, base


def measure_roundtrip() -> tuple[float, float]:
    platform = TeePlatform.hyperenclave(AMPLE)
    handle, monitor, eid, base = _build(platform)
    monitor.handle_enclave_page_fault(eid, base, write=True)
    with platform.cycles.measure() as span:
        monitor.swap_out(eid, base)
    out_cycles = span.elapsed
    with platform.cycles.measure() as span:
        monitor.handle_enclave_page_fault(eid, base, write=True)
    in_cycles = span.elapsed
    handle.destroy()
    return out_cycles, in_cycles


def measure_workload(config) -> float:
    platform = TeePlatform.hyperenclave(config)
    handle, monitor, eid, base = _build(platform)
    rng = random.Random(17)
    enclave = handle.enclave
    with platform.cycles.measure() as span:
        for _ in range(TOUCHES):
            page_va = base + rng.randrange(WORKING_SET_PAGES) * PAGE_SIZE
            if enclave.page_at(page_va) is None:
                # Not resident: the MMU faults, the monitor commits or
                # swaps the page back in.
                monitor.handle_enclave_page_fault(eid, page_va, write=True)
            else:
                platform.machine.cycles.charge(50, "resident-touch")
    handle.destroy()
    return span.elapsed / TOUCHES


def run_experiment():
    out_cycles, in_cycles = measure_roundtrip()
    pressured = measure_workload(TINY)
    ample = measure_workload(AMPLE)
    return {"swap_out": out_cycles, "swap_in": in_cycles,
            "per_touch_pressured": pressured, "per_touch_ample": ample}


def test_ablation_swap(benchmark, record_result):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = TextTable(
        title="Ablation: enclave page swapping (cycles)",
        headers=["metric", "cycles"])
    table.add_row("swap-out (EWB analog)", fmt_cycles(r["swap_out"]))
    table.add_row("swap-in (ELDU analog)", fmt_cycles(r["swap_in"]))
    table.add_row("per fault, 32MB set on ~14MB pool",
                  fmt_cycles(r["per_touch_pressured"]))
    table.add_row("per fault, same set on ample pool",
                  fmt_cycles(r["per_touch_ample"]))
    table.show()
    record_result("ablation_swap", r)
    benchmark.extra_info.update(r)

    # Swap-in must pay decrypt+verify on top of a demand-paging commit.
    assert r["swap_in"] > r["swap_out"] * 0.5
    assert r["swap_out"] > 10_000
    # Memory pressure costs an order of magnitude per fault — the
    # quantitative case for HyperEnclave's large reserved region.
    assert r["per_touch_pressured"] > 5 * r["per_touch_ample"]
