"""Table 2: cycles to handle #UD and #PF exceptions inside enclaves.

Paper targets (CPU cycles):

    =====  =========  ==========  =========
    .      Intel SGX  GU-Enclave  P-Enclave
    =====  =========  ==========  =========
    #UD    28,561     17,490      258
    #PF    --         2,660       1,132
    =====  =========  ==========  =========

#UD: the test code executes an undefined instruction; for P-Enclaves the
exception is handled entirely in-enclave (own IDT), for GU/SGX it costs a
full two-phase AEX -> signal -> internal ECALL -> ERESUME round trip.

#PF: the GC scenario — revoke write permission on a buffer, touch it,
restore the permission in the fault handler.  (The paper couldn't run it
on SGX1: no permission changes after EINIT; we reproduce the "-".)
"""

from __future__ import annotations

from repro.analysis.tables import TextTable, fmt_cycles
from repro.hw import costs
from repro.monitor.structs import (EnclaveConfig, EnclaveMode, PagePerm)
from repro.platform import TeePlatform
from repro.sdk.image import EnclaveImage

from .conftest import BENCH_MACHINE

PAGE = 4096
UD_ITERATIONS = 101
PF_ITERATIONS = 32

EDL = """
enclave {
    trusted {
        public uint64 bench_ud(uint64 iterations);
        public uint64 bench_gc_pf(uint64 npages);
    };
    untrusted { };
};
"""


def t_bench_ud(ctx, iterations):
    """Trigger #UD repeatedly; the handler just advances past it."""
    import statistics
    machine_cycles = ctx._machine.cycles   # bench instrumentation
    ctx.register_exception_handler(lambda c, v: None)
    samples = []
    for _ in range(int(iterations)):
        with machine_cycles.measure() as span:
            ctx.trigger_ud()
        samples.append(span.elapsed)
    t_bench_ud.median = statistics.median(samples)
    return 0


def t_bench_gc_pf(ctx, npages):
    """The GC scenario, measuring the pure fault-handling cycles."""
    import statistics
    machine_cycles = ctx._machine.cycles
    n = int(npages)
    va = ctx.malloc(n * PAGE)
    ctx.write(va, b"\x00" * (n * PAGE))
    ctx.register_pf_handler(
        lambda c, fva: c.mprotect(fva & ~(PAGE - 1), 1, PagePerm.RW))
    ctx.mprotect(va, n, PagePerm.R)
    samples = []
    for i in range(n):
        with machine_cycles.measure() as span:
            ctx.write(va + i * PAGE, b"!")
        samples.append(span.elapsed
                       - span.categories.get("enclave-memory", 0))
    t_bench_gc_pf.median = statistics.median(samples)
    return 0


def _image(mode: EnclaveMode) -> EnclaveImage:
    return EnclaveImage.build(
        "bench-exceptions", EDL,
        {"bench_ud": t_bench_ud, "bench_gc_pf": t_bench_gc_pf},
        EnclaveConfig(mode=mode, heap_size=4 * 1024 * 1024))


def measure_mode(mode: EnclaveMode) -> dict[str, float | None]:
    if mode is EnclaveMode.SGX:
        platform = TeePlatform.intel_sgx(BENCH_MACHINE)
    else:
        platform = TeePlatform.hyperenclave(BENCH_MACHINE)
    handle = platform.load_enclave(_image(mode))
    handle.proxies.bench_ud(iterations=UD_ITERATIONS)
    ud = t_bench_ud.median
    if mode is EnclaveMode.SGX:
        # SGX1: no page-permission changes after EINIT (paper Sec 7.2).
        pf = None
    else:
        handle.proxies.bench_gc_pf(npages=PF_ITERATIONS)
        pf = t_bench_gc_pf.median
    handle.destroy()
    return {"ud": ud, "pf": pf}


def run_experiment():
    return {label: measure_mode(mode)
            for label, mode in (("Intel SGX", EnclaveMode.SGX),
                                ("GU-Enclave", EnclaveMode.GU),
                                ("P-Enclave", EnclaveMode.P))}


def test_table2_exceptions(benchmark, record_result):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = TextTable(
        title="Table 2: cycles handling #UD / #PF inside enclaves",
        headers=["exception", "Intel SGX", "GU-Enclave", "P-Enclave"])
    table.add_row("#UD", *(fmt_cycles(results[p]["ud"])
                           for p in ("Intel SGX", "GU-Enclave",
                                     "P-Enclave")))
    table.add_row("#PF", "-",
                  fmt_cycles(results["GU-Enclave"]["pf"]),
                  fmt_cycles(results["P-Enclave"]["pf"]))
    table.show()
    record_result("table2_exceptions", results)
    benchmark.extra_info.update(
        {f"{p}/{m}": v for p, r in results.items() for m, v in r.items()})

    # Calibrated exact matches.
    assert results["Intel SGX"]["ud"] == 28561
    assert results["GU-Enclave"]["ud"] == 17490
    assert results["P-Enclave"]["ud"] == 258
    assert results["GU-Enclave"]["pf"] == 2660
    assert results["P-Enclave"]["pf"] == 1132

    # Paper claims: P ~68x faster than GU, ~110x faster than SGX on #UD;
    # ~2.3x faster than GU on the GC #PF.
    assert 60 < results["GU-Enclave"]["ud"] / results["P-Enclave"]["ud"] < 75
    assert 100 < results["Intel SGX"]["ud"] / results["P-Enclave"]["ud"] < 120
    assert 2.2 < results["GU-Enclave"]["pf"] / results["P-Enclave"]["pf"] < 2.5
