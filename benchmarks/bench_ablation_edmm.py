"""Ablation: dynamic enclave memory management (EDMM), Sec 3.2.

The paper's design argument: because RustMonitor owns the enclave page
table, dynamically adding, removing, or re-permissioning pages is a
single trusted-path operation, while SGX2 must round-trip through the
untrusted driver *and* have the enclave EACCEPT every change.

This ablation grows an enclave heap page by page (demand paging), changes
page permissions, and trims pages, on HyperEnclave (GU) vs the SGX2
baseline, reporting per-page costs.
"""

from __future__ import annotations

from repro.analysis.tables import TextTable, fmt_cycles
from repro.monitor.structs import EnclaveConfig, EnclaveMode, PagePerm
from repro.platform import TeePlatform
from repro.sdk.image import EnclaveImage

from .conftest import BENCH_MACHINE

PAGE = 4096
N_PAGES = 64

EDL = """
enclave {
    trusted { public uint64 grow(uint64 npages); };
    untrusted { };
};
"""


def t_grow(ctx, npages):
    """Touch ``npages`` fresh heap pages (each faults + commits)."""
    base = ctx.malloc(int(npages) * PAGE)
    for i in range(int(npages)):
        ctx.write(base + i * PAGE, b"x")
    ctx.globals["grown_base"] = base
    return base


def _image(mode):
    return EnclaveImage.build(
        "edmm", EDL, {"grow": t_grow},
        EnclaveConfig(mode=mode, heap_size=8 * 1024 * 1024))


def measure(mode: EnclaveMode) -> dict[str, float]:
    if mode is EnclaveMode.SGX:
        platform = TeePlatform.intel_sgx(BENCH_MACHINE)
    else:
        platform = TeePlatform.hyperenclave(BENCH_MACHINE)
    handle = platform.load_enclave(_image(mode))
    machine = platform.machine
    monitor = platform.monitor

    # 1. On-demand heap growth: isolate the commit path from the write.
    with machine.cycles.measure() as span:
        base = handle.proxies.grow(npages=N_PAGES)
    grow = (span.categories.get("demand-paging", 0)
            + span.categories.get("edmm-sgx2", 0)) / N_PAGES

    # 2. Permission change (e.g. W^X flips for JIT code pages).
    with machine.cycles.measure() as span:
        monitor.enclave_mprotect(handle.enclave_id, base, N_PAGES,
                                 PagePerm.R)
    protect = span.elapsed / N_PAGES

    # 3. Trim (release memory back to the pool).
    with machine.cycles.measure() as span:
        trimmed = monitor.enclave_trim(handle.enclave_id, base, N_PAGES)
    assert trimmed == N_PAGES
    trim = span.elapsed / N_PAGES

    handle.destroy()
    return {"grow": grow, "protect": protect, "trim": trim}


def run_experiment():
    return {"HyperEnclave (GU)": measure(EnclaveMode.GU),
            "SGX2 EDMM": measure(EnclaveMode.SGX)}


def test_ablation_edmm(benchmark, record_result):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = TextTable(
        title="Ablation: EDMM per-page costs (cycles)",
        headers=["operation", "HyperEnclave (GU)", "SGX2 EDMM", "ratio"])
    for op in ("grow", "protect", "trim"):
        he = results["HyperEnclave (GU)"][op]
        sgx = results["SGX2 EDMM"][op]
        table.add_row(op, fmt_cycles(he), fmt_cycles(sgx),
                      f"{sgx / he:.1f}x")
    table.show()
    record_result("ablation_edmm", results)
    benchmark.extra_info.update(
        {f"{k}/{op}": v for k, r in results.items() for op, v in r.items()})

    # The paper's claim: EDMM without driver round trips and EACCEPTs is
    # much cheaper on every operation.
    for op in ("grow", "protect", "trim"):
        he = results["HyperEnclave (GU)"][op]
        sgx = results["SGX2 EDMM"][op]
        assert sgx > 2 * he, (op, he, sgx)
    # Growth specifically: monitor demand paging is a single trap.
    assert results["HyperEnclave (GU)"]["grow"] == sum(
        c for _, c in __import__("repro.hw.costs",
                                 fromlist=["x"]).DEMAND_PAGING_PF_STEPS)
