"""Ablation: which enclave operation mode wins for which workload?

The paper's central design argument (Sec 4) is that no single mode fits
every workload: HU-Enclaves win on edge-call-heavy I/O, P-Enclaves win on
exception-heavy privileged workloads, and GU-Enclaves give the deepest
defensive posture at a modest cost.  This ablation sweeps a synthetic
workload's composition — OCALLs per unit of compute, and page-permission
faults per unit of compute — and reports the winning mode in each regime,
making the crossovers explicit.
"""

from __future__ import annotations

from repro.analysis.tables import TextTable
from repro.hw import costs
from repro.monitor.structs import EnclaveMode

OCALL_RATES = [0, 1, 4, 16, 64]        # OCALLs per 100k compute cycles
FAULT_RATES = [0, 1, 4, 16, 64]        # GC faults per 100k compute cycles
COMPUTE = 100_000
MODES = ("hu", "gu", "p")


def op_cost(mode: str, ocalls: int, faults: int) -> float:
    """Analytic per-operation cost from the calibrated tables."""
    cost = float(COMPUTE)
    cost += ocalls * costs.ocall_expected(mode)
    if mode == "p":
        cost += faults * costs.pf_gc_expected("p")
    else:
        # GU/HU fault through the monitor (GU path; HU adds the signal
        # hop, see trts._dispatch_protection_fault).
        cost += faults * costs.pf_gc_expected("gu")
        if mode == "hu":
            cost += faults * costs.OS_SIGNAL_DISPATCH
    return cost


def run_experiment():
    grid = {}
    for ocalls in OCALL_RATES:
        for faults in FAULT_RATES:
            costs_by_mode = {mode: op_cost(mode, ocalls, faults)
                             for mode in MODES}
            winner = min(costs_by_mode, key=costs_by_mode.get)
            grid[(ocalls, faults)] = {"winner": winner, **costs_by_mode}
    return grid


def test_ablation_mode_crossover(benchmark, record_result):
    grid = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = TextTable(
        title="Ablation: winning mode by workload mix "
              "(rows: OCALLs/100k cycles, cols: GC faults/100k cycles)",
        headers=["ocalls\\faults", *[str(f) for f in FAULT_RATES]])
    for ocalls in OCALL_RATES:
        table.add_row(ocalls, *[grid[(ocalls, f)]["winner"].upper()
                                for f in FAULT_RATES])
    table.show()
    record_result("ablation_modes", {
        f"{o}/{f}": grid[(o, f)] for o in OCALL_RATES for f in FAULT_RATES})
    benchmark.extra_info["pure_compute_winner"] = grid[(0, 0)]["winner"]

    # Pure compute: HU wins on ties broken by cheapest switches — every
    # mode is within noise, but edge calls decide the rest of the grid.
    # I/O-heavy, no faults: HU (cheapest OCALLs, Table 1).
    assert grid[(64, 0)]["winner"] == "hu"
    # Exception-heavy, no I/O: P (in-enclave page faults, Table 2).
    assert grid[(0, 64)]["winner"] == "p"
    # Heavily mixed: P's fault advantage (1.5k/fault) beats its OCALL
    # penalty (1.1k/call) only when faults outnumber calls.
    assert grid[(64, 64)]["winner"] in ("hu", "p")
    # The paper's conclusion: no single mode wins everywhere.
    winners = {cell["winner"] for cell in grid.values()}
    assert len(winners) >= 2
