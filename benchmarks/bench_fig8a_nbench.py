"""Figure 8a: NBench scores relative to the no-protection baseline.

Paper shape: "the overhead introduced by HyperEnclave and SGX is about 1%
and 3% respectively" — CPU-bound kernels suffer only from interrupt-
induced AEXes and memory encryption on cache misses.
"""

from __future__ import annotations

from repro.analysis.tables import TextTable, fmt_ratio
from repro.apps.driver import charge_interrupts
from repro.apps.nbench import KERNELS, run_kernel
from repro.monitor.structs import EnclaveConfig, EnclaveMode
from repro.platform import TeePlatform
from repro.sdk.image import EnclaveImage

from .conftest import BENCH_MACHINE

KERNEL_NAMES = sorted(KERNELS)

NBENCH_EDL = """
enclave {
    trusted { public uint64 run_one(uint64 kernel_id, uint64 seed,
                                    uint64 reps); };
    untrusted { };
};
"""

# The paper runs each kernel for seconds; a handful of repetitions per
# ECALL amortizes the entry cost the same way.
REPS = 12


def t_run_one(ctx, kernel_id, seed, reps):
    checksum = 0
    for rep in range(int(reps)):
        ctx.heap_reset()
        checksum ^= run_kernel(ctx, KERNEL_NAMES[int(kernel_id)],
                               int(seed) + rep).checksum
    return checksum


def _image(mode):
    return EnclaveImage.build(
        "nbench", NBENCH_EDL, {"run_one": t_run_one},
        EnclaveConfig(mode=mode, heap_size=32 * 1024 * 1024))


def _measure_native(platform) -> dict[str, float]:
    ctx = platform.native_context()
    machine = platform.machine
    cycles = {}
    for name in KERNEL_NAMES:
        run_kernel(ctx, name, 1)            # warm
        with machine.cycles.measure() as span:
            for rep in range(REPS):
                ctx.heap_reset()
                run_kernel(ctx, name, 2 + rep)
            charge_interrupts(machine, span.elapsed, None)
        cycles[name] = span.elapsed
    return cycles


def _measure_enclave(platform, mode) -> dict[str, float]:
    handle = platform.load_enclave(_image(mode))
    machine = platform.machine
    cycles = {}
    for kernel_id, name in enumerate(KERNEL_NAMES):
        handle.proxies.run_one(kernel_id=kernel_id, seed=1, reps=1)  # warm
        with machine.cycles.measure() as span:
            handle.proxies.run_one(kernel_id=kernel_id, seed=2, reps=REPS)
            charge_interrupts(machine, span.elapsed, mode.value)
        cycles[name] = span.elapsed
    handle.destroy()
    return cycles


def run_experiment():
    native = _measure_native(TeePlatform.native(BENCH_MACHINE))
    he = _measure_enclave(TeePlatform.hyperenclave(BENCH_MACHINE),
                          EnclaveMode.GU)
    sgx = _measure_enclave(TeePlatform.intel_sgx(BENCH_MACHINE),
                           EnclaveMode.SGX)
    return {
        "hyperenclave": {k: native[k] / he[k] for k in KERNEL_NAMES},
        "sgx": {k: native[k] / sgx[k] for k in KERNEL_NAMES},
    }


def test_fig8a_nbench(benchmark, record_result):
    scores = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = TextTable(
        title="Figure 8a: NBench score relative to baseline (higher is "
              "better)",
        headers=["kernel", "HyperEnclave/AMD", "SGX/Intel"])
    for name in KERNEL_NAMES:
        table.add_row(name, fmt_ratio(scores["hyperenclave"][name]),
                      fmt_ratio(scores["sgx"][name]))
    he_mean = sum(scores["hyperenclave"].values()) / len(KERNEL_NAMES)
    sgx_mean = sum(scores["sgx"].values()) / len(KERNEL_NAMES)
    table.add_row("geomean-ish", fmt_ratio(he_mean), fmt_ratio(sgx_mean))
    table.show()
    record_result("fig8a_nbench", scores)
    benchmark.extra_info["hyperenclave_mean"] = he_mean
    benchmark.extra_info["sgx_mean"] = sgx_mean

    # Paper: ~1% overhead on HyperEnclave, ~3% on SGX.
    assert 0.95 < he_mean <= 1.001, he_mean
    assert 0.93 < sgx_mean <= 1.001, sgx_mean
    assert sgx_mean < he_mean
    assert he_mean - sgx_mean > 0.005
