"""Figure 8c: Lighttpd (our HTTP server under the LibOS) throughput.

100 concurrent clients fetch pages of various sizes over the loopback
(ab-style).  Paper shape: HU-Enclave delivers 81~88% of the baseline,
GU-Enclave 69~78%, SGX 51~63%; all ratios improve as pages grow (the
fixed per-request world-switch costs amortize).

Each request costs the enclave one ECALL plus recv/send OCALLs, and the
NIC raises interrupts per packet, each forcing an AEX round trip whose
cost depends on the operation mode — that spread is the figure.
"""

from __future__ import annotations

from repro.analysis.tables import series
from repro.apps.driver import aex_roundtrip_cycles, OS_INTERRUPT_CYCLES
from repro.apps.webserver import (HTTP_PORT, HttpServer, http_request,
                                  make_http_enclave_image, parse_response)
from repro.libos.native import NativeLibos
from repro.libos.occlum import register_libos_ocalls
from repro.monitor.structs import EnclaveMode
from repro.platform import TeePlatform

from .conftest import BENCH_MACHINE

PAGE_SIZES = [1024, 2048, 4096, 8192, 16384]
N_CLIENTS = 100
REQUESTS = 150
# One NIC interrupt per MTU-sized network packet.
PACKET_BYTES = 1500


def _interrupts_for(response_size: int) -> int:
    return 1 + (response_size + PACKET_BYTES - 1) // PACKET_BYTES


def _document(size: int) -> bytes:
    return (b"<html>" + b"x" * (size - 13) + b"</html>")[:size]


def _measure_native(page_size: int) -> float:
    platform = TeePlatform.native(BENCH_MACHINE)
    libos = NativeLibos(platform.kernel, platform.loopback, platform.os_vfs)
    ctx = platform.native_context()
    server = HttpServer(libos, ctx.compute)
    server.load_document("/page.html", _document(page_size))
    clients = [platform.loopback.connect(HTTP_PORT)
               for _ in range(N_CLIENTS)]
    conns = [server.accept() for _ in clients]
    machine = platform.machine
    request = http_request("/page.html")

    with machine.cycles.measure() as span:
        for i in range(REQUESTS):
            client = clients[i % N_CLIENTS]
            platform.loopback.send(client, request, from_client=True)
            size = server.handle_request(conns[i % N_CLIENTS])
            machine.cycles.charge(
                _interrupts_for(size) * OS_INTERRUPT_CYCLES, "interrupt")
            platform.loopback.recv(client, from_client=False)
    return span.elapsed / REQUESTS


def _measure_enclave(mode: EnclaveMode, page_size: int) -> float:
    if mode is EnclaveMode.SGX:
        platform = TeePlatform.intel_sgx(BENCH_MACHINE)
    else:
        platform = TeePlatform.hyperenclave(BENCH_MACHINE)
    image = make_http_enclave_image(mode, heap_size=64 * 1024 * 1024,
                                    msbuf_size=1024 * 1024)
    handle = platform.load_enclave(image)
    register_libos_ocalls(handle, platform.loopback)
    handle.proxies.http_init(port=HTTP_PORT)
    doc = _document(page_size)
    handle.proxies.http_load(path=b"/page.html", plen=10, doc=doc,
                             n=len(doc))
    clients = [platform.loopback.connect(HTTP_PORT)
               for _ in range(N_CLIENTS)]
    conns = [handle.proxies.http_accept(port=HTTP_PORT) for _ in clients]
    machine = platform.machine
    request = http_request("/page.html")
    aex_cost = aex_roundtrip_cycles(mode.value)

    with machine.cycles.measure() as span:
        for i in range(REQUESTS):
            client = clients[i % N_CLIENTS]
            platform.loopback.send(client, request, from_client=True)
            size = handle.proxies.http_serve(conn=conns[i % N_CLIENTS])
            # NIC interrupts land while the enclave serves: AEX round trips.
            machine.cycles.charge(_interrupts_for(size) * aex_cost,
                                  f"aex-interrupt:{mode.value}")
            platform.loopback.recv(client, from_client=False)
    handle.destroy()
    return span.elapsed / REQUESTS


def run_experiment():
    results = {"HU-Enclave": [], "GU-Enclave": [], "SGX": []}
    for page_size in PAGE_SIZES:
        native = _measure_native(page_size)
        results["HU-Enclave"].append(
            native / _measure_enclave(EnclaveMode.HU, page_size))
        results["GU-Enclave"].append(
            native / _measure_enclave(EnclaveMode.GU, page_size))
        results["SGX"].append(
            native / _measure_enclave(EnclaveMode.SGX, page_size))
    return results


def test_fig8c_lighttpd(benchmark, record_result):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = series(
        "Figure 8c: HTTP server throughput relative to baseline",
        [f"{s // 1024}KB" for s in PAGE_SIZES], results,
        x_label="page size")
    table.show()
    record_result("fig8c_lighttpd", {"page_sizes": PAGE_SIZES, **results})
    benchmark.extra_info.update(
        {f"{k}@{s}": v for k, vs in results.items()
         for s, v in zip(PAGE_SIZES, vs)})

    # Mode ordering at every size: HU > GU > SGX (the paper's spread).
    for i in range(len(PAGE_SIZES)):
        assert results["HU-Enclave"][i] > results["GU-Enclave"][i] \
            > results["SGX"][i], i

    # Paper bands: HU 81~88%, GU 69~78%, SGX 51~63%.
    assert 0.72 <= min(results["HU-Enclave"]) and \
        max(results["HU-Enclave"]) <= 0.95
    assert 0.62 <= min(results["GU-Enclave"]) and \
        max(results["GU-Enclave"]) <= 0.90
    assert 0.45 <= min(results["SGX"]) and max(results["SGX"]) <= 0.75
    # The HU-vs-SGX spread is the figure's headline.
    for hu, sgx in zip(results["HU-Enclave"], results["SGX"]):
        assert hu - sgx > 0.12
