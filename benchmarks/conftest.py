"""Shared benchmark fixtures and helpers.

Every benchmark regenerates one paper table or figure: it runs the full
simulation, prints the table (visible with ``pytest -s``), records the
key numbers in ``benchmark.extra_info``, and asserts the paper's *shape*
(orderings, ratio bands) — per DESIGN.md we validate shapes, not absolute
numbers, except for the microbenchmarks whose cost itemizations are
calibrated to land exactly.

Results are also appended to ``benchmarks/results.json`` (untracked
scratch output, regenerable with ``python -m repro.bench run``) so
EXPERIMENTS.md can be cross-checked against a real run; the *committed*
result record is ``benchmarks/baselines/BENCH_*.json``, gated by
``python -m repro.bench check`` in CI.
"""

from __future__ import annotations

import json
import pathlib
import statistics

import pytest

from repro.hw.machine import MachineConfig
from repro.monitor.structs import EnclaveConfig, EnclaveMode
from repro.platform import TeePlatform
from repro.sdk.image import EnclaveImage

from . import telemetry_cli

RESULTS_PATH = pathlib.Path(__file__).parent / "results.json"


def pytest_addoption(parser):
    parser.addoption(
        "--telemetry-out", action="store", default=None, metavar="PATH",
        help="write a telemetry JSON snapshot (plus Chrome trace) of the "
             "benchmark run to PATH")


@pytest.fixture(scope="session", autouse=True)
def _telemetry_out(request):
    path = request.config.getoption("--telemetry-out")
    if not path:
        yield None
        return
    sink = telemetry_cli.TelemetrySink()
    telemetry_cli.activate(sink)
    yield sink
    telemetry_cli.deactivate()
    if sink.items:
        snapshot_path, trace_path = sink.write(path)
        print(f"\n{sink.report()}")
        print(f"telemetry snapshot: {snapshot_path}")
        print(f"chrome trace:       {trace_path}")

# A small machine keeps pool setup fast; the reserved region still
# dwarfs every enclave used here.
BENCH_MACHINE = MachineConfig(
    phys_size=2 * 1024 * 1024 * 1024,
    reserved_base=1024 * 1024 * 1024,
    reserved_size=768 * 1024 * 1024,
)

EMPTY_EDL = """
enclave {
    trusted {
        public uint64 nop();
        public uint64 nop_in([in, size=n] bytes data, uint64 n);
        public uint64 nop_out([out, size=n] bytes data, uint64 n);
        public uint64 nop_inout([in, out, size=n] bytes data, uint64 n);
        public uint64 do_ocall();
        public uint64 do_ocall_in(uint64 n);
        public uint64 do_ocall_out(uint64 n);
        public uint64 do_ocall_inout(uint64 n);
    };
    untrusted {
        uint64 ocall_nop();
        uint64 ocall_in([in, size=n] bytes data, uint64 n);
        uint64 ocall_out([out, size=n] bytes data, uint64 n);
        uint64 ocall_inout([in, out, size=n] bytes data, uint64 n);
    };
};
"""


def _t_nop(ctx):
    return 0


def _t_nop_in(ctx, data, n):
    return 0


def _t_nop_out(ctx, data, n):
    return 0


def _t_nop_inout(ctx, data, n):
    return 0


def _t_do_ocall(ctx):
    ctx.ocall("ocall_nop")
    return 0


def _t_do_ocall_in(ctx, n):
    ctx.ocall("ocall_in", data=b"\x00" * n, n=n)
    return 0


def _t_do_ocall_out(ctx, n):
    ctx.ocall("ocall_out", n=n)
    return 0


def _t_do_ocall_inout(ctx, n):
    ctx.ocall("ocall_inout", data=b"\x00" * n, n=n)
    return 0


def empty_image(mode: EnclaveMode,
                msbuf_size: int = 256 * 1024) -> EnclaveImage:
    return EnclaveImage.build(
        "bench-empty", EMPTY_EDL,
        {"nop": _t_nop, "nop_in": _t_nop_in, "nop_out": _t_nop_out,
         "nop_inout": _t_nop_inout, "do_ocall": _t_do_ocall,
         "do_ocall_in": _t_do_ocall_in, "do_ocall_out": _t_do_ocall_out,
         "do_ocall_inout": _t_do_ocall_inout},
        EnclaveConfig(mode=mode, heap_size=1024 * 1024,
                      marshalling_buffer_size=msbuf_size))


def register_empty_ocalls(handle) -> None:
    handle.register_ocall("ocall_nop", lambda: 0)
    handle.register_ocall("ocall_in", lambda data, n: 0)
    handle.register_ocall("ocall_out",
                          lambda data, n: (0, {"data": b"\x00" * n}))
    handle.register_ocall("ocall_inout",
                          lambda data, n: (0, {"data": bytes(data)}))


def load_platform_and_handle(mode: EnclaveMode, **image_kwargs):
    if mode is EnclaveMode.SGX:
        platform = TeePlatform.intel_sgx(BENCH_MACHINE)
    else:
        platform = TeePlatform.hyperenclave(BENCH_MACHINE)
    sink = telemetry_cli.current()
    if sink is not None:
        sink.register(mode.value, platform.machine.telemetry)
    handle = platform.load_enclave(empty_image(mode, **image_kwargs))
    register_empty_ocalls(handle)
    return platform, handle


def median_cycles(machine, op, iterations: int = 101) -> float:
    """The paper measures N runs and takes the median."""
    op()                     # warm
    samples = []
    for _ in range(iterations):
        with machine.cycles.measure() as span:
            op()
        samples.append(span.elapsed)
    return statistics.median(samples)


@pytest.fixture(scope="session")
def record_result():
    """Accumulate benchmark results into benchmarks/results.json."""
    results: dict[str, object] = {}
    if RESULTS_PATH.exists():
        try:
            results.update(json.loads(RESULTS_PATH.read_text()))
        except json.JSONDecodeError:
            pass

    def record(experiment: str, data) -> None:
        results[experiment] = data
        RESULTS_PATH.write_text(json.dumps(results, indent=2, sort_keys=True))

    return record
