"""Table 1: latency of SGX primitives (EENTER/EEXIT/ECALL/OCALL).

Paper targets (CPU cycles):

    =============  ======  =====  ======  ======
    platform       EENTER  EEXIT  ECALL   OCALL
    =============  ======  =====  ======  ======
    Intel SGX      --      --     14,432  12,432
    HU-Enclave     1,163   1,144  8,440   4,120
    GU-Enclave     1,704   1,319  9,480   4,920
    P-Enclave      1,649   1,401  9,700   5,260
    =============  ======  =====  ======  ======

The harness runs empty edge calls and takes the median, like the paper
("runs empty edge calls with no explicit parameters 1,000,000 times and
takes the median value"); instruction-level EENTER/EEXIT latencies are
measured at the world-switch engine, which the paper could not do on SGX
(no RDTSCP inside enclaves) — we reproduce that gap by reporting "-".
"""

from __future__ import annotations

if __package__ in (None, ""):
    # Direct execution (python benchmarks/bench_table1_edge_calls.py):
    # put the repo root and src/ on the path and adopt the package so
    # the relative conftest import below keeps working.
    import importlib
    import pathlib
    import sys
    _root = pathlib.Path(__file__).resolve().parents[1]
    sys.path[:0] = [str(_root), str(_root / "src")]
    importlib.import_module("benchmarks")
    __package__ = "benchmarks"

from repro.analysis.tables import TextTable, fmt_cycles
from repro.hw import costs
from repro.monitor.structs import EnclaveMode

from .conftest import load_platform_and_handle, median_cycles
from .telemetry_cli import run_cli

MODES = [("Intel SGX", EnclaveMode.SGX), ("HU-Enclave", EnclaveMode.HU),
         ("GU-Enclave", EnclaveMode.GU), ("P-Enclave", EnclaveMode.P)]
ITERATIONS = 301


def measure_mode(mode: EnclaveMode) -> dict[str, float | None]:
    platform, handle = load_platform_and_handle(mode)
    machine = platform.machine
    enclave = handle.enclave
    world = handle.world

    out: dict[str, float | None] = {}
    if mode is EnclaveMode.SGX:
        # No RDTSCP inside SGX enclaves on the paper's platform.
        out["eenter"] = out["eexit"] = None
    else:
        tcs = enclave.acquire_tcs()

        def enter_exit_pair():
            world.eenter(enclave, tcs, handle.AEP)
            world.eexit(enclave, handle.AEP)

        enter_exit_pair()
        with machine.cycles.measure() as span:
            world.eenter(enclave, tcs, handle.AEP)
        out["eenter"] = span.elapsed
        with machine.cycles.measure() as span:
            world.eexit(enclave, handle.AEP)
        out["eexit"] = span.elapsed
        enclave.release_tcs(tcs)

    out["ecall"] = median_cycles(machine, lambda: handle.proxies.nop(),
                                 ITERATIONS)
    # do_ocall is an empty OCALL wrapped in an ECALL; subtracting the
    # empty-ECALL median isolates the OCALL itself.
    wrapped = median_cycles(machine, lambda: handle.proxies.do_ocall(),
                            ITERATIONS)
    out["ocall"] = wrapped - out["ecall"]
    handle.destroy()
    return out


def run_experiment() -> dict[str, dict[str, float | None]]:
    return {label: measure_mode(mode) for label, mode in MODES}


def test_table1_edge_calls(benchmark, record_result):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = TextTable(
        title="Table 1: Latency of SGX primitives (CPU cycles)",
        headers=["platform", "EENTER", "EEXIT", "ECALL", "OCALL"])
    for label, _ in MODES:
        r = results[label]
        table.add_row(
            label,
            "-" if r["eenter"] is None else fmt_cycles(r["eenter"]),
            "-" if r["eexit"] is None else fmt_cycles(r["eexit"]),
            fmt_cycles(r["ecall"]), fmt_cycles(r["ocall"]))
    table.show()
    record_result("table1_edge_calls", results)
    benchmark.extra_info.update(
        {f"{label}/{metric}": value
         for label, r in results.items() for metric, value in r.items()})

    # The itemized cost model must land exactly on the paper's numbers.
    for label, mode in MODES:
        r = results[label]
        assert r["ecall"] == costs.ecall_expected(mode.value), label
        assert r["ocall"] == costs.ocall_expected(mode.value), label
        if r["eenter"] is not None:
            assert r["eenter"] == costs.SWITCH_COSTS[mode.value].eenter_total
            assert r["eexit"] == costs.SWITCH_COSTS[mode.value].eexit_total

    # Paper claims: HU optimal; P slower than GU; all beat SGX.
    assert results["HU-Enclave"]["ecall"] < results["GU-Enclave"]["ecall"] \
        < results["P-Enclave"]["ecall"] < results["Intel SGX"]["ecall"]
    assert results["HU-Enclave"]["ocall"] < results["GU-Enclave"]["ocall"] \
        < results["P-Enclave"]["ocall"] < results["Intel SGX"]["ocall"]


def main(argv=None) -> int:
    """Standalone entry: run Table 1, honouring ``--telemetry-out``."""
    return run_cli(__doc__.partition("\n")[0], run_experiment, argv)


if __name__ == "__main__":
    raise SystemExit(main())
