"""Figure 8d: Redis (our RESP server under the LibOS) latency/throughput.

The paper loads 50,000 records (~50 MB), then drives YCSB-A from 20
clients at rising request frequencies, plotting latency against
throughput.  Paper shape: the maximum throughput of HU-Enclave, GU-Enclave
and SGX reach about 89%, 72% and 48% of the baseline respectively.

We measure the per-operation service time on each platform (including
edge calls, in-enclave memory effects, and per-packet AEXes), then sweep
offered load through an M/M/1 queue to produce the latency-throughput
curves; maximum throughput is 1/service-time.
"""

from __future__ import annotations

import random

from repro.analysis.tables import TextTable, fmt_ratio, series
from repro.apps.driver import aex_roundtrip_cycles, OS_INTERRUPT_CYCLES, \
    latency_throughput_curve
from repro.apps.kvserver import (KV_PORT, RespServer, encode_command,
                                 make_kv_enclave_image)
from repro.apps.ycsb import record_key, workload_a, ZipfianGenerator
from repro.libos.native import NativeLibos
from repro.libos.occlum import register_libos_ocalls
from repro.monitor.structs import EnclaveMode
from repro.platform import TeePlatform

from .conftest import BENCH_MACHINE

N_RECORDS = 20_000
VALUE_SIZE = 1024              # ~20 MB dataset (scaled from the paper's 50)
N_CLIENTS = 20
OPS = 2_000
INTERRUPTS_PER_OP = 2          # request packet + response packet


def _load_commands():
    rng = random.Random(11)
    for i in range(N_RECORDS):
        yield encode_command(b"SET", record_key(i),
                             bytes([rng.randrange(256)]) * VALUE_SIZE)


def _op_commands():
    for op in workload_a(N_RECORDS, OPS, value_size=VALUE_SIZE, seed=4):
        if op.kind == "read":
            yield encode_command(b"GET", op.key)
        else:
            yield encode_command(b"SET", op.key, op.value)


def _measure_native() -> float:
    platform = TeePlatform.native(BENCH_MACHINE)
    libos = NativeLibos(platform.kernel, platform.loopback, platform.os_vfs)
    ctx = platform.native_context()
    server = RespServer(libos, ctx)
    clients = [platform.loopback.connect(KV_PORT) for _ in range(N_CLIENTS)]
    conns = [server.accept() for _ in clients]
    machine = platform.machine

    def run(commands, measure):
        total = 0.0
        for i, command in enumerate(commands):
            client = clients[i % N_CLIENTS]
            platform.loopback.send(client, command, from_client=True)
            with machine.cycles.measure() as span:
                server.handle_command(conns[i % N_CLIENTS])
                machine.cycles.charge(
                    INTERRUPTS_PER_OP * OS_INTERRUPT_CYCLES, "interrupt")
            platform.loopback.recv(client, from_client=False)
            if measure:
                total += span.elapsed
        return total

    run(_load_commands(), measure=False)
    return run(_op_commands(), measure=True) / OPS


def _measure_enclave(mode: EnclaveMode) -> float:
    if mode is EnclaveMode.SGX:
        platform = TeePlatform.intel_sgx(BENCH_MACHINE)
    else:
        platform = TeePlatform.hyperenclave(BENCH_MACHINE)
    image = make_kv_enclave_image(mode, heap_size=256 * 1024 * 1024,
                                  msbuf_size=512 * 1024)
    handle = platform.load_enclave(image)
    register_libos_ocalls(handle, platform.loopback)
    handle.proxies.kv_init(port=KV_PORT)
    clients = [platform.loopback.connect(KV_PORT) for _ in range(N_CLIENTS)]
    conns = [handle.proxies.kv_accept(port=KV_PORT) for _ in clients]
    machine = platform.machine
    aex_cost = aex_roundtrip_cycles(mode.value)

    def run(commands, measure):
        total = 0.0
        for i, command in enumerate(commands):
            client = clients[i % N_CLIENTS]
            platform.loopback.send(client, command, from_client=True)
            with machine.cycles.measure() as span:
                handle.proxies.kv_serve(conn=conns[i % N_CLIENTS])
                machine.cycles.charge(INTERRUPTS_PER_OP * aex_cost,
                                      f"aex-interrupt:{mode.value}")
            platform.loopback.recv(client, from_client=False)
            if measure:
                total += span.elapsed
        return total

    run(_load_commands(), measure=False)
    mean = run(_op_commands(), measure=True) / OPS
    handle.destroy()
    return mean


def run_experiment():
    service = {"baseline": _measure_native(),
               "HU-Enclave": _measure_enclave(EnclaveMode.HU),
               "GU-Enclave": _measure_enclave(EnclaveMode.GU),
               "SGX": _measure_enclave(EnclaveMode.SGX)}
    curves = {name: latency_throughput_curve(s, points=10)
              for name, s in service.items()}
    return service, curves


def test_fig8d_redis(benchmark, record_result):
    service, curves = benchmark.pedantic(run_experiment, rounds=1,
                                         iterations=1)

    # Latency-throughput curves (the paper's figure).
    xs = list(range(1, 11))
    table = series(
        "Figure 8d: latency (cycles) at rising load (10%..95% of each "
        "platform's saturation)",
        xs,
        {name: [lat for _, lat in curve] for name, curve in curves.items()},
        x_label="load step")
    table.show()

    max_throughput = {name: 1e6 / s for name, s in service.items()}
    rel = {name: max_throughput[name] / max_throughput["baseline"]
           for name in service}
    summary = TextTable(
        title="Figure 8d summary: max throughput relative to baseline",
        headers=["platform", "service cycles/op", "relative max throughput"])
    for name in ("baseline", "HU-Enclave", "GU-Enclave", "SGX"):
        summary.add_row(name, f"{service[name]:,.0f}", fmt_ratio(rel[name]))
    summary.show()

    record_result("fig8d_redis", {"service_cycles": service,
                                  "relative_max_throughput": rel})
    benchmark.extra_info.update(
        {f"relmax/{k}": v for k, v in rel.items()})

    # Paper: HU 89%, GU 72%, SGX 48% of baseline max throughput.
    assert rel["HU-Enclave"] > rel["GU-Enclave"] > rel["SGX"]
    assert 0.75 < rel["HU-Enclave"] < 0.97
    assert 0.60 < rel["GU-Enclave"] < 0.90
    assert 0.35 < rel["SGX"] < 0.70
    # Latency curves rise with load on every platform.
    for name, curve in curves.items():
        lats = [lat for _, lat in curve]
        assert lats == sorted(lats), name
