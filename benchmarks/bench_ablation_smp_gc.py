"""Ablation: the GC write-barrier cost vs core count (GU vs P).

On one CPU the Table 2 numbers hold (GU 2,660 / P 1,132 per fault).  On a
multi-core box the monitor must TLB-shootdown *every* core for each
permission change it makes on a GU-Enclave's behalf — it cannot know
where translations are cached — while a P-Enclave editing its own
level-1 table only invalidates its own vCPU.  The P-Enclave advantage
therefore grows with the machine (the paper's box has 128 logical cores).
"""

from __future__ import annotations

from repro.analysis.tables import series
from repro.hw.machine import Machine, MachineConfig
from repro.hw.phys import PAGE_SIZE
from repro.monitor.boot import measured_late_launch
from repro.monitor.structs import EnclaveConfig, EnclaveMode, PagePerm
from repro.sdk.image import EnclaveImage

CPU_COUNTS = [1, 4, 16, 64, 128]
PAGES = 24

EDL = "enclave { trusted { public uint64 gc(uint64 npages); }; " \
      "untrusted { }; };"


def t_gc(ctx, npages):
    n = int(npages)
    heap = ctx.globals.get("heap")
    if heap is None:
        heap = ctx.malloc(n * PAGE_SIZE)
        ctx.write(heap, b"\x00" * (n * PAGE_SIZE))
        ctx.globals["heap"] = heap
    ctx.register_pf_handler(
        lambda c, va: c.mprotect(va & ~(PAGE_SIZE - 1), 1, PagePerm.RW))
    ctx.mprotect(heap, n, PagePerm.R)
    for i in range(n):
        ctx.write(heap + i * PAGE_SIZE, b"!")
    return n


def _platform(num_cpus):
    machine = Machine(MachineConfig(
        phys_size=1024 * 1024 * 1024,
        reserved_base=512 * 1024 * 1024,
        reserved_size=256 * 1024 * 1024,
        num_cpus=num_cpus,
    ))
    boot = measured_late_launch(machine)
    return machine, boot


def _measure(mode: EnclaveMode, num_cpus: int) -> float:
    machine, boot = _platform(num_cpus)
    from repro.osim.kernel import Kernel
    from repro.osim.kmod import HyperEnclaveDevice
    from repro.sdk.urts import UntrustedRuntime
    kernel = Kernel(machine, boot.monitor)
    device = HyperEnclaveDevice(kernel, boot.monitor)
    process = kernel.spawn()
    urts = UntrustedRuntime(machine, kernel, device, boot.monitor, process)
    image = EnclaveImage.build(
        "smp-gc", EDL, {"gc": t_gc},
        EnclaveConfig(mode=mode, heap_size=(PAGES + 8) * PAGE_SIZE))
    from repro.platform import DEFAULT_VENDOR_KEY
    from repro.sdk.edger8r import generate_proxies
    handle = urts.create_enclave(image, DEFAULT_VENDOR_KEY)
    handle.proxies = generate_proxies(handle)
    handle.proxies.gc(npages=PAGES)                # warm: commit the heap
    with machine.cycles.measure() as span:
        handle.proxies.gc(npages=PAGES)
    handle.destroy()
    return span.elapsed / PAGES


def run_experiment():
    return {
        "GU-Enclave": [_measure(EnclaveMode.GU, n) for n in CPU_COUNTS],
        "P-Enclave": [_measure(EnclaveMode.P, n) for n in CPU_COUNTS],
    }


def test_ablation_smp_gc(benchmark, record_result):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = series(
        "Ablation: GC write-barrier cost per page (cycles) vs CPU count",
        CPU_COUNTS, results, x_label="cpus")
    table.show()
    record_result("ablation_smp_gc", {"cpus": CPU_COUNTS, **results})
    ratios = [g / p for g, p in zip(results["GU-Enclave"],
                                    results["P-Enclave"])]
    benchmark.extra_info.update(
        {f"gu_over_p@{n}": r for n, r in zip(CPU_COUNTS, ratios)})

    # P-Enclave per-page cost is CPU-count independent...
    p_costs = results["P-Enclave"]
    assert max(p_costs) - min(p_costs) < 0.05 * p_costs[0]
    # ...GU grows with cores (two shootdowns per barrier round trip)...
    gu = results["GU-Enclave"]
    assert gu[0] < gu[1] < gu[-1]
    # ...so the P advantage widens: ~1.5x per epoch-page at 1 CPU (the
    # pure fault is 2.35x, Table 2; the epoch adds shared revoke/write
    # costs), growing to tens of x at the paper's 128 logical cores.
    assert 1.2 < ratios[0] < 2.8
    assert ratios[-1] > 8, ratios
