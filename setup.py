"""Legacy setup shim: lets ``pip install -e .`` work without `wheel`."""

from setuptools import setup

setup()
