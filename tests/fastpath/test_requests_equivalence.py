"""A/B equivalence of request tracing across REPRO_FASTPATH modes.

Trace ids come from (label, vcpu, per-vCPU counter) and segment stamps
from op-boundary reads of the cycle counter, which are batch-invariant:
every touch issues exactly one charge in every fast-path mode.  So the
serialized requests document — ids, trees, category deltas, steal
attributions — must be bit-identical across the legacy loop and both
fast paths.
"""

from __future__ import annotations

import json

from repro.hw import fastpath
from repro.telemetry import sink as telemetry_sink
from tests.fastpath.conftest import ALL_MODES


def _run_traced() -> str:
    """The two-tenant EPC-pressure scenario, requests JSON serialized."""
    from repro.bench.runner import _ensure_benchmarks_importable
    _ensure_benchmarks_importable()
    import benchmarks.bench_epc_pressure as scenario

    with telemetry_sink.capture(trace_requests=True) as sink:
        figures = scenario.run_experiment()
        document = sink.requests_document()
    assert document is not None and document["traces"][0]["requests"]
    return json.dumps({"figures": figures, "requests": document},
                      sort_keys=True)


def test_requests_json_bit_identical_across_modes():
    results = {}
    for requested in ALL_MODES:
        effective = fastpath.set_mode(requested)
        results.setdefault(effective, _run_traced())
    fastpath.set_mode(None)
    legacy = results.pop(fastpath.MODE_LEGACY)
    assert results, "no fast mode available to compare"
    for mode, serialized in results.items():
        assert serialized == legacy, f"mode {mode} requests diverged"
