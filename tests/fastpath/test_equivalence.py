"""A/B equivalence: legacy vs fast vs numpy paths are bit-identical.

The fast paths (translation memoization, batched cycle charging,
vectorized memory-cost kernels) are pure optimizations: every observable
— cycle totals, per-category breakdowns, TLB/LLC/MEE counters, machine
state fingerprints, benchmark figures — must match the legacy reference
loops exactly, not approximately.
"""

from __future__ import annotations

import random

import pytest

from repro.hw import costs, fastpath
from repro.hw.cache import Llc
from repro.hw.cycles import CycleCounter
from repro.hw.memenc import AmdSme, IntelMee
from repro.hw.memmodel import EpcModel, MemorySubsystem
from repro.hw.tlb import Tlb
from tests.fastpath.conftest import ALL_MODES


def _mem_state(mem: MemorySubsystem) -> dict:
    """Every observable of one memory subsystem, for exact comparison."""
    return {
        "total": mem.cycles.total,
        "by_category": dict(mem.cycles.by_category),
        "tlb": mem.tlb.stats(),
        "tlb_digest": mem.tlb.state_digest(),
        "llc": mem.llc.stats(),
        "engine": mem.engine.stats(),
        "epc_faults": mem.epc.faults if mem.epc is not None else None,
    }


def _drive_workload(engine, *, epc_bytes: int | None = None,
                    seed: int = 7) -> dict:
    """A mixed sequential/random workload over one configuration."""
    cycles = CycleCounter()
    mem = MemorySubsystem(
        cycles, engine,
        llc=Llc(costs.LLC_SIZE // 64),
        tlb=Tlb(max(costs.TLB_ENTRIES // 8, 16)),
        epc=EpcModel(epc_bytes) if epc_bytes else None)
    span = 4 << 20                      # 4 MB: beyond the scaled LLC
    mem.touch_sequential(0, span)
    rng = random.Random(seed)
    for _ in range(4000):
        mem.touch(rng.randrange(span // 8) * 8)
    mem.touch_sequential(span // 2, span // 4)
    return _mem_state(mem)


def _sweep_modes(run):
    """Run ``run()`` under every mode; return {effective_mode: result}."""
    results = {}
    for requested in ALL_MODES:
        effective = fastpath.set_mode(requested)
        results.setdefault(effective, run())
    fastpath.set_mode(None)
    return results


class TestMemorySubsystemEquivalence:
    @pytest.mark.parametrize("engine_factory,epc_bytes", [
        (AmdSme, None),
        (lambda: IntelMee(cache_lines=costs.MEE_METADATA_CACHE_LINES // 8),
         8 << 20),
    ], ids=["amd-sme", "intel-mee+epc"])
    def test_all_modes_bit_identical(self, engine_factory, epc_bytes):
        results = _sweep_modes(
            lambda: _drive_workload(engine_factory(), epc_bytes=epc_bytes))
        legacy = results.pop(fastpath.MODE_LEGACY)
        assert results, "no fast mode available to compare"
        for mode, state in results.items():
            assert state == legacy, f"mode {mode} diverged from legacy"

    def test_membench_points_bit_identical(self):
        # The exact Figure 11 kernel, on a subset of its grid (the full
        # legacy sweep is minutes; the per-point kernel is identical).
        from repro.apps import membench
        configs = [
            ("none", "seq", 64 * 1024, None),
            ("amd-sme", "random", 16 << 20, None),
            ("intel-mee", "seq", 64 << 20, costs.SGX_EPC_SIZE),
            ("intel-mee", "random", 256 << 20, costs.SGX_EPC_SIZE),
        ]

        def run():
            return [membench.measure_latency(
                engine, pattern, size, epc_bytes=epc).cycles_per_access
                for engine, pattern, size, epc in configs]

        results = _sweep_modes(run)
        legacy = results.pop(fastpath.MODE_LEGACY)
        for mode, latencies in results.items():
            assert latencies == legacy, f"mode {mode} diverged from legacy"


class TestBenchmarkEquivalence:
    def test_table1_figures_and_fingerprints_bit_identical(self):
        from repro.bench.registry import resolve
        from repro.telemetry import sink as telemetry_sink

        spec = resolve(["table1_edge_calls"])[0]
        spec.load()

        def run():
            with telemetry_sink.capture() as sink:
                figures = spec.run()
                fingerprints = sink.state_fingerprints()
                doc = sink.document()
            return {
                "figures": figures,
                "fingerprints": fingerprints,
                "total_cycles": doc["combined"]["total_cycles"],
                "by_subsystem": doc["combined"]["by_subsystem"],
            }

        results = _sweep_modes(run)
        legacy = results.pop(fastpath.MODE_LEGACY)
        assert legacy["fingerprints"], "table1 must fingerprint machines"
        for mode, state in results.items():
            assert state == legacy, f"mode {mode} diverged from legacy"


class TestMeeReset:
    def test_reset_zeroes_metadata_counters(self):
        mee = IntelMee(cache_lines=64)
        cycles = CycleCounter()
        mem = MemorySubsystem(cycles, mee, llc=Llc(256 * 1024),
                              tlb=Tlb(16))
        mem.touch_sequential(0, 1 << 20)
        before = mee.stats()
        assert before["metadata_misses"] > 0
        assert before["metadata_cached"] > 0
        mee.reset()
        assert mee.stats() == {"metadata_hits": 0, "metadata_misses": 0,
                               "metadata_cached": 0}

    def test_reset_makes_configurations_reproducible(self):
        # Cold-start semantics: the same workload after reset() charges
        # the same cycles and lands the same counters — no state leaks
        # across benchmark configurations.
        mee = IntelMee(cache_lines=64)

        def one_config():
            cycles = CycleCounter()
            mem = MemorySubsystem(cycles, mee, llc=Llc(256 * 1024),
                                  tlb=Tlb(16))
            mem.touch_sequential(0, 1 << 20)
            return cycles.total, mee.stats()

        first = one_config()
        mee.reset()
        second = one_config()
        assert second == first
