"""A/B equivalence of timeline sampling across REPRO_FASTPATH modes.

The sampler's probe discipline (op-granularity state only, boundary
cycles for clock-domain series, one row per crossed boundary) exists so
that a batched fast-path charge and the legacy per-op loop produce the
*same rows*.  This sweeps a swap-heavy workload under every mode and
asserts the serialized timeline documents are bit-identical.
"""

from __future__ import annotations

import json

from repro.hw import fastpath
from repro.telemetry import sink as telemetry_sink
from tests.fastpath.conftest import ALL_MODES


def _run_with_timeline() -> str:
    """The two-tenant EPC-pressure scenario, timeline JSON serialized."""
    from repro.bench.runner import _ensure_benchmarks_importable
    _ensure_benchmarks_importable()
    import benchmarks.bench_epc_pressure as scenario

    with telemetry_sink.capture(timeline_interval=250_000) as sink:
        figures = scenario.run_experiment()
        document = sink.timeline_document()
    assert document is not None and document["timelines"][0]["samples"]
    return json.dumps({"figures": figures, "timeline": document},
                      sort_keys=True)


def test_timeline_json_bit_identical_across_modes():
    results = {}
    for requested in ALL_MODES:
        effective = fastpath.set_mode(requested)
        results.setdefault(effective, _run_with_timeline())
    fastpath.set_mode(None)
    legacy = results.pop(fastpath.MODE_LEGACY)
    assert results, "no fast mode available to compare"
    for mode, serialized in results.items():
        assert serialized == legacy, f"mode {mode} timeline diverged"
