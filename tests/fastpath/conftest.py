"""Fixtures for the fast-path A/B equivalence suite.

Every test here switches ``repro.hw.fastpath`` modes in-process; the
``restore_fastpath`` autouse fixture re-reads the environment afterwards
so test order never leaks a mode into unrelated suites.
"""

from __future__ import annotations

import pytest

from repro.hw import fastpath

# The modes every equivalence test sweeps.  MODE_NUMPY silently falls
# back to MODE_PYTHON when numpy is absent — set_mode reports what took
# effect, so the sweep stays meaningful either way.
ALL_MODES = (fastpath.MODE_LEGACY, fastpath.MODE_PYTHON,
             fastpath.MODE_NUMPY)


@pytest.fixture(autouse=True)
def restore_fastpath():
    yield
    fastpath.set_mode(None)
