"""Cross-mode flight-recorder replay: record legacy, replay fast.

The flight recorder's divergence bisection is the strongest equivalence
check available: every traced event (cycle stamp, kind, detail, causal
path) and every state-hash checkpoint must match across fast-path modes,
not just the end-of-run figures.
"""

from __future__ import annotations

import pytest

from repro.flightrec import scenario as flightrec_scenario
from repro.flightrec.replay import replay_journal
from repro.flightrec.scenario import run_recorded
from repro.hw import fastpath
from tests.flightrec.conftest import SCENARIO_ID, demo_lifecycle


@pytest.fixture
def lifecycle_scenario():
    flightrec_scenario.register(SCENARIO_ID, demo_lifecycle)
    yield SCENARIO_ID
    flightrec_scenario.unregister(SCENARIO_ID)


def _record_in_mode(scenario, mode):
    fastpath.set_mode(mode)
    journal, figures = run_recorded(scenario, {"iters": 3},
                                    checkpoint_every=16)
    return journal, figures


@pytest.mark.parametrize("record_mode,replay_mode", [
    (fastpath.MODE_LEGACY, fastpath.MODE_PYTHON),
    (fastpath.MODE_PYTHON, fastpath.MODE_LEGACY),
    (fastpath.MODE_LEGACY, fastpath.MODE_NUMPY),
], ids=["legacy->fast", "fast->legacy", "legacy->numpy"])
def test_replay_across_modes_zero_divergence(lifecycle_scenario,
                                             record_mode, replay_mode):
    journal, figures = _record_in_mode(lifecycle_scenario, record_mode)
    assert figures["sum"] == 3 * 42
    fastpath.set_mode(replay_mode)
    result = replay_journal(journal)
    assert result.ok, result.render()
    assert result.divergence is None


def test_cross_mode_journals_bit_identical(lifecycle_scenario):
    # Stronger than replay: the full event streams and checkpoint chains
    # recorded under each mode are equal element-for-element.
    legacy, _ = _record_in_mode(lifecycle_scenario, fastpath.MODE_LEGACY)
    fast, _ = _record_in_mode(lifecycle_scenario, fastpath.MODE_PYTHON)
    assert [e.as_list() for e in legacy.events] == \
        [e.as_list() for e in fast.events]
    assert [c.chain for c in legacy.checkpoints] == \
        [c.chain for c in fast.checkpoints]
