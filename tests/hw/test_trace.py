"""Tests for the execution-trace facility."""

import pytest

from repro.hw.cycles import CycleCounter
from repro.hw.trace import TraceBuffer
from repro.platform import TeePlatform

from tests.sdk.conftest import SMALL, demo_image


class TestTraceBuffer:
    def test_disabled_by_default(self):
        trace = TraceBuffer()
        trace.record("x", "y")
        assert len(trace) == 0

    def test_records_with_cycle_stamps(self):
        cycles = CycleCounter()
        trace = TraceBuffer()
        trace.attach(cycles)
        trace.enable()
        cycles.charge(100)
        trace.record("ev", "detail")
        (event,) = trace.events()
        assert event.cycle == 100
        assert event.kind == "ev"

    def test_bounded_capacity(self):
        trace = TraceBuffer(capacity=3)
        trace.enable()
        for i in range(10):
            trace.record("e", str(i))
        assert len(trace) == 3
        assert [e.detail for e in trace] == ["7", "8", "9"]

    def test_kind_filter(self):
        trace = TraceBuffer()
        trace.enable()
        trace.record("a", "1")
        trace.record("b", "2")
        trace.record("a", "3")
        assert [e.detail for e in trace.events("a")] == ["1", "3"]

    def test_dump_format(self):
        trace = TraceBuffer()
        trace.enable()
        trace.record("eenter", "enclave=1")
        assert "eenter" in trace.dump()
        assert "enclave=1" in trace.dump()

    def test_clear_and_disable(self):
        trace = TraceBuffer()
        trace.enable()
        trace.record("x")
        trace.clear()
        trace.disable()
        trace.record("y")
        assert len(trace) == 0

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            TraceBuffer(capacity=0)


class TestPlatformTracing:
    def test_ecall_produces_world_switch_events(self):
        platform = TeePlatform.hyperenclave(SMALL)
        handle = platform.load_enclave(demo_image())
        platform.machine.trace.enable()
        handle.proxies.add_numbers(a=1, b=2)
        kinds = [e.kind for e in platform.machine.trace]
        assert "eenter" in kinds
        assert "eexit" in kinds
        handle.destroy()

    def test_hypercalls_traced_with_caller(self):
        platform = TeePlatform.hyperenclave(SMALL)
        platform.machine.trace.enable()
        handle = platform.load_enclave(demo_image())
        hypercalls = platform.machine.trace.events("hypercall")
        callers = {e.detail for e in hypercalls}
        assert "ecreate" in callers
        assert "eadd" in callers
        assert "einit" in callers
        handle.destroy()

    def test_page_faults_traced(self):
        platform = TeePlatform.hyperenclave(SMALL)
        handle = platform.load_enclave(demo_image())
        platform.machine.trace.enable()
        va = handle.ctx.malloc(4096 * 2)
        handle.ctx.write(va, b"x" * 8192)
        faults = platform.machine.trace.events("pagefault")
        assert faults
        handle.destroy()

    def test_tracing_does_not_change_costs(self):
        """Observability must not perturb the measurement (Table 1)."""
        platform = TeePlatform.hyperenclave(SMALL)
        handle = platform.load_enclave(demo_image())
        handle.proxies.add_numbers(a=0, b=0)
        with platform.cycles.measure() as span:
            handle.proxies.add_numbers(a=0, b=0)
        without = span.elapsed
        platform.machine.trace.enable()
        with platform.cycles.measure() as span:
            handle.proxies.add_numbers(a=0, b=0)
        assert span.elapsed == without
        handle.destroy()
