"""Tests for the LLC model."""

import pytest

from repro.hw.cache import Llc


def test_miss_then_hit():
    llc = Llc(1024)
    assert not llc.access(1)
    assert llc.access(1)
    assert llc.misses == 1
    assert llc.hits == 1


def test_lru_eviction_order():
    llc = Llc(2 * 64)
    llc.access(1)
    llc.access(2)
    llc.access(1)        # 1 is now most recent
    llc.access(3)        # evicts 2
    assert llc.contains(1)
    assert not llc.contains(2)
    assert llc.contains(3)


def test_capacity_in_lines():
    llc = Llc(640, line_size=64)
    assert llc.capacity_lines == 10
    for line in range(10):
        llc.access(line)
    assert len(llc) == 10
    llc.access(100)
    assert len(llc) == 10


def test_write_marks_dirty_promotion():
    llc = Llc(1024)
    llc.access(5, write=False)
    llc.access(5, write=True)   # promote clean->dirty on hit
    assert llc.contains(5)


def test_flush_line():
    llc = Llc(1024)
    llc.access(7)
    llc.flush_line(7)
    assert not llc.contains(7)


def test_flush_range_covers_partial_lines():
    llc = Llc(4096)
    for line in range(10):
        llc.access(line)
    # Bytes 100..300 live in lines 1..4.
    llc.flush_range(100, 201)
    assert llc.contains(0)
    for line in range(1, 5):
        assert not llc.contains(line)
    assert llc.contains(5)


def test_flush_all():
    llc = Llc(1024)
    llc.access(1)
    llc.access(2)
    llc.flush_all()
    assert len(llc) == 0


def test_too_small_rejected():
    with pytest.raises(ValueError):
        Llc(32, line_size=64)
