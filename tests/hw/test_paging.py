"""Tests for 4-level page tables and the nested (2-D) walker."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NestedPageFault, PageFault
from repro.hw.paging import (LEVELS, NestedTranslator, PageTable,
                             PageTableFlags)
from repro.hw.phys import NORMAL, PAGE_SIZE, FramePool, PhysicalMemory

F = PageTableFlags


@pytest.fixture
def phys():
    return PhysicalMemory(4096 * PAGE_SIZE)


@pytest.fixture
def pool(phys):
    return FramePool(phys, 0, 2048 * PAGE_SIZE, NORMAL)


@pytest.fixture
def pt(phys, pool):
    return PageTable(phys, pool.alloc, pool.free)


def test_map_translate_roundtrip(pt):
    pt.map(0x40000000, 0x123000, F.URW)
    t = pt.translate(0x40000000 + 0x42)
    assert t.pa == 0x123042


def test_translate_unmapped_faults(pt):
    with pytest.raises(PageFault) as exc:
        pt.translate(0x1000)
    assert not exc.value.present


def test_write_to_readonly_faults(pt):
    pt.map(0x1000, 0x2000, F.UR)
    with pytest.raises(PageFault) as exc:
        pt.translate(0x1000, write=True)
    assert exc.value.present
    assert exc.value.write


def test_user_access_to_supervisor_page_faults(pt):
    pt.map(0x1000, 0x2000, F.RW)  # no USER bit
    with pytest.raises(PageFault):
        pt.translate(0x1000, user=True)
    # Supervisor access is fine.
    assert pt.translate(0x1000, user=False).pa == 0x2000


def test_nx_blocks_fetch(pt):
    pt.map(0x1000, 0x2000, F.UR)
    with pytest.raises(PageFault) as exc:
        pt.translate(0x1000, fetch=True)
    assert exc.value.fetch


def test_executable_page_fetches(pt):
    pt.map(0x1000, 0x2000, F.URX)
    assert pt.translate(0x1000, fetch=True).pa == 0x2000


def test_accessed_and_dirty_bits(pt):
    pt.map(0x1000, 0x2000, F.URW)
    pt.translate(0x1000)
    (_, _, flags), = [m for m in pt.mappings()]
    assert flags & F.ACCESSED
    assert not flags & F.DIRTY
    pt.translate(0x1000, write=True)
    (_, _, flags), = [m for m in pt.mappings()]
    assert flags & F.DIRTY


def test_unmap(pt):
    pt.map(0x1000, 0x2000, F.URW)
    old = pt.unmap(0x1000)
    assert old == 0x2000
    with pytest.raises(PageFault):
        pt.translate(0x1000)


def test_unmap_missing_faults(pt):
    with pytest.raises(PageFault):
        pt.unmap(0x9000)


def test_protect_changes_permissions(pt):
    pt.map(0x1000, 0x2000, F.URW)
    pt.protect(0x1000, F.UR)
    with pytest.raises(PageFault):
        pt.translate(0x1000, write=True)
    assert pt.translate(0x1000).pa == 0x2000


def test_protect_missing_faults(pt):
    with pytest.raises(PageFault):
        pt.protect(0x8000, F.UR)


def test_unaligned_map_rejected(pt):
    with pytest.raises(ValueError):
        pt.map(0x1001, 0x2000, F.URW)


def test_non_canonical_va_faults(pt):
    with pytest.raises(PageFault):
        pt.translate(1 << 48)


def test_walk_reference_count(pt):
    pt.map(0x1000, 0x2000, F.URW)
    assert pt.translate(0x1000).refs == LEVELS


def test_mappings_enumeration(pt):
    pt.map(0x1000, 0x2000, F.URW)
    pt.map(0x8000000000, 0x3000, F.UR)
    mapped = {va: pa for va, pa, _ in pt.mappings()}
    assert mapped == {0x1000: 0x2000, 0x8000000000: 0x3000}


def test_destroy_returns_frames(phys, pool):
    before = pool.free_pages
    pt = PageTable(phys, pool.alloc, pool.free)
    pt.map(0x1000, 0x2000, F.URW)
    pt.destroy()
    assert pool.free_pages == before


def test_is_mapped(pt):
    assert not pt.is_mapped(0x1000)
    pt.map(0x1000, 0x2000, F.URW)
    assert pt.is_mapped(0x1000)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(
    st.integers(min_value=0, max_value=(1 << 36) - 1),
    st.integers(min_value=0, max_value=1000),
), min_size=1, max_size=20, unique_by=lambda t: t[0]))
def test_property_mappings_independent(entries):
    """Mapping many pages never cross-contaminates translations."""
    phys = PhysicalMemory(8192 * PAGE_SIZE)
    pool = FramePool(phys, 0, 4096 * PAGE_SIZE, NORMAL)
    pt = PageTable(phys, pool.alloc, pool.free)
    table = {}
    for vpn, pfn in entries:
        va = vpn * PAGE_SIZE
        pa = (4096 + pfn) * PAGE_SIZE
        pt.map(va, pa, F.URW)
        table[va] = pa
    for va, pa in table.items():
        assert pt.translate(va).pa == pa


class TestNestedTranslator:
    @pytest.fixture
    def nested(self, phys, pool):
        # NPT: identity-map guest-physical 0..64 MB (as the monitor would).
        npt = PageTable(phys, pool.alloc, pool.free)
        for page in range(0, 2048):
            npt.map(page * PAGE_SIZE, page * PAGE_SIZE, F.URW)
        gpt = PageTable(phys, pool.alloc, pool.free)
        return NestedTranslator(gpt, npt), gpt, npt

    def test_two_dimensional_translation(self, nested):
        tr, gpt, npt = nested
        gpt.map(0x7000, 0x9000, F.URW)
        result = tr.translate(0x7123)
        assert result.pa == 0x9123

    def test_nested_walk_makes_many_refs(self, nested):
        tr, gpt, npt = nested
        gpt.map(0x7000, 0x9000, F.URW)
        # 4 GPT levels, each needing an NPT walk (4 refs) + the leaf NPT
        # walk: (4+1)*4 + 4 = 24 references.
        assert tr.translate(0x7000).refs == 24

    def test_guest_fault_propagates(self, nested):
        tr, gpt, npt = nested
        with pytest.raises(PageFault):
            tr.translate(0x7000)

    def test_npt_hole_raises_nested_fault(self, nested):
        tr, gpt, npt = nested
        gpt.map(0x7000, 0x9000, F.URW)
        npt.unmap(0x9000)
        with pytest.raises(NestedPageFault):
            tr.translate(0x7000)

    def test_guest_permissions_enforced(self, nested):
        tr, gpt, npt = nested
        gpt.map(0x7000, 0x9000, F.UR)
        with pytest.raises(PageFault):
            tr.translate(0x7000, write=True)
