"""Tests for machine assembly and the interrupt model."""

import pytest

from repro.hw.interrupts import Idt, InterruptModel
from repro.hw.machine import Machine, MachineConfig


def test_default_machine_builds():
    m = Machine()
    assert m.encryption.name == "amd-sme"
    assert m.phys.size == m.config.phys_size


def test_encryption_selection():
    m = Machine(MachineConfig(encryption="intel-mee"))
    assert m.encryption.name == "intel-mee"
    m = Machine(MachineConfig(encryption="none"))
    assert m.encryption.name == "none"


def test_unknown_engine_rejected():
    with pytest.raises(ValueError):
        MachineConfig(encryption="rot13")


def test_reserved_region_must_fit():
    with pytest.raises(ValueError):
        MachineConfig(phys_size=1 << 30, reserved_base=1 << 30,
                      reserved_size=1 << 20)


def test_reboot_resets_volatile_state():
    m = Machine()
    m.tpm.extend(0, b"\x11" * 32)
    m.tlb.insert(1, 0x1000, 0x2000, 0)
    m.reboot()
    assert m.tpm.read_pcr(0) == b"\x00" * 32
    assert len(m.tlb) == 0


def test_rdtsc_monotonic():
    m = Machine()
    t0 = m.cpu.rdtsc()
    m.cycles.charge(100)
    assert m.cpu.rdtsc() == t0 + 100


class TestInterruptModel:
    def test_arrivals_accumulate(self):
        model = InterruptModel(interval_cycles=1000)
        assert model.arrivals_during(500) == 0
        assert model.arrivals_during(600) == 1      # crossed 1000
        assert model.arrivals_during(2900) == 3     # 1100..4000

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            InterruptModel().arrivals_during(-1)

    def test_reset(self):
        model = InterruptModel(interval_cycles=1000)
        model.arrivals_during(999)
        model.reset()
        assert model.arrivals_during(999) == 0


class TestIdt:
    def test_set_and_get(self):
        idt = Idt()
        handler = lambda: "hit"
        idt.set_handler(14, handler)
        assert idt.handler_for(14) is handler
        assert idt.handler_for(6) is None

    def test_bad_vector_rejected(self):
        with pytest.raises(ValueError):
            Idt().set_handler(300, lambda: None)

    def test_clear(self):
        idt = Idt()
        idt.set_handler(6, lambda: None)
        idt.clear()
        assert idt.handler_for(6) is None
