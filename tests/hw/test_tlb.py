"""Tests for the TLB."""

import pytest

from repro.hw.paging import PageTableFlags as F
from repro.hw.tlb import Tlb


def test_miss_then_hit():
    tlb = Tlb(4)
    assert tlb.lookup(1, 0x1000) is None
    tlb.insert(1, 0x1000, 0x9000, F.URW)
    assert tlb.lookup(1, 0x1000) == (0x9000, F.URW)
    assert tlb.hits == 1
    assert tlb.misses == 1


def test_asid_separation():
    tlb = Tlb(4)
    tlb.insert(1, 0x1000, 0x9000, F.URW)
    assert tlb.lookup(2, 0x1000) is None


def test_same_page_different_offsets_hit():
    tlb = Tlb(4)
    tlb.insert(1, 0x1000, 0x9000, F.URW)
    assert tlb.lookup(1, 0x1FFF) == (0x9000, F.URW)


def test_lru_eviction():
    tlb = Tlb(2)
    tlb.insert(1, 0x1000, 0xA000, F.URW)
    tlb.insert(1, 0x2000, 0xB000, F.URW)
    tlb.lookup(1, 0x1000)            # make 0x1000 most recent
    tlb.insert(1, 0x3000, 0xC000, F.URW)
    assert tlb.lookup(1, 0x2000) is None   # evicted
    assert tlb.lookup(1, 0x1000) is not None


def test_flush_clears_everything():
    tlb = Tlb(4)
    tlb.insert(1, 0x1000, 0x9000, F.URW)
    tlb.flush()
    assert len(tlb) == 0
    assert tlb.flushes == 1


def test_flush_asid_is_selective():
    tlb = Tlb(4)
    tlb.insert(1, 0x1000, 0x9000, F.URW)
    tlb.insert(2, 0x1000, 0x8000, F.URW)
    tlb.flush_asid(1)
    assert tlb.lookup(1, 0x1000) is None
    assert tlb.lookup(2, 0x1000) is not None


def test_invlpg_single_page():
    tlb = Tlb(4)
    tlb.insert(1, 0x1000, 0x9000, F.URW)
    tlb.insert(1, 0x2000, 0xA000, F.URW)
    tlb.invlpg(1, 0x1000)
    assert tlb.lookup(1, 0x1000) is None
    assert tlb.lookup(1, 0x2000) is not None


def test_zero_capacity_rejected():
    with pytest.raises(ValueError):
        Tlb(0)
