"""Tests for the workload-facing memory subsystem and the EPC model."""

import pytest

from repro.hw import costs
from repro.hw.cycles import CycleCounter
from repro.hw.memenc import AmdSme, NoEncryption
from repro.hw.memmodel import EpcModel, MemorySubsystem
from repro.hw.phys import PAGE_SIZE


@pytest.fixture
def mem():
    return MemorySubsystem(CycleCounter(), NoEncryption())


def test_touch_charges_cycles(mem):
    charged = mem.touch(0x1000, 8)
    assert charged > 0
    assert mem.cycles.total == charged


def test_second_touch_is_cheaper(mem):
    cold = mem.touch(0x1000, 8)
    warm = mem.touch(0x1000, 8)
    assert warm < cold
    assert warm == costs.LLC_HIT_CYCLES


def test_touch_spanning_lines_charges_per_line(mem):
    # Warm both lines around the 0x2000 boundary (and their TLB pages).
    mem.touch(0x1FC0, 8)
    mem.touch(0x2000, 8)
    one_line = mem.touch(0x2000, 8)
    two_lines = mem.touch(0x1FFC, 8)  # straddles a line boundary
    assert two_lines == 2 * one_line


def test_tlb_miss_adds_walk_cost(mem):
    cold = mem.touch(0x100000, 8)
    mem.llc.flush_all()
    warm_tlb_cold_cache = mem.touch(0x100000, 8)
    assert cold - warm_tlb_cold_cache == costs.PAGE_WALK_GUEST_CYCLES


def test_nested_paging_walk_costs_more():
    flat = MemorySubsystem(CycleCounter(), NoEncryption())
    nested = MemorySubsystem(CycleCounter(), NoEncryption(),
                             nested_paging=True)
    assert nested.touch(0x1000, 8) - flat.touch(0x1000, 8) == (
        costs.PAGE_WALK_NESTED_CYCLES - costs.PAGE_WALK_GUEST_CYCLES)


def test_encryption_engine_adds_miss_cost():
    plain = MemorySubsystem(CycleCounter(), NoEncryption())
    enc = MemorySubsystem(CycleCounter(), AmdSme())
    assert (enc.touch(0x1000, 8) - plain.touch(0x1000, 8)
            == costs.SME_MISS_EXTRA_CYCLES)


def test_sequential_sweep_cheaper_than_random(mem):
    size = 1 << 16
    seq = mem.touch_sequential(0, size)
    mem.reset_state()
    rand = sum(mem.touch(offset, 8)
               for offset in range(0, size, costs.CACHE_LINE))
    assert seq < rand


def test_compute_charges_op_cycles(mem):
    mem.compute(1000)
    assert mem.cycles.by_category["compute"] == 1000 * costs.OP_CYCLES


def test_memcpy_scales_with_size(mem):
    small = mem.memcpy(64)
    large = mem.memcpy(64 * 100)
    assert large > small
    assert large - small == pytest.approx(99 * costs.MEMCPY_CYCLES_PER_LINE)


def test_clflush_forces_misses(mem):
    mem.touch(0x1000, 8)
    assert mem.touch(0x1000, 8) == costs.LLC_HIT_CYCLES
    mem.clflush(0x1000, 8)
    assert mem.touch(0x1000, 8) > costs.LLC_HIT_CYCLES


def test_touch_zero_size_free(mem):
    assert mem.touch(0x1000, 0) == 0


class TestEpcModel:
    def test_resident_page_is_free(self):
        epc = EpcModel(10 * PAGE_SIZE)
        assert epc.access(1) > 0     # first touch faults
        assert epc.access(1) == 0    # now resident

    def test_eviction_beyond_capacity(self):
        epc = EpcModel(2 * PAGE_SIZE)
        epc.access(1)
        epc.access(2)
        epc.access(3)                # evicts 1
        assert epc.access(2) == 0
        assert epc.access(1) > 0

    def test_thrashing_switches_to_batched_evictions(self):
        epc = EpcModel(2 * PAGE_SIZE)
        # Cycle through many pages: fault rate ~1 → batched path applies.
        for i in range(100):
            cost = epc.access(i)
        assert cost == costs.SGX_EPC_FAULT_BATCHED_CYCLES

    def test_fault_counter_counts_evictions_only(self):
        epc = EpcModel(2 * PAGE_SIZE)
        epc.access(1)
        epc.access(2)
        assert epc.faults == 0       # populated within capacity
        epc.access(3)
        epc.access(4)
        assert epc.faults == 2       # evictions beyond capacity

    def test_first_touch_is_cheap_populate(self):
        epc = EpcModel(10 * PAGE_SIZE)
        assert epc.access(1) == costs.SGX_EPC_POPULATE_CYCLES
        assert epc.faults == 0      # populating is not a swap fault

    def test_memory_subsystem_integration(self):
        mem = MemorySubsystem(CycleCounter(), NoEncryption(),
                              epc=EpcModel(4 * PAGE_SIZE))
        cost_populate = mem.touch(0, 8)
        cost_resident = mem.touch(8, 8)
        assert cost_populate - cost_resident \
            >= costs.SGX_EPC_POPULATE_CYCLES
        # Exceed capacity: evictions now cost real swap faults.
        for page in range(1, 6):
            mem.touch(page * PAGE_SIZE, 8)
        cost_fault = mem.touch(0, 8)
        assert cost_fault >= costs.SGX_EPC_FAULT_CYCLES
