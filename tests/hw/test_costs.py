"""The calibration file must reproduce the paper's published numbers."""

from repro.hw import costs


def test_validate_passes():
    costs.validate()


def test_hypercall_and_syscall_constants():
    """Sec 4.2: hypercalls ~880 cycles, syscalls ~120 cycles."""
    assert costs.HYPERCALL_ROUNDTRIP == 880
    assert costs.SYSCALL_ROUNDTRIP == 120


def test_table1_eenter_eexit_targets():
    assert costs.GU_SWITCH.eenter_total == 1704
    assert costs.GU_SWITCH.eexit_total == 1319
    assert costs.HU_SWITCH.eenter_total == 1163
    assert costs.HU_SWITCH.eexit_total == 1144
    assert costs.P_SWITCH.eenter_total == 1649
    assert costs.P_SWITCH.eexit_total == 1401


def test_table1_edge_call_targets():
    assert costs.ecall_expected("hu") == 8440
    assert costs.ecall_expected("gu") == 9480
    assert costs.ecall_expected("p") == 9700
    assert costs.ecall_expected("sgx") == 14432
    assert costs.ocall_expected("hu") == 4120
    assert costs.ocall_expected("gu") == 4920
    assert costs.ocall_expected("p") == 5260
    assert costs.ocall_expected("sgx") == 12432


def test_table2_exception_targets():
    assert costs.ud_exception_expected("p") == 258
    assert costs.ud_exception_expected("gu") == 17490
    assert costs.ud_exception_expected("sgx") == 28561
    assert costs.pf_gc_expected("gu") == 2660
    assert costs.pf_gc_expected("p") == 1132


def test_mode_ordering_claims():
    """HU has optimal edge calls; P is slower than GU (Sec 7.1)."""
    assert costs.ecall_expected("hu") < costs.ecall_expected("gu") \
        < costs.ecall_expected("p") < costs.ecall_expected("sgx")
    # P-Enclave exception handling is ~68x faster than GU, ~110x than SGX.
    assert 60 < costs.ud_exception_expected("gu") / costs.ud_exception_expected("p") < 75
    assert 100 < costs.ud_exception_expected("sgx") / costs.ud_exception_expected("p") < 120
    # GC page faults: P ~2.3x faster than GU.
    ratio = costs.pf_gc_expected("gu") / costs.pf_gc_expected("p")
    assert 2.2 < ratio < 2.5


def test_epc_sizes():
    assert costs.SGX_EPC_SIZE == 93 * 1024 * 1024
    assert costs.HYPERENCLAVE_EPC_SIZE == 24 * 1024 * 1024 * 1024
