"""Tests for the TPM model: PCRs, quote, seal/unseal."""

import pytest

from repro.crypto.hashes import sha256
from repro.errors import SealError, TpmError
from repro.hw.tpm import NUM_PCRS, Tpm


@pytest.fixture
def tpm():
    return Tpm(seed=b"test-tpm")


def test_pcrs_start_zero(tpm):
    assert tpm.read_pcr(0) == b"\x00" * 32


def test_extend_is_hash_chain(tpm):
    d = sha256(b"component")
    tpm.extend(0, d)
    assert tpm.read_pcr(0) == sha256(b"\x00" * 32, d)


def test_extend_order_matters(tpm):
    other = Tpm(seed=b"test-tpm")
    tpm.extend(0, sha256(b"a"))
    tpm.extend(0, sha256(b"b"))
    other.extend(0, sha256(b"b"))
    other.extend(0, sha256(b"a"))
    assert tpm.read_pcr(0) != other.read_pcr(0)


def test_extend_cannot_be_undone(tpm):
    tpm.extend(0, sha256(b"x"))
    value = tpm.read_pcr(0)
    tpm.extend(0, sha256(b"y"))
    assert tpm.read_pcr(0) != value      # no way back but reboot


def test_reboot_resets_pcrs(tpm):
    tpm.extend(0, sha256(b"x"))
    tpm.reboot()
    assert tpm.read_pcr(0) == b"\x00" * 32


def test_bad_pcr_index_rejected(tpm):
    with pytest.raises(TpmError):
        tpm.read_pcr(NUM_PCRS)
    with pytest.raises(TpmError):
        tpm.extend(-1, sha256(b"x"))


def test_bad_digest_length_rejected(tpm):
    with pytest.raises(TpmError):
        tpm.extend(0, b"short")


class TestQuote:
    def test_quote_verifies_against_ek(self, tpm):
        tpm.extend(0, sha256(b"bios"))
        quote = tpm.quote(b"nonce", (0, 1))
        assert quote.verify(tpm.ek_public)

    def test_quote_reports_pcr_values(self, tpm):
        tpm.extend(2, sha256(b"kernel"))
        quote = tpm.quote(b"n", (2,))
        assert quote.pcr_values == (tpm.read_pcr(2),)

    def test_quote_from_other_tpm_fails_chain(self, tpm):
        other = Tpm(seed=b"other-tpm")
        quote = other.quote(b"n", (0,))
        assert not quote.verify(tpm.ek_public)

    def test_tampered_quote_fails(self, tpm):
        quote = tpm.quote(b"n", (0,))
        import dataclasses
        forged = dataclasses.replace(quote, nonce=b"m")
        assert not forged.verify(tpm.ek_public)

    def test_quote_bad_pcr_rejected(self, tpm):
        with pytest.raises(TpmError):
            tpm.quote(b"n", (99,))


class TestSeal:
    def test_roundtrip(self, tpm):
        tpm.extend(0, sha256(b"boot"))
        blob = tpm.seal(b"root key", (0,))
        assert tpm.unseal(blob) == b"root key"

    def test_pcr_change_blocks_unseal(self, tpm):
        tpm.extend(0, sha256(b"boot"))
        blob = tpm.seal(b"root key", (0,))
        tpm.extend(0, sha256(b"malware"))
        with pytest.raises(SealError):
            tpm.unseal(blob)

    def test_reboot_with_same_measurements_unseals(self, tpm):
        tpm.extend(0, sha256(b"boot"))
        blob = tpm.seal(b"root key", (0,))
        tpm.reboot()
        tpm.extend(0, sha256(b"boot"))
        assert tpm.unseal(blob) == b"root key"

    def test_different_tpm_cannot_unseal(self, tpm):
        blob = tpm.seal(b"secret", ())
        other = Tpm(seed=b"other-tpm")
        with pytest.raises(SealError):
            other.unseal(blob)

    def test_unselected_pcrs_dont_matter(self, tpm):
        blob = tpm.seal(b"secret", (0,))
        tpm.extend(5, sha256(b"whatever"))
        assert tpm.unseal(blob) == b"secret"

    def test_corrupt_blob_rejected(self, tpm):
        blob = bytearray(tpm.seal(b"secret", (0,)))
        blob[-1] ^= 1
        with pytest.raises(SealError):
            tpm.unseal(bytes(blob))

    def test_truncated_blob_rejected(self, tpm):
        with pytest.raises(SealError):
            tpm.unseal(b"\x01")


def test_random_is_deterministic_per_seed():
    assert Tpm(seed=b"s").random(16) == Tpm(seed=b"s").random(16)
    assert Tpm(seed=b"s").random(16) != Tpm(seed=b"t").random(16)


def test_ek_is_stable_per_seed():
    assert Tpm(seed=b"s").ek_public == Tpm(seed=b"s").ek_public
