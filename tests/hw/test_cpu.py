"""Tests for the CPU model."""

import pytest

from repro.errors import HardwareError
from repro.hw.cpu import Cpu, CpuMode, VcpuState


def test_asid_allocation_unique():
    cpu = Cpu()
    assert cpu.allocate_asid() != cpu.allocate_asid()


def test_charge_steps_totals():
    cpu = Cpu()
    total = cpu.charge_steps([("a", 10), ("b", 32)], "test")
    assert total == 42
    assert cpu.cycles.total == 42
    assert cpu.cycles.by_category["test"] == 42


def test_require_mode_guard():
    cpu = Cpu()
    cpu.mode = CpuMode.GUEST_USER
    cpu.require_mode(CpuMode.GUEST_USER, CpuMode.GUEST_KERNEL)
    with pytest.raises(HardwareError):
        cpu.require_mode(CpuMode.MONITOR)


def test_load_context_switches_mode():
    cpu = Cpu()
    state = VcpuState(name="enclave-1", mode=CpuMode.GUEST_USER, asid=5)
    cpu.load_context(state)
    assert cpu.mode is CpuMode.GUEST_USER
    assert cpu.current is state


def test_vcpu_snapshot_is_a_copy():
    state = VcpuState(name="x", mode=CpuMode.GUEST_USER,
                      regs={"rip": 0x1000})
    snap = state.snapshot()
    state.regs["rip"] = 0x2000
    assert snap["rip"] == 0x1000


def test_rdtsc_reads_cycles():
    cpu = Cpu()
    cpu.cycles.charge(7)
    assert cpu.rdtsc() == 7
