"""Tests for IOMMU DMA protection (security requirement R-3)."""

import pytest

from repro.errors import SecurityViolation
from repro.hw.iommu import Iommu
from repro.hw.phys import MONITOR, NORMAL, PAGE_SIZE, PhysicalMemory, \
    enclave_owner


@pytest.fixture
def setup():
    phys = PhysicalMemory(64 * PAGE_SIZE)
    phys.set_owner(0 * PAGE_SIZE, NORMAL, npages=16)
    phys.set_owner(16 * PAGE_SIZE, MONITOR, npages=16)
    phys.set_owner(32 * PAGE_SIZE, enclave_owner(1), npages=16)
    iommu = Iommu(phys)
    return phys, iommu


def test_disabled_iommu_allows_everything(setup):
    phys, iommu = setup
    iommu.dma_write("nic", 16 * PAGE_SIZE, b"attack")   # monitor memory!
    assert phys.read(16 * PAGE_SIZE, 6) == b"attack"


def test_enabled_iommu_blocks_monitor_memory(setup):
    phys, iommu = setup
    iommu.enable()
    iommu.allow("nic", 0, 16 * PAGE_SIZE)
    with pytest.raises(SecurityViolation):
        iommu.dma_write("nic", 16 * PAGE_SIZE, b"attack")


def test_enabled_iommu_blocks_enclave_memory(setup):
    phys, iommu = setup
    iommu.enable()
    iommu.allow("nic", 0, 16 * PAGE_SIZE)
    with pytest.raises(SecurityViolation):
        iommu.dma_read("nic", 32 * PAGE_SIZE, 8)


def test_windows_into_protected_memory_not_grantable(setup):
    phys, iommu = setup
    iommu.enable()
    # Even an explicit window cannot whitelist enclave frames.
    iommu.allow("nic", 32 * PAGE_SIZE, PAGE_SIZE)
    with pytest.raises(SecurityViolation):
        iommu.dma_read("nic", 32 * PAGE_SIZE, 8)


def test_allowed_normal_window_works(setup):
    phys, iommu = setup
    iommu.enable()
    iommu.allow("nic", 0, 16 * PAGE_SIZE)
    iommu.dma_write("nic", 0x100, b"packet")
    assert iommu.dma_read("nic", 0x100, 6) == b"packet"


def test_unknown_device_blocked(setup):
    phys, iommu = setup
    iommu.enable()
    with pytest.raises(SecurityViolation):
        iommu.dma_read("rogue", 0x100, 4)


def test_outside_window_blocked(setup):
    phys, iommu = setup
    iommu.enable()
    iommu.allow("nic", 0, PAGE_SIZE)
    with pytest.raises(SecurityViolation):
        iommu.dma_read("nic", 2 * PAGE_SIZE, 4)


def test_revoke_all(setup):
    phys, iommu = setup
    iommu.enable()
    iommu.allow("nic", 0, PAGE_SIZE)
    iommu.revoke_all("nic")
    with pytest.raises(SecurityViolation):
        iommu.dma_read("nic", 0x100, 4)
