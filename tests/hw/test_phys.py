"""Tests for physical memory and frame pools."""

import pytest

from repro.errors import PhysicalMemoryError
from repro.hw.phys import (FREE, MONITOR, NORMAL, PAGE_SIZE, FramePool, Owner,
                           OwnerKind, PhysicalMemory, enclave_owner)


@pytest.fixture
def phys():
    return PhysicalMemory(1024 * PAGE_SIZE)


def test_read_write_roundtrip(phys):
    phys.write(0x1234, b"hello")
    assert phys.read(0x1234, 5) == b"hello"


def test_unwritten_memory_reads_zero(phys):
    assert phys.read(0x5000, 16) == b"\x00" * 16


def test_cross_page_write(phys):
    data = bytes(range(100))
    phys.write(PAGE_SIZE - 50, data)
    assert phys.read(PAGE_SIZE - 50, 100) == data


def test_out_of_range_read_rejected(phys):
    with pytest.raises(PhysicalMemoryError):
        phys.read(phys.size - 4, 8)


def test_negative_length_rejected(phys):
    with pytest.raises(PhysicalMemoryError):
        phys.read(0, -1)


def test_u64_helpers(phys):
    phys.write_u64(0x100, 0xDEADBEEF12345678)
    assert phys.read_u64(0x100) == 0xDEADBEEF12345678


def test_owner_defaults_to_free(phys):
    assert phys.owner_of(0x2000) == FREE


def test_set_owner_and_query(phys):
    phys.set_owner(0x3000, MONITOR, npages=2)
    assert phys.owner_of(0x3000) == MONITOR
    assert phys.owner_of(0x4000 + 10) == MONITOR
    assert phys.owner_of(0x5000) == FREE


def test_enclave_owner_tag():
    owner = enclave_owner(7)
    assert owner.kind is OwnerKind.ENCLAVE
    assert owner.enclave_id == 7


def test_enclave_owner_requires_id():
    with pytest.raises(ValueError):
        Owner(OwnerKind.ENCLAVE)
    with pytest.raises(ValueError):
        Owner(OwnerKind.NORMAL, enclave_id=3)


def test_unaligned_set_owner_rejected(phys):
    with pytest.raises(PhysicalMemoryError):
        phys.set_owner(0x3001, MONITOR)


def test_zero_frame_scrubs(phys):
    phys.write(0x6000, b"secret")
    phys.zero_frame(0x6000)
    assert phys.read(0x6000, 6) == b"\x00" * 6


def test_bad_size_rejected():
    with pytest.raises(ValueError):
        PhysicalMemory(100)


class TestFramePool:
    def test_alloc_tags_and_scrubs(self, phys):
        pool = FramePool(phys, 0, 16 * PAGE_SIZE, MONITOR)
        pa = pool.alloc()
        assert phys.owner_of(pa) == MONITOR
        assert phys.read(pa, 8) == b"\x00" * 8

    def test_alloc_returns_distinct_frames(self, phys):
        pool = FramePool(phys, 0, 16 * PAGE_SIZE, NORMAL)
        frames = {pool.alloc() for _ in range(16)}
        assert len(frames) == 16

    def test_exhaustion(self, phys):
        pool = FramePool(phys, 0, 2 * PAGE_SIZE, NORMAL)
        pool.alloc()
        pool.alloc()
        with pytest.raises(PhysicalMemoryError):
            pool.alloc()

    def test_free_recycles(self, phys):
        pool = FramePool(phys, 0, PAGE_SIZE, NORMAL)
        pa = pool.alloc()
        phys.write(pa, b"secret")
        pool.free(pa)
        assert phys.owner_of(pa) == FREE
        pa2 = pool.alloc()
        assert pa2 == pa
        assert phys.read(pa2, 6) == b"\x00" * 6

    def test_free_foreign_frame_rejected(self, phys):
        pool = FramePool(phys, 0, PAGE_SIZE, NORMAL)
        with pytest.raises(PhysicalMemoryError):
            pool.free(42 * PAGE_SIZE)

    def test_contains(self, phys):
        pool = FramePool(phys, PAGE_SIZE, 2 * PAGE_SIZE, NORMAL)
        assert pool.contains(PAGE_SIZE)
        assert not pool.contains(0)
        assert not pool.contains(3 * PAGE_SIZE)

    def test_free_pages_counter(self, phys):
        pool = FramePool(phys, 0, 4 * PAGE_SIZE, NORMAL)
        assert pool.free_pages == 4
        pa = pool.alloc()
        assert pool.free_pages == 3
        pool.free(pa)
        assert pool.free_pages == 4
