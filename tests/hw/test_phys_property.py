"""Property test: physical memory behaves like one flat bytearray."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.phys import PAGE_SIZE, PhysicalMemory

SIZE = 16 * PAGE_SIZE


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, SIZE - 1),
                          st.binary(min_size=1, max_size=3 * PAGE_SIZE)),
                max_size=20))
def test_matches_flat_bytearray(writes):
    phys = PhysicalMemory(SIZE)
    reference = bytearray(SIZE)
    for addr, data in writes:
        data = data[: SIZE - addr]
        if not data:
            continue
        phys.write(addr, data)
        reference[addr:addr + len(data)] = data
    # Full-range readback, plus a few straddling windows.
    assert phys.read(0, SIZE) == bytes(reference)
    for addr, data in writes[:5]:
        window = min(len(data) + 100, SIZE - addr)
        assert phys.read(addr, window) == bytes(
            reference[addr:addr + window])


@settings(max_examples=40, deadline=None)
@given(st.integers(0, SIZE - 8), st.integers(0, 2 ** 64 - 1))
def test_u64_roundtrip_anywhere(addr, value):
    phys = PhysicalMemory(SIZE)
    phys.write_u64(addr, value)
    assert phys.read_u64(addr) == value
