"""Tests for the memory-encryption engines."""

from repro.hw import costs
from repro.hw.memenc import AmdSme, IntelMee, NoEncryption


def test_no_encryption_is_free():
    assert NoEncryption().miss_cycles(123) == 0


def test_sme_flat_cost():
    sme = AmdSme()
    assert sme.miss_cycles(0) == costs.SME_MISS_EXTRA_CYCLES
    assert sme.miss_cycles(10**9) == costs.SME_MISS_EXTRA_CYCLES


def test_mee_cold_costs_more_than_warm():
    mee = IntelMee()
    cold = mee.miss_cycles(0)
    warm = mee.miss_cycles(1)   # same counter-tree node as line 0
    assert cold > warm
    assert warm >= costs.MEE_MISS_EXTRA_CYCLES


def test_mee_metadata_locality():
    """Lines within one counter-node share metadata; far lines don't."""
    mee = IntelMee()
    mee.miss_cycles(0)
    hits_before = mee.metadata_hits
    mee.miss_cycles(1)            # same 64-line group
    assert mee.metadata_hits == hits_before + 1
    misses_before = mee.metadata_misses
    mee.miss_cycles(1 << 20)      # far away: new node
    assert mee.metadata_misses > misses_before


def test_mee_random_pattern_beats_cache():
    """Uniform random lines over a huge footprint keep missing metadata."""
    mee = IntelMee(cache_lines=64)
    stride = 1 << costs.MEE_TREE_ARITY_SHIFT
    for i in range(1000):
        mee.miss_cycles(i * stride * 7919)  # distinct counter nodes
    assert mee.metadata_misses > mee.metadata_hits


def test_mee_reset_clears_metadata():
    mee = IntelMee()
    mee.miss_cycles(0)
    mee.reset()
    misses = mee.metadata_misses
    mee.miss_cycles(0)
    # A post-reset access is cold again: every tree level misses.
    assert mee.metadata_misses == misses + mee.levels


def test_mee_costs_exceed_sme_when_cold():
    """MEE pays integrity metadata that SME doesn't (paper Sec 7)."""
    assert IntelMee().miss_cycles(0) > AmdSme().miss_cycles(0)
