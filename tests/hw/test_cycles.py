"""Tests for cycle accounting."""

import pytest

from repro.hw.cycles import CycleCounter


def test_charge_accumulates():
    c = CycleCounter()
    c.charge(100, "a")
    c.charge(50, "b")
    assert c.total == 150
    assert c.by_category["a"] == 100
    assert c.by_category["b"] == 50


def test_negative_charge_rejected():
    c = CycleCounter()
    with pytest.raises(ValueError):
        c.charge(-1)


def test_measure_span():
    c = CycleCounter()
    c.charge(10)
    with c.measure() as span:
        c.charge(42, "inner")
    assert span.elapsed == 42
    assert span.categories == {"inner": 42}


def test_measure_span_nested():
    c = CycleCounter()
    with c.measure() as outer:
        c.charge(5, "x")
        with c.measure() as inner:
            c.charge(7, "y")
    assert inner.elapsed == 7
    assert outer.elapsed == 12


def test_breakdown_is_copy():
    c = CycleCounter()
    c.charge(1, "a")
    snapshot = c.breakdown()
    c.charge(1, "a")
    assert snapshot["a"] == 1


def test_span_stop_without_start_raises():
    from repro.hw.cycles import CycleSpan
    span = CycleSpan(CycleCounter())
    with pytest.raises(RuntimeError):
        span.stop()
