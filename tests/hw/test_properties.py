"""Property-based tests for the core hardware structures."""

from collections import OrderedDict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.cache import Llc
from repro.hw.tlb import Tlb


class TestLlcAgainstReferenceModel:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 50), st.booleans()),
                    max_size=200),
           st.integers(min_value=1, max_value=16))
    def test_matches_naive_lru(self, accesses, capacity_lines):
        """The LLC must behave exactly like a textbook LRU."""
        llc = Llc(capacity_lines * 64)
        reference: OrderedDict[int, bool] = OrderedDict()
        for line, write in accesses:
            expect_hit = line in reference
            if expect_hit:
                reference.move_to_end(line)
                if write:
                    reference[line] = True
            else:
                reference[line] = write
                if len(reference) > capacity_lines:
                    reference.popitem(last=False)
            hit, _ = llc.access_ex(line, write=write)
            assert hit == expect_hit
        assert set(reference) == {
            line for line in range(51) if llc.contains(line)}

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=300),
           st.integers(min_value=1, max_value=64))
    def test_occupancy_never_exceeds_capacity(self, lines, capacity):
        llc = Llc(capacity * 64)
        for line in lines:
            llc.access(line)
        assert len(llc) <= capacity
        assert llc.hits + llc.misses == len(lines)


class TestTlbProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.integers(1, 3), st.integers(0, 30)),
                    max_size=150),
           st.integers(min_value=1, max_value=8))
    def test_lookup_only_returns_inserted_mappings(self, ops, capacity):
        """Whatever the access pattern, a hit must return exactly what was
        last inserted for that (asid, page)."""
        tlb = Tlb(capacity)
        truth: dict[tuple[int, int], int] = {}
        for asid, vpn in ops:
            va = vpn * 4096
            hit = tlb.lookup(asid, va)
            if hit is not None:
                assert hit[0] == truth[(asid, vpn)]
            pa = (asid << 40) | (vpn << 12)
            tlb.insert(asid, va, pa, 0)
            truth[(asid, vpn)] = pa
        assert len(tlb) <= capacity

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(1, 4), st.integers(0, 20)),
                    min_size=1, max_size=60))
    def test_flush_asid_is_complete_and_minimal(self, entries):
        tlb = Tlb(1024)
        for asid, vpn in entries:
            tlb.insert(asid, vpn * 4096, vpn * 4096, 0)
        tlb.flush_asid(2)
        for asid, vpn in entries:
            hit = tlb.lookup(asid, vpn * 4096)
            if asid == 2:
                assert hit is None
            else:
                assert hit is not None


class TestMeasurementProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 63),
                              st.binary(max_size=64)),
                    min_size=1, max_size=10,
                    unique_by=lambda t: t[0]))
    def test_any_page_change_changes_mrenclave(self, pages):
        """Flipping one byte of any measured page changes MRENCLAVE."""
        from repro.monitor.measurement import MeasurementLog
        from repro.monitor.structs import PagePerm, PageType

        def measure(page_list):
            log = MeasurementLog()
            log.ecreate(0, 64 * 4096, "gu")
            for offset, content in page_list:
                log.eadd(offset * 4096, PageType.REG, PagePerm.RW, content)
            return log.finalize()

        baseline = measure(pages)
        for i in range(len(pages)):
            offset, content = pages[i]
            mutated = pages.copy()
            mutated[i] = (offset, content + b"\x01")
            assert measure(mutated) != baseline
