"""Smoke tests: every example must run end-to-end and say "done" (or
reach its final assertion).  Examples are deliverables; they must not
rot."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted((pathlib.Path(__file__).parents[1] / "examples")
                  .glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True,
        timeout=300)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate their output"


def test_examples_exist():
    """The repo promises at least a quickstart plus domain scenarios."""
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3
