"""Tests for world switches: costs, TLB behaviour, AEX/ERESUME, EEXIT check."""

import pytest

from repro.errors import EnclaveError, SecurityViolation
from repro.hw import costs
from repro.hw.cpu import CpuMode
from repro.monitor.structs import EnclaveMode

from .conftest import build_minimal_enclave

AEP = 0x400000


def enter(monitor, machine, mode):
    eid, enclave = build_minimal_enclave(monitor, machine, mode=mode,
                                         with_msbuf=False)
    tcs = enclave.acquire_tcs()
    return enclave, tcs


@pytest.mark.parametrize("mode,expected_enter,expected_exit", [
    (EnclaveMode.GU, 1704, 1319),
    (EnclaveMode.HU, 1163, 1144),
    (EnclaveMode.P, 1649, 1401),
])
def test_switch_costs_match_table1(platform, mode, expected_enter,
                                   expected_exit):
    machine, boot = platform
    enclave, tcs = enter(boot.monitor, machine, mode)
    world = boot.monitor.world
    with machine.cycles.measure() as span:
        world.eenter(enclave, tcs, AEP)
    assert span.elapsed == expected_enter
    with machine.cycles.measure() as span:
        world.eexit(enclave, AEP)
    assert span.elapsed == expected_exit


def test_cpu_mode_transitions(platform):
    machine, boot = platform
    world = boot.monitor.world
    for mode, cpu_mode in [(EnclaveMode.GU, CpuMode.GUEST_USER),
                           (EnclaveMode.HU, CpuMode.HOST_USER),
                           (EnclaveMode.P, CpuMode.GUEST_KERNEL)]:
        enclave, tcs = enter(boot.monitor, machine, mode)
        world.eenter(enclave, tcs, AEP)
        assert machine.cpu.mode is cpu_mode
        world.eexit(enclave, AEP)
        assert machine.cpu.mode is CpuMode.GUEST_USER


def test_gu_switch_flushes_whole_tlb(platform):
    machine, boot = platform
    enclave, tcs = enter(boot.monitor, machine, EnclaveMode.GU)
    machine.tlb.insert(99, 0x1000, 0x2000, 0)
    boot.monitor.world.eenter(enclave, tcs, AEP)
    assert len(machine.tlb) == 0


def test_hu_switch_keeps_tagged_tlb_entries(platform):
    """HU isolation comes from ASID tags: nothing is flushed, so the
    enclave's working set stays warm across switches (part of why HU has
    the optimal world-switch performance, Sec 4.2)."""
    machine, boot = platform
    enclave, tcs = enter(boot.monitor, machine, EnclaveMode.HU)
    machine.tlb.insert(99, 0x1000, 0x2000, 0)
    machine.tlb.insert(enclave.enclave_id, 0x3000, 0x4000, 0)
    boot.monitor.world.eenter(enclave, tcs, AEP)
    assert machine.tlb.lookup(99, 0x1000) is not None
    assert machine.tlb.lookup(enclave.enclave_id, 0x3000) is not None


def test_eexit_to_arbitrary_address_blocked(platform):
    """The enclave-malware EEXIT jump (Sec 6) must be rejected."""
    machine, boot = platform
    enclave, tcs = enter(boot.monitor, machine, EnclaveMode.GU)
    boot.monitor.world.eenter(enclave, tcs, AEP)
    with pytest.raises(SecurityViolation):
        boot.monitor.world.eexit(enclave, 0xDEADBEEF)


def test_eexit_without_eenter_rejected(platform):
    machine, boot = platform
    enclave, tcs = enter(boot.monitor, machine, EnclaveMode.GU)
    with pytest.raises(EnclaveError):
        boot.monitor.world.eexit(enclave, AEP)


def test_foreign_tcs_rejected(platform):
    machine, boot = platform
    enclave_a, tcs_a = enter(boot.monitor, machine, EnclaveMode.GU)
    enclave_b, tcs_b = enter(boot.monitor, machine, EnclaveMode.GU)
    with pytest.raises(EnclaveError):
        boot.monitor.world.eenter(enclave_a, tcs_b, AEP)


class TestAex:
    def test_aex_saves_ssa_and_hands_to_os(self, platform):
        machine, boot = platform
        world = boot.monitor.world
        enclave, tcs = enter(boot.monitor, machine, EnclaveMode.GU)
        world.eenter(enclave, tcs, AEP)
        world.aex(enclave, tcs, vector=6)
        assert machine.cpu.mode is CpuMode.GUEST_KERNEL
        assert tcs.current_ssa == 1
        assert tcs.ssa[0].valid
        assert tcs.ssa[0].exception_vector == 6

    def test_eresume_restores(self, platform):
        machine, boot = platform
        world = boot.monitor.world
        enclave, tcs = enter(boot.monitor, machine, EnclaveMode.GU)
        world.eenter(enclave, tcs, AEP)
        world.aex(enclave, tcs, vector=6)
        world.eresume(enclave, tcs)
        assert machine.cpu.mode is CpuMode.GUEST_USER
        assert tcs.current_ssa == 0
        assert not tcs.ssa[0].valid

    def test_eresume_without_aex_rejected(self, platform):
        machine, boot = platform
        enclave, tcs = enter(boot.monitor, machine, EnclaveMode.GU)
        with pytest.raises(EnclaveError):
            boot.monitor.world.eresume(enclave, tcs)

    def test_nested_aex_exhausts_ssa(self, platform):
        machine, boot = platform
        world = boot.monitor.world
        enclave, tcs = enter(boot.monitor, machine, EnclaveMode.GU)
        world.eenter(enclave, tcs, AEP)
        world.aex(enclave, tcs, vector=6)   # SSA frame 0
        world.aex(enclave, tcs, vector=14)  # SSA frame 1 (config has 2)
        with pytest.raises(EnclaveError):
            world.aex(enclave, tcs, vector=6)

    def test_aex_cost_itemization(self, platform):
        machine, boot = platform
        world = boot.monitor.world
        enclave, tcs = enter(boot.monitor, machine, EnclaveMode.GU)
        world.eenter(enclave, tcs, AEP)
        with machine.cycles.measure() as span:
            world.aex(enclave, tcs, vector=6)
        assert span.elapsed == sum(c for _, c in costs.AEX_STEPS["gu"])


def test_tcs_acquire_release(platform):
    machine, boot = platform
    eid, enclave = build_minimal_enclave(boot.monitor, machine,
                                         with_msbuf=False)
    tcs = enclave.acquire_tcs()
    assert tcs.busy
    # Only one TCS was added by the helper.
    with pytest.raises(EnclaveError):
        enclave.acquire_tcs()
    enclave.release_tcs(tcs)
    assert enclave.acquire_tcs() is tcs
