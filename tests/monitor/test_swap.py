"""Tests for enclave page swapping (EWB/ELDU analog, Sec 3.2)."""

import pytest

from repro.errors import (MonitorError, PhysicalMemoryError,
                          SecurityViolation)
from repro.hw.phys import PAGE_SIZE, OwnerKind
from repro.monitor.enclave import ENCLAVE_BASE_VA

from .conftest import build_minimal_enclave

HEAP_VA = ENCLAVE_BASE_VA + 16 * PAGE_SIZE


@pytest.fixture
def grown(platform):
    """An enclave with 4 committed heap pages holding known content."""
    machine, boot = platform
    monitor = boot.monitor
    eid, enclave = build_minimal_enclave(monitor, machine)
    for i in range(4):
        monitor.handle_enclave_page_fault(eid, HEAP_VA + i * PAGE_SIZE,
                                          write=True)
        pa = enclave.translate(HEAP_VA + i * PAGE_SIZE, write=True)
        machine.phys.write(pa, b"PAGE%d" % i + b"\xAA" * 100)
    return machine, monitor, eid, enclave


class TestSwapRoundtrip:
    def test_swap_out_frees_frame(self, grown):
        machine, monitor, eid, enclave = grown
        pa = enclave.translate(HEAP_VA)
        free_before = monitor.epc_pool.free_pages
        assert monitor.swap_out(eid, HEAP_VA) == 1
        assert monitor.epc_pool.free_pages == free_before + 1
        assert enclave.page_at(HEAP_VA) is None
        # The frame was scrubbed before release.
        assert machine.phys.read(pa, 5) == b"\x00" * 5
        assert machine.phys.owner_of(pa).kind is OwnerKind.FREE

    def test_fault_swaps_back_with_content(self, grown):
        machine, monitor, eid, enclave = grown
        monitor.swap_out(eid, HEAP_VA)
        monitor.handle_enclave_page_fault(eid, HEAP_VA, write=True)
        pa = enclave.translate(HEAP_VA)
        assert machine.phys.read(pa, 5) == b"PAGE0"

    def test_transparent_via_context_access(self, platform):
        """An enclave read just works across a swap-out."""
        machine, boot = platform
        monitor = boot.monitor
        from tests.sdk.conftest import demo_image
        from repro.platform import TeePlatform
        # Use the handle-level ctx for a full read path.
        eid, enclave = build_minimal_enclave(monitor, machine)
        monitor.handle_enclave_page_fault(eid, HEAP_VA, write=True)
        pa = enclave.translate(HEAP_VA)
        machine.phys.write(pa, b"persistent")
        monitor.swap_out(eid, HEAP_VA)
        # Fault path (as ctx._translate_with_demand_paging would drive it):
        monitor.handle_enclave_page_fault(eid, HEAP_VA)
        assert machine.phys.read(enclave.translate(HEAP_VA), 10) \
            == b"persistent"

    def test_swap_multiple_pages(self, grown):
        machine, monitor, eid, enclave = grown
        assert monitor.swap_out(eid, HEAP_VA, npages=4) == 4
        for i in range(4):
            monitor.handle_enclave_page_fault(eid, HEAP_VA + i * PAGE_SIZE)
            pa = enclave.translate(HEAP_VA + i * PAGE_SIZE)
            assert machine.phys.read(pa, 5) == b"PAGE%d" % i

    def test_double_swap_out_rejected(self, grown):
        _, monitor, eid, _ = grown
        monitor.swap_out(eid, HEAP_VA)
        # A second eviction of the same page: it is no longer committed.
        with pytest.raises(MonitorError, match="uncommitted|already"):
            from repro.monitor.swap import swap_out_page
            state = monitor._swap_state(monitor.enclaves[eid])
            swap_out_page(monitor, monitor.enclaves[eid], state,
                          monitor.swap_store, HEAP_VA)

    def test_swap_out_uncommitted_counts_zero(self, grown):
        _, monitor, eid, _ = grown
        assert monitor.swap_out(eid, HEAP_VA + 8 * PAGE_SIZE) == 0


class TestSwapSecurity:
    def test_tampered_blob_detected(self, grown):
        machine, monitor, eid, enclave = grown
        monitor.swap_out(eid, HEAP_VA)
        record = monitor._swap_state(enclave).records[HEAP_VA]
        monitor.swap_store.tamper(record.token, 40)
        with pytest.raises(SecurityViolation, match="integrity"):
            monitor.handle_enclave_page_fault(eid, HEAP_VA)

    def test_blob_substitution_detected(self, grown):
        """The OS swaps two pages' blobs: the VA binding catches it."""
        machine, monitor, eid, enclave = grown
        monitor.swap_out(eid, HEAP_VA)
        monitor.swap_out(eid, HEAP_VA + PAGE_SIZE)
        state = monitor._swap_state(enclave)
        token_a = state.records[HEAP_VA].token
        token_b = state.records[HEAP_VA + PAGE_SIZE].token
        monitor.swap_store.replace(token_a, token_b)
        with pytest.raises(SecurityViolation):
            monitor.handle_enclave_page_fault(eid, HEAP_VA)

    def test_replay_of_stale_version_detected(self, grown):
        """The OS replays an older blob of the same page."""
        machine, monitor, eid, enclave = grown
        monitor.swap_out(eid, HEAP_VA)
        state = monitor._swap_state(enclave)
        stale_blob = monitor.swap_store.get(state.records[HEAP_VA].token)
        monitor.handle_enclave_page_fault(eid, HEAP_VA, write=True)
        # Mutate the page and swap again: new version.
        pa = enclave.translate(HEAP_VA, write=True)
        machine.phys.write(pa, b"NEWDATA")
        monitor.swap_out(eid, HEAP_VA)
        record = state.records[HEAP_VA]
        monitor.swap_store._blobs[record.token] = stale_blob   # replay
        with pytest.raises(SecurityViolation):
            monitor.handle_enclave_page_fault(eid, HEAP_VA)

    def test_swap_keys_differ_per_enclave(self, platform):
        machine, boot = platform
        monitor = boot.monitor
        eid1, e1 = build_minimal_enclave(monitor, machine, code=b"one")
        eid2, e2 = build_minimal_enclave(monitor, machine, code=b"two")
        assert monitor._swap_state(e1).key != monitor._swap_state(e2).key


class TestPoolPressureReclaim:
    def test_exhausted_pool_reclaims_by_swapping(self):
        """Filling the EPC past capacity transparently evicts pages."""
        from repro.hw.machine import Machine, MachineConfig
        from repro.monitor.boot import measured_late_launch
        machine = Machine(MachineConfig(
            phys_size=256 * 1024 * 1024,
            reserved_base=128 * 1024 * 1024,
            reserved_size=16 * 1024 * 1024,   # tiny EPC
        ))
        boot = measured_late_launch(machine,
                                    monitor_private_size=2 * 1024 * 1024)
        monitor = boot.monitor
        eid, enclave = build_minimal_enclave(
            monitor, machine, size=8192 * PAGE_SIZE, with_msbuf=False)
        monitor.reserve_region(eid, ENCLAVE_BASE_VA + 128 * PAGE_SIZE,
                               4096 * PAGE_SIZE)
        pool_pages = monitor.epc_pool.free_pages
        # Touch more pages than the pool holds: must not raise.
        for i in range(pool_pages + 32):
            monitor.handle_enclave_page_fault(
                eid, ENCLAVE_BASE_VA + (128 + i) * PAGE_SIZE, write=True)
        assert monitor._swap_state(enclave).records   # something evicted
        # And an evicted page still comes back intact.
        victim_va = next(iter(monitor._swap_state(enclave).records))
        monitor.handle_enclave_page_fault(eid, victim_va, write=True)
