"""Edge-case tests for world switches and AEX paths across all modes."""

import pytest

from repro.hw import costs
from repro.hw.cpu import CpuMode
from repro.monitor.structs import EnclaveMode

from .conftest import build_minimal_enclave

AEP = 0x400000


@pytest.mark.parametrize("mode", [EnclaveMode.GU, EnclaveMode.HU,
                                  EnclaveMode.P])
def test_aex_then_eresume_per_mode(platform, mode):
    machine, boot = platform
    eid, enclave = build_minimal_enclave(boot.monitor, machine, mode=mode,
                                         with_msbuf=False)
    world = boot.monitor.world
    tcs = enclave.acquire_tcs()
    world.eenter(enclave, tcs, AEP)
    with machine.cycles.measure() as span:
        world.aex(enclave, tcs, vector=32)
    assert span.elapsed == sum(c for _, c in costs.AEX_STEPS[mode.value])
    with machine.cycles.measure() as span:
        world.eresume(enclave, tcs)
    assert span.elapsed == sum(c for _, c in
                               costs.ERESUME_STEPS[mode.value])
    world.eexit(enclave, AEP)
    enclave.release_tcs(tcs)


def test_aex_saves_interrupted_tcs_marker(platform):
    machine, boot = platform
    eid, enclave = build_minimal_enclave(boot.monitor, machine,
                                         with_msbuf=False)
    world = boot.monitor.world
    tcs = enclave.acquire_tcs()
    world.eenter(enclave, tcs, AEP)
    world.aex(enclave, tcs, vector=14, fault_addr=0xBADF00D)
    assert enclave.interrupted_tcs is tcs
    assert tcs.ssa[0].exception_addr == 0xBADF00D
    world.eresume(enclave, tcs)
    assert enclave.interrupted_tcs is None


def test_nested_aex_uses_successive_ssa_frames(platform):
    machine, boot = platform
    eid, enclave = build_minimal_enclave(boot.monitor, machine,
                                         with_msbuf=False)
    world = boot.monitor.world
    tcs = enclave.acquire_tcs()
    world.eenter(enclave, tcs, AEP)
    world.aex(enclave, tcs, vector=32)
    world.aex(enclave, tcs, vector=14)
    assert tcs.current_ssa == 2
    assert tcs.ssa[0].exception_vector == 32
    assert tcs.ssa[1].exception_vector == 14
    world.eresume(enclave, tcs)
    assert tcs.current_ssa == 1
    world.eresume(enclave, tcs)
    assert tcs.current_ssa == 0


def test_switch_counters(platform):
    machine, boot = platform
    eid, enclave = build_minimal_enclave(boot.monitor, machine,
                                         with_msbuf=False)
    world = boot.monitor.world
    enters, exits = world.enters, world.exits
    tcs = enclave.acquire_tcs()
    world.eenter(enclave, tcs, AEP)
    world.eexit(enclave, AEP)
    assert (world.enters, world.exits) == (enters + 1, exits + 1)


def test_reentry_after_eexit_allowed(platform):
    machine, boot = platform
    eid, enclave = build_minimal_enclave(boot.monitor, machine,
                                         with_msbuf=False)
    world = boot.monitor.world
    tcs = enclave.acquire_tcs()
    for _ in range(3):
        world.eenter(enclave, tcs, AEP)
        world.eexit(enclave, AEP)
    assert machine.cpu.mode is CpuMode.GUEST_USER
