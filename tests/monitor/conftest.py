"""Fixtures: a booted platform with a helper to build minimal enclaves."""

from __future__ import annotations

import pytest

from repro.crypto.rsa import cached_keypair
from repro.hw.machine import Machine, MachineConfig
from repro.hw.phys import NORMAL, PAGE_SIZE
from repro.monitor.boot import measured_late_launch
from repro.monitor.enclave import ENCLAVE_BASE_VA
from repro.monitor.structs import (EnclaveConfig, EnclaveMode, PagePerm,
                                   PageType, Sigstruct)

VENDOR_KEY = cached_keypair(b"vendor-signing-key", 768)


@pytest.fixture
def platform():
    """A booted machine with RustMonitor running."""
    machine = Machine(MachineConfig(
        phys_size=512 * 1024 * 1024,
        reserved_base=256 * 1024 * 1024,
        reserved_size=128 * 1024 * 1024,
    ))
    result = measured_late_launch(machine,
                                  monitor_private_size=32 * 1024 * 1024)
    return machine, result


def build_minimal_enclave(monitor, machine, *, mode=EnclaveMode.GU,
                          code=b"enclave code page", with_msbuf=True,
                          size=64 * PAGE_SIZE, signer=VENDOR_KEY):
    """ECREATE + EADD a code page and a TCS + EINIT, with a pinned
    marshalling buffer in normal memory.  Returns (enclave_id, enclave)."""
    config = EnclaveConfig(mode=mode, marshalling_buffer_size=2 * PAGE_SIZE)
    eid = monitor.ecreate(config, size=size)
    monitor.eadd(eid, 0, code, page_type=PageType.REG, perms=PagePerm.RX)
    monitor.add_tcs(eid, PAGE_SIZE, entry_va=ENCLAVE_BASE_VA)
    # Heap region demand-commits.
    monitor.reserve_region(eid, ENCLAVE_BASE_VA + 16 * PAGE_SIZE,
                           16 * PAGE_SIZE)
    enclave = monitor.enclaves[eid]
    mrenclave = enclave.measurement.finalize()
    sig = Sigstruct.sign(mrenclave, signer)

    marshalling = None
    if with_msbuf:
        # Two pinned frames of "normal" app memory at a fixed app VA.
        base_va = 0x7F0000000000
        frames = []
        for i in range(2):
            pa = 0x100000 + i * PAGE_SIZE
            machine.phys.set_owner(pa, NORMAL)
            frames.append(pa)
        marshalling = (base_va, 2 * PAGE_SIZE, frames)

    monitor.einit(eid, sig, marshalling=marshalling)
    return eid, enclave
