"""Tests for the RustMonitor hypercall surface and enclave lifecycle."""

import dataclasses

import pytest

from repro.errors import (EnclaveError, PageFault, SecurityViolation)
from repro.hw.phys import NORMAL, PAGE_SIZE, OwnerKind
from repro.monitor.enclave import ENCLAVE_BASE_VA
from repro.monitor.sealing import SealPolicy
from repro.monitor.structs import (EnclaveConfig, EnclaveMode, PagePerm,
                                   PageType, Sigstruct)

from .conftest import VENDOR_KEY, build_minimal_enclave


class TestLifecycle:
    def test_create_add_init(self, platform):
        machine, boot = platform
        eid, enclave = build_minimal_enclave(boot.monitor, machine)
        assert enclave.secs.mrenclave
        assert enclave.mode is EnclaveMode.GU

    def test_enclave_pages_owned_by_enclave(self, platform):
        machine, boot = platform
        eid, enclave = build_minimal_enclave(boot.monitor, machine)
        page = enclave.pages[0]
        owner = machine.phys.owner_of(page.pa)
        assert owner.kind is OwnerKind.ENCLAVE
        assert owner.enclave_id == eid

    def test_eadd_content_lands_in_epc(self, platform):
        machine, boot = platform
        eid, enclave = build_minimal_enclave(boot.monitor, machine,
                                             code=b"secret code")
        pa = enclave.pages[0].pa
        assert machine.phys.read(pa, 11) == b"secret code"

    def test_einit_rejects_wrong_measurement(self, platform):
        machine, boot = platform
        monitor = boot.monitor
        eid = monitor.ecreate(EnclaveConfig(), size=16 * PAGE_SIZE)
        monitor.eadd(eid, 0, b"real code")
        sig = Sigstruct.sign(b"\x00" * 32, VENDOR_KEY)   # wrong hash
        with pytest.raises(SecurityViolation):
            monitor.einit(eid, sig)

    def test_einit_rejects_bad_signature(self, platform):
        machine, boot = platform
        monitor = boot.monitor
        eid = monitor.ecreate(EnclaveConfig(), size=16 * PAGE_SIZE)
        monitor.eadd(eid, 0, b"code")
        mrenclave = monitor.enclaves[eid].measurement.finalize()
        sig = Sigstruct.sign(mrenclave, VENDOR_KEY)
        forged = dataclasses.replace(sig, signature=b"\x00" * len(sig.signature))
        with pytest.raises(SecurityViolation):
            monitor.einit(eid, forged)

    def test_eadd_after_einit_rejected(self, platform):
        machine, boot = platform
        eid, enclave = build_minimal_enclave(boot.monitor, machine)
        with pytest.raises(EnclaveError):
            boot.monitor.eadd(eid, 8 * PAGE_SIZE, b"late page")

    def test_eremove_scrubs_and_frees(self, platform):
        machine, boot = platform
        monitor = boot.monitor
        free_before = monitor.epc_pool.free_pages
        eid, enclave = build_minimal_enclave(monitor, machine,
                                             code=b"very secret")
        pa = enclave.pages[0].pa
        monitor.eremove(eid)
        assert monitor.epc_pool.free_pages == free_before
        assert machine.phys.read(pa, 11) == b"\x00" * 11
        assert eid not in monitor.enclaves

    def test_duplicate_offset_rejected(self, platform):
        machine, boot = platform
        monitor = boot.monitor
        eid = monitor.ecreate(EnclaveConfig(), size=16 * PAGE_SIZE)
        monitor.eadd(eid, 0, b"a")
        with pytest.raises(EnclaveError):
            monitor.eadd(eid, 0, b"b")

    def test_offset_outside_elrange_rejected(self, platform):
        machine, boot = platform
        monitor = boot.monitor
        eid = monitor.ecreate(EnclaveConfig(), size=16 * PAGE_SIZE)
        with pytest.raises(EnclaveError):
            monitor.eadd(eid, 16 * PAGE_SIZE, b"beyond")

    def test_unknown_enclave_rejected(self, platform):
        machine, boot = platform
        with pytest.raises(EnclaveError):
            boot.monitor.eadd(999, 0, b"")

    def test_measurement_depends_on_mode(self, platform):
        machine, boot = platform
        _, gu = build_minimal_enclave(boot.monitor, machine,
                                      mode=EnclaveMode.GU, with_msbuf=False)
        _, hu = build_minimal_enclave(boot.monitor, machine,
                                      mode=EnclaveMode.HU, with_msbuf=False)
        assert gu.secs.mrenclave != hu.secs.mrenclave


class TestDemandPaging:
    def test_fault_in_reserved_region_commits(self, platform):
        machine, boot = platform
        monitor = boot.monitor
        eid, enclave = build_minimal_enclave(monitor, machine)
        heap_va = ENCLAVE_BASE_VA + 16 * PAGE_SIZE
        assert enclave.page_at(heap_va) is None
        monitor.handle_enclave_page_fault(eid, heap_va, write=True)
        page = enclave.page_at(heap_va)
        assert page is not None
        assert enclave.translate(heap_va, write=True) == page.pa

    def test_fault_outside_reserved_region_propagates(self, platform):
        machine, boot = platform
        eid, enclave = build_minimal_enclave(boot.monitor, machine)
        wild_va = ENCLAVE_BASE_VA + 60 * PAGE_SIZE
        with pytest.raises(PageFault):
            boot.monitor.handle_enclave_page_fault(eid, wild_va)

    def test_demand_paging_charges_itemized_cost(self, platform):
        from repro.hw import costs
        machine, boot = platform
        monitor = boot.monitor
        eid, enclave = build_minimal_enclave(monitor, machine)
        with machine.cycles.measure() as span:
            monitor.handle_enclave_page_fault(
                eid, ENCLAVE_BASE_VA + 16 * PAGE_SIZE)
        assert span.elapsed == sum(c for _, c in
                                   costs.DEMAND_PAGING_PF_STEPS)


class TestMprotect:
    def test_permission_change_via_hypercall(self, platform):
        machine, boot = platform
        monitor = boot.monitor
        eid, enclave = build_minimal_enclave(monitor, machine)
        heap_va = ENCLAVE_BASE_VA + 16 * PAGE_SIZE
        monitor.handle_enclave_page_fault(eid, heap_va, write=True)
        monitor.enclave_mprotect(eid, heap_va, 1, PagePerm.R)
        assert not enclave.accessible(heap_va, write=True)
        monitor.enclave_mprotect(eid, heap_va, 1, PagePerm.RW)
        assert enclave.accessible(heap_va, write=True)

    def test_mprotect_uncommitted_page_rejected(self, platform):
        machine, boot = platform
        eid, _ = build_minimal_enclave(boot.monitor, machine)
        with pytest.raises(EnclaveError):
            boot.monitor.enclave_mprotect(
                eid, ENCLAVE_BASE_VA + 40 * PAGE_SIZE, 1, PagePerm.R)


class TestMarshallingBuffer:
    def test_enclave_can_reach_buffer(self, platform):
        machine, boot = platform
        eid, enclave = build_minimal_enclave(boot.monitor, machine)
        ms = enclave.marshalling
        assert enclave.accessible(ms.base_va, ms.size, write=True)

    def test_enclave_cannot_reach_other_app_memory(self, platform):
        machine, boot = platform
        eid, enclave = build_minimal_enclave(boot.monitor, machine)
        # One page past the marshalling buffer: unmapped in the enclave PT.
        assert not enclave.accessible(enclave.marshalling.base_va
                                      + enclave.marshalling.size)

    def test_buffer_overlapping_elrange_rejected(self, platform):
        machine, boot = platform
        monitor = boot.monitor
        eid = monitor.ecreate(EnclaveConfig(), size=16 * PAGE_SIZE)
        monitor.eadd(eid, 0, b"code")
        mrenclave = monitor.enclaves[eid].measurement.finalize()
        sig = Sigstruct.sign(mrenclave, VENDOR_KEY)
        pa = 0x100000
        machine.phys.set_owner(pa, NORMAL)
        crafted = (ENCLAVE_BASE_VA + PAGE_SIZE, PAGE_SIZE, [pa])
        with pytest.raises(SecurityViolation):
            monitor.einit(eid, sig, marshalling=crafted)

    def test_buffer_in_epc_frames_rejected(self, platform):
        machine, boot = platform
        monitor = boot.monitor
        eid = monitor.ecreate(EnclaveConfig(), size=16 * PAGE_SIZE)
        monitor.eadd(eid, 0, b"code")
        mrenclave = monitor.enclaves[eid].measurement.finalize()
        sig = Sigstruct.sign(mrenclave, VENDOR_KEY)
        epc_frame = monitor.epc_pool.base   # monitor-owned memory
        crafted = (0x7F0000000000, PAGE_SIZE, [epc_frame])
        with pytest.raises(SecurityViolation):
            monitor.einit(eid, sig, marshalling=crafted)


class TestKeysAndReports:
    def test_egetkey_differs_per_enclave(self, platform):
        machine, boot = platform
        monitor = boot.monitor
        eid1, _ = build_minimal_enclave(monitor, machine, code=b"app one",
                                        with_msbuf=False)
        eid2, _ = build_minimal_enclave(monitor, machine, code=b"app two",
                                        with_msbuf=False)
        assert monitor.egetkey(eid1) != monitor.egetkey(eid2)

    def test_egetkey_stable_for_same_enclave(self, platform):
        machine, boot = platform
        eid, _ = build_minimal_enclave(boot.monitor, machine)
        assert boot.monitor.egetkey(eid) == boot.monitor.egetkey(eid)

    def test_mrsigner_policy_shared_across_versions(self, platform):
        machine, boot = platform
        monitor = boot.monitor
        eid1, _ = build_minimal_enclave(monitor, machine, code=b"v1",
                                        with_msbuf=False)
        eid2, _ = build_minimal_enclave(monitor, machine, code=b"v2",
                                        with_msbuf=False)
        key1 = monitor.egetkey(eid1, policy=SealPolicy.MRSIGNER)
        key2 = monitor.egetkey(eid2, policy=SealPolicy.MRSIGNER)
        assert key1 == key2   # same vendor -> same seal key

    def test_local_attestation_roundtrip(self, platform):
        machine, boot = platform
        monitor = boot.monitor
        eid1, e1 = build_minimal_enclave(monitor, machine, code=b"prover",
                                         with_msbuf=False)
        eid2, e2 = build_minimal_enclave(monitor, machine, code=b"verifier",
                                         with_msbuf=False)
        report = monitor.ereport(eid1, b"hello", e2.secs.mrenclave)
        assert monitor.verify_local_report(eid2, report)

    def test_local_report_wrong_target_fails(self, platform):
        machine, boot = platform
        monitor = boot.monitor
        eid1, e1 = build_minimal_enclave(monitor, machine, code=b"prover",
                                         with_msbuf=False)
        eid2, e2 = build_minimal_enclave(monitor, machine, code=b"verifier",
                                         with_msbuf=False)
        eid3, e3 = build_minimal_enclave(monitor, machine, code=b"bystander",
                                         with_msbuf=False)
        report = monitor.ereport(eid1, b"hello", e2.secs.mrenclave)
        assert not monitor.verify_local_report(eid3, report)

    def test_tampered_local_report_fails(self, platform):
        machine, boot = platform
        monitor = boot.monitor
        eid1, e1 = build_minimal_enclave(monitor, machine, code=b"prover",
                                         with_msbuf=False)
        eid2, e2 = build_minimal_enclave(monitor, machine, code=b"verifier",
                                         with_msbuf=False)
        report = monitor.ereport(eid1, b"hello", e2.secs.mrenclave)
        forged = dataclasses.replace(report, report_data=b"evil")
        assert not monitor.verify_local_report(eid2, forged)


class TestNormalAccessPolicing:
    def test_normal_memory_ok(self, platform):
        machine, boot = platform
        boot.monitor.check_normal_access(0x1000, 64)

    def test_reserved_memory_blocked(self, platform):
        machine, boot = platform
        with pytest.raises(SecurityViolation):
            boot.monitor.check_normal_access(machine.config.reserved_base)

    def test_enclave_frame_blocked(self, platform):
        machine, boot = platform
        eid, enclave = build_minimal_enclave(boot.monitor, machine)
        with pytest.raises(SecurityViolation):
            boot.monitor.check_normal_access(enclave.pages[0].pa)

    def test_straddling_access_blocked(self, platform):
        machine, boot = platform
        edge = machine.config.reserved_base - 4
        with pytest.raises(SecurityViolation):
            boot.monitor.check_normal_access(edge, 8)
