"""Tests for measured late launch, attestation and sealing (Sec 3.3, 6)."""

import dataclasses

import pytest

from repro.errors import AttestationError, SealError
from repro.hw.machine import Machine, MachineConfig
from repro.monitor import attestation as att
from repro.monitor.boot import (DEFAULT_MONITOR_IMAGE, default_components,
                                measured_late_launch)
from repro.monitor.attestation import QuoteVerifier, PlatformGoldenValues

from .conftest import build_minimal_enclave


def small_machine():
    return Machine(MachineConfig(
        phys_size=512 * 1024 * 1024,
        reserved_base=256 * 1024 * 1024,
        reserved_size=128 * 1024 * 1024,
    ))


def launch(machine=None, **kwargs):
    machine = machine or small_machine()
    return machine, measured_late_launch(
        machine, monitor_private_size=32 * 1024 * 1024, **kwargs)


def test_boot_extends_all_pcrs():
    machine, boot = launch()
    for idx in att.QUOTE_PCRS:
        assert machine.tpm.read_pcr(idx) != b"\x00" * 32


def test_quote_verifies_end_to_end():
    machine, boot = launch()
    eid, enclave = build_minimal_enclave(boot.monitor, machine)
    quote = boot.monitor.quote(eid, b"user data", nonce=b"n0")
    verifier = QuoteVerifier(boot.golden)
    report = verifier.verify(quote, expected_mrenclave=enclave.secs.mrenclave,
                             expected_nonce=b"n0")
    assert report.report_data == b"user data"


def test_tampered_kernel_fails_verification():
    """Booting a modified kernel changes PCRs -> golden mismatch."""
    machine = small_machine()
    components = default_components(DEFAULT_MONITOR_IMAGE)
    golden_machine, golden_boot = launch()

    components[3] = dataclasses.replace(components[3],
                                        image=b"Linux 4.19.91 + rootkit")
    boot = measured_late_launch(machine, components=components,
                                monitor_private_size=32 * 1024 * 1024)
    eid, enclave = build_minimal_enclave(boot.monitor, machine)
    quote = boot.monitor.quote(eid, b"", nonce=b"n")
    verifier = QuoteVerifier(golden_boot.golden)
    with pytest.raises(AttestationError, match="PCR"):
        verifier.verify(quote)


def test_tampered_monitor_fails_verification():
    machine = small_machine()
    _, golden_boot = launch()
    boot = measured_late_launch(machine, monitor_image=b"EvilMonitor",
                                monitor_private_size=32 * 1024 * 1024)
    eid, enclave = build_minimal_enclave(boot.monitor, machine)
    quote = boot.monitor.quote(eid, b"", nonce=b"n")
    with pytest.raises(AttestationError):
        QuoteVerifier(golden_boot.golden).verify(quote)


def test_quote_from_wrong_tpm_fails():
    machine_a, boot_a = launch()
    machine_b = Machine(MachineConfig(
        phys_size=512 * 1024 * 1024, reserved_base=256 * 1024 * 1024,
        reserved_size=128 * 1024 * 1024, tpm_seed=b"different-chip"))
    boot_b = measured_late_launch(machine_b,
                                  monitor_private_size=32 * 1024 * 1024)
    eid, enclave = build_minimal_enclave(boot_b.monitor, machine_b)
    quote = boot_b.monitor.quote(eid, b"", nonce=b"n")
    # Verify against machine A's golden values (wrong EK).
    with pytest.raises(AttestationError):
        QuoteVerifier(boot_a.golden).verify(quote)


def test_forged_ems_fails():
    machine, boot = launch()
    eid, enclave = build_minimal_enclave(boot.monitor, machine)
    quote = boot.monitor.quote(eid, b"", nonce=b"n")
    forged_report = dataclasses.replace(quote.report,
                                        mrenclave=b"\xaa" * 32)
    forged = dataclasses.replace(quote, report=forged_report)
    with pytest.raises(AttestationError, match="measurement signature"):
        QuoteVerifier(boot.golden).verify(forged)


def test_substituted_hapk_fails():
    """An attacker monitor can't swap in its own attestation key."""
    from repro.crypto.rsa import cached_keypair
    machine, boot = launch()
    eid, enclave = build_minimal_enclave(boot.monitor, machine)
    quote = boot.monitor.quote(eid, b"", nonce=b"n")
    attacker = cached_keypair(b"attacker-key", 768)
    forged = dataclasses.replace(
        quote, hapk=attacker.public,
        ems=attacker.sign(quote.report.payload()))
    with pytest.raises(AttestationError, match="hapk"):
        QuoteVerifier(boot.golden).verify(forged)


def test_nonce_replay_detected():
    machine, boot = launch()
    eid, enclave = build_minimal_enclave(boot.monitor, machine)
    quote = boot.monitor.quote(eid, b"", nonce=b"old-nonce")
    with pytest.raises(AttestationError, match="nonce"):
        QuoteVerifier(boot.golden).verify(quote, expected_nonce=b"fresh")


def test_verifier_requires_ek():
    with pytest.raises(AttestationError):
        QuoteVerifier(PlatformGoldenValues(pcr_values={}))


class TestRootKeyLifecycle:
    def test_same_boot_chain_recovers_k_root(self):
        machine, boot = launch()
        eid, _ = build_minimal_enclave(boot.monitor, machine)
        key_before = boot.monitor.egetkey(eid)

        # Reboot with the sealed blob from disk; same measurements.
        machine.reboot()
        boot2 = measured_late_launch(
            machine, sealed_root_key=boot.sealed_root_key,
            monitor_private_size=32 * 1024 * 1024)
        eid2, _ = build_minimal_enclave(boot2.monitor, machine)
        assert boot2.monitor.egetkey(eid2) == key_before

    def test_tampered_boot_cannot_unseal_k_root(self):
        machine, boot = launch()
        machine.reboot()
        components = default_components(b"EvilMonitor")
        with pytest.raises(SealError):
            measured_late_launch(machine,
                                 sealed_root_key=boot.sealed_root_key,
                                 components=components,
                                 monitor_private_size=32 * 1024 * 1024)

    def test_demoted_os_cannot_unseal_k_root(self):
        """PCR flooding (Sec 3.3): after launch the OS sees flooded PCRs,
        so the TPM refuses to unseal K_root for it."""
        machine, boot = launch()
        with pytest.raises(SealError):
            machine.tpm.unseal(boot.sealed_root_key)

    def test_seal_keys_survive_reboot(self):
        machine, boot = launch()
        eid, e = build_minimal_enclave(boot.monitor, machine)
        sealed = boot.monitor.egetkey(eid)
        machine.reboot()
        boot2 = measured_late_launch(
            machine, sealed_root_key=boot.sealed_root_key,
            monitor_private_size=32 * 1024 * 1024)
        eid2, e2 = build_minimal_enclave(boot2.monitor, machine)
        assert e2.secs.mrenclave == e.secs.mrenclave
        assert boot2.monitor.egetkey(eid2) == sealed
