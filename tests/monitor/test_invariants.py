"""Tests for the runtime invariant auditor (the paper's verification
properties, checked over live state)."""

import pytest

from repro.errors import SecurityViolation
from repro.hw.paging import PageTableFlags
from repro.hw.phys import PAGE_SIZE
from repro.monitor.enclave import ENCLAVE_BASE_VA
from repro.monitor.structs import EnclaveMode, PagePerm

from .conftest import build_minimal_enclave


def test_clean_platform_audits_clean(platform):
    machine, boot = platform
    boot.monitor.audit_invariants()


def test_audits_clean_with_enclaves_and_msbuf(platform):
    machine, boot = platform
    build_minimal_enclave(boot.monitor, machine)
    build_minimal_enclave(boot.monitor, machine, code=b"second",
                          mode=EnclaveMode.HU)
    boot.monitor.audit_invariants()


def test_audits_clean_after_edmm_churn(platform):
    machine, boot = platform
    monitor = boot.monitor
    eid, enclave = build_minimal_enclave(monitor, machine)
    heap = ENCLAVE_BASE_VA + 16 * PAGE_SIZE
    for i in range(4):
        monitor.handle_enclave_page_fault(eid, heap + i * PAGE_SIZE,
                                          write=True)
    monitor.enclave_mprotect(eid, heap, 2, PagePerm.R)
    monitor.enclave_trim(eid, heap, 4)
    monitor.audit_invariants()


def test_foreign_frame_mapping_detected(platform):
    """A (hypothetically buggy) monitor maps enclave B's frame into A."""
    machine, boot = platform
    monitor = boot.monitor
    _, a = build_minimal_enclave(monitor, machine, code=b"A")
    _, b = build_minimal_enclave(monitor, machine, code=b"B")
    a.pt.map(ENCLAVE_BASE_VA + 60 * PAGE_SIZE, b.pages[0].pa,
             PageTableFlags.URW)
    with pytest.raises(SecurityViolation, match="I-1"):
        monitor.audit_invariants()


def test_aliased_frame_detected(platform):
    machine, boot = platform
    monitor = boot.monitor
    eid_a, a = build_minimal_enclave(monitor, machine, code=b"A2")
    eid_b, b = build_minimal_enclave(monitor, machine, code=b"B2")
    # Forge ownership so I-1 passes but I-2 must trip.
    from repro.hw.phys import enclave_owner
    shared_pa = a.pages[0].pa
    b.pt.map(ENCLAVE_BASE_VA + 60 * PAGE_SIZE, shared_pa,
             PageTableFlags.URW)
    machine.phys.set_owner(shared_pa, enclave_owner(eid_a))
    with pytest.raises(SecurityViolation, match="I-"):
        monitor.audit_invariants()


def test_npt_hole_regression_detected(platform):
    machine, boot = platform
    monitor = boot.monitor
    # A buggy update re-adds the reserved region to the normal NPT.
    monitor.normal_npt.add(machine.config.reserved_base,
                           machine.config.reserved_base + PAGE_SIZE)
    with pytest.raises(SecurityViolation, match="I-3"):
        monitor.audit_invariants()
