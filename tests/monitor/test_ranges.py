"""Tests for the interval set used as the normal VM's NPT."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.monitor.ranges import RangeSet


def test_add_and_contains():
    rs = RangeSet()
    rs.add(10, 20)
    assert rs.contains(10)
    assert rs.contains(19)
    assert not rs.contains(20)
    assert not rs.contains(9)


def test_merge_adjacent():
    rs = RangeSet()
    rs.add(0, 10)
    rs.add(10, 20)
    assert rs.ranges() == [(0, 20)]


def test_merge_overlapping():
    rs = RangeSet()
    rs.add(0, 15)
    rs.add(10, 30)
    assert rs.ranges() == [(0, 30)]


def test_disjoint_ranges_stay_apart():
    rs = RangeSet()
    rs.add(0, 10)
    rs.add(20, 30)
    assert rs.ranges() == [(0, 10), (20, 30)]


def test_remove_splits():
    rs = RangeSet()
    rs.add(0, 100)
    rs.remove(40, 60)
    assert rs.ranges() == [(0, 40), (60, 100)]
    assert not rs.contains(50)


def test_remove_edge():
    rs = RangeSet()
    rs.add(0, 100)
    rs.remove(0, 10)
    assert rs.ranges() == [(10, 100)]


def test_remove_across_ranges():
    rs = RangeSet()
    rs.add(0, 10)
    rs.add(20, 30)
    rs.remove(5, 25)
    assert rs.ranges() == [(0, 5), (25, 30)]


def test_contains_range():
    rs = RangeSet()
    rs.add(0, 100)
    rs.remove(40, 60)
    assert rs.contains_range(0, 40)
    assert not rs.contains_range(30, 50)
    assert not rs.contains_range(40, 60)
    assert rs.contains_range(60, 100)


def test_empty_range_rejected():
    rs = RangeSet()
    with pytest.raises(ValueError):
        rs.add(5, 5)
    with pytest.raises(ValueError):
        rs.remove(5, 5)
    rs.add(0, 10)
    with pytest.raises(ValueError):
        rs.contains_range(3, 3)


@given(st.lists(st.tuples(st.booleans(),
                          st.integers(0, 200),
                          st.integers(1, 50)), max_size=30))
def test_property_matches_naive_set(ops):
    """The interval set always agrees with a naive set of integers."""
    rs = RangeSet()
    naive: set[int] = set()
    for is_add, start, length in ops:
        if is_add:
            rs.add(start, start + length)
            naive |= set(range(start, start + length))
        else:
            rs.remove(start, start + length)
            naive -= set(range(start, start + length))
    for point in range(0, 260):
        assert rs.contains(point) == (point in naive)
