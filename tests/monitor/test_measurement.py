"""Tests for MRENCLAVE construction."""

import pytest

from repro.errors import EnclaveError
from repro.monitor.measurement import MeasurementLog
from repro.monitor.structs import PagePerm, PageType


def build(pages):
    log = MeasurementLog()
    log.ecreate(0x1000, 0x100000, "gu")
    for offset, ptype, perms, content in pages:
        log.eadd(offset, ptype, perms, content)
    return log.finalize()


def test_deterministic():
    pages = [(0, PageType.REG, PagePerm.RX, b"code")]
    assert build(pages) == build(pages)


def test_content_changes_measurement():
    a = build([(0, PageType.REG, PagePerm.RX, b"code-v1")])
    b = build([(0, PageType.REG, PagePerm.RX, b"code-v2")])
    assert a != b


def test_permissions_are_measured():
    a = build([(0, PageType.REG, PagePerm.RX, b"code")])
    b = build([(0, PageType.REG, PagePerm.RWX, b"code")])
    assert a != b


def test_page_type_is_measured():
    a = build([(0, PageType.REG, PagePerm.RW, b"")])
    b = build([(0, PageType.TCS, PagePerm.RW, b"")])
    assert a != b


def test_offset_is_measured():
    a = build([(0, PageType.REG, PagePerm.RW, b"x")])
    b = build([(4096, PageType.REG, PagePerm.RW, b"x")])
    assert a != b


def test_order_is_measured():
    p1 = (0, PageType.REG, PagePerm.RW, b"a")
    p2 = (4096, PageType.REG, PagePerm.RW, b"b")
    assert build([p1, p2]) != build([p2, p1])


def test_geometry_is_measured():
    log1 = MeasurementLog()
    log1.ecreate(0x1000, 0x100000, "gu")
    log2 = MeasurementLog()
    log2.ecreate(0x1000, 0x200000, "gu")
    assert log1.finalize() != log2.finalize()


def test_mode_is_measured():
    log1 = MeasurementLog()
    log1.ecreate(0, 0x1000, "gu")
    log2 = MeasurementLog()
    log2.ecreate(0, 0x1000, "hu")
    assert log1.finalize() != log2.finalize()


def test_no_eadd_after_finalize():
    log = MeasurementLog()
    log.ecreate(0, 0x1000, "gu")
    log.finalize()
    with pytest.raises(EnclaveError):
        log.eadd(0, PageType.REG, PagePerm.RW, b"late")


def test_finalize_idempotent():
    log = MeasurementLog()
    log.ecreate(0, 0x1000, "gu")
    assert log.finalize() == log.finalize()
    assert log.finalized


def test_oversized_page_rejected():
    log = MeasurementLog()
    log.ecreate(0, 0x1000, "gu")
    with pytest.raises(EnclaveError):
        log.eadd(0, PageType.REG, PagePerm.RW, b"x" * 5000)


def test_pages_measured_counter():
    log = MeasurementLog()
    log.ecreate(0, 0x10000, "gu")
    log.eadd(0, PageType.REG, PagePerm.RW, b"")
    log.eadd(4096, PageType.REG, PagePerm.RW, b"")
    assert log.pages_measured == 2
