"""Tests for enclave structures and SIGSTRUCT."""

import pytest

from repro.crypto.rsa import cached_keypair
from repro.errors import EnclaveError
from repro.monitor.structs import (EnclaveConfig, EnclaveMode, PagePerm,
                                   Secs, Sigstruct, SsaFrame, Tcs)

KEY = cached_keypair(b"vendor-signing-key", 768)
OTHER = cached_keypair(b"not-the-vendor", 768)


class TestSigstruct:
    def test_sign_and_verify(self):
        sig = Sigstruct.sign(b"\xaa" * 32, KEY)
        assert sig.verify()

    def test_tampered_hash_fails(self):
        sig = Sigstruct.sign(b"\xaa" * 32, KEY)
        import dataclasses
        forged = dataclasses.replace(sig, enclave_hash=b"\xbb" * 32)
        assert not forged.verify()

    def test_substituted_signer_fails(self):
        sig = Sigstruct.sign(b"\xaa" * 32, KEY)
        import dataclasses
        forged = dataclasses.replace(sig, signer=OTHER.public)
        assert not forged.verify()

    def test_mrsigner_identifies_vendor(self):
        a = Sigstruct.sign(b"\xaa" * 32, KEY)
        b = Sigstruct.sign(b"\xbb" * 32, KEY)
        c = Sigstruct.sign(b"\xaa" * 32, OTHER)
        assert a.mrsigner() == b.mrsigner()
        assert a.mrsigner() != c.mrsigner()

    def test_svn_in_signature(self):
        a = Sigstruct.sign(b"\xaa" * 32, KEY, isv_svn=1)
        b = Sigstruct.sign(b"\xaa" * 32, KEY, isv_svn=2)
        assert a.signature != b.signature


class TestEnclaveConfig:
    def test_defaults_valid(self):
        config = EnclaveConfig()
        assert config.mode is EnclaveMode.GU

    @pytest.mark.parametrize("field,value", [
        ("heap_size", 0), ("heap_size", 100),
        ("stack_size", -4096), ("marshalling_buffer_size", 10),
    ])
    def test_bad_sizes_rejected(self, field, value):
        with pytest.raises(EnclaveError):
            EnclaveConfig(**{field: value})

    def test_needs_a_tcs(self):
        with pytest.raises(EnclaveError):
            EnclaveConfig(tcs_count=0)

    def test_needs_ssa_frames(self):
        with pytest.raises(EnclaveError):
            EnclaveConfig(ssa_frames_per_tcs=0)


class TestSecs:
    def test_contains(self):
        secs = Secs(1, base=0x10000, size=0x4000, mode=EnclaveMode.GU)
        assert secs.contains(0x10000)
        assert secs.contains(0x13FFF)
        assert not secs.contains(0x14000)
        assert not secs.contains(0x13FFF, size=2)
        assert not secs.contains(0xFFFF)


class TestTcs:
    def test_ssa_exhaustion(self):
        tcs = Tcs(index=0, entry_va=0x1000, ssa=[SsaFrame()])
        assert tcs.available_ssa() is tcs.ssa[0]
        tcs.current_ssa = 1
        with pytest.raises(EnclaveError):
            tcs.available_ssa()
