"""Tests for multi-CPU TLB shootdowns."""

import pytest

from repro.hw import costs
from repro.hw.machine import Machine, MachineConfig
from repro.hw.phys import PAGE_SIZE
from repro.monitor.boot import measured_late_launch
from repro.monitor.enclave import ENCLAVE_BASE_VA
from repro.monitor.structs import PagePerm

from .conftest import build_minimal_enclave

HEAP_VA = ENCLAVE_BASE_VA + 16 * PAGE_SIZE


def _platform(num_cpus):
    machine = Machine(MachineConfig(
        phys_size=512 * 1024 * 1024,
        reserved_base=256 * 1024 * 1024,
        reserved_size=64 * 1024 * 1024,
        num_cpus=num_cpus,
    ))
    boot = measured_late_launch(machine,
                                monitor_private_size=8 * 1024 * 1024)
    return machine, boot.monitor


def _mprotect_cost(num_cpus):
    machine, monitor = _platform(num_cpus)
    eid, enclave = build_minimal_enclave(monitor, machine,
                                         with_msbuf=False)
    monitor.handle_enclave_page_fault(eid, HEAP_VA, write=True)
    with machine.cycles.measure() as span:
        monitor.enclave_mprotect(eid, HEAP_VA, 1, PagePerm.R)
    return span.elapsed


def test_single_cpu_has_no_ipi_cost():
    """num_cpus=1 must not perturb the Table 2 calibration."""
    machine, monitor = _platform(1)
    eid, _ = build_minimal_enclave(monitor, machine, with_msbuf=False)
    monitor.handle_enclave_page_fault(eid, HEAP_VA, write=True)
    with machine.cycles.measure() as span:
        monitor.enclave_mprotect(eid, HEAP_VA, 1, PagePerm.R)
    assert "tlb-shootdown" not in span.categories


def test_shootdown_cost_scales_with_cpus():
    one = _mprotect_cost(1)
    four = _mprotect_cost(4)
    sixteen = _mprotect_cost(16)
    assert one < four < sixteen
    # The marginal cost per extra CPU matches the IPI constants.
    assert sixteen - four == pytest.approx(
        12 * costs.IPI_PER_CPU_CYCLES)


def test_swap_out_triggers_shootdown_on_smp():
    machine, monitor = _platform(8)
    eid, _ = build_minimal_enclave(monitor, machine, with_msbuf=False)
    monitor.handle_enclave_page_fault(eid, HEAP_VA, write=True)
    with machine.cycles.measure() as span:
        monitor.swap_out(eid, HEAP_VA)
    assert span.categories.get("tlb-shootdown", 0) > 0


def test_trim_triggers_shootdown_on_smp():
    machine, monitor = _platform(8)
    eid, _ = build_minimal_enclave(monitor, machine, with_msbuf=False)
    monitor.handle_enclave_page_fault(eid, HEAP_VA, write=True)
    with machine.cycles.measure() as span:
        monitor.enclave_trim(eid, HEAP_VA, 1)
    assert span.categories.get("tlb-shootdown", 0) > 0


def test_bad_cpu_count_rejected():
    with pytest.raises(ValueError):
        MachineConfig(num_cpus=0)
