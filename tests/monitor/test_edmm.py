"""Tests for dynamic enclave memory management (EDMM, Sec 3.2)."""

import pytest

from repro.errors import EnclaveError, PageFault
from repro.hw import costs
from repro.hw.phys import PAGE_SIZE, OwnerKind
from repro.monitor.enclave import ENCLAVE_BASE_VA

from .conftest import build_minimal_enclave

HEAP_VA = ENCLAVE_BASE_VA + 16 * PAGE_SIZE


class TestTrim:
    def _grown(self, platform, npages=4):
        machine, boot = platform
        monitor = boot.monitor
        eid, enclave = build_minimal_enclave(monitor, machine)
        for i in range(npages):
            monitor.handle_enclave_page_fault(eid, HEAP_VA + i * PAGE_SIZE,
                                              write=True)
        return monitor, eid, enclave

    def test_trim_returns_pages_to_pool(self, platform):
        monitor, eid, enclave = self._grown(platform)
        free_before = monitor.epc_pool.free_pages
        assert monitor.enclave_trim(eid, HEAP_VA, 4) == 4
        assert monitor.epc_pool.free_pages == free_before + 4

    def test_trimmed_pages_fault_again(self, platform):
        monitor, eid, enclave = self._grown(platform)
        monitor.enclave_trim(eid, HEAP_VA, 4)
        assert enclave.page_at(HEAP_VA) is None
        # Re-touch: demand paging recommits (the region is still reserved).
        monitor.handle_enclave_page_fault(eid, HEAP_VA, write=True)
        assert enclave.page_at(HEAP_VA) is not None

    def test_trimmed_pages_scrubbed(self, platform):
        machine, boot = platform
        monitor, eid, enclave = self._grown(platform)
        pa = enclave.page_at(HEAP_VA).pa
        machine.phys.write(pa, b"secret heap data")
        monitor.enclave_trim(eid, HEAP_VA, 1)
        assert machine.phys.read(pa, 16) == b"\x00" * 16
        assert machine.phys.owner_of(pa).kind is OwnerKind.FREE

    def test_trim_skips_uncommitted(self, platform):
        monitor, eid, enclave = self._grown(platform, npages=2)
        # Pages 0-1 committed; asking for 4 trims only 2.
        assert monitor.enclave_trim(eid, HEAP_VA, 4) == 2

    def test_trim_requires_initialized(self, platform):
        machine, boot = platform
        from repro.monitor.structs import EnclaveConfig
        eid = boot.monitor.ecreate(EnclaveConfig(), size=16 * PAGE_SIZE)
        with pytest.raises(EnclaveError):
            boot.monitor.enclave_trim(eid, ENCLAVE_BASE_VA, 1)


class TestSgx2EdmmCosts:
    def test_sgx_demand_paging_pays_eaccept_path(self, platform):
        from repro.monitor.structs import EnclaveMode
        machine, boot = platform
        monitor = boot.monitor
        eid, enclave = build_minimal_enclave(monitor, machine,
                                             mode=EnclaveMode.SGX,
                                             with_msbuf=False)
        with machine.cycles.measure() as span:
            monitor.handle_enclave_page_fault(eid, HEAP_VA, write=True)
        expected = (sum(c for _, c in costs.AEX_STEPS["sgx"])
                    + costs.SGX2_EDMM_DRIVER_CYCLES
                    + sum(c for _, c in costs.ERESUME_STEPS["sgx"])
                    + costs.SGX2_EACCEPT_CYCLES)
        assert span.elapsed == expected
        # The HyperEnclave path is an order of magnitude cheaper.
        assert expected > 8 * sum(c for _, c in
                                  costs.DEMAND_PAGING_PF_STEPS)

    def test_sgx_mprotect_pays_driver_ocall(self, platform):
        from repro.monitor.structs import EnclaveMode, PagePerm
        machine, boot = platform
        monitor = boot.monitor
        eid, enclave = build_minimal_enclave(monitor, machine,
                                             mode=EnclaveMode.SGX,
                                             with_msbuf=False)
        monitor.handle_enclave_page_fault(eid, HEAP_VA, write=True)
        with machine.cycles.measure() as span:
            monitor.enclave_mprotect(eid, HEAP_VA, 1, PagePerm.R)
        assert span.elapsed > costs.ocall_expected("sgx")
