"""Stateful lifecycle fuzzing of RustMonitor.

A hypothesis rule-based state machine drives random interleavings of the
monitor's whole surface — create/load/init enclaves, demand paging,
permission changes, swapping, trimming, destruction — and after every
step asserts the global security invariants (`audit_invariants`) plus a
model-based check of pool accounting.  This is the testing analog of the
formal verification the paper reports as work-in-progress.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis.stateful import (Bundle, RuleBasedStateMachine, initialize,
                                 invariant, rule)
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.hw.machine import Machine, MachineConfig
from repro.hw.phys import PAGE_SIZE
from repro.monitor.boot import measured_late_launch
from repro.monitor.enclave import ENCLAVE_BASE_VA
from repro.monitor.structs import EnclaveConfig, EnclaveMode, PagePerm

from tests.monitor.conftest import build_minimal_enclave

HEAP_BASE = ENCLAVE_BASE_VA + 16 * PAGE_SIZE
HEAP_PAGES = 16


class MonitorLifecycle(RuleBasedStateMachine):
    enclaves = Bundle("enclaves")

    @initialize()
    def boot(self):
        machine = Machine(MachineConfig(
            phys_size=512 * 1024 * 1024,
            reserved_base=256 * 1024 * 1024,
            reserved_size=64 * 1024 * 1024,
        ))
        self.machine = machine
        self.monitor = measured_late_launch(
            machine, monitor_private_size=8 * 1024 * 1024).monitor
        self.live: set[int] = set()
        self.initial_free = (self.monitor.epc_pool.free_pages,
                             self.monitor.monitor_pool.free_pages)

    # -- rules -----------------------------------------------------------------

    @rule(target=enclaves,
          mode=st.sampled_from([EnclaveMode.GU, EnclaveMode.HU,
                                EnclaveMode.P]),
          tag=st.integers(0, 1_000_000))
    def create_enclave(self, mode, tag):
        eid, _ = build_minimal_enclave(
            self.monitor, self.machine, mode=mode,
            code=b"fuzz-%d" % tag, with_msbuf=False)
        self.live.add(eid)
        return eid

    @rule(eid=enclaves, page=st.integers(0, HEAP_PAGES - 1))
    def touch_heap(self, eid, page):
        if eid not in self.live:
            return
        va = HEAP_BASE + page * PAGE_SIZE
        if self.monitor.enclaves[eid].page_at(va) is None:
            self.monitor.handle_enclave_page_fault(eid, va, write=True)

    @rule(eid=enclaves, page=st.integers(0, HEAP_PAGES - 1),
          perm=st.sampled_from([PagePerm.R, PagePerm.RW]))
    def mprotect(self, eid, page, perm):
        if eid not in self.live:
            return
        va = HEAP_BASE + page * PAGE_SIZE
        if self.monitor.enclaves[eid].page_at(va) is not None:
            self.monitor.enclave_mprotect(eid, va, 1, perm)

    @rule(eid=enclaves, page=st.integers(0, HEAP_PAGES - 1))
    def swap_out(self, eid, page):
        if eid not in self.live:
            return
        self.monitor.swap_out(eid, HEAP_BASE + page * PAGE_SIZE)

    @rule(eid=enclaves, page=st.integers(0, HEAP_PAGES - 1))
    def swap_back_in(self, eid, page):
        if eid not in self.live:
            return
        va = HEAP_BASE + page * PAGE_SIZE
        state = self.monitor._swap_states.get(eid)
        if state is not None and va in state.records:
            self.monitor.handle_enclave_page_fault(eid, va, write=True)

    @rule(eid=enclaves, page=st.integers(0, HEAP_PAGES - 1),
          count=st.integers(1, 4))
    def trim(self, eid, page, count):
        if eid not in self.live:
            return
        self.monitor.enclave_trim(eid, HEAP_BASE + page * PAGE_SIZE, count)

    @rule(eid=enclaves)
    def destroy(self, eid):
        if eid not in self.live:
            return
        self.monitor.eremove(eid)
        self.live.discard(eid)

    # -- invariants ----------------------------------------------------------------

    @invariant()
    def security_invariants_hold(self):
        if hasattr(self, "monitor"):
            self.monitor.audit_invariants()

    @invariant()
    def pool_accounting_consistent(self):
        """Free + committed + swapped bookkeeping must never leak frames."""
        if not hasattr(self, "monitor"):
            return
        committed = sum(len(e.pages)
                        for e in self.monitor.enclaves.values())
        free = self.monitor.epc_pool.free_pages
        assert free + committed == self.initial_free[0], \
            (free, committed, self.initial_free[0])


MonitorLifecycle.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None)
TestMonitorLifecycle = MonitorLifecycle.TestCase
