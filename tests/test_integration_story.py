"""The full deployment story, end to end, across a reboot.

This is the cross-module journey no unit test covers: a platform boots,
an enclave is attested by a remote client, computes over uploaded data,
seals its state; the machine power-cycles; the *same* platform identity
relaunches, the same enclave identity reloads, recovers the sealed state
— and a tampered relaunch can't.
"""

from __future__ import annotations

import pytest

from repro.errors import SealError
from repro.hw.machine import Machine, MachineConfig
from repro.monitor.attestation import QuoteVerifier
from repro.monitor.boot import default_components, measured_late_launch
from repro.monitor.structs import EnclaveConfig, EnclaveMode
from repro.osim.kernel import Kernel
from repro.osim.kmod import HyperEnclaveDevice
from repro.platform import DEFAULT_VENDOR_KEY
from repro.sdk.edger8r import generate_proxies
from repro.sdk.image import EnclaveImage
from repro.sdk.urts import UntrustedRuntime

EDL = """
enclave {
    trusted {
        public uint64 accumulate([in, size=n] bytes values, uint64 n);
        public uint64 export_state([out, size=cap] bytes blob, uint64 cap);
        public uint64 import_state([in, size=n] bytes blob, uint64 n);
    };
    untrusted { };
};
"""


def t_accumulate(ctx, values, n):
    total = ctx.globals.get("total", 0) + sum(values)
    ctx.globals["total"] = total
    return total


def t_export_state(ctx, blob, cap):
    sealed = ctx.seal_data(ctx.globals.get("total", 0).to_bytes(8, "little"),
                           aad=b"accumulator-v1")
    blob[:len(sealed)] = sealed
    return len(sealed)


def t_import_state(ctx, blob, n):
    total = int.from_bytes(
        ctx.unseal_data(bytes(blob), aad=b"accumulator-v1"), "little")
    ctx.globals["total"] = total
    return total


def _image():
    return EnclaveImage.build(
        "accumulator", EDL,
        {"accumulate": t_accumulate, "export_state": t_export_state,
         "import_state": t_import_state},
        EnclaveConfig(mode=EnclaveMode.GU))


def _launch(machine, sealed_root_key=None, components=None):
    boot = measured_late_launch(machine, sealed_root_key=sealed_root_key,
                                components=components)
    kernel = Kernel(machine, boot.monitor)
    device = HyperEnclaveDevice(kernel, boot.monitor)
    process = kernel.spawn()
    urts = UntrustedRuntime(machine, kernel, device, boot.monitor, process)
    handle = urts.create_enclave(_image(), DEFAULT_VENDOR_KEY)
    handle.proxies = generate_proxies(handle)
    return boot, handle


@pytest.fixture
def machine():
    return Machine(MachineConfig(
        phys_size=512 * 1024 * 1024,
        reserved_base=256 * 1024 * 1024,
        reserved_size=128 * 1024 * 1024,
    ))


def test_full_story_across_reboot(machine):
    # --- first boot: attest, compute, seal -------------------------------
    boot, handle = _launch(machine)
    verifier_golden = boot.golden

    quote = handle.ctx.get_quote(b"client-hello", b"nonce-A")
    report = QuoteVerifier(verifier_golden).verify(
        quote, expected_mrenclave=handle.enclave.secs.mrenclave,
        expected_nonce=b"nonce-A", require_production=True)
    assert report.report_data == b"client-hello"

    assert handle.proxies.accumulate(values=bytes([10, 20, 30]), n=3) == 60
    assert handle.proxies.accumulate(values=bytes([40]), n=1) == 100
    _, outs = handle.proxies.export_state(cap=256)
    sealed_state = outs["blob"].rstrip(b"\x00")
    sealed_root = boot.sealed_root_key   # "on disk"
    mrenclave_v1 = handle.enclave.secs.mrenclave

    # --- power cycle -------------------------------------------------------
    machine.reboot()

    # --- second boot: same measurements -> same keys -----------------------
    boot2, handle2 = _launch(machine, sealed_root_key=sealed_root)
    # The platform still verifies against the ORIGINAL golden values.
    quote2 = handle2.ctx.get_quote(b"", b"nonce-B")
    QuoteVerifier(verifier_golden).verify(
        quote2, expected_mrenclave=mrenclave_v1, expected_nonce=b"nonce-B")
    # The relaunched enclave recovers its sealed accumulator.
    assert handle2.proxies.import_state(blob=sealed_state,
                                        n=len(sealed_state)) == 100
    assert handle2.proxies.accumulate(values=bytes([1]), n=1) == 101


def test_tampered_relaunch_recovers_nothing(machine):
    boot, handle = _launch(machine)
    handle.proxies.accumulate(values=bytes([7]), n=1)
    _, outs = handle.proxies.export_state(cap=256)
    sealed_state = outs["blob"].rstrip(b"\x00")
    sealed_root = boot.sealed_root_key
    golden = boot.golden

    machine.reboot()

    # An evil monitor boots: K_root is unreachable (PCR policy), so the
    # launch aborts before any enclave can even be keyed.
    with pytest.raises(SealError):
        _launch(machine, sealed_root_key=sealed_root,
                components=default_components(b"EvilMonitor v666"))

    # It restarts WITHOUT the old K_root: new platform identity.
    boot3, handle3 = _launch(machine,
                             components=default_components(
                                 b"EvilMonitor v666"))
    # Old sealed state is cryptographically dead...
    from repro.errors import ReproError
    with pytest.raises(ReproError):
        handle3.proxies.import_state(blob=sealed_state,
                                     n=len(sealed_state))
    # ...and the remote client spots the substitution immediately.
    from repro.errors import AttestationError
    quote = handle3.ctx.get_quote(b"", b"nonce-C")
    with pytest.raises(AttestationError):
        QuoteVerifier(golden).verify(quote)
