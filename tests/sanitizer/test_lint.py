"""repro-lint: rule checks, suppression semantics, CLI exit codes."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.sanitizer.lint import lint_paths, main
from repro.sanitizer.lintconfig import LintConfig, load_config
from repro.sanitizer.rules import lint_source

REPO_ROOT = Path(__file__).resolve().parents[2]


def findings_for(source: str, path: str, config: LintConfig | None = None):
    """Lint a source snippet as if it lived at ``path``."""
    return lint_source(textwrap.dedent(source), Path(path),
                       config or LintConfig())


class TestR001:
    def test_wall_clock_flagged(self):
        found = findings_for("""
            import time
            def charge():
                return time.perf_counter()
            """, "src/repro/hw/fake.py")
        assert [f.rule for f in found] == ["R001"]
        assert "wall-clock" in found[0].message

    def test_global_random_flagged(self):
        found = findings_for("""
            import random
            def pick():
                return random.randrange(10)
            """, "src/repro/apps/fake.py")
        assert [f.rule for f in found] == ["R001"]

    def test_seeded_rng_allowed(self):
        found = findings_for("""
            import random
            def pick(seed):
                return random.Random(seed).randrange(10)
            """, "src/repro/apps/fake.py")
        assert found == []

    def test_unseeded_rng_flagged(self):
        found = findings_for("""
            import random
            def pick():
                return random.Random()
            """, "src/repro/apps/fake.py")
        assert [f.rule for f in found] == ["R001"]

    def test_config_exclude(self):
        config = LintConfig(rule_excludes={
            "R001": ("repro/telemetry/",)})
        found = findings_for("""
            import time
            def now():
                return time.time()
            """, "src/repro/telemetry/fake.py", config)
        assert found == []


class TestR002:
    SOURCE = """
        def leak(self, pa):
            return self.machine.phys.read(pa, 8)
        """

    def test_untrusted_layer_flagged(self):
        found = findings_for(self.SOURCE, "src/repro/osim/fake.py")
        assert [f.rule for f in found] == ["R002"]
        assert "memaccess" in found[0].message

    def test_hw_layer_exempt(self):
        assert findings_for(self.SOURCE, "src/repro/hw/fake.py") == []


class TestR003:
    def test_uncharged_entry_point_flagged(self):
        found = findings_for("""
            class RustMonitor:
                def uncharged(self):
                    return 1
                def charged(self):
                    self._charge_hypercall("charged")
                def _private(self):
                    return 2
                @property
                def attribute(self):
                    return 3
            """, "src/repro/monitor/rustmonitor.py")
        assert [(f.rule, f.line) for f in found] == [("R003", 3)]
        assert "uncharged" in found[0].message

    def test_other_files_exempt(self):
        found = findings_for("""
            class RustMonitor:
                def uncharged(self):
                    return 1
            """, "src/repro/monitor/other.py")
        assert found == []


class TestR004:
    def test_unclosed_span_flagged(self):
        found = findings_for("""
            def leak(tel):
                span = tel.span("oops")
                span.annotate(1)
            """, "src/repro/hw/fake.py")
        assert [f.rule for f in found] == ["R004"]

    def test_with_statement_allowed(self):
        found = findings_for("""
            def fine(tel):
                with tel.span("ok"):
                    pass
            """, "src/repro/hw/fake.py")
        assert found == []

    def test_returned_span_allowed(self):
        found = findings_for("""
            def handoff(tel):
                return tel.span("callers-problem")
            """, "src/repro/hw/fake.py")
        assert found == []


class TestR005:
    SOURCE = """
        def swallow():
            try:
                risky()
            except:
                pass
        """

    def test_bare_except_in_monitor_flagged(self):
        found = findings_for(self.SOURCE, "src/repro/monitor/fake.py")
        assert [f.rule for f in found] == ["R005"]

    def test_untrusted_layer_exempt(self):
        assert findings_for(self.SOURCE, "src/repro/apps/fake.py") == []


class TestSuppression:
    def test_justified_suppression(self):
        found = findings_for("""
            import time
            def now():
                return time.time()  # repro-lint: disable=R001 -- host-side only
            """, "src/repro/hw/fake.py")
        assert len(found) == 1
        assert found[0].suppressed
        assert found[0].justification == "host-side only"

    def test_directive_without_justification_does_not_suppress(self):
        found = findings_for("""
            import time
            def now():
                return time.time()  # repro-lint: disable=R001
            """, "src/repro/hw/fake.py")
        assert len(found) == 1
        assert not found[0].suppressed

    def test_comment_block_above_covers_next_code_line(self):
        found = findings_for("""
            import time
            # repro-lint: disable=R001 -- profiling shim, never cycle-charged
            # (continued rationale on a second comment line)
            def now():
                return 1

            def charged():
                return time.time()
            """, "src/repro/hw/fake.py")
        # The directive covers only its block and first code line, so the
        # later time.time() call is still reported.
        assert [f.suppressed for f in found] == [False]

    def test_inline_directive_covers_only_its_own_line(self):
        found = findings_for("""
            import time
            def pair():
                a = time.time()  # repro-lint: disable=R001 -- host-side only
                b = time.time()
                return a, b
            """, "src/repro/hw/fake.py")
        # An end-of-line directive must not bleed onto the next line.
        assert [f.suppressed for f in found] == [True, False]


class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "clean.py").write_text("x = 1\n")
        assert main([str(tmp_path)]) == 0

    def test_exit_one_on_findings(self, tmp_path, capsys):
        (tmp_path / "repro").mkdir()
        bad = tmp_path / "repro" / "bad.py"
        bad.write_text("import time\ny = time.time()\n")
        assert main([str(bad)]) == 1
        assert "R001" in capsys.readouterr().out

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2

    def test_exit_two_on_no_args(self, capsys):
        assert main([]) == 2

    def test_exit_two_on_bad_config(self, tmp_path, capsys):
        (tmp_path / "x.py").write_text("x = 1\n")
        assert main([str(tmp_path), "--config",
                     str(tmp_path / "missing.toml")]) == 2

    def test_exit_two_on_syntax_error(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def (:\n")
        assert main([str(tmp_path)]) == 2

    def test_json_report_shape(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\ny = time.time()\n")
        main([str(bad), "--format", "json"])
        report = json.loads(capsys.readouterr().out)
        assert report["counts"]["findings"] == 1
        finding = report["findings"][0]
        assert finding["rule"] == "R001"
        assert finding["line"] == 2
        assert not finding["suppressed"]

    def test_config_disable(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\ny = time.time()\n")
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text('[tool.repro-lint]\ndisable = ["R001"]\n')
        assert main([str(bad), "--config", str(pyproject)]) == 0


class TestRepoIsClean:
    def test_src_tree_has_zero_unsuppressed_findings(self):
        """The acceptance gate CI enforces, as a unit test."""
        config = load_config(REPO_ROOT / "pyproject.toml")
        findings = lint_paths([REPO_ROOT / "src"], config)
        unsuppressed = [f for f in findings if not f.suppressed]
        assert unsuppressed == [], "\n".join(f.render() for f in unsuppressed)

    def test_every_suppression_is_justified(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        findings = lint_paths([REPO_ROOT / "src"], config)
        for finding in findings:
            if finding.suppressed:
                assert finding.justification
