"""PR-8 rule upgrades: R001 alias tracking, new clocks, R003 lite-IPA."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.sanitizer.lintconfig import LintConfig
from repro.sanitizer.rules import lint_source, parse_suppressions


def findings_for(source: str, path: str,
                 config: LintConfig | None = None):
    """Lint a source snippet as if it lived at ``path``."""
    return lint_source(textwrap.dedent(source), Path(path),
                       config or LintConfig())


class TestR001Gaps:
    def test_clock_gettime_flagged(self):
        found = findings_for("""
            import time
            def charge():
                return time.clock_gettime(0)
            """, "src/repro/hw/fake.py")
        assert [f.rule for f in found] == ["R001"]

    def test_clock_gettime_ns_flagged(self):
        found = findings_for("""
            import time
            def charge():
                return time.clock_gettime_ns(0)
            """, "src/repro/hw/fake.py")
        assert [f.rule for f in found] == ["R001"]

    def test_module_alias_flagged(self):
        found = findings_for("""
            import time as tm
            def charge():
                return tm.time()
            """, "src/repro/hw/fake.py")
        assert [f.rule for f in found] == ["R001"]

    def test_from_import_alias_flagged(self):
        found = findings_for("""
            from time import time as t
            def charge():
                return t()
            """, "src/repro/hw/fake.py")
        assert [f.rule for f in found] == ["R001"]

    def test_aliased_random_flagged(self):
        found = findings_for("""
            from random import randint as ri
            def pick():
                return ri(0, 9)
            """, "src/repro/hw/fake.py")
        assert [f.rule for f in found] == ["R001"]

    def test_unrelated_alias_not_flagged(self):
        found = findings_for("""
            from math import sin as time
            def charge():
                return time(0.5)
            """, "src/repro/hw/fake.py")
        assert found == []


class TestR003Interprocedural:
    def test_charge_via_self_helper_accepted(self):
        found = findings_for("""
            class RustMonitor:
                def entry(self, x):
                    return self._inner(x)
                def _inner(self, x):
                    self._charge_hypercall('entry')
                    return x
                def _charge_hypercall(self, op):
                    self.cycles.charge(100, 'hypercall')
            """, "src/repro/monitor/rustmonitor.py")
        assert [f.rule for f in found] == []

    def test_charge_steps_counts_as_charging(self):
        found = findings_for("""
            class RustMonitor:
                def fault(self, va):
                    self.cpu.charge_steps([1, 2], 'fault')
            """, "src/repro/monitor/rustmonitor.py")
        assert found == []

    def test_never_charging_entry_still_flagged(self):
        found = findings_for("""
            class RustMonitor:
                def forgotten(self, x):
                    return self._lookup(x)
                def _lookup(self, x):
                    return x + 1
            """, "src/repro/monitor/rustmonitor.py")
        assert [f.rule for f in found] == ["R003"]
        assert "forgotten" in found[0].message


class TestSharedScPragmas:
    def test_sc_directive_parsed(self):
        sup = parse_suppressions(
            "x = 1  # repro-lint: disable=SC001 -- sanctioned knob\n")
        assert sup.lookup(1, "SC001") == "sanctioned knob"

    def test_mixed_r_and_sc_rules(self):
        sup = parse_suppressions(
            "# repro-lint: disable=R001, SC001 -- both waived\n"
            "x = read_clock()\n")
        assert sup.lookup(2, "R001") == "both waived"
        assert sup.lookup(2, "SC001") == "both waived"

    def test_sc_directive_without_justification_ignored(self):
        sup = parse_suppressions(
            "x = 1  # repro-lint: disable=SC001\n")
        assert sup.lookup(1, "SC001") is None
