"""Adversarial tests: break each monitor invariant, catch the exact code.

Every test bypasses the monitor's legitimate surface the way a buggy (or
malicious) refactor would, and asserts the sanitizer raises a
:class:`SanitizerViolation` carrying the specific ``SAN-*`` code — not
just *an* error.
"""

from __future__ import annotations

import pytest

from repro.hw.paging import PageTableFlags
from repro.hw.phys import NORMAL, PAGE_SIZE
from repro.monitor.enclave import ENCLAVE_BASE_VA, perms_to_flags
from repro.monitor.structs import PagePerm
from repro.osim.kernel import Kernel
from repro.sanitizer import (SAN_ALIAS, SAN_MEASURE, SAN_NPT, SAN_OWNER,
                             SAN_REACH, SAN_SHADOW, SAN_SWAP, SAN_TLB,
                             SAN_WX, SanitizerViolation)
from tests.monitor.conftest import build_minimal_enclave


def test_epc_frame_mapped_into_untrusted_gpt(sanitized_platform):
    """A malicious OS forges a process PTE onto an enclave frame; the
    sanitizer rejects it before the PTE lands (SAN-REACH)."""
    machine, boot = sanitized_platform
    eid, enclave = build_minimal_enclave(boot.monitor, machine)
    kernel = Kernel(machine, boot.monitor)
    process = kernel.spawn()
    with pytest.raises(SanitizerViolation) as exc:
        process.pt.map(0x7E0000000000, enclave.pages[0].pa,
                       PageTableFlags.URW)
    assert exc.value.code == SAN_REACH
    # The poisonous mapping never landed.
    assert not list(process.pt.mappings())


def test_skipped_tlb_shootdown_detected(sanitized_platform):
    """Flipping a PTE without a shootdown leaves a stale translation; the
    shadow TLB-coherence protocol flags it (SAN-TLB)."""
    machine, boot = sanitized_platform
    eid, enclave = build_minimal_enclave(boot.monitor, machine)
    # Bypass RustMonitor.enclave_mprotect, which would shoot down.
    enclave.protect_page(ENCLAVE_BASE_VA, PagePerm.R)
    with pytest.raises(SanitizerViolation) as exc:
        boot.monitor.audit_invariants()
    assert exc.value.code == SAN_TLB


def test_write_to_measured_page_after_einit(sanitized_platform):
    """Enclave code pages are frozen by the EINIT measurement; a direct
    physical write afterwards is caught (SAN-MEASURE)."""
    machine, boot = sanitized_platform
    eid, enclave = build_minimal_enclave(boot.monitor, machine)
    machine.phys.write(enclave.pages[0].pa, b"patched after measurement")
    with pytest.raises(SanitizerViolation) as exc:
        boot.monitor.audit_invariants()
    assert exc.value.code == SAN_MEASURE


def test_double_mapped_frame_across_enclaves(sanitized_platform):
    """Two enclaves sharing one physical frame is the classic aliasing
    hole (SAN-ALIAS, the old I-2)."""
    machine, boot = sanitized_platform
    eid1, enclave1 = build_minimal_enclave(boot.monitor, machine)
    eid2, enclave2 = build_minimal_enclave(boot.monitor, machine,
                                           with_msbuf=False)
    enclave2.pt.map(ENCLAVE_BASE_VA + 48 * PAGE_SIZE, enclave1.pages[0].pa,
                    perms_to_flags(PagePerm.RX))
    with pytest.raises(SanitizerViolation, match="I-2") as exc:
        boot.monitor.audit_invariants()
    assert exc.value.code == SAN_ALIAS


def test_foreign_frame_in_enclave_pt(sanitized_platform):
    """An enclave mapping a frame it does not own trips ownership
    (SAN-OWNER, the old I-1)."""
    machine, boot = sanitized_platform
    eid, enclave = build_minimal_enclave(boot.monitor, machine)
    stray = 0x200000
    machine.phys.set_owner(stray, NORMAL)
    enclave.pt.map(ENCLAVE_BASE_VA + 40 * PAGE_SIZE, stray,
                   perms_to_flags(PagePerm.RW))
    with pytest.raises(SanitizerViolation, match="I-1") as exc:
        boot.monitor.audit_invariants()
    assert exc.value.code == SAN_OWNER


def test_wx_mapping_rejected(sanitized_platform):
    """Writable+executable enclave mappings violate W^X (SAN-WX)."""
    machine, boot = sanitized_platform
    eid, enclave = build_minimal_enclave(boot.monitor, machine)
    with pytest.raises(SanitizerViolation) as exc:
        boot.monitor.enclave_mprotect(eid, ENCLAVE_BASE_VA, 1, PagePerm.RWX)
    assert exc.value.code == SAN_WX


def test_swap_version_tamper_detected(sanitized_platform):
    """Bumping a swap record's version counter (an anti-replay rollback
    setup) diverges from the shadow (SAN-SWAP)."""
    machine, boot = sanitized_platform
    eid, enclave = build_minimal_enclave(boot.monitor, machine)
    heap_va = ENCLAVE_BASE_VA + 16 * PAGE_SIZE
    boot.monitor.handle_enclave_page_fault(eid, heap_va, write=True)
    boot.monitor.swap_out(eid, heap_va)
    boot.monitor._swap_states[eid].records[heap_va].version += 1
    with pytest.raises(SanitizerViolation) as exc:
        boot.monitor.audit_invariants()
    assert exc.value.code == SAN_SWAP


def test_ownership_bypass_diverges_shadow(sanitized_platform):
    """Mutating the owner table without going through ``set_owner``
    (i.e. bypassing the hooked surface) is caught by the lockstep
    comparison (SAN-SHADOW)."""
    machine, boot = sanitized_platform
    machine.phys._owners[10] = NORMAL
    with pytest.raises(SanitizerViolation) as exc:
        boot.monitor.audit_invariants()
    assert exc.value.code == SAN_SHADOW


def test_npt_over_reserved_region(sanitized_platform):
    """Re-adding the reserved region to the normal VM's NPT re-opens R-1
    (SAN-NPT, the old I-3)."""
    machine, boot = sanitized_platform
    cfg = machine.config
    boot.monitor.normal_npt.add(cfg.reserved_base,
                                cfg.reserved_base + cfg.reserved_size)
    with pytest.raises(SanitizerViolation, match="I-3") as exc:
        boot.monitor.audit_invariants()
    assert exc.value.code == SAN_NPT


def test_violation_carries_frame_history(sanitized_platform):
    """Violations are actionable: the frame's transition history (who
    owned it, during which op) rides along in the exception."""
    machine, boot = sanitized_platform
    eid, enclave = build_minimal_enclave(boot.monitor, machine)
    kernel = Kernel(machine, boot.monitor)
    process = kernel.spawn()
    with pytest.raises(SanitizerViolation) as exc:
        process.pt.map(0x7E0000000000, enclave.pages[0].pa,
                       PageTableFlags.URW)
    assert exc.value.history, "frame history missing"
    assert any(t.op == "eadd" for t in exc.value.history)
    assert "frame history" in str(exc.value)


def test_violations_counted_in_telemetry(sanitized_platform):
    """Every violation bumps the sanitizer counter, labeled by code."""
    machine, boot = sanitized_platform
    eid, enclave = build_minimal_enclave(boot.monitor, machine)
    machine.phys.write(enclave.pages[0].pa, b"tamper")
    with pytest.raises(SanitizerViolation):
        boot.monitor.audit_invariants()
    counter = machine.telemetry.registry.counter(
        "sanitizer", "violations", code=SAN_MEASURE)
    assert counter.value >= 1
    assert machine.sanitizer.violations >= 1
