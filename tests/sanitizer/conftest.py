"""Fixtures: platforms with the runtime sanitizer forced on."""

from __future__ import annotations

import pytest

from repro.hw.machine import Machine, MachineConfig
from repro.monitor.boot import measured_late_launch

SANITIZED_CONFIG = dict(
    phys_size=512 * 1024 * 1024,
    reserved_base=256 * 1024 * 1024,
    reserved_size=128 * 1024 * 1024,
)


@pytest.fixture
def sanitized_platform():
    """A booted machine with RustMonitor and the sanitizer attached.

    ``sanitize=True`` in the config overrides the environment, so these
    tests behave identically with and without ``REPRO_SANITIZE=1``.
    """
    machine = Machine(MachineConfig(sanitize=True, **SANITIZED_CONFIG))
    result = measured_late_launch(machine,
                                  monitor_private_size=32 * 1024 * 1024)
    return machine, result
