"""Clean-path properties: zero violations, zero cycle perturbation.

The sanitizer must be a pure observer — a full enclave lifecycle under
``sanitize=True`` raises nothing, and every cycle/TLB/LLC number is
bit-identical to the same sequence with the sanitizer off.
"""

from __future__ import annotations

import pytest

from repro.hw.machine import Machine, MachineConfig
from repro.monitor.boot import measured_late_launch
from repro.monitor.enclave import ENCLAVE_BASE_VA
from repro.monitor.structs import PagePerm
from repro.hw.phys import PAGE_SIZE
from tests.monitor.conftest import build_minimal_enclave
from tests.sanitizer.conftest import SANITIZED_CONFIG


def _run_lifecycle(sanitize: bool):
    """One deterministic monitor workout; returns the machine."""
    machine = Machine(MachineConfig(sanitize=sanitize, **SANITIZED_CONFIG))
    boot = measured_late_launch(machine,
                                monitor_private_size=32 * 1024 * 1024)
    monitor = boot.monitor
    eid, enclave = build_minimal_enclave(monitor, machine)
    heap = ENCLAVE_BASE_VA + 16 * PAGE_SIZE
    for i in range(8):
        monitor.handle_enclave_page_fault(eid, heap + i * PAGE_SIZE,
                                          write=True)
    monitor.swap_out(eid, heap, npages=4)
    for i in range(4):                       # transparent swap-in faults
        monitor.handle_enclave_page_fault(eid, heap + i * PAGE_SIZE,
                                          write=True)
    monitor.enclave_mprotect(eid, heap, 2, PagePerm.R)
    monitor.enclave_mprotect(eid, heap, 2, PagePerm.RW)
    monitor.enclave_trim(eid, heap + 4 * PAGE_SIZE, 2)
    monitor.ereport(eid, b"x" * 64, enclave.secs.mrenclave)
    monitor.egetkey(eid)
    monitor.quote(eid, b"y" * 64, b"n" * 16)
    monitor.eremove(eid)
    return machine


def test_full_lifecycle_zero_violations(sanitized_platform):
    machine, boot = sanitized_platform
    monitor = boot.monitor
    eid, enclave = build_minimal_enclave(monitor, machine)
    heap = ENCLAVE_BASE_VA + 16 * PAGE_SIZE
    for i in range(4):
        monitor.handle_enclave_page_fault(eid, heap + i * PAGE_SIZE,
                                          write=True)
    monitor.swap_out(eid, heap, npages=2)
    monitor.handle_enclave_page_fault(eid, heap, write=True)
    monitor.audit_invariants()
    monitor.eremove(eid)
    monitor.audit_invariants()
    assert machine.sanitizer.violations == 0


def test_trim_and_eremove_return_frames_to_pool(sanitized_platform):
    """EREMOVE/TRIM must leave every released frame FREE — asserted by
    the monitor itself via the sanitizer's fail path."""
    machine, boot = sanitized_platform
    monitor = boot.monitor
    free_before = monitor.epc_pool.free_pages
    eid, enclave = build_minimal_enclave(monitor, machine)
    heap = ENCLAVE_BASE_VA + 16 * PAGE_SIZE
    monitor.handle_enclave_page_fault(eid, heap, write=True)
    assert monitor.enclave_trim(eid, heap, 1) == 1
    monitor.eremove(eid)
    assert monitor.epc_pool.free_pages == free_before


def test_sanitizer_leaves_cycles_bit_identical():
    """The acceptance bar: same op sequence, sanitizer on vs off, every
    accounting number identical to the last bit."""
    plain = _run_lifecycle(sanitize=False)
    sanitized = _run_lifecycle(sanitize=True)
    assert plain.cycles.total == sanitized.cycles.total
    assert plain.cycles.breakdown() == sanitized.cycles.breakdown()
    assert plain.tlb.stats() == sanitized.tlb.stats()
    assert plain.llc.stats() == sanitized.llc.stats()
    assert sanitized.sanitizer.violations == 0


def test_reboot_and_relaunch_resets_monitor_shadow():
    """A second measured launch on the same machine must not inherit the
    first monitor's enclave-scoped shadow state."""
    machine = Machine(MachineConfig(sanitize=True, **SANITIZED_CONFIG))
    boot = measured_late_launch(machine,
                                monitor_private_size=32 * 1024 * 1024)
    build_minimal_enclave(boot.monitor, machine)
    machine.reboot()
    boot2 = measured_late_launch(machine,
                                 sealed_root_key=boot.sealed_root_key,
                                 monitor_private_size=32 * 1024 * 1024)
    eid, _ = build_minimal_enclave(boot2.monitor, machine)
    boot2.monitor.audit_invariants()
    assert machine.sanitizer.violations == 0
