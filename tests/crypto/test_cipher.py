"""Tests for the AEAD cipher and the DRBG."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.cipher import Drbg, aead_decrypt, aead_encrypt
from repro.errors import SealError

KEY = b"k" * 32
NONCE = b"n" * 16


def test_roundtrip():
    blob = aead_encrypt(KEY, NONCE, b"secret data", aad=b"context")
    assert aead_decrypt(KEY, blob, aad=b"context") == b"secret data"


def test_empty_plaintext_roundtrip():
    blob = aead_encrypt(KEY, NONCE, b"")
    assert aead_decrypt(KEY, blob) == b""


def test_wrong_key_fails():
    blob = aead_encrypt(KEY, NONCE, b"data")
    with pytest.raises(SealError):
        aead_decrypt(b"x" * 32, blob)


def test_wrong_aad_fails():
    blob = aead_encrypt(KEY, NONCE, b"data", aad=b"a")
    with pytest.raises(SealError):
        aead_decrypt(KEY, blob, aad=b"b")


def test_tampered_ciphertext_fails():
    blob = bytearray(aead_encrypt(KEY, NONCE, b"data"))
    blob[len(blob) // 2] ^= 1
    with pytest.raises(SealError):
        aead_decrypt(KEY, bytes(blob))


def test_truncated_blob_fails():
    with pytest.raises(SealError):
        aead_decrypt(KEY, b"short")


def test_bad_nonce_length_rejected():
    with pytest.raises(ValueError):
        aead_encrypt(KEY, b"short", b"data")


def test_ciphertext_differs_from_plaintext():
    blob = aead_encrypt(KEY, NONCE, b"A" * 100)
    assert b"A" * 100 not in blob


@given(st.binary(max_size=500), st.binary(max_size=32))
def test_roundtrip_property(plaintext, aad):
    blob = aead_encrypt(KEY, NONCE, plaintext, aad=aad)
    assert aead_decrypt(KEY, blob, aad=aad) == plaintext


def test_drbg_deterministic_from_seed():
    assert Drbg(b"seed").read(64) == Drbg(b"seed").read(64)


def test_drbg_differs_by_seed():
    assert Drbg(b"a").read(32) != Drbg(b"b").read(32)


def test_drbg_stream_advances():
    drbg = Drbg(b"seed")
    assert drbg.read(32) != drbg.read(32)


def test_drbg_randint_bits_msb_set():
    drbg = Drbg(b"seed")
    for bits in (8, 64, 512):
        value = drbg.randint_bits(bits)
        assert value.bit_length() == bits


def test_drbg_unseeded_unique():
    assert Drbg().read(32) != Drbg().read(32)
