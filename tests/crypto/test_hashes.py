"""Tests for SHA-256 / HMAC / HKDF helpers."""

import hashlib

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.hashes import hkdf, hmac_sha256, sha256


def test_sha256_matches_hashlib():
    assert sha256(b"abc") == hashlib.sha256(b"abc").digest()


def test_sha256_concatenates_chunks():
    assert sha256(b"ab", b"c") == sha256(b"abc")


def test_hmac_differs_by_key():
    assert hmac_sha256(b"k1", b"msg") != hmac_sha256(b"k2", b"msg")


def test_hmac_chunking_equivalence():
    assert hmac_sha256(b"k", b"he", b"llo") == hmac_sha256(b"k", b"hello")


def test_hkdf_known_length():
    out = hkdf(b"ikm", salt=b"salt", info=b"info", length=42)
    assert len(out) == 42


def test_hkdf_deterministic():
    assert hkdf(b"x", info=b"a") == hkdf(b"x", info=b"a")


def test_hkdf_info_separates_domains():
    assert hkdf(b"x", info=b"a") != hkdf(b"x", info=b"b")


@pytest.mark.parametrize("length", [0, -1, 256 * 32 + 1])
def test_hkdf_rejects_bad_lengths(length):
    with pytest.raises(ValueError):
        hkdf(b"ikm", length=length)


@given(st.binary(max_size=200), st.integers(min_value=1, max_value=128))
def test_hkdf_length_property(ikm, length):
    assert len(hkdf(ikm, length=length)) == length


@given(st.binary(max_size=64), st.binary(max_size=64))
def test_sha256_collision_free_on_distinct_inputs(a, b):
    if a != b:
        assert sha256(a) != sha256(b)
