"""Tests for the pure-Python RSA implementation."""

import pytest

from repro.crypto.rsa import RsaPublicKey, generate_keypair
from repro.errors import AttestationError


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(768, seed=b"rsa-test")


def test_sign_verify_roundtrip(keypair):
    sig = keypair.sign(b"message")
    assert keypair.public.verify(b"message", sig)


def test_verify_rejects_wrong_message(keypair):
    sig = keypair.sign(b"message")
    assert not keypair.public.verify(b"other", sig)


def test_verify_rejects_tampered_signature(keypair):
    sig = bytearray(keypair.sign(b"message"))
    sig[0] ^= 1
    assert not keypair.public.verify(b"message", bytes(sig))


def test_verify_rejects_wrong_length(keypair):
    assert not keypair.public.verify(b"message", b"\x00" * 10)


def test_verify_rejects_signature_from_other_key(keypair):
    other = generate_keypair(768, seed=b"other-key")
    sig = other.sign(b"message")
    assert not keypair.public.verify(b"message", sig)


def test_deterministic_keygen():
    a = generate_keypair(768, seed=b"same")
    b = generate_keypair(768, seed=b"same")
    assert a.public == b.public


def test_distinct_seeds_distinct_keys():
    a = generate_keypair(768, seed=b"one")
    b = generate_keypair(768, seed=b"two")
    assert a.public != b.public


def test_public_key_serialization_roundtrip(keypair):
    data = keypair.public.to_bytes()
    assert RsaPublicKey.from_bytes(data) == keypair.public


def test_public_key_rejects_garbage():
    with pytest.raises(AttestationError):
        RsaPublicKey.from_bytes(b"nope")


def test_fingerprint_is_stable(keypair):
    assert keypair.public.fingerprint() == keypair.public.fingerprint()
    assert len(keypair.public.fingerprint()) == 32


def test_keygen_rejects_tiny_keys():
    with pytest.raises(ValueError):
        generate_keypair(128, seed=b"tiny")


def test_modulus_has_requested_bits(keypair):
    assert keypair.public.n.bit_length() == 768
