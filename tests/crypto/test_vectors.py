"""Known-answer tests against published vectors (RFC 5869, RFC 2409)."""

from repro.crypto import dh
from repro.crypto.hashes import hkdf, hmac_sha256, sha256


class TestHkdfRfc5869:
    def test_case_1_basic(self):
        ikm = bytes.fromhex("0b" * 22)
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        okm = hkdf(ikm, salt=salt, info=info, length=42)
        assert okm == bytes.fromhex(
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865")

    def test_case_2_longer_inputs(self):
        ikm = bytes(range(0x00, 0x50))
        salt = bytes(range(0x60, 0xB0))
        info = bytes(range(0xB0, 0x100))
        okm = hkdf(ikm, salt=salt, info=info, length=82)
        assert okm == bytes.fromhex(
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c"
            "59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71"
            "cc30c58179ec3e87c14c01d5c1f3434f1d87")

    def test_case_3_zero_length_salt_info(self):
        ikm = bytes.fromhex("0b" * 22)
        okm = hkdf(ikm, salt=b"", info=b"", length=42)
        assert okm == bytes.fromhex(
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8")


class TestHmacRfc4231:
    def test_case_1(self):
        key = b"\x0b" * 20
        assert hmac_sha256(key, b"Hi There") == bytes.fromhex(
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7")

    def test_case_2(self):
        assert hmac_sha256(b"Jefe", b"what do ya want for nothing?") \
            == bytes.fromhex(
                "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843")


class TestSha256Fips:
    def test_abc(self):
        assert sha256(b"abc").hex() == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad")

    def test_empty(self):
        assert sha256(b"").hex() == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855")


class TestOakleyGroup2:
    def test_prime_matches_rfc2409(self):
        # P = 2^1024 - 2^960 - 1 + 2^64 * (floor(2^894 Pi) + 129093)
        assert dh.P.bit_length() == 1024
        assert dh.P % 2 == 1
        # Safe-prime property: (P-1)/2 is prime (spot-checked with a few
        # Fermat witnesses, which suffices as a regression guard).
        q = (dh.P - 1) // 2
        for a in (2, 3, 5, 7):
            assert pow(a, q - 1, q) == 1

    def test_generator_order(self):
        # g=2 generates the subgroup of order q in a safe-prime group:
        # 2^q mod P must be 1 or P-1.
        q = (dh.P - 1) // 2
        assert pow(dh.G, q, dh.P) in (1, dh.P - 1)
