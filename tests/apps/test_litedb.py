"""Tests for the litedb B-tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.litedb import ORDER, LiteDb
from repro.platform import TeePlatform


@pytest.fixture
def db():
    ctx = TeePlatform.native().native_context()
    return LiteDb(ctx, value_size=64)


def val(i):
    return bytes([i % 256]) * 64


def test_put_get_roundtrip(db):
    db.put(b"alpha", val(1))
    assert db.get(b"alpha") == val(1)


def test_get_missing(db):
    assert db.get(b"nope") is None


def test_update_existing(db):
    db.put(b"k", val(1))
    assert db.update(b"k", val(2))
    assert db.get(b"k") == val(2)
    assert db.count == 1


def test_update_missing_returns_false(db):
    assert not db.update(b"nope", val(1))


def test_put_overwrites(db):
    db.put(b"k", val(1))
    db.put(b"k", val(9))
    assert db.get(b"k") == val(9)
    assert db.count == 1


def test_many_inserts_stay_sorted(db):
    rng = random.Random(5)
    keys = [b"key%08d" % rng.randrange(10 ** 7) for _ in range(2000)]
    for i, k in enumerate(keys):
        db.put(k, val(i))
    db.check_invariants()
    assert db.depth() >= 2          # must actually have split
    for i, k in enumerate(keys):
        expected = val(len(keys) - 1 - keys[::-1].index(k))
        assert db.get(k) == expected


def test_scan_returns_in_order(db):
    for i in range(200):
        db.put(b"key%04d" % i, val(i))
    results = db.scan(b"key0050", 10)
    assert results == [val(i) for i in range(50, 60)]


def test_wrong_value_size_rejected(db):
    with pytest.raises(ValueError):
        db.put(b"k", b"short")


def test_memory_grows_with_records(db):
    before = db.memory_bytes
    for i in range(100):
        db.put(b"key%04d" % i, val(i))
    assert db.memory_bytes > before


def test_reads_and_updates_counted(db):
    db.put(b"k", val(1))
    db.get(b"k")
    db.update(b"k", val(2))
    assert db.reads == 1
    assert db.updates == 1


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.binary(min_size=1, max_size=12),
                          st.integers(0, 255)),
                min_size=1, max_size=300))
def test_property_matches_dict(items):
    """litedb agrees with a plain dict under arbitrary workloads."""
    ctx = TeePlatform.native().native_context()
    db = LiteDb(ctx, value_size=16)
    reference: dict[bytes, bytes] = {}
    for key, marker in items:
        value = bytes([marker]) * 16
        db.put(key, value)
        reference[key] = value
    db.check_invariants()
    for key, value in reference.items():
        assert db.get(key) == value
    assert db.count == len(reference)
