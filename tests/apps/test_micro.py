"""Tests for lmbench, speccpu, membench, and the request driver."""

import pytest

from repro.apps import membench
from repro.apps.driver import (aex_roundtrip_cycles, charge_interrupts,
                               latency_throughput_curve, measure_requests,
                               mm1_latency)
from repro.apps.lmbench import ALL_OPS, run_suite
from repro.apps.speccpu import KERNELS as SPEC_KERNELS
from repro.hw import costs
from repro.platform import TeePlatform


class TestLmbench:
    def test_suite_runs_native(self):
        platform = TeePlatform.native()
        results = run_suite(platform.machine, platform.kernel)
        assert set(results) == set(ALL_OPS)
        assert all(r.cycles > 0 for r in results.values())

    def test_virtualization_overhead_is_small(self):
        native = TeePlatform.native()
        vm = TeePlatform.hyperenclave()
        native_res = run_suite(native.machine, native.kernel)
        vm_res = run_suite(vm.machine, vm.kernel)
        for name in ALL_OPS:
            overhead = vm_res[name].cycles / native_res[name].cycles - 1
            assert overhead < 0.05, (name, overhead)

    def test_microseconds_conversion(self):
        platform = TeePlatform.native()
        result = run_suite(platform.machine, platform.kernel)["null_call"]
        assert result.microseconds == pytest.approx(
            result.cycles / 2200, rel=1e-6)


class TestSpecCpu:
    @pytest.mark.parametrize("name", sorted(SPEC_KERNELS))
    def test_kernel_runs_and_is_deterministic(self, name):
        ctx = TeePlatform.native().native_context()
        r1 = SPEC_KERNELS[name](ctx, seed=2)
        r2 = SPEC_KERNELS[name](ctx, seed=2)
        assert r1.checksum == r2.checksum
        assert r1.name == name


class TestMembench:
    def test_latency_grows_with_buffer_size(self):
        small = membench.measure_latency("none", "random", 16 * 1024)
        large = membench.measure_latency("none", "random", 64 * 1024 * 1024)
        assert large.cycles_per_access > 5 * small.cycles_per_access

    def test_sequential_cheaper_than_random(self):
        size = 64 * 1024 * 1024
        seq = membench.measure_latency("none", "seq", size)
        rand = membench.measure_latency("none", "random", size)
        assert seq.cycles_per_access < rand.cycles_per_access

    def test_encryption_adds_cost_beyond_llc(self):
        size = 64 * 1024 * 1024
        plain = membench.measure_latency("none", "seq", size)
        sme = membench.measure_latency("amd-sme", "seq", size)
        mee = membench.measure_latency("intel-mee", "seq", size)
        assert plain.cycles_per_access < sme.cycles_per_access \
            < mee.cycles_per_access

    def test_epc_cliff(self):
        size = 256 * 1024 * 1024       # > 93 MB EPC
        without = membench.measure_latency("intel-mee", "random", size)
        with_epc = membench.measure_latency("intel-mee", "random", size,
                                            epc_bytes=costs.SGX_EPC_SIZE)
        assert with_epc.cycles_per_access > 20 * without.cycles_per_access

    def test_normalized_overhead(self):
        points = membench.latency_curve("none", "random",
                                        sizes=[16 * 1024, 64 * 1024 * 1024])
        ratios = membench.normalized_overhead(points)
        assert ratios[0] == pytest.approx(1.0)
        assert ratios[1] > 1.0


class TestDriver:
    def test_aex_roundtrip_ordering(self):
        assert aex_roundtrip_cycles("sgx") > aex_roundtrip_cycles("gu") \
            > aex_roundtrip_cycles("hu")

    def test_charge_interrupts_native_vs_enclave(self):
        platform = TeePlatform.native()
        machine = platform.machine
        machine.interrupts.interval_cycles = 1000
        with machine.cycles.measure() as span:
            n = charge_interrupts(machine, 5000, None)
        assert n == 5
        native_cost = span.elapsed
        with machine.cycles.measure() as span:
            charge_interrupts(machine, 5000, "gu")
        assert span.elapsed > native_cost

    def test_measure_requests(self):
        platform = TeePlatform.native()
        serve = lambda: platform.machine.cycles.charge(1000, "work")
        stats = measure_requests(platform.machine, serve, 10, mode_key=None,
                                 warmup=2)
        assert stats.requests == 10
        assert stats.mean_cycles >= 1000

    def test_mm1(self):
        assert mm1_latency(100, 0.0) == 100
        assert mm1_latency(100, 0.5) == 200
        with pytest.raises(ValueError):
            mm1_latency(100, 1.0)

    def test_latency_throughput_curve_shape(self):
        curve = latency_throughput_curve(1000, points=5)
        throughputs = [t for t, _ in curve]
        latencies = [l for _, l in curve]
        assert throughputs == sorted(throughputs)
        assert latencies == sorted(latencies)
