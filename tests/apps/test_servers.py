"""End-to-end tests for the HTTP and RESP servers, native and in-enclave."""

import pytest

from repro.apps.kvserver import (KV_PORT, RespServer, decode_reply,
                                 encode_command, make_kv_enclave_image)
from repro.apps.webserver import (HTTP_PORT, HttpServer, http_request,
                                  make_http_enclave_image, parse_response)
from repro.libos.native import NativeLibos
from repro.libos.occlum import register_libos_ocalls
from repro.monitor.structs import EnclaveMode
from repro.platform import TeePlatform


# ------------------------------------------------------------------ native --

@pytest.fixture
def native():
    platform = TeePlatform.native()
    libos = NativeLibos(platform.kernel, platform.loopback, platform.os_vfs)
    return platform, libos


class TestHttpNative:
    def test_serves_a_document(self, native):
        platform, libos = native
        ctx = platform.native_context()
        server = HttpServer(libos, ctx.compute)
        server.load_document("/index.html", b"<html>hello</html>")
        client = platform.loopback.connect(HTTP_PORT)
        conn = server.accept()
        platform.loopback.send(client, http_request("/index.html"),
                               from_client=True)
        server.handle_request(conn)
        status, body = parse_response(
            platform.loopback.recv(client, from_client=False))
        assert status == 200
        assert body == b"<html>hello</html>"

    def test_404(self, native):
        platform, libos = native
        server = HttpServer(libos, platform.native_context().compute)
        client = platform.loopback.connect(HTTP_PORT)
        conn = server.accept()
        platform.loopback.send(client, http_request("/missing"),
                               from_client=True)
        server.handle_request(conn)
        status, _ = parse_response(
            platform.loopback.recv(client, from_client=False))
        assert status == 404
        assert server.errors == 1

    def test_400_on_garbage(self, native):
        platform, libos = native
        server = HttpServer(libos, platform.native_context().compute)
        client = platform.loopback.connect(HTTP_PORT)
        conn = server.accept()
        platform.loopback.send(client, b"NOT HTTP AT ALL",
                               from_client=True)
        server.handle_request(conn)
        status, _ = parse_response(
            platform.loopback.recv(client, from_client=False))
        assert status == 400

    def test_idle_connection_returns_zero(self, native):
        platform, libos = native
        server = HttpServer(libos, platform.native_context().compute)
        platform.loopback.connect(HTTP_PORT)
        conn = server.accept()
        assert server.handle_request(conn) == 0

    def test_keepalive_multiple_requests(self, native):
        platform, libos = native
        server = HttpServer(libos, platform.native_context().compute)
        server.load_document("/a", b"A")
        client = platform.loopback.connect(HTTP_PORT)
        conn = server.accept()
        for _ in range(3):
            platform.loopback.send(client, http_request("/a"),
                                   from_client=True)
            server.handle_request(conn)
            status, body = parse_response(
                platform.loopback.recv(client, from_client=False))
            assert (status, body) == (200, b"A")
        assert server.requests_served == 3


class TestRespNative:
    def test_set_get(self, native):
        platform, libos = native
        ctx = platform.native_context()
        server = RespServer(libos, ctx)
        client = platform.loopback.connect(KV_PORT)
        conn = server.accept()

        def roundtrip(*parts):
            platform.loopback.send(client, encode_command(*parts),
                                   from_client=True)
            server.handle_command(conn)
            return decode_reply(
                platform.loopback.recv(client, from_client=False))

        assert roundtrip(b"SET", b"k", b"v") == b"OK"
        assert roundtrip(b"GET", b"k") == b"v"
        assert roundtrip(b"GET", b"missing") is None
        assert roundtrip(b"DEL", b"k") == 1
        assert roundtrip(b"GET", b"k") is None
        assert roundtrip(b"INCR", b"counter") == 1
        assert roundtrip(b"INCR", b"counter") == 2
        assert roundtrip(b"PING") == b"PONG"

    def test_bad_command_is_error(self, native):
        platform, libos = native
        server = RespServer(libos, platform.native_context())
        client = platform.loopback.connect(KV_PORT)
        conn = server.accept()
        platform.loopback.send(client, encode_command(b"EXPLODE"),
                               from_client=True)
        server.handle_command(conn)
        with pytest.raises(ValueError):
            decode_reply(platform.loopback.recv(client, from_client=False))

    def test_resp_encoding_roundtrip(self):
        assert encode_command(b"GET", b"k") == b"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n"
        assert decode_reply(b"$5\r\nhello\r\n") == b"hello"
        assert decode_reply(b":42\r\n") == 42


# ------------------------------------------------------------------ enclave --

class TestHttpInEnclave:
    @pytest.mark.parametrize("mode", [EnclaveMode.GU, EnclaveMode.HU])
    def test_full_flow(self, mode):
        platform = TeePlatform.hyperenclave()
        image = make_http_enclave_image(mode, heap_size=8 * 1024 * 1024)
        handle = platform.load_enclave(image)
        register_libos_ocalls(handle, platform.loopback)

        handle.proxies.http_init(port=HTTP_PORT)
        handle.proxies.http_load(path=b"/index.html", plen=11,
                                 doc=b"enclave doc", n=11)
        client = platform.loopback.connect(HTTP_PORT)
        conn = handle.proxies.http_accept(port=HTTP_PORT)
        platform.loopback.send(client, http_request("/index.html"),
                               from_client=True)
        size = handle.proxies.http_serve(conn=conn)
        assert size > 0
        status, body = parse_response(
            platform.loopback.recv(client, from_client=False))
        assert status == 200
        assert body == b"enclave doc"
        handle.destroy()


class TestRespInEnclave:
    def test_full_flow_sgx_and_hyperenclave(self):
        for factory in (TeePlatform.hyperenclave, TeePlatform.intel_sgx):
            platform = factory()
            mode = (EnclaveMode.SGX if platform.kind == "sgx"
                    else EnclaveMode.GU)
            image = make_kv_enclave_image(mode, heap_size=8 * 1024 * 1024)
            handle = platform.load_enclave(image)
            register_libos_ocalls(handle, platform.loopback)

            handle.proxies.kv_init(port=KV_PORT)
            client = platform.loopback.connect(KV_PORT)
            conn = handle.proxies.kv_accept(port=KV_PORT)

            platform.loopback.send(client, encode_command(b"SET", b"k",
                                                          b"value"),
                                   from_client=True)
            handle.proxies.kv_serve(conn=conn)
            assert decode_reply(platform.loopback.recv(
                client, from_client=False)) == b"OK"

            platform.loopback.send(client, encode_command(b"GET", b"k"),
                                   from_client=True)
            handle.proxies.kv_serve(conn=conn)
            assert decode_reply(platform.loopback.recv(
                client, from_client=False)) == b"value"
            handle.destroy()
