"""Tests for the NBench kernels: correctness and determinism."""

import pytest

from repro.apps.nbench import KERNELS, run_kernel
from repro.platform import TeePlatform


@pytest.fixture(scope="module")
def ctx():
    return TeePlatform.native().native_context()


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_kernel_runs_and_is_deterministic(ctx, name):
    r1 = run_kernel(ctx, name, seed=3)
    r2 = run_kernel(ctx, name, seed=3)
    assert r1.checksum == r2.checksum
    assert r1.name == name
    assert r1.ops > 0


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_kernel_charges_cycles(name):
    platform = TeePlatform.native()
    ctx = platform.native_context()
    with platform.cycles.measure() as span:
        run_kernel(ctx, name)
    assert span.elapsed > 0


def test_seeds_change_results(ctx):
    a = run_kernel(ctx, "numeric_sort", seed=1)
    b = run_kernel(ctx, "numeric_sort", seed=2)
    assert a.checksum != b.checksum


def test_kernels_run_inside_enclave():
    """The same kernel code must run under an EnclaveContext."""
    from repro.monitor.structs import EnclaveConfig, EnclaveMode
    from repro.sdk.image import EnclaveImage

    def t_run(ctx, kernel_id):
        name = sorted(KERNELS)[kernel_id]
        return run_kernel(ctx, name).checksum

    edl = """enclave { trusted { public uint64 t_run(uint64 kernel_id); };
             untrusted { }; };"""
    image = EnclaveImage.build(
        "nbench", edl, {"t_run": t_run},
        EnclaveConfig(mode=EnclaveMode.GU, heap_size=16 * 1024 * 1024))
    platform = TeePlatform.hyperenclave()
    handle = platform.load_enclave(image)
    native_ctx = TeePlatform.native().native_context()
    for kernel_id, name in enumerate(sorted(KERNELS)[:3]):
        enclave_result = handle.proxies.t_run(kernel_id=kernel_id)
        native_result = run_kernel(native_ctx, name).checksum
        assert enclave_result == native_result
