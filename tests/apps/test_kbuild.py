"""Tests for the kernel-build workload."""

import pytest

from repro.apps.kbuild import build, compile_unit, link, make_source_tree
from repro.osim.vfs import Vfs
from repro.platform import TeePlatform

from tests.sdk.conftest import SMALL


@pytest.fixture
def native():
    return TeePlatform.native(SMALL)


def test_source_tree_deterministic(native):
    vfs_a, vfs_b = Vfs(), Vfs()
    paths_a = make_source_tree(vfs_a, 5, seed=1)
    paths_b = make_source_tree(vfs_b, 5, seed=1)
    assert paths_a == paths_b
    assert all(vfs_a.read_file(p) == vfs_b.read_file(p) for p in paths_a)


def test_compile_unit_produces_object(native):
    vfs = Vfs(native.machine.cycles.charge)
    (path,) = make_source_tree(vfs, 1)
    obj = compile_unit(native.machine, native.kernel, vfs, path)
    assert vfs.exists(obj)
    assert vfs.stat(obj) > 0


def test_compile_unit_releases_processes(native):
    vfs = Vfs()
    paths = make_source_tree(vfs, 3)
    before = len(native.kernel.processes)
    for path in paths:
        compile_unit(native.machine, native.kernel, vfs, path)
    assert len(native.kernel.processes) == before


def test_link_produces_image(native):
    vfs = Vfs()
    paths = make_source_tree(vfs, 3)
    objects = [compile_unit(native.machine, native.kernel, vfs, p)
               for p in paths]
    total = link(native.machine, vfs, objects)
    assert total > 0
    assert vfs.exists("/vmlinuz")


def test_full_build_charges_cycles(native):
    cycles = build(native.machine, native.kernel, n_units=5)
    assert cycles > 0


def test_vm_overhead_below_one_percent():
    native = TeePlatform.native(SMALL)
    vm = TeePlatform.hyperenclave(SMALL)
    native_cycles = build(native.machine, native.kernel, n_units=8)
    vm_cycles = build(vm.machine, vm.kernel, n_units=8)
    assert vm_cycles / native_cycles - 1 < 0.01
