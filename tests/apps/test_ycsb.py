"""Tests for the YCSB generator."""

import collections

import pytest

from repro.apps.ycsb import (Operation, ZipfianGenerator, load_phase,
                             record_key, workload_a)


class TestZipfian:
    def test_range(self):
        z = ZipfianGenerator(100, seed=1)
        draws = [z.next() for _ in range(2000)]
        assert all(0 <= d < 100 for d in draws)

    def test_skew(self):
        """Hot keys dominate: the top decile gets most of the traffic."""
        z = ZipfianGenerator(1000, seed=1)
        counts = collections.Counter(z.next() for _ in range(20000))
        top_decile = sum(counts[i] for i in range(100))
        assert top_decile > 20000 * 0.5

    def test_deterministic(self):
        a = ZipfianGenerator(50, seed=9)
        b = ZipfianGenerator(50, seed=9)
        assert [a.next() for _ in range(50)] == [b.next() for _ in range(50)]

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=1.5)


class TestWorkloadA:
    def test_mix_is_half_reads(self):
        ops = list(workload_a(100, 4000, value_size=16))
        reads = sum(1 for op in ops if op.kind == "read")
        assert 0.45 < reads / len(ops) < 0.55

    def test_updates_carry_values(self):
        ops = list(workload_a(10, 100, value_size=32))
        for op in ops:
            if op.kind == "update":
                assert len(op.value) == 32
            else:
                assert op.value is None

    def test_keys_within_universe(self):
        ops = list(workload_a(10, 500, value_size=16))
        valid = {record_key(i) for i in range(10)}
        # Zipfian can emit index == n on the tail; clamp-check coverage.
        assert sum(op.key in valid for op in ops) > 450


class TestLoadPhase:
    def test_loads_every_record_once(self):
        ops = list(load_phase(50, value_size=16))
        assert len(ops) == 50
        assert {op.key for op in ops} == {record_key(i) for i in range(50)}
        assert all(op.kind == "insert" for op in ops)


def test_record_key_format():
    assert record_key(7) == b"user000000000007"


class TestFullWorkloadSuite:
    def test_all_letters_produce_ops(self):
        from repro.apps.ycsb import workload
        for letter in "ABCDEF":
            ops = list(workload(letter, 100, 200, value_size=16))
            assert len(ops) >= 200

    def test_unknown_letter_rejected(self):
        from repro.apps.ycsb import workload
        with pytest.raises(ValueError):
            list(workload("Z", 10, 10))

    def test_workload_c_is_read_only(self):
        from repro.apps.ycsb import workload
        ops = list(workload("C", 100, 500, value_size=16))
        assert all(op.kind == "read" for op in ops)

    def test_workload_e_is_scan_heavy(self):
        from repro.apps.ycsb import workload
        ops = list(workload("E", 100, 1000, value_size=16))
        scans = sum(1 for op in ops if op.kind == "scan")
        assert scans / len(ops) > 0.9

    def test_workload_f_rmw_pairs(self):
        from repro.apps.ycsb import workload
        ops = list(workload("F", 100, 1000, value_size=16))
        # Every update in F is an RMW: preceded by a read of the same key.
        for i, op in enumerate(ops):
            if op.kind == "update":
                assert ops[i - 1].kind == "read"
                assert ops[i - 1].key == op.key

    def test_workload_d_inserts_fresh_keys(self):
        from repro.apps.ycsb import record_key, workload
        ops = list(workload("D", 100, 2000, value_size=16))
        inserted = [op.key for op in ops if op.kind == "insert"]
        assert inserted
        assert inserted[0] == record_key(100)      # beyond the loaded set
        assert inserted == sorted(set(inserted))   # fresh and unique

    def test_deterministic_per_seed(self):
        from repro.apps.ycsb import workload
        a = list(workload("A", 50, 100, value_size=16, seed=3))
        b = list(workload("A", 50, 100, value_size=16, seed=3))
        assert [(o.kind, o.key) for o in a] == [(o.kind, o.key) for o in b]
