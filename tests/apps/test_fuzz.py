"""Fuzz-style property tests for the protocol parsers.

Servers face untrusted network bytes; whatever arrives, they must answer
with a well-formed error instead of crashing (the interface-hardening the
paper's Sec 3.4 toolchain discussion is about)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.kvserver import (RespServer, decode_reply, encode_command)
from repro.apps.webserver import HttpServer, parse_response
from repro.libos.native import NativeLibos
from repro.platform import TeePlatform


@pytest.fixture(scope="module")
def http_setup():
    platform = TeePlatform.native()
    libos = NativeLibos(platform.kernel, platform.loopback, platform.os_vfs)
    server = HttpServer(libos, platform.native_context().compute, port=8080)
    server.load_document("/ok", b"fine")
    client = platform.loopback.connect(8080)
    conn = server.accept()
    return platform, server, client, conn


@settings(max_examples=150, deadline=None)
@given(st.binary(min_size=1, max_size=200))
def test_http_server_never_crashes(http_setup, payload):
    platform, server, client, conn = http_setup
    platform.loopback.send(client, payload, from_client=True)
    server.handle_request(conn)
    response = platform.loopback.recv(client, from_client=False)
    status, _ = parse_response(response)
    assert status in (200, 400, 404)


@settings(max_examples=150, deadline=None)
@given(st.binary(min_size=1, max_size=200))
def test_resp_server_never_crashes(payload):
    platform = TeePlatform.native()
    libos = NativeLibos(platform.kernel, platform.loopback, platform.os_vfs)
    server = RespServer(libos, platform.native_context(), port=6400)
    client = platform.loopback.connect(6400)
    conn = server.accept()
    platform.loopback.send(client, payload, from_client=True)
    server.handle_command(conn)
    reply = platform.loopback.recv(client, from_client=False)
    # Every reply is valid RESP: either a value or a -ERR.
    assert reply[:1] in (b"+", b"-", b":", b"$")


@settings(max_examples=100, deadline=None)
@given(st.lists(st.binary(min_size=1, max_size=40), min_size=1,
                max_size=5))
def test_resp_command_encoding_parses_back(parts):
    """encode_command output is always parseable by the server."""
    encoded = encode_command(*parts)
    parsed = RespServer._parse_command(encoded)
    assert parsed == parts


@settings(max_examples=100, deadline=None)
@given(st.binary(max_size=60))
def test_resp_bulk_reply_roundtrip(value):
    reply = b"$%d\r\n%s\r\n" % (len(value), value)
    assert decode_reply(reply) == value


@settings(max_examples=100, deadline=None)
@given(st.binary(min_size=0, max_size=120),
       st.sampled_from([200, 400, 404]))
def test_http_response_roundtrip(body, status):
    from repro.apps.webserver import _response
    status_out, body_out = parse_response(_response(status, body))
    assert (status_out, body_out) == (status, body)
