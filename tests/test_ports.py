"""Tests for the ARM/RISC-V port models (Sec 8)."""

import dataclasses

import pytest

from repro.monitor.structs import EnclaveMode
from repro.ports import ALL_PORTS, ARMV8_PORT, RISCV_PORT, validate_port
from repro.ports.base import (LevelMapping, PortError, PortMapping,
                              SwitchMechanism)


@pytest.mark.parametrize("name", sorted(ALL_PORTS))
def test_ports_validate(name):
    validate_port(ALL_PORTS[name])


def test_armv8_level_assignment():
    """The paper's explicit mapping: EL2 / EL1 / EL0, enclaves EL1 or EL0."""
    assert ARMV8_PORT.for_module("monitor").level == "EL2"
    assert ARMV8_PORT.for_module("primary-os").level == "EL1"
    assert ARMV8_PORT.for_module("app").level == "EL0"
    assert ARMV8_PORT.enclave_mapping(EnclaveMode.GU).level == "EL0"
    assert ARMV8_PORT.enclave_mapping(EnclaveMode.P).level == "EL1"


def test_riscv_level_assignment():
    assert RISCV_PORT.for_module("monitor").level == "HS-mode"
    assert RISCV_PORT.for_module("primary-os").level == "VS-mode"
    assert RISCV_PORT.enclave_mapping(EnclaveMode.GU).level == "VU-mode"
    assert RISCV_PORT.enclave_mapping(EnclaveMode.P).level == "VS-mode"


@pytest.mark.parametrize("port", [ARMV8_PORT, RISCV_PORT])
def test_hu_is_cheapest_everywhere(port):
    """Table 1's structure must survive the port: HU < GU <= P."""
    hu = port.enclave_mapping(EnclaveMode.HU).entry_cycles
    gu = port.enclave_mapping(EnclaveMode.GU).entry_cycles
    p = port.enclave_mapping(EnclaveMode.P).entry_cycles
    assert hu < gu <= p


@pytest.mark.parametrize("port", [ARMV8_PORT, RISCV_PORT])
def test_both_require_two_level_translation(port):
    assert port.stage2_name
    assert port.has_tpm_story


def test_missing_module_rejected():
    broken = PortMapping(isa="broken", stage2_name="x", has_tpm_story="y",
                         levels=(LevelMapping("monitor", "L2"),))
    with pytest.raises(PortError):
        validate_port(broken)


def test_monitor_with_entry_rejected():
    levels = list(ARMV8_PORT.levels)
    levels[0] = LevelMapping("monitor", "EL2", SwitchMechanism.HYPERCALL,
                             100)
    broken = dataclasses.replace(ARMV8_PORT, levels=tuple(levels))
    with pytest.raises(PortError):
        validate_port(broken)


def test_inverted_costs_rejected():
    levels = []
    for m in ARMV8_PORT.levels:
        if m.module == "enclave-hu":
            m = dataclasses.replace(m, entry_cycles=99_999)
        levels.append(m)
    broken = dataclasses.replace(ARMV8_PORT, levels=tuple(levels))
    with pytest.raises(PortError):
        validate_port(broken)


def test_os_sharing_monitor_level_rejected():
    levels = []
    for m in ARMV8_PORT.levels:
        if m.module == "primary-os":
            m = dataclasses.replace(m, level="EL2")
        levels.append(m)
    broken = dataclasses.replace(ARMV8_PORT, levels=tuple(levels))
    with pytest.raises(PortError):
        validate_port(broken)


def test_unknown_module_lookup():
    with pytest.raises(PortError):
        ARMV8_PORT.for_module("hyperdrive")
