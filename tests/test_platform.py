"""Tests for the TeePlatform facade and NativeContext."""

import pytest

from repro.errors import SdkError
from repro.monitor.structs import EnclaveConfig, EnclaveMode
from repro.platform import (DEFAULT_VENDOR_KEY, NativeContext, TeePlatform,
                            replace_image_mode)
from repro.sdk.image import EnclaveImage

EDL = "enclave { trusted { public uint64 f(); }; untrusted { }; };"


def image(mode=EnclaveMode.GU):
    return EnclaveImage.build("p", EDL, {"f": lambda ctx: 7},
                              EnclaveConfig(mode=mode))


class TestConstruction:
    def test_hyperenclave_boots_with_monitor(self):
        p = TeePlatform.hyperenclave()
        assert p.kind == "hyperenclave"
        assert p.monitor is not None
        assert p.monitor.os_demoted
        assert p.machine.encryption.name == "amd-sme"

    def test_sgx_uses_mee(self):
        p = TeePlatform.intel_sgx()
        assert p.machine.encryption.name == "intel-mee"

    def test_native_has_no_monitor(self):
        p = TeePlatform.native()
        assert p.monitor is None
        assert p.urts is None
        assert p.machine.encryption.name == "none"


class TestEnclaveLoading:
    def test_load_and_call(self):
        p = TeePlatform.hyperenclave()
        handle = p.load_enclave(image())
        assert handle.proxies.f() == 7

    def test_sgx_platform_coerces_mode(self):
        p = TeePlatform.intel_sgx()
        handle = p.load_enclave(image(EnclaveMode.GU))
        assert handle.enclave.mode is EnclaveMode.SGX
        assert not handle.use_marshalling

    def test_hyperenclave_rejects_sgx_image(self):
        p = TeePlatform.hyperenclave()
        with pytest.raises(SdkError):
            p.load_enclave(image(EnclaveMode.SGX))

    def test_native_cannot_load(self):
        with pytest.raises(SdkError):
            TeePlatform.native().load_enclave(image())

    def test_default_vendor_key_used(self):
        p = TeePlatform.hyperenclave()
        handle = p.load_enclave(image())
        assert handle.enclave.secs.mrsigner == \
            __import__("repro.crypto.hashes", fromlist=["sha256"]).sha256(
                DEFAULT_VENDOR_KEY.public.to_bytes())


class TestNativeContext:
    def test_context_surface(self):
        ctx = TeePlatform.native().native_context()
        va = ctx.malloc(100)
        ctx.touch(va, 64)
        ctx.touch_sequential(va, 100)
        ctx.compute(10)
        assert len(ctx.random(8)) == 8

    def test_heap_reset(self):
        ctx = TeePlatform.native().native_context()
        va = ctx.malloc(32)
        ctx.heap_reset()
        assert ctx.malloc(32) == va

    def test_malloc_rejects_zero(self):
        ctx = TeePlatform.native().native_context()
        with pytest.raises(SdkError):
            ctx.malloc(0)

    def test_native_context_only_on_native(self):
        with pytest.raises(SdkError):
            TeePlatform.hyperenclave().native_context()


def test_replace_image_mode_copies():
    original = image(EnclaveMode.GU)
    changed = replace_image_mode(original, EnclaveMode.P)
    assert changed.config.mode is EnclaveMode.P
    assert original.config.mode is EnclaveMode.GU
