"""Fixtures: a booted machine with kernel + kernel module."""

import pytest

from repro.hw.machine import Machine, MachineConfig
from repro.monitor.boot import measured_late_launch
from repro.osim.kernel import Kernel
from repro.osim.kmod import HyperEnclaveDevice


@pytest.fixture
def system():
    machine = Machine(MachineConfig(
        phys_size=512 * 1024 * 1024,
        reserved_base=256 * 1024 * 1024,
        reserved_size=128 * 1024 * 1024,
    ))
    boot = measured_late_launch(machine,
                                monitor_private_size=32 * 1024 * 1024)
    kernel = Kernel(machine, boot.monitor)
    device = HyperEnclaveDevice(kernel, boot.monitor)
    return machine, boot, kernel, device
