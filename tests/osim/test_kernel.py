"""Tests for the primary-OS kernel: processes, mmap, signals, policing."""

import pytest

from repro.errors import OsError, PageFault, SecurityViolation
from repro.hw.phys import PAGE_SIZE


class TestProcesses:
    def test_spawn_assigns_pids(self, system):
        _, _, kernel, _ = system
        p1, p2 = kernel.spawn(), kernel.spawn()
        assert p1.pid != p2.pid

    def test_exit_releases_memory(self, system):
        _, _, kernel, _ = system
        before = kernel.frame_pool.free_pages
        p = kernel.spawn()
        kernel.mmap(p, 4 * PAGE_SIZE, populate=True)
        kernel.exit(p)
        assert kernel.frame_pool.free_pages == before

    def test_dead_process_cannot_translate(self, system):
        _, _, kernel, _ = system
        p = kernel.spawn()
        vma = kernel.mmap(p, PAGE_SIZE, populate=True)
        kernel.exit(p)
        with pytest.raises(OsError):
            p.translate(vma.start)

    def test_schedule_round_robin(self, system):
        _, _, kernel, _ = system
        p1, p2 = kernel.spawn(), kernel.spawn()
        order = [kernel.schedule().pid for _ in range(4)]
        assert order == [p1.pid, p2.pid, p1.pid, p2.pid]

    def test_schedule_empty_queue(self, system):
        _, _, kernel, _ = system
        assert kernel.schedule() is None


class TestMmap:
    def test_populate_commits_frames(self, system):
        _, _, kernel, _ = system
        p = kernel.spawn()
        vma = kernel.mmap(p, 2 * PAGE_SIZE, populate=True)
        assert len(vma.frames) == 2
        assert p.translate(vma.start)

    def test_lazy_mmap_faults_then_commits(self, system):
        _, _, kernel, _ = system
        p = kernel.spawn()
        vma = kernel.mmap(p, 2 * PAGE_SIZE, populate=False)
        with pytest.raises(PageFault):
            p.translate(vma.start)
        kernel.handle_user_fault(p, vma.start)
        assert p.translate(vma.start)

    def test_bad_size_rejected(self, system):
        _, _, kernel, _ = system
        p = kernel.spawn()
        with pytest.raises(OsError):
            kernel.mmap(p, 123)

    def test_overlap_rejected(self, system):
        _, _, kernel, _ = system
        p = kernel.spawn()
        vma = kernel.mmap(p, PAGE_SIZE, populate=True)
        with pytest.raises(OsError):
            kernel.mmap(p, PAGE_SIZE, addr=vma.start)

    def test_munmap_releases(self, system):
        _, _, kernel, _ = system
        p = kernel.spawn()
        # Warm the page-table path so intermediate table frames (which
        # persist until the process exits) don't skew the count.
        warm = kernel.mmap(p, PAGE_SIZE, populate=True)
        kernel.munmap(p, warm)
        before = kernel.frame_pool.free_pages
        vma = kernel.mmap(p, PAGE_SIZE, populate=True, addr=warm.start)
        kernel.munmap(p, vma)
        assert kernel.frame_pool.free_pages == before
        with pytest.raises(PageFault):
            p.translate(vma.start)

    def test_pinned_vma_cannot_be_unmapped(self, system):
        _, _, kernel, _ = system
        p = kernel.spawn()
        vma = kernel.mmap(p, PAGE_SIZE, populate=True)
        kernel.pin(p, vma)
        with pytest.raises(OsError):
            kernel.munmap(p, vma)

    def test_pin_requires_populated(self, system):
        _, _, kernel, _ = system
        p = kernel.spawn()
        vma = kernel.mmap(p, PAGE_SIZE, populate=False)
        with pytest.raises(OsError):
            kernel.pin(p, vma)

    def test_write_fault_on_readonly_vma(self, system):
        _, _, kernel, _ = system
        p = kernel.spawn()
        vma = kernel.mmap(p, PAGE_SIZE, writable=False, populate=False)
        with pytest.raises(PageFault):
            kernel.handle_user_fault(p, vma.start, write=True)


class TestUserMemory:
    def test_read_write_roundtrip(self, system):
        _, _, kernel, _ = system
        p = kernel.spawn()
        vma = kernel.mmap(p, PAGE_SIZE, populate=True)
        kernel.user_write(p, vma.start + 10, b"hello user")
        assert kernel.user_read(p, vma.start + 10, 10) == b"hello user"

    def test_demand_paging_on_write(self, system):
        _, _, kernel, _ = system
        p = kernel.spawn()
        vma = kernel.mmap(p, 4 * PAGE_SIZE, populate=False)
        kernel.user_write(p, vma.start + PAGE_SIZE, b"lazy")
        assert kernel.user_read(p, vma.start + PAGE_SIZE, 4) == b"lazy"

    def test_cross_page_write(self, system):
        _, _, kernel, _ = system
        p = kernel.spawn()
        vma = kernel.mmap(p, 2 * PAGE_SIZE, populate=True)
        data = bytes(range(100))
        kernel.user_write(p, vma.start + PAGE_SIZE - 50, data)
        assert kernel.user_read(p, vma.start + PAGE_SIZE - 50, 100) == data

    def test_os_cannot_map_user_page_at_enclave_frame(self, system):
        """R-1: even if the OS forges a PTE to an enclave frame, the
        physical access is blocked."""
        machine, boot, kernel, _ = system
        from tests.monitor.conftest import build_minimal_enclave
        eid, enclave = build_minimal_enclave(boot.monitor, machine)
        p = kernel.spawn()
        vma = kernel.mmap(p, PAGE_SIZE, populate=True)
        # Malicious kernel: remap the user page onto the enclave's frame.
        # The sanitizer (REPRO_SANITIZE=1) rejects the forged PTE at map
        # time; without it, the physical access is what gets blocked.
        from repro.hw.paging import PageTableFlags
        p.pt.unmap(vma.start)
        with pytest.raises(SecurityViolation):
            p.pt.map(vma.start, enclave.pages[0].pa, PageTableFlags.URW)
            kernel.user_read(p, vma.start, 8)


class TestSignals:
    def test_delivery_to_handler(self, system):
        _, _, kernel, _ = system
        p = kernel.spawn()
        seen = {}
        p.register_signal_handler(4, lambda **info: seen.update(info))
        kernel.deliver_signal(p, 4, vector=6)
        assert seen == {"vector": 6}

    def test_unhandled_signal_kills(self, system):
        _, _, kernel, _ = system
        p = kernel.spawn()
        with pytest.raises(OsError, match="killed"):
            kernel.deliver_signal(p, 11)

    def test_signal_charges_dispatch_cost(self, system):
        from repro.hw import costs
        machine, _, kernel, _ = system
        p = kernel.spawn()
        p.register_signal_handler(4, lambda **info: None)
        with machine.cycles.measure() as span:
            kernel.deliver_signal(p, 4)
        assert span.elapsed == costs.OS_SIGNAL_DISPATCH
