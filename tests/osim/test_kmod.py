"""Tests for the /dev/hyper_enclave kernel module."""

import pytest

from repro.errors import OsError
from repro.hw.phys import PAGE_SIZE
from repro.monitor.structs import EnclaveConfig, PagePerm, PageType
from repro.osim.kmod import Ioctl


@pytest.fixture
def proc(system):
    _, _, kernel, _ = system
    return kernel.spawn()


def test_ecreate_via_ioctl(system, proc):
    _, boot, _, device = system
    eid = device.ioctl(proc, Ioctl.ECREATE, config=EnclaveConfig(),
                       size=16 * PAGE_SIZE)
    assert eid in boot.monitor.enclaves


def test_full_lifecycle_via_ioctls(system, proc):
    machine, boot, kernel, device = system
    from repro.monitor.enclave import ENCLAVE_BASE_VA
    from repro.monitor.structs import Sigstruct
    from tests.monitor.conftest import VENDOR_KEY

    eid = device.ioctl(proc, Ioctl.ECREATE, config=EnclaveConfig(),
                       size=32 * PAGE_SIZE)
    device.ioctl(proc, Ioctl.EADD, enclave_id=eid, offset=0,
                 content=b"code", page_type=PageType.REG,
                 perms=PagePerm.RX)
    device.ioctl(proc, Ioctl.ADD_TCS, enclave_id=eid, offset=PAGE_SIZE,
                 entry_va=ENCLAVE_BASE_VA)
    device.ioctl(proc, Ioctl.RESERVE_REGION, enclave_id=eid,
                 start_va=ENCLAVE_BASE_VA + 16 * PAGE_SIZE,
                 size=8 * PAGE_SIZE)
    mrenclave = boot.monitor.enclaves[eid].measurement.finalize()
    device.ioctl(proc, Ioctl.EINIT, enclave_id=eid,
                 sigstruct=Sigstruct.sign(mrenclave, VENDOR_KEY))
    assert boot.monitor.enclaves[eid].secs.mrenclave == mrenclave
    device.ioctl(proc, Ioctl.EREMOVE, enclave_id=eid)
    assert eid not in boot.monitor.enclaves


def test_pin_buffer_ioctl(system, proc):
    _, _, kernel, device = system
    vma = kernel.mmap(proc, PAGE_SIZE, populate=True)
    device.ioctl(proc, Ioctl.PIN_BUFFER, vma=vma)
    assert vma.pinned


def test_unknown_ioctl_rejected(system, proc):
    _, _, _, device = system
    with pytest.raises(OsError):
        device.ioctl(proc, "IOCTL_MAGIC_0xBEEF")


def test_every_ioctl_is_a_syscall(system, proc):
    _, _, kernel, device = system
    before = kernel.syscalls
    device.ioctl(proc, Ioctl.ECREATE, config=EnclaveConfig(),
                 size=16 * PAGE_SIZE)
    assert kernel.syscalls == before + 1


def test_device_path():
    from repro.osim.kmod import HyperEnclaveDevice
    assert HyperEnclaveDevice.path == "/dev/hyper_enclave"
