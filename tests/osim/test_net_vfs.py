"""Tests for the loopback network and the VFS."""

import pytest

from repro.errors import OsError
from repro.osim.net import Loopback
from repro.osim.vfs import Vfs


class TestLoopback:
    @pytest.fixture
    def net(self, system):
        machine, *_ = system
        return Loopback(machine)

    def test_connect_accept_roundtrip(self, net):
        net.listen(80)
        client = net.connect(80)
        server = net.accept(80)
        assert server is client

    def test_send_recv_both_directions(self, net):
        net.listen(80)
        conn = net.connect(80)
        net.accept(80)
        net.send(conn, b"GET /", from_client=True)
        assert net.recv(conn, from_client=True) == b"GET /"
        net.send(conn, b"200 OK", from_client=False)
        assert net.recv(conn, from_client=False) == b"200 OK"

    def test_recv_empty_returns_none(self, net):
        net.listen(80)
        conn = net.connect(80)
        assert net.recv(conn, from_client=True) is None

    def test_connection_refused(self, net):
        with pytest.raises(OsError):
            net.connect(9999)

    def test_double_bind_rejected(self, net):
        net.listen(80)
        with pytest.raises(OsError):
            net.listen(80)

    def test_accept_without_pending(self, net):
        net.listen(80)
        assert not net.has_pending(80)
        with pytest.raises(OsError):
            net.accept(80)

    def test_closed_connection_rejects_send(self, net):
        net.listen(80)
        conn = net.connect(80)
        conn.close()
        with pytest.raises(OsError):
            net.send(conn, b"x", from_client=True)

    def test_send_charges_netstack(self, net, system):
        machine, *_ = system
        net.listen(80)
        conn = net.connect(80)
        with machine.cycles.measure() as span:
            net.send(conn, b"x" * 1000, from_client=True)
        assert span.categories.get("netstack", 0) > 0


class TestVfs:
    def test_write_read_roundtrip(self):
        vfs = Vfs()
        vfs.write_file("/index.html", b"<html>")
        assert vfs.read_file("/index.html") == b"<html>"

    def test_missing_file(self):
        with pytest.raises(OsError):
            Vfs().read_file("/nope")

    def test_stat(self):
        vfs = Vfs()
        vfs.write_file("/a", b"12345")
        assert vfs.stat("/a") == 5

    def test_unlink(self):
        vfs = Vfs()
        vfs.write_file("/a", b"1")
        vfs.unlink("/a")
        assert not vfs.exists("/a")
        with pytest.raises(OsError):
            vfs.unlink("/a")

    def test_relative_path_rejected(self):
        with pytest.raises(OsError):
            Vfs().write_file("etc/passwd", b"")

    def test_listdir_sorted(self):
        vfs = Vfs()
        vfs.write_file("/b", b"")
        vfs.write_file("/a", b"")
        assert vfs.listdir() == ["/a", "/b"]

    def test_charge_callback_used(self):
        charges = []
        vfs = Vfs(charge=lambda cycles, cat: charges.append((cycles, cat)))
        vfs.write_file("/a", b"data")
        vfs.read_file("/a")
        assert charges
