"""The whole observability stack at once, over a full enclave lifecycle.

Telemetry, the monitor-invariant sanitizer, and the exact profiler are
all pure observers of the simulated machine; this test turns on all
three together — load, edge calls, ocall round-trip, heap traffic,
destroy — and checks that (a) the sanitizer saw no violations, (b) the
telemetry snapshot validates against the schema, (c) the profile is a
complete accounting of the span tree, and (d) the cycle counts are
bit-identical to the same workload with everything off.
"""

import dataclasses

import pytest

from repro.platform import TeePlatform
from repro.profiler import profile_document, self_total
from repro.telemetry import sink as telemetry_sink
from repro.telemetry.schema import validate_snapshot

from tests.sdk.conftest import SMALL, demo_image

ALL_ON = dataclasses.replace(SMALL, sanitize=True)
ALL_OFF = dataclasses.replace(SMALL, sanitize=False)


def _lifecycle(config):
    platform = TeePlatform.hyperenclave(config)
    handle = platform.load_enclave(demo_image())
    handle.register_ocall("ocall_sink", lambda data, n: 0)
    handle.proxies.add_numbers(a=40, b=2)
    handle.proxies.sum_bytes(data=b"\x07" * 1024, n=1024)
    handle.proxies.echo_through_ocall(data=b"hello", n=5)
    va = handle.ctx.malloc(16 * 4096)
    handle.ctx.write(va, b"z" * (16 * 4096))
    handle.proxies.increment_all(buf=b"\x00" * 256, n=256)
    handle.destroy()
    return platform


class TestObservabilityStack:
    def _instrumented_run(self):
        with telemetry_sink.capture() as sink:
            platform = _lifecycle(ALL_ON)
        return platform, sink

    def test_sanitizer_sees_no_violations(self):
        platform, _ = self._instrumented_run()
        assert platform.machine.sanitizer is not None
        assert platform.machine.sanitizer.violations == 0

    def test_snapshot_validates_against_the_schema(self):
        _, sink = self._instrumented_run()
        document = sink.document()          # strict: no open spans either
        validate_snapshot(document)
        (machine,) = document["machines"]
        assert machine["spans"]["open"] == 0
        # Regrouping float cycle charges by subsystem changes the
        # summation order, so exactness here is up to float rounding.
        assert sum(machine["cycles"]["by_subsystem"].values()) == \
            pytest.approx(machine["cycles"]["total"], abs=1e-6)

    def test_profile_totals_equal_span_totals(self):
        platform, sink = self._instrumented_run()
        doc = profile_document(sink.items)
        (machine,) = doc["machines"]
        assert machine["total_span_cycles"] > 0
        assert self_total(machine) == machine["total_span_cycles"]
        assert self_total(doc["combined"]) == \
            doc["combined"]["total_span_cycles"]
        # Spans cover real work but never more than the machine ran.
        assert machine["total_span_cycles"] <= platform.machine.cycles.total

    def test_cycles_identical_with_everything_off(self):
        platform_on, _ = self._instrumented_run()
        platform_off = _lifecycle(ALL_OFF)
        assert platform_off.machine.telemetry.enabled is False
        assert platform_off.machine.sanitizer is None
        assert platform_on.machine.cycles.total == \
            platform_off.machine.cycles.total


class TestZeroPerturbationTable1:
    """The zero-perturbation pin: every observer at once is still free.

    Table 1 with wall profiling, the invariant sanitizer, and the flight
    recorder all active must produce bit-identical simulated cycles and
    ``Machine.state_hash()`` fingerprints to a bare run — the observers
    may cost host wall time, never simulated time.
    """

    def test_table1_bit_identical_with_all_observers_on(
            self, tmp_path, monkeypatch):
        from repro.bench.registry import REGISTRY
        from repro.bench.runner import run_one

        spec = REGISTRY["table1_edge_calls"]
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        bare = run_one(spec, profile=False)

        monkeypatch.setenv("REPRO_SANITIZE", "1")
        full = run_one(spec, profile=True, record_dir=tmp_path,
                       artifacts_dir=tmp_path)

        assert full.artifact["fingerprints"] and \
            full.artifact["fingerprints"] == bare.artifact["fingerprints"]
        for metric, value in bare.artifact["metrics"].items():
            if metric.startswith(("profile.", "throughput.")):
                continue        # host-wall / profile-only families
            assert full.artifact["metrics"][metric] == value, metric
        # The instrumented run really did record the wall domain.
        assert full.artifact["throughput"] is not None
        assert (tmp_path / "table1_edge_calls.wall.collapsed").exists()
        assert (tmp_path / "table1_edge_calls.journal.json").exists()

    def test_table1_bit_identical_with_timeline_sampling(self, tmp_path):
        """The timeline pin: sampling on moves nothing but the artifact.

        Cycles, gated metrics, state-hash fingerprints, and the recorded
        flight-recorder journal must be bit-identical with the sampler
        active; only the informational ``timeline`` block (never gated)
        may appear.
        """
        from repro.bench.registry import REGISTRY
        from repro.bench.runner import run_one
        from repro.flightrec.journal import Journal

        spec = REGISTRY["table1_edge_calls"]
        bare_dir = tmp_path / "bare"
        sampled_dir = tmp_path / "sampled"
        bare = run_one(spec, profile=False, record_dir=bare_dir)
        sampled = run_one(spec, profile=False, record_dir=sampled_dir,
                          timeline_interval=250_000)

        assert bare.artifact["fingerprints"] and \
            sampled.artifact["fingerprints"] == bare.artifact["fingerprints"]
        for metric, value in bare.artifact["metrics"].items():
            if metric.startswith("throughput."):
                continue        # host-wall family, noisy between any runs
            assert sampled.artifact["metrics"][metric] == value, metric
        assert bare.artifact["timeline"] is None
        timeline = sampled.artifact["timeline"]
        assert timeline is not None and timeline["timelines"][0]["samples"]

        journal_name = "table1_edge_calls.journal.json"
        a = Journal.load(bare_dir / journal_name)
        b = Journal.load(sampled_dir / journal_name)
        assert [e.as_list() for e in a.events] == \
            [e.as_list() for e in b.events]
        assert [c.chain for c in a.checkpoints] == \
            [c.chain for c in b.checkpoints]
