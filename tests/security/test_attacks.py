"""The security test-suite: every paper-cited attack must be blocked on
HyperEnclave; the enclave-malware attacks must (by design) *succeed* on
the SGX baseline model — that asymmetry is the paper's Sec 6 claim."""

import pytest

from repro.attacks import dma, malware, mapping, rollback
from repro.monitor.attestation import QuoteVerifier
from repro.platform import TeePlatform

from tests.sdk.conftest import SMALL, demo_image


@pytest.fixture(scope="module")
def he():
    platform = TeePlatform.hyperenclave(SMALL)
    handle = platform.load_enclave(demo_image())
    return platform, handle


@pytest.fixture(scope="module")
def sgx():
    platform = TeePlatform.intel_sgx(SMALL)
    handle = platform.load_enclave(demo_image())
    return platform, handle


class TestMappingAttacks:
    def test_alias_enclave_pages_blocked(self, he):
        platform, handle = he
        result = mapping.alias_enclave_pages(platform, handle)
        assert result.blocked, result

    def test_map_enclave_frame_into_process_blocked(self, he):
        platform, handle = he
        result = mapping.map_enclave_frame_into_process(platform, handle)
        assert result.blocked, result

    def test_remap_pinned_msbuf_blocked(self, he):
        platform, handle = he
        result = mapping.os_remaps_marshalling_buffer(platform, handle)
        assert result.blocked, result

    def test_overlapping_msbuf_blocked(self, he):
        platform, handle = he
        result = mapping.overlapping_marshalling_buffer(platform,
                                                        demo_image())
        assert result.blocked, result


class TestEnclaveMalware:
    def _fresh_handle(self, platform):
        image = demo_image()
        image.name = f"malware-{id(image)}"
        return platform.load_enclave(image)

    def test_scrape_blocked_on_hyperenclave(self, he):
        platform, _ = he
        handle = self._fresh_handle(platform)
        vma = platform.kernel.mmap(platform.process, 4096, populate=True)
        platform.kernel.user_write(platform.process, vma.start,
                                   b"TLS-PRIVATE-KEY!")
        result = malware.scrape_app_memory(platform, handle,
                                           secret_va=vma.start,
                                           secret_len=16)
        assert result.blocked, result

    def test_scrape_succeeds_on_sgx_model(self, sgx):
        """The SGX design lets enclaves read the whole app address space."""
        platform, _ = sgx
        handle = self._fresh_handle(platform)
        vma = platform.kernel.mmap(platform.process, 4096, populate=True)
        platform.kernel.user_write(platform.process, vma.start,
                                   b"TLS-PRIVATE-KEY!")
        result = malware.scrape_app_memory(platform, handle,
                                           secret_va=vma.start,
                                           secret_len=16)
        assert not result.blocked
        assert b"TLS-PRIVATE-KEY!" in result.detail.encode(
            "latin-1", "backslashreplace") or "TLS" in result.detail

    def test_tamper_blocked_on_hyperenclave(self, he):
        platform, _ = he
        handle = self._fresh_handle(platform)
        vma = platform.kernel.mmap(platform.process, 4096, populate=True)
        result = malware.tamper_app_memory(platform, handle,
                                           target_va=vma.start)
        assert result.blocked, result

    def test_tamper_succeeds_on_sgx_model(self, sgx):
        platform, _ = sgx
        handle = self._fresh_handle(platform)
        vma = platform.kernel.mmap(platform.process, 4096, populate=True)
        result = malware.tamper_app_memory(platform, handle,
                                           target_va=vma.start)
        assert not result.blocked
        assert platform.kernel.user_read(
            platform.process, vma.start, 8) == b"\xde\xad\xbe\xef" * 2

    def test_eexit_hijack_blocked(self, he):
        platform, _ = he
        handle = self._fresh_handle(platform)
        result = malware.eexit_hijack(platform, handle,
                                      rogue_target=0x41414141)
        assert result.blocked, result

    def test_enclave_can_still_use_msbuf(self, he):
        """The confinement must not break legitimate user_check use."""
        platform, handle = he
        va = handle.msbuf_user_alloc(32)
        handle.app_write(va, bytes([3] * 32))
        assert handle.proxies.read_user(ptr=va, n=32) == 96


class TestDmaAttacks:
    def test_dma_read_enclave_blocked(self, he):
        platform, handle = he
        result = dma.dma_read_enclave_memory(platform, handle)
        assert result.blocked, result

    def test_dma_write_monitor_blocked(self, he):
        platform, _ = he
        result = dma.dma_write_monitor_memory(platform)
        assert result.blocked, result

    def test_unregistered_device_blocked(self, he):
        platform, _ = he
        result = dma.dma_from_unregistered_device(platform)
        assert result.blocked, result

    def test_legitimate_dma_still_works(self, he):
        platform, _ = he
        platform.machine.iommu.dma_write("nic", 0x2000, b"packet data")
        assert platform.machine.iommu.dma_read("nic", 0x2000, 11) \
            == b"packet data"


class TestRollbackAttacks:
    def test_pcr_forgery_blocked(self, he):
        platform, _ = he
        result = rollback.forge_pcr_state(platform)
        assert result.blocked, result

    def test_k_root_theft_blocked(self, he):
        platform, _ = he
        result = rollback.steal_sealed_root_key(platform)
        assert result.blocked, result

    def test_quote_replay_blocked(self, he):
        platform, handle = he
        verifier = QuoteVerifier(platform.boot.golden)
        result = rollback.quote_replay(platform, handle, verifier)
        assert result.blocked, result


class TestSecurityRequirements:
    """R-1..R-3 spot checks at the platform level."""

    def test_r1_os_cannot_touch_reserved(self, he):
        from repro.errors import SecurityViolation
        platform, _ = he
        with pytest.raises(SecurityViolation):
            platform.monitor.check_normal_access(
                platform.machine.config.reserved_base + 0x1000)

    def test_r2_enclave_cannot_reach_other_enclave(self, he):
        platform, handle = he
        image = demo_image()
        image.name = "second-enclave"
        other = platform.load_enclave(image)
        other_pa_va = other.enclave.secs.base    # same ELRANGE base VA
        # handle's enclave translating its own base gets its OWN frame,
        # never the other enclave's.
        own_pa = handle.enclave.translate(handle.enclave.secs.base)
        other_pa = other.enclave.translate(other_pa_va)
        assert own_pa != other_pa
        owner = platform.machine.phys.owner_of(other_pa)
        assert owner.enclave_id == other.enclave_id
        other.destroy()

    def test_r3_iommu_enabled_after_launch(self, he):
        platform, _ = he
        assert platform.machine.iommu.enabled
