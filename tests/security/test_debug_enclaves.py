"""Tests for DEBUG-enclave semantics (EDBGRD, attestable attributes)."""

import dataclasses

import pytest

from repro.errors import AttestationError, SecurityViolation
from repro.monitor.attestation import QuoteVerifier
from repro.monitor.structs import EnclaveConfig, EnclaveMode
from repro.platform import TeePlatform
from repro.sdk.image import EnclaveImage

from tests.sdk.conftest import SMALL

EDL = """
enclave {
    trusted { public uint64 stash([in, size=n] bytes secret, uint64 n); };
    untrusted { };
};
"""


def t_stash(ctx, secret, n):
    va = ctx.malloc(n)
    ctx.write(va, secret)
    ctx.globals["va"] = va
    return va


def _image(debug):
    return EnclaveImage.build(
        "debuggee" if debug else "production", EDL, {"stash": t_stash},
        EnclaveConfig(mode=EnclaveMode.GU, debug=debug))


@pytest.fixture(scope="module")
def platform():
    return TeePlatform.hyperenclave(SMALL)


class TestEdbgrd:
    def test_debugger_reads_debug_enclave(self, platform):
        handle = platform.load_enclave(_image(debug=True))
        va = handle.proxies.stash(secret=b"debug-visible", n=13)
        data = platform.monitor.debug_read(handle.enclave_id, va, 13)
        assert data == b"debug-visible"
        handle.destroy()

    def test_production_enclave_is_opaque(self, platform):
        handle = platform.load_enclave(_image(debug=False))
        va = handle.proxies.stash(secret=b"prod-secret!!", n=13)
        with pytest.raises(SecurityViolation, match="EDBGRD"):
            platform.monitor.debug_read(handle.enclave_id, va, 13)
        handle.destroy()


class TestAttestableAttributes:
    def test_debug_flag_changes_measurement(self, platform):
        debug = platform.load_enclave(_image(debug=True))
        prod = platform.load_enclave(_image(debug=False))
        # Different names aside, the DEBUG bit itself is measured: patch
        # the names equal and compare sign-time measurements.
        img_a, img_b = _image(True), _image(False)
        img_b.name = img_a.name = "same-name"
        from repro.platform import DEFAULT_VENDOR_KEY
        assert img_a.sign(DEFAULT_VENDOR_KEY).enclave_hash != \
            img_b.sign(DEFAULT_VENDOR_KEY).enclave_hash
        debug.destroy()
        prod.destroy()

    def test_verifier_can_require_production(self, platform):
        handle = platform.load_enclave(_image(debug=True))
        quote = handle.ctx.get_quote(b"", b"n")
        verifier = QuoteVerifier(platform.boot.golden)
        # Default: accepted (report carries the flag for policy).
        report = verifier.verify(quote)
        assert report.debug
        # Production policy: rejected.
        with pytest.raises(AttestationError, match="DEBUG"):
            verifier.verify(quote, require_production=True)
        handle.destroy()

    def test_production_quote_passes_production_policy(self, platform):
        handle = platform.load_enclave(_image(debug=False))
        quote = handle.ctx.get_quote(b"", b"n")
        report = QuoteVerifier(platform.boot.golden).verify(
            quote, require_production=True)
        assert not report.debug
        handle.destroy()

    def test_forged_attribute_bit_breaks_signature(self, platform):
        """Stripping the DEBUG bit from a quote invalidates the ems."""
        handle = platform.load_enclave(_image(debug=True))
        quote = handle.ctx.get_quote(b"", b"n")
        laundered_report = dataclasses.replace(quote.report, attributes=0)
        laundered = dataclasses.replace(quote, report=laundered_report)
        with pytest.raises(AttestationError, match="signature"):
            QuoteVerifier(platform.boot.golden).verify(
                laundered, require_production=True)
        handle.destroy()
