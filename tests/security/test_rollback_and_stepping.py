"""Tests for versioned sealing (rollback protection) and the SGX-Step
side-channel scenario."""

import pytest

from repro.attacks import sidechannel
from repro.errors import SealError, TpmError
from repro.monitor.structs import EnclaveMode
from repro.platform import TeePlatform

from tests.sdk.conftest import SMALL, demo_image


@pytest.fixture(scope="module")
def platform():
    return TeePlatform.hyperenclave(SMALL)


class TestNvCounters:
    def test_define_increment_read(self, platform):
        tpm = platform.machine.tpm
        tpm.nv_counter_define(0x100)
        assert tpm.nv_counter_read(0x100) == 0
        assert tpm.nv_counter_increment(0x100) == 1
        assert tpm.nv_counter_increment(0x100) == 2

    def test_counters_survive_reboot(self, platform):
        tpm = platform.machine.tpm
        tpm.nv_counter_define(0x101)
        tpm.nv_counter_increment(0x101)
        tpm.reboot()
        assert tpm.nv_counter_read(0x101) == 1

    def test_undefined_counter_rejected(self, platform):
        with pytest.raises(TpmError):
            platform.machine.tpm.nv_counter_read(0x999)
        with pytest.raises(TpmError):
            platform.machine.tpm.nv_counter_increment(0x998)

    def test_double_define_rejected(self, platform):
        tpm = platform.machine.tpm
        tpm.nv_counter_define(0x102)
        with pytest.raises(TpmError):
            tpm.nv_counter_define(0x102)


class TestVersionedSealing:
    @pytest.fixture
    def handle(self, platform):
        image = demo_image()
        image.name = f"versioned-{id(image)}"
        h = platform.load_enclave(image)
        yield h
        h.destroy()

    def test_roundtrip(self, handle):
        blob = handle.ctx.seal_versioned(b"balance=100", aad=b"wallet")
        assert handle.ctx.unseal_versioned(blob, aad=b"wallet") \
            == b"balance=100"

    def test_stale_blob_rejected(self, handle):
        """The rollback attack: the OS restores an old sealed blob."""
        old = handle.ctx.seal_versioned(b"balance=100")
        new = handle.ctx.seal_versioned(b"balance=5")
        assert handle.ctx.unseal_versioned(new) == b"balance=5"
        with pytest.raises(SealError, match="rollback"):
            handle.ctx.unseal_versioned(old)

    def test_counter_monotonic_per_enclave_identity(self, platform,
                                                    handle):
        v1 = platform.monitor.monotonic_counter_read(handle.enclave_id)
        handle.ctx.seal_versioned(b"x")
        assert platform.monitor.monotonic_counter_read(
            handle.enclave_id) == v1 + 1

    def test_truncated_blob_rejected(self, handle):
        with pytest.raises(SealError):
            handle.ctx.unseal_versioned(b"\x01\x02")

    def test_unversioned_seal_still_replayable(self, handle):
        """Contrast: plain seal_data has no rollback protection — this is
        exactly the gap versioned sealing closes."""
        old = handle.ctx.seal_data(b"balance=100")
        handle.ctx.seal_data(b"balance=5")
        assert handle.ctx.unseal_data(old) == b"balance=100"   # replayed!


class TestSingleStepping:
    def test_p_enclave_detects_single_stepping(self, platform):
        handle = platform.load_enclave(demo_image(EnclaveMode.P))
        result = sidechannel.single_stepping_attack(platform, handle)
        assert result.blocked, result
        assert "rerouted" in result.detail
        handle.destroy()

    def test_gu_enclave_cannot_notice(self, platform):
        handle = platform.load_enclave(demo_image(EnclaveMode.GU))
        result = sidechannel.single_stepping_attack(platform, handle)
        assert not result.blocked
        handle.destroy()

    def test_unarmed_p_enclave_is_also_vulnerable(self, platform):
        handle = platform.load_enclave(demo_image(EnclaveMode.P))
        result = sidechannel.single_stepping_attack(platform, handle,
                                                    monitor_enabled=False)
        assert not result.blocked
        handle.destroy()
