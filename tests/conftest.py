"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.hw.machine import Machine, MachineConfig


@pytest.fixture
def machine() -> Machine:
    """A default machine (AMD-SME encryption, deterministic TPM)."""
    return Machine()


@pytest.fixture
def small_machine() -> Machine:
    """A machine with a small reserved region (fast pool operations)."""
    config = MachineConfig(
        phys_size=256 * 1024 * 1024,
        reserved_base=64 * 1024 * 1024,
        reserved_size=64 * 1024 * 1024,
    )
    return Machine(config)
