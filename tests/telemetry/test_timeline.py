"""Cycle-domain timeline sampling: boundaries, episodes, exporters.

The sampler's boundary semantics are what make the fast-path A/B sweep
exact (one row per crossed boundary, probe values batch-invariant), so
they are pinned here at the unit level; episode detection gets a
hand-checkable synthetic two-tenant series with known victim/aggressor
answers.
"""

from __future__ import annotations

import json

import pytest

from repro.hw.cycles import CycleCounter
from repro.platform import TeePlatform
from repro.telemetry import sink as telemetry_sink
from repro.telemetry.schema import SchemaError, validate_timeline
from repro.telemetry.timeline import (TimelineSampler, detect_episodes,
                                      load_timeline, rate_series,
                                      render_html, scalar_series,
                                      tenant_rollups, tenant_series,
                                      timeline_counter_events,
                                      timeline_document, timeline_report,
                                      write_timeline)
from tests.sdk.conftest import SMALL


def _driven_sampler(interval: int = 100):
    """A sampler wired to a bare CycleCounter, plus a mutable probe box."""
    counter = CycleCounter()
    sampler = TimelineSampler(interval, label="unit")
    box = {"free": 10, "resident": {1: 4}}
    sampler.add_probe("epc.free_frames", lambda: box["free"])
    sampler.add_tenant_probe("epc.resident_pages",
                             lambda: dict(box["resident"]))
    sampler.add_cycle_probe("cycles.total", lambda boundary: boundary)
    counter._timeline = sampler
    return counter, sampler, box


class TestSamplerBoundaries:
    def test_no_row_below_first_boundary(self):
        counter, sampler, _ = _driven_sampler()
        counter.charge(99, "work")
        assert sampler.samples == []

    def test_one_row_per_boundary_crossed(self):
        counter, sampler, _ = _driven_sampler()
        counter.charge(100, "work")
        assert [s["cycle"] for s in sampler.samples] == [100]
        counter.charge(1, "work")
        assert len(sampler.samples) == 1        # still inside interval 2

    def test_multi_boundary_charge_emits_identical_rows(self):
        # A batched charge that jumps several boundaries must emit one
        # row per boundary, all carrying the same probe values — that is
        # exactly how the legacy path (crossing them one charge at a
        # time over unchanged op state) samples the same run.
        counter, sampler, _ = _driven_sampler()
        counter.charge(350, "work")
        assert [s["cycle"] for s in sampler.samples] == [100, 200, 300]
        series = [s["series"]["epc.free_frames"] for s in sampler.samples]
        assert series == [10, 10, 10]
        # ... except the clock-domain series, which is the row's own
        # boundary by construction.
        assert [s["series"]["cycles.total"] for s in sampler.samples] == \
            [100, 200, 300]

    def test_probe_changes_show_up_in_later_rows(self):
        counter, sampler, box = _driven_sampler()
        counter.charge(100, "work")
        box["free"] = 3
        box["resident"] = {1: 4, 2: 9}
        counter.charge(100, "work")
        first, second = sampler.samples
        assert first["series"]["epc.free_frames"] == 10
        assert second["series"]["epc.free_frames"] == 3
        assert first["tenants"]["epc.resident_pages"] == {"1": 4}
        assert second["tenants"]["epc.resident_pages"] == {"1": 4, "2": 9}

    def test_reregistering_a_probe_replaces_it(self):
        counter, sampler, _ = _driven_sampler()
        sampler.add_probe("epc.free_frames", lambda: 77)
        counter.charge(100, "work")
        assert sampler.samples[0]["series"]["epc.free_frames"] == 77

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            TimelineSampler(0)

    def test_document_validates(self):
        counter, sampler, _ = _driven_sampler()
        sampler.name_tenant(1, "alice")
        counter.charge(250, "work")
        document = timeline_document([sampler])
        validate_timeline(document)
        assert document["timelines"][0]["tenants"] == {"1": "alice"}


def _synthetic_timeline() -> dict:
    """Ten samples at interval 100 with two hand-computed swap storms.

    Tenant "1" (alice) loses pages; "2" (bob) takes frames.  Cumulative
    swap-out for alice: storm one swaps 30 pages over intervals ending
    at cycles 400-600 (rate 10/interval, driven by cross steals 1->2),
    storm two swaps 8 pages in the interval ending at cycle 900 (no
    steal records: attribution falls back to swap delta + resident
    growth).
    """
    swap_out_1 = [0, 0, 0, 10, 20, 30, 30, 30, 38, 38]
    steals_1_2 = [0, 0, 0, 10, 20, 30, 30, 30, 30, 30]
    resident_1 = [100, 100, 100, 90, 80, 70, 70, 70, 62, 62]
    resident_2 = [40, 40, 40, 50, 60, 70, 70, 70, 78, 78]
    samples = []
    for i in range(10):
        samples.append({
            "cycle": (i + 1) * 100,
            "series": {"epc.free_frames": 0},
            "tenants": {
                "swap.pages_out": {"1": swap_out_1[i], "2": 0},
                "epc.resident_pages": {"1": resident_1[i],
                                       "2": resident_2[i]},
                "epc.stolen_frames": {"1->2": steals_1_2[i]},
            },
        })
    return {"label": "synthetic", "interval": 100,
            "tenants": {"1": "alice", "2": "bob"}, "samples": samples}


class TestEpisodeDetection:
    def test_finds_both_storms_with_exact_spans(self):
        episodes = detect_episodes(_synthetic_timeline(), threshold=5.0)
        assert len(episodes) == 2
        first, second = episodes
        assert (first["start_cycle"], first["end_cycle"]) == (300, 600)
        assert first["intervals"] == 3
        assert first["pages"] == 30
        assert first["depth"] == 10
        assert (second["start_cycle"], second["end_cycle"]) == (800, 900)
        assert second["pages"] == 8

    def test_cross_steals_name_victim_and_aggressor(self):
        first = detect_episodes(_synthetic_timeline(), threshold=5.0)[0]
        assert first["victim"] == "alice"
        assert first["aggressor"] == "bob"

    def test_fallback_attribution_without_steal_records(self):
        # Storm two has no steal-record delta: the victim is whoever
        # swapped out, the aggressor whoever grew resident.
        second = detect_episodes(_synthetic_timeline(), threshold=5.0)[1]
        assert second["victim"] == "alice"
        assert second["aggressor"] == "bob"

    def test_min_intervals_filters_short_episodes(self):
        episodes = detect_episodes(_synthetic_timeline(), threshold=5.0,
                                   min_intervals=2)
        assert len(episodes) == 1
        assert episodes[0]["intervals"] == 3

    def test_high_threshold_finds_nothing(self):
        assert detect_episodes(_synthetic_timeline(), threshold=11.0) == []

    def test_self_steals_attribute_the_thrashing_tenant(self):
        timeline = _synthetic_timeline()
        for i, sample in enumerate(timeline["samples"]):
            sample["tenants"]["epc.stolen_frames"] = \
                {"1->1": [0, 0, 0, 10, 20, 30, 30, 30, 30, 30][i]}
        first = detect_episodes(timeline, threshold=5.0)[0]
        assert first["victim"] == "alice"
        assert first["aggressor"] == "alice"


class TestSeriesAndRollups:
    def test_scalar_and_tenant_series_access(self):
        timeline = _synthetic_timeline()
        free = scalar_series(timeline, "epc.free_frames")
        assert free[0] == (100, 0) and len(free) == 10
        per_tenant = tenant_series(timeline, "swap.pages_out")
        assert per_tenant["1"][-1] == (1000, 38)
        assert rate_series(per_tenant["1"])[2] == (400, 10)

    def test_rollups_aggregate_per_tenant(self):
        rollups = tenant_rollups(_synthetic_timeline())
        alice, bob = rollups["1"], rollups["2"]
        assert alice["tenant"] == "alice"
        assert alice["epc_pages_peak"] == 100
        assert alice["pages_swapped_out"] == 38
        assert alice["stolen_from"] == {"bob": 30}
        assert bob["stolen_by"] == {"alice": 30}
        assert bob["epc_pages_peak"] == 78


class TestExporters:
    def test_counter_events_are_chrome_counter_tracks(self):
        events = timeline_counter_events(_synthetic_timeline())
        assert events and all(e["ph"] == "C" for e in events)
        assert events[0]["ts"] == 100
        named = {e["name"] for e in events}
        assert {"epc.free_frames", "swap.pages_out",
                "epc.resident_pages"} <= named
        swap = [e for e in events if e["name"] == "swap.pages_out"]
        assert swap[0]["args"] == {"alice": 0, "bob": 0}

    def test_text_report_names_tenants_and_episodes(self):
        text = timeline_report(timeline_document([None]) or
                               {"timelines": [_synthetic_timeline()]},
                               threshold=5.0)
        assert "tenant alice" in text
        assert "victim=alice aggressor=bob" in text
        assert "episodes" in text

    def test_html_report_is_self_contained(self):
        html = render_html({"version": 1, "kind": "hyperenclave-timeline",
                            "timelines": [_synthetic_timeline()]},
                           threshold=5.0)
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html and "<polyline" in html
        assert "alice" in html and "bob" in html
        assert "http" not in html          # no external resources

    def test_write_load_roundtrip_and_artifact_block(self, tmp_path):
        document = {"version": 1, "kind": "hyperenclave-timeline",
                    "timelines": [_synthetic_timeline()]}
        path = tmp_path / "tl.json"
        write_timeline(path, document)
        assert load_timeline(path) == document
        artifact_path = tmp_path / "artifact.json"
        artifact_path.write_text(json.dumps({"name": "x",
                                             "timeline": document}))
        assert load_timeline(artifact_path) == document

    def test_schema_rejects_malformed_timelines(self):
        with pytest.raises(SchemaError):
            validate_timeline({"version": 1, "kind": "hyperenclave-timeline",
                               "timelines": []})
        bad = {"version": 1, "kind": "hyperenclave-timeline",
               "timelines": [{"label": "x", "interval": 0, "tenants": {},
                              "samples": []}]}
        with pytest.raises(SchemaError):
            validate_timeline(bad)
        decreasing = _synthetic_timeline()
        decreasing["samples"][1]["cycle"] = 50
        with pytest.raises(SchemaError):
            validate_timeline({"version": 1,
                               "kind": "hyperenclave-timeline",
                               "timelines": [decreasing]})


class TestCli:
    def _write(self, tmp_path):
        path = tmp_path / "tl.json"
        write_timeline(path, {"version": 1, "kind": "hyperenclave-timeline",
                              "timelines": [_synthetic_timeline()]})
        return path

    def test_report_and_episodes_exit_codes(self, tmp_path, capsys):
        from repro.telemetry.__main__ import main
        path = self._write(tmp_path)
        assert main(["timeline", "report", str(path)]) == 0
        assert main(["timeline", "episodes", str(path),
                     "--threshold", "5", "--min", "2"]) == 0
        assert "victim=alice" in capsys.readouterr().out
        assert main(["timeline", "episodes", str(path),
                     "--threshold", "5", "--min", "3"]) == 1

    def test_html_writes_next_to_input_by_default(self, tmp_path, capsys):
        from repro.telemetry.__main__ import main
        path = self._write(tmp_path)
        assert main(["timeline", "html", str(path)]) == 0
        out = tmp_path / "tl.html"
        assert out.exists() and "<svg" in out.read_text()
        capsys.readouterr()

    def test_missing_file_is_a_clean_error(self, tmp_path, capsys):
        from repro.telemetry.__main__ import main
        assert main(["timeline", "report",
                     str(tmp_path / "nope.json")]) == 1
        assert "error:" in capsys.readouterr().err


class TestSinkIntegration:
    def test_capture_with_interval_attaches_and_detaches(self):
        with telemetry_sink.capture(timeline_interval=50_000) as sink:
            platform = TeePlatform.hyperenclave(SMALL)
            sampler = platform.machine.telemetry.timeline
            assert sampler is not None
            assert sampler.label == "machine-1"
            assert platform.machine.cycles._timeline is sampler
            assert sink.timelines() == [sampler]
            sink.unregister(platform.machine.telemetry)
        assert platform.machine.telemetry.timeline is None
        assert platform.machine.cycles._timeline is None

    def test_capture_without_interval_attaches_nothing(self):
        with telemetry_sink.capture() as sink:
            platform = TeePlatform.hyperenclave(SMALL)
            assert platform.machine.telemetry.timeline is None
            assert sink.timeline_document() is None

    def test_relabel_renames_the_sampler(self):
        with telemetry_sink.capture(timeline_interval=50_000) as sink:
            platform = TeePlatform.hyperenclave(SMALL)
            sink.register("gu", platform.machine.telemetry)
            assert platform.machine.telemetry.timeline.label == "gu"
