"""Tests for the telemetry exporters and the snapshot schema."""

import json

import pytest

from repro.hw.cycles import CycleCounter
from repro.telemetry import (SchemaError, Telemetry, validate_snapshot)
from repro.telemetry.export import (chrome_trace_document,
                                    snapshot_document, top_report,
                                    trace_path_for, write_telemetry)


def _busy_telemetry() -> Telemetry:
    tel = Telemetry(CycleCounter())
    tel.enable()
    with tel.span("sdk.ecall", func="nop", enclave=1):
        tel.cycles.charge(100, "sdk-ecall")
        with tel.span("world.eenter", enclave=1):
            tel.cycles.charge(1163, "eenter:hu")
    tel.cycles.charge(40, "syscall")
    return tel


class TestSnapshotDocument:
    def test_subsystems_sum_to_total(self):
        doc = snapshot_document([("m1", _busy_telemetry()),
                                 ("m2", _busy_telemetry())])
        combined = doc["combined"]
        assert combined["total_cycles"] == 2 * (100 + 1163 + 40)
        assert sum(combined["by_subsystem"].values()) == \
            combined["total_cycles"]
        for snap in doc["machines"]:
            assert sum(snap["cycles"]["by_subsystem"].values()) == \
                pytest.approx(snap["cycles"]["total"])

    def test_validates(self):
        validate_snapshot(snapshot_document([("m", _busy_telemetry())]))

    def test_schema_rejects_bad_documents(self):
        with pytest.raises(SchemaError):
            validate_snapshot({"version": 1})
        doc = snapshot_document([("m", _busy_telemetry())])
        doc["combined"]["total_cycles"] += 10_000
        with pytest.raises(SchemaError):
            validate_snapshot(doc)

    def test_json_serializable(self):
        doc = snapshot_document([("m", _busy_telemetry())])
        json.loads(json.dumps(doc))


class TestChromeTrace:
    def test_events_shape(self):
        doc = chrome_trace_document([("m1", _busy_telemetry()),
                                     ("m2", _busy_telemetry())])
        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert {m["pid"] for m in metas} == {1, 2}
        assert len(spans) == 4          # two spans per machine
        ecall = next(e for e in spans if e["name"] == "sdk.ecall")
        assert ecall["cat"] == "sdk"
        assert ecall["dur"] == 1263
        assert ecall["args"]["self_cycles"] == 100
        assert ecall["args"]["func"] == "nop"
        json.loads(json.dumps(doc))

    def test_error_spans_marked(self):
        tel = Telemetry(CycleCounter())
        tel.enable()
        with pytest.raises(RuntimeError):
            with tel.span("sdk.ecall"):
                raise RuntimeError("x")
        doc = chrome_trace_document([("m", tel)])
        (span,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert span["args"]["error"] is True


class TestTopReport:
    def test_mentions_top_subsystems(self):
        doc = snapshot_document([("m", _busy_telemetry())])
        report = top_report(doc, n=3)
        assert "world" in report
        assert "sdk" in report
        assert "eenter:hu" in report


class TestWriter:
    def test_writes_snapshot_and_trace(self, tmp_path):
        target = tmp_path / "tel.json"
        snap, trace = write_telemetry(target, [("m", _busy_telemetry())])
        assert snap == target
        assert trace == tmp_path / "tel.trace.json"
        validate_snapshot(json.loads(snap.read_text()))
        assert json.loads(trace.read_text())["traceEvents"]

    def test_trace_path_for(self):
        assert trace_path_for("out/x.json").name == "x.trace.json"
