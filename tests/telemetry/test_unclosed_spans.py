"""Runtime detection of unclosed spans at export time.

The static side of this contract is repro-lint R004 (spans must be
context-managed); this is the runtime counterpart: a span left open when
a snapshot/profile is taken means unattributed cycles, so strict exports
raise :class:`~repro.telemetry.UnclosedSpanError` naming the open spans,
and lenient exports warn and report the open count.
"""

import pytest

from repro.hw.cycles import CycleCounter
from repro.telemetry import Telemetry, UnclosedSpanError
from repro.telemetry.export import machine_snapshot, snapshot_document


@pytest.fixture
def tel():
    t = Telemetry(CycleCounter())
    t.enable()
    return t


def _open(tel, name):
    span = tel.span(name)
    span.__enter__()
    return span


class TestUnclosedSpanDetection:
    def test_open_span_names_tracks_the_stack(self, tel):
        assert tel.open_span_names() == []
        outer = _open(tel, "outer")
        inner = _open(tel, "inner")
        assert tel.open_span_names() == ["outer", "inner"]
        inner.__exit__(None, None, None)
        outer.__exit__(None, None, None)
        assert tel.open_span_names() == []

    def test_strict_snapshot_raises_naming_open_spans(self, tel):
        outer = _open(tel, "outer")
        inner = _open(tel, "inner")
        with pytest.raises(UnclosedSpanError, match="outer > inner"):
            machine_snapshot(tel, "m")
        with pytest.raises(UnclosedSpanError, match=r"2 span\(s\)"):
            snapshot_document([("m", tel)])
        inner.__exit__(None, None, None)
        outer.__exit__(None, None, None)

    def test_lenient_snapshot_warns_and_counts_open(self, tel):
        span = _open(tel, "pending")
        with pytest.warns(RuntimeWarning, match="pending"):
            snap = machine_snapshot(tel, "m", strict=False)
        assert snap["spans"]["open"] == 1
        span.__exit__(None, None, None)

    def test_closed_spans_export_cleanly(self, tel):
        with tel.span("done"):
            tel.cycles.charge(10, "sdk-ecall")
        snap = machine_snapshot(tel, "m")
        assert snap["spans"] == {"recorded": 1, "open": 0}

    def test_error_is_a_runtime_error(self):
        # Callers that guard exports broadly must still catch this.
        assert issubclass(UnclosedSpanError, RuntimeError)
