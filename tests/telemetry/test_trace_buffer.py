"""Trace-ring observability: seq numbers, loss accounting, causes, taps.

The ring used to lose events silently on wrap-around; now every event
carries a monotonic ``seq``, drops are counted (and surfaced as a
telemetry metric via ``on_drop``), and taps see each event before it can
be evicted — the lossless path the flight recorder journals through.
"""

from __future__ import annotations

import pytest

from repro.hw.trace import TraceBuffer
from repro.platform import TeePlatform
from tests.sdk.conftest import SMALL, demo_image


def make_ring(capacity: int = 4) -> TraceBuffer:
    ring = TraceBuffer(capacity=capacity)
    ring.enable()
    return ring


class TestLossAccounting:
    def test_seq_is_monotonic_across_wrap(self):
        ring = make_ring(capacity=4)
        for i in range(10):
            ring.record("tick", str(i))
        assert [e.seq for e in ring.events()] == [6, 7, 8, 9]
        assert ring.total_recorded == 10

    def test_drop_count_matches_evictions(self):
        ring = make_ring(capacity=4)
        for i in range(10):
            ring.record("tick", str(i))
        stats = ring.stats()
        assert stats == {"recorded": 10, "dropped": 6, "entries": 4,
                         "capacity": 4}

    def test_on_drop_fires_per_eviction(self):
        ring = make_ring(capacity=2)
        drops = []
        ring.on_drop = drops.append
        for i in range(5):
            ring.record("tick", str(i))
        assert sum(drops) == 3

    def test_clear_keeps_monotonic_counters(self):
        ring = make_ring(capacity=4)
        for i in range(6):
            ring.record("tick", str(i))
        ring.clear()
        assert len(ring) == 0
        assert ring.total_recorded == 6 and ring.dropped == 2
        ring.record("tick", "after")
        assert ring.events()[0].seq == 6

    def test_disabled_ring_records_nothing(self):
        ring = TraceBuffer(capacity=4)
        ring.record("tick", "ignored")
        assert ring.total_recorded == 0 and len(ring) == 0

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            TraceBuffer(capacity=0)

    def test_wrap_surfaces_as_telemetry_metric(self):
        # The machine wires ring.on_drop to a counter, so silent loss is
        # impossible once telemetry is on.
        platform = TeePlatform.hyperenclave(SMALL)
        machine = platform.machine
        machine.telemetry.enable()
        handle = platform.load_enclave(demo_image())
        overflow = machine.trace.capacity + 10
        for i in range(overflow):
            machine.trace.record("synthetic", str(i))
        handle.destroy()
        counter = machine.telemetry.registry.counter("trace",
                                                     "dropped_events")
        assert counter.value == machine.trace.dropped > 0
        stats = machine.trace.stats()
        assert stats["recorded"] - stats["entries"] == stats["dropped"]


class TestCauses:
    def test_cause_paths_nest_and_stay_unique(self):
        ring = make_ring()
        ring.push_cause("ecall:nop")
        ring.record("eenter", "x")
        ring.push_cause("ocall:log")
        ring.record("eexit", "y")
        ring.pop_cause()
        ring.pop_cause()
        ring.push_cause("ecall:nop")
        ring.record("eenter", "z")
        events = ring.events()
        assert events[0].cause == "ecall:nop#1"
        assert events[1].cause == "ecall:nop#1/ocall:log#2"
        assert events[2].cause == "ecall:nop#3"      # distinct instance
        assert ring.current_cause != ""

    def test_pop_on_empty_stack_is_safe(self):
        ring = make_ring()
        ring.pop_cause()
        assert ring.current_cause == ""


class TestTaps:
    def test_tap_sees_events_the_ring_evicts(self):
        ring = make_ring(capacity=2)
        seen = []
        ring.tap(seen.append)
        for i in range(6):
            ring.record("tick", str(i))
        assert [e.seq for e in seen] == list(range(6))
        assert len(ring) == 2

    def test_untap_stops_delivery(self):
        ring = make_ring()
        seen = []
        ring.tap(seen.append)
        ring.record("tick", "a")
        ring.untap(seen.append)
        ring.record("tick", "b")
        assert len(seen) == 1
