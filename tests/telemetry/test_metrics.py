"""Tests for the metrics registry: counters, gauges, histograms."""

import pytest

from repro.telemetry.metrics import (Counter, Gauge, Histogram,
                                     MetricsRegistry)


class TestCounter:
    def test_increments(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_decrement(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_set_and_add(self):
        g = Gauge()
        g.set(10)
        g.add(-3)
        assert g.value == 7


class TestHistogram:
    def test_bucket_boundaries(self):
        # Bucket 0 is [0, 1); bucket k (k >= 1) is [2**(k-1), 2**k).
        assert Histogram.bucket_index(0) == 0
        assert Histogram.bucket_index(0.5) == 0
        assert Histogram.bucket_index(1) == 1
        assert Histogram.bucket_index(2) == 2
        assert Histogram.bucket_index(3) == 2
        assert Histogram.bucket_index(4) == 3
        for k in range(1, 20):
            lo, hi = Histogram.bucket_bounds(k)
            assert Histogram.bucket_index(lo) == k
            assert Histogram.bucket_index(hi - 1) == k
            assert Histogram.bucket_index(hi) == k + 1

    def test_bucket_bounds_edges(self):
        assert Histogram.bucket_bounds(0) == (0, 1)
        assert Histogram.bucket_bounds(1) == (1, 2)
        assert Histogram.bucket_bounds(5) == (16, 32)
        with pytest.raises(ValueError):
            Histogram.bucket_bounds(-1)

    def test_observe_aggregates(self):
        h = Histogram()
        for v in (0, 1, 3, 1200):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == 1204
        assert snap["min"] == 0
        assert snap["max"] == 1200
        # 1200 lands in [1024, 2048).
        assert [1024, 2048, 1] in snap["buckets"]


class TestMetricsRegistry:
    def test_interns_by_subsystem_name_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("sdk", "calls", enclave=1)
        b = reg.counter("sdk", "calls", enclave=1)
        c = reg.counter("sdk", "calls", enclave=2)
        assert a is b
        assert a is not c
        assert len(reg) == 2

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.counter("x", "y", p=1, q=2)
        b = reg.counter("x", "y", q=2, p=1)
        assert a is b

    def test_mixed_type_label_values_intern(self):
        # Interning sorts by key name only: label *values* may mix types
        # across call sites (enclave=3 vs enclave="boot"), and sorting
        # (key, value) pairs would compare 3 < "boot" and raise
        # TypeError.
        reg = MetricsRegistry()
        a = reg.counter("monitor", "swap", enclave=3, phase="steady")
        b = reg.counter("monitor", "swap", phase="steady", enclave=3)
        c = reg.counter("monitor", "swap", enclave="boot", phase=7)
        assert a is b
        assert a is not c
        assert len(reg) == 2

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("sdk", "calls")
        with pytest.raises(TypeError):
            reg.gauge("sdk", "calls")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("sdk", "calls", func="nop").inc(3)
        reg.gauge("os", "procs").set(2)
        reg.histogram("world", "lat").observe(100)
        snap = reg.snapshot()
        assert [e["subsystem"] for e in snap] == ["os", "sdk", "world"]
        by_name = {e["name"]: e for e in snap}
        assert by_name["calls"]["labels"] == {"func": "nop"}
        assert by_name["calls"]["value"] == 3
        assert by_name["procs"]["type"] == "gauge"
        assert by_name["lat"]["count"] == 1
