"""Request tracing: trace-context propagation and zero perturbation.

The tracer's contract has two halves.  Causally: every top-level ecall
is one request, and everything the monitor does on its behalf — world
switches, nested ocalls, page faults, swap traffic, TLB shootdowns —
appears as a balanced segment tree under that request, surviving
AEX-interrupted re-entry and ocall→ecall nesting of depth > 1.
Observationally: tracing charges nothing, so a traced run's figures,
cycles and state fingerprints are bit-identical to an untraced run.
"""

from __future__ import annotations

import pytest

from repro.hw.machine import MachineConfig
from repro.hw.phys import PAGE_SIZE
from repro.monitor.enclave import ENCLAVE_BASE_VA
from repro.monitor.structs import EnclaveConfig, EnclaveMode
from repro.platform import TeePlatform
from repro.sdk.image import EnclaveImage
from repro.telemetry.requests import (attach_machine, detach_machine,
                                      requests_document)
from repro.telemetry.schema import validate_requests
from tests.sdk.conftest import SMALL

TRACE_EDL = """
enclave {
    trusted {
        public uint64 outer();
        public uint64 inner(uint64 x);
        public uint64 faulty();
        public uint64 touch_pages(uint64 n);
        public uint64 boom();
    };
    untrusted {
        uint64 ocall_reenter();
        uint64 ocall_nop();
    };
};
"""

REGION_VA = ENCLAVE_BASE_VA + 128 * PAGE_SIZE

# A machine whose EPC (~6 MB after the monitor's carve-out) is smaller
# than the touch_pages working set, so sweeps swap.
TINY = MachineConfig(
    phys_size=256 * 1024 * 1024,
    reserved_base=128 * 1024 * 1024,
    reserved_size=8 * 1024 * 1024,
)


def t_outer(ctx):
    return ctx.ocall("ocall_reenter")


def t_inner(ctx, x):
    ctx.ocall("ocall_nop")
    return x + 1


def t_faulty(ctx):
    ctx.register_exception_handler(lambda c, v: None)
    ctx.trigger_ud()
    return 7


def t_touch_pages(ctx, n):
    faults = 0
    for i in range(n):
        va = REGION_VA + i * PAGE_SIZE
        if ctx.enclave.page_at(va) is None:
            faults += 1
        ctx.read(va, 8)
    return faults


def t_boom(ctx):
    raise ValueError("trusted function failed")


TRUSTED = {"outer": t_outer, "inner": t_inner, "faulty": t_faulty,
           "touch_pages": t_touch_pages, "boom": t_boom}


def _load(platform, *, heap=1024 * 1024):
    image = EnclaveImage.build(
        "tracee", TRACE_EDL, dict(TRUSTED),
        EnclaveConfig(mode=EnclaveMode.GU, heap_size=heap, tcs_count=2))
    handle = platform.load_enclave(image)
    handle.register_ocall("ocall_nop", lambda: 0)
    handle.register_ocall(
        "ocall_reenter", lambda: handle.ecall("inner", x=41))
    return handle


def _kinds(segments):
    return [s["kind"] for s in segments]


def _walk(segments):
    for segment in segments:
        yield segment
        yield from _walk(segment["segments"])


def _assert_balanced(record):
    assert record["end"] is not None and record["end"] >= record["begin"]
    for segment in _walk(record["segments"]):
        assert segment["end"] is not None, f"unclosed {segment['kind']}"
        assert record["begin"] <= segment["begin"] \
            <= segment["end"] <= record["end"]


@pytest.fixture
def traced_platform():
    platform = TeePlatform.hyperenclave(SMALL)
    tracer = attach_machine(platform.machine, label="t")
    yield platform, tracer
    detach_machine(platform.machine)


class TestTracerMechanics:
    def test_ids_are_label_vcpu_seq(self, traced_platform):
        platform, tracer = traced_platform
        handle = _load(platform)
        handle.ecall("inner", x=1)
        handle.ecall("inner", x=2)
        document = requests_document([tracer])
        validate_requests(document)
        ids = [r["id"] for r in document["traces"][0]["requests"]]
        # Build-time hypercalls ran before any request: seq starts at 0
        # regardless, because only open requests consume sequence slots.
        assert ids == ["t/cpu0/0", "t/cpu0/1"]
        handle.destroy()

    def test_world_switches_bracket_the_request(self, traced_platform):
        platform, tracer = traced_platform
        handle = _load(platform)
        handle.ecall("inner", x=1)
        (record,) = tracer.requests
        kinds = _kinds(record["segments"])
        assert kinds[0] == "eenter" and "eexit" in kinds
        _assert_balanced(record)
        handle.destroy()

    def test_nested_ocall_depth_two(self, traced_platform):
        """outer -> ocall_reenter -> ecall inner -> ocall_nop: one
        request, one causal tree four hops deep."""
        platform, tracer = traced_platform
        handle = _load(platform)
        assert handle.ecall("outer") == 42
        (record,) = tracer.requests
        assert record["name"] == "outer"
        ocall = next(s for s in _walk(record["segments"])
                     if s["kind"] == "ocall")
        assert ocall["name"] == "ocall_reenter"
        nested = next(s for s in _walk(ocall["segments"])
                      if s["kind"] == "ecall")
        assert nested["name"] == "inner"
        inner_ocall = next(s for s in _walk(nested["segments"])
                           if s["kind"] == "ocall")
        assert inner_ocall["name"] == "ocall_nop"
        _assert_balanced(record)
        handle.destroy()

    def test_failed_ecall_is_recorded_with_error(self, traced_platform):
        platform, tracer = traced_platform
        handle = _load(platform)
        with pytest.raises(ValueError):
            handle.ecall("boom")
        (record,) = tracer.requests
        assert record["error"] is True
        _assert_balanced(record)
        handle.destroy()

    def test_monitor_work_outside_requests_is_not_recorded(
            self, traced_platform):
        """Enclave build/destroy hypercalls run with no open request;
        the tracer must stay empty (begin_segment no-ops)."""
        platform, tracer = traced_platform
        handle = _load(platform)
        handle.destroy()
        assert tracer.requests == []
        assert tracer._stack == []


class TestContextPropagation:
    def test_aex_interrupted_ecall_keeps_its_context(self, traced_platform):
        """A #UD inside the ecall takes the two-phase path (AEX, signal,
        internal re-entry, ERESUME); the trace context survives and the
        world switches land inside the same request."""
        platform, tracer = traced_platform
        handle = _load(platform)
        assert handle.ecall("faulty") == 7
        (record,) = tracer.requests
        kinds = [s["kind"] for s in _walk(record["segments"])]
        assert "aex" in kinds and "eresume" in kinds
        # The re-entry for phase 2 is a world switch inside the request,
        # not a new request.
        assert kinds.count("eenter") >= 2
        assert len(tracer.requests) == 1
        _assert_balanced(record)
        handle.destroy()

    def test_swap_triggered_faults_attach_to_the_request(self):
        """Under EPC pressure the fault path swaps pages in and out;
        the whole chain (page_fault -> swap_out/swap_in) must appear
        under the sweeping request."""
        platform = TeePlatform.hyperenclave(TINY)
        tracer = attach_machine(platform.machine, label="tiny")
        handle = _load(platform, heap=8 * 1024 * 1024)
        eid = handle.enclave_id
        pages = 2048                      # 8 MB > the ~6 MB EPC
        platform.monitor.reserve_region(eid, REGION_VA,
                                        pages * PAGE_SIZE)
        faults = handle.ecall("touch_pages", n=pages)
        # A handful of region pages may already be resident (layout
        # overlap); the sweep still faults nearly the whole set.
        assert faults > pages - 64
        (record,) = tracer.requests
        kinds = [s["kind"] for s in _walk(record["segments"])]
        assert "page_fault" in kinds
        assert "swap_out" in kinds, "sweep must overflow the EPC"
        # Re-sweep: now the early pages were swapped out, so the fault
        # path swaps them back in — still inside one traced request.
        assert handle.ecall("touch_pages", n=pages) > 0
        second = tracer.requests[1]
        second_kinds = [s["kind"] for s in _walk(second["segments"])]
        assert "swap_in" in second_kinds
        # swap_in nests under the page fault that triggered it.
        fault = next(s for s in _walk(second["segments"])
                     if s["kind"] == "page_fault"
                     and any(c["kind"] == "swap_in" for c in s["segments"]))
        assert fault is not None
        for rec in tracer.requests:
            _assert_balanced(rec)
        assert record["steals"], "reclaim under pressure must be attributed"
        document = requests_document([tracer])
        validate_requests(document)
        handle.destroy()
        detach_machine(platform.machine)


class TestZeroPerturbation:
    def test_table1_is_bit_identical_with_tracing_on(self):
        """The determinism pin: tracing must not move one cycle of the
        paper's Table 1, nor the machine state fingerprints."""
        from repro.bench.runner import _ensure_benchmarks_importable
        from repro.telemetry import sink as telemetry_sink
        _ensure_benchmarks_importable()
        import benchmarks.bench_table1_edge_calls as table1

        def run(trace_requests):
            with telemetry_sink.capture(
                    trace_requests=trace_requests) as sink:
                figures = table1.run_experiment()
                fingerprints = sink.state_fingerprints()
                cycles = sum(tel.cycles.total for _, tel in sink.items)
                document = sink.requests_document()
            return figures, fingerprints, cycles, document

        bare = run(False)
        traced = run(True)
        assert traced[0] == bare[0], "figures moved under tracing"
        assert traced[1] == bare[1], "fingerprints moved under tracing"
        assert traced[2] == bare[2], "cycles moved under tracing"
        assert bare[3] is None and traced[3] is not None
        validate_requests(traced[3])
        assert any(t["requests"] for t in traced[3]["traces"])
