"""Tests for the telemetry hub: spans, events, attribution, collectors."""

import pytest

from repro.errors import EnclaveError
from repro.hw.cycles import CycleCounter
from repro.telemetry import (NULL_SPAN, Telemetry, cycles_by_subsystem,
                             subsystem_for_category)


@pytest.fixture
def tel():
    cycles = CycleCounter()
    t = Telemetry(cycles)
    t.enable()
    return t


class TestAttribution:
    def test_exact_and_prefix_mapping(self):
        assert subsystem_for_category("hypercall") == "monitor"
        assert subsystem_for_category("sdk-ecall") == "sdk"
        assert subsystem_for_category("eenter:hu") == "world"
        assert subsystem_for_category("pf:gu") == "world"
        assert subsystem_for_category("syscall") == "os"

    def test_mapping_is_total(self):
        assert subsystem_for_category("brand-new-category") == "other"

    def test_by_subsystem_sums_to_total(self):
        breakdown = {"hypercall": 100, "eenter:p": 50, "mystery": 7}
        agg = cycles_by_subsystem(breakdown)
        assert sum(agg.values()) == sum(breakdown.values())
        assert agg == {"monitor": 100, "world": 50, "other": 7}


class TestSpans:
    def test_disabled_returns_shared_null_span(self):
        t = Telemetry(CycleCounter())
        assert t.span("world.eenter") is NULL_SPAN
        assert t.span("sdk.ecall", enclave=1) is NULL_SPAN
        with t.span("anything"):
            pass
        assert len(t.spans) == 0

    def test_span_measures_cycles(self, tel):
        with tel.span("world.eenter", enclave=1):
            tel.cycles.charge(500, "eenter:hu")
        (rec,) = tel.spans
        assert rec.name == "world.eenter"
        assert rec.dur_cycles == 500
        assert rec.self_cycles == 500
        assert rec.labels == {"enclave": 1}
        assert rec.dur_wall_ns >= 0
        assert not rec.error

    def test_nesting_attributes_self_cycles(self, tel):
        with tel.span("sdk.ecall"):
            tel.cycles.charge(100, "sdk-ecall")
            with tel.span("world.eenter"):
                tel.cycles.charge(40, "eenter:hu")
            tel.cycles.charge(10, "sdk-ecall")
        inner, outer = tel.spans
        assert inner.depth == 1 and outer.depth == 0
        assert outer.dur_cycles == 150
        assert inner.dur_cycles == 40
        assert outer.self_cycles == 110

    def test_exception_unwinds_and_flags_error(self, tel):
        with pytest.raises(EnclaveError):
            with tel.span("sdk.ecall"):
                with tel.span("world.eenter"):
                    raise EnclaveError("boom")
        inner, outer = tel.spans
        assert inner.error and outer.error
        assert tel._stack == []

    def test_exception_skipping_child_exit_still_unwinds(self, tel):
        # Simulate a child span whose __exit__ never ran: the parent's
        # exit must still pop it off the stack.
        child = tel.span("world.eenter")
        parent = tel.span("sdk.ecall")
        parent.__enter__()
        child.__enter__()
        parent.__exit__(None, None, None)
        assert tel._stack == []

    def test_span_metrics_aggregate(self, tel):
        for _ in range(3):
            with tel.span("world.eenter", mode="hu"):
                tel.cycles.charge(1000, "eenter:hu")
        snap = {e["name"]: e for e in tel.registry.snapshot()}
        assert snap["eenter.calls"]["value"] == 3
        assert snap["eenter.cycles"]["value"] == 3000
        assert snap["eenter.cycles_hist"]["count"] == 3
        assert snap["eenter.calls"]["subsystem"] == "world"
        assert snap["eenter.calls"]["labels"] == {"mode": "hu"}


class TestEventsAndCounts:
    def test_event_detail_lazy(self, tel):
        calls = []

        def detail():
            calls.append(1)
            return "built"

        tel.disable()
        tel.event("kind", detail)
        assert not calls
        tel.enable()
        tel.event("kind", detail)
        assert calls == [1]
        (ev,) = tel.ring.events("kind")
        assert ev.detail == "built"

    def test_count_noop_when_disabled(self):
        t = Telemetry(CycleCounter())
        t.count("sdk", "calls")
        assert len(t.registry) == 0

    def test_reset_drops_everything(self, tel):
        with tel.span("sdk.ecall"):
            pass
        tel.event("e", "d")
        tel.reset()
        assert len(tel.spans) == 0
        assert len(tel.registry) == 0
        assert len(tel.ring) == 0


class TestCollectors:
    def test_hardware_stats_samples_collectors(self, tel):
        tel.add_collector("fake", lambda: {"hits": 7})
        tel.paging_stats("os").walks = 3
        hw = tel.hardware_stats()
        assert hw["fake"] == {"hits": 7}
        assert hw["paging"]["os"]["walks"] == 3

    def test_paging_stats_interned_per_domain(self, tel):
        assert tel.paging_stats("os") is tel.paging_stats("os")
        assert tel.paging_stats("os") is not tel.paging_stats("enclave")
