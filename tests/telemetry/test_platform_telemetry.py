"""End-to-end telemetry over the real platform.

The two invariants that make telemetry safe to ship:

* spans/metrics observe the simulated clock, never charge it — enabling
  telemetry cannot change a calibrated cycle count;
* attribution is total — per-subsystem cycle totals sum exactly to the
  machine's run total, whatever the workload did.
"""

from repro.platform import TeePlatform
from repro.telemetry.export import machine_snapshot, snapshot_document

from tests.sdk.conftest import SMALL, demo_image


def _run_workload(platform, handle):
    handle.proxies.add_numbers(a=1, b=2)
    va = handle.ctx.malloc(4096)
    handle.ctx.write(va, b"x" * 4096)


class TestPlatformTelemetry:
    def test_spans_recorded_for_edge_calls(self):
        platform = TeePlatform.hyperenclave(SMALL)
        platform.machine.telemetry.enable()
        handle = platform.load_enclave(demo_image())
        _run_workload(platform, handle)
        names = {rec.name for rec in platform.machine.telemetry.spans}
        assert "sdk.create_enclave" in names
        assert "sdk.ecall" in names
        assert "world.eenter" in names
        assert "world.eexit" in names
        handle.destroy()

    def test_enabling_telemetry_does_not_change_cycle_counts(self):
        totals = []
        for enable in (False, True):
            platform = TeePlatform.hyperenclave(SMALL)
            if enable:
                platform.machine.telemetry.enable()
            handle = platform.load_enclave(demo_image())
            _run_workload(platform, handle)
            handle.destroy()
            totals.append(platform.machine.cycles.total)
        assert totals[0] == totals[1]

    def test_subsystem_totals_sum_exactly(self):
        platform = TeePlatform.hyperenclave(SMALL)
        platform.machine.telemetry.enable()
        handle = platform.load_enclave(demo_image())
        _run_workload(platform, handle)
        snap = machine_snapshot(platform.machine.telemetry)
        assert sum(snap["cycles"]["by_subsystem"].values()) == \
            snap["cycles"]["total"]
        handle.destroy()

    def test_hypercall_counters_labeled_by_op(self):
        platform = TeePlatform.hyperenclave(SMALL)
        platform.machine.telemetry.enable()
        handle = platform.load_enclave(demo_image())
        snap = platform.machine.telemetry.registry.snapshot()
        ops = {e["labels"]["op"]: e["value"] for e in snap
               if e["name"] == "hypercalls"}
        assert ops.get("ecreate") == 1
        assert ops.get("einit") == 1
        assert ops.get("eadd", 0) > 1
        handle.destroy()

    def test_hardware_collectors_in_snapshot(self):
        platform = TeePlatform.hyperenclave(SMALL)
        platform.machine.telemetry.enable()
        handle = platform.load_enclave(demo_image())
        _run_workload(platform, handle)
        doc = snapshot_document([("m", platform.machine.telemetry)])
        hw = doc["machines"][0]["hardware"]
        assert "tlb" in hw and "llc" in hw and "encryption" in hw
        assert hw["encryption"]["engine"] == "amd-sme"
        assert "os" in hw["paging"] and "enclave" in hw["paging"]
        assert hw["paging"]["enclave"]["walks"] > 0
        handle.destroy()

    def test_trace_events_are_int_stamped(self):
        platform = TeePlatform.hyperenclave(SMALL)
        platform.machine.trace.enable()
        handle = platform.load_enclave(demo_image())
        _run_workload(platform, handle)
        for event in platform.machine.trace:
            assert isinstance(event.cycle, int)
        dump = platform.machine.trace.dump()
        assert "." not in dump.partition("]")[0]   # no float stamps
        handle.destroy()
