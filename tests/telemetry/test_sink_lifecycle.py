"""Sink lifecycle: many machines, relabeling, unregistration, hashes.

The sink is process-wide state; these tests pin the parts multi-machine
experiments depend on — every constructed machine is captured, explicit
labels upgrade auto ones, unregistering leaves no residue, and the
per-machine state fingerprints feed the bench determinism gate.
"""

from __future__ import annotations

from repro.platform import TeePlatform
from repro.telemetry import sink as telemetry_sink
from tests.sdk.conftest import SMALL, demo_image


class TestMultipleMachines:
    def test_every_constructed_machine_is_captured(self):
        with telemetry_sink.capture() as sink:
            platforms = [TeePlatform.hyperenclave(SMALL) for _ in range(3)]
        labels = [label for label, _ in sink.machines()]
        assert labels == ["machine-1", "machine-2", "machine-3"]
        assert [m for _, m in sink.machines()] == \
            [p.machine for p in platforms]

    def test_relabel_preserves_slot_and_machine(self):
        with telemetry_sink.capture() as sink:
            platform = TeePlatform.hyperenclave(SMALL)
            sink.register("gu", platform.machine.telemetry)
        assert [label for label, _ in sink.machines()] == ["gu"]

    def test_duplicate_labels_are_deduplicated(self):
        with telemetry_sink.capture() as sink:
            a = TeePlatform.hyperenclave(SMALL)
            b = TeePlatform.hyperenclave(SMALL)
            sink.register("gu", a.machine.telemetry)
            sink.register("gu", b.machine.telemetry)
        assert [label for label, _ in sink.machines()] == ["gu", "gu-2"]

    def test_state_fingerprints_cover_every_machine(self):
        with telemetry_sink.capture() as sink:
            for _ in range(2):
                platform = TeePlatform.hyperenclave(SMALL)
                handle = platform.load_enclave(demo_image())
                handle.proxies.add_numbers(a=1, b=2)
                handle.destroy()
            fingerprints = sink.state_fingerprints()
        assert set(fingerprints) == {"machine-1", "machine-2"}
        # Identical workloads on identical machines: identical hashes.
        assert fingerprints["machine-1"] == fingerprints["machine-2"]


class TestUnregister:
    def test_unregister_frees_label_and_disables_telemetry(self):
        with telemetry_sink.capture() as sink:
            a = TeePlatform.hyperenclave(SMALL)
            b = TeePlatform.hyperenclave(SMALL)
            assert sink.unregister(a.machine.telemetry) is True
            assert not a.machine.telemetry.enabled
            assert b.machine.telemetry.enabled
            c = TeePlatform.hyperenclave(SMALL)
        labels = [label for label, _ in sink.machines()]
        assert a.machine not in [m for _, m in sink.machines()]
        assert len(labels) == 2 and len(set(labels)) == 2

    def test_unregister_unknown_hub_is_a_noop(self):
        with telemetry_sink.capture() as sink:
            platform = TeePlatform.hyperenclave(SMALL)
            other = TeePlatform.hyperenclave(SMALL)
            sink.unregister(other.machine.telemetry)
            assert sink.unregister(other.machine.telemetry) is False
        assert [m for _, m in sink.machines()] == [platform.machine]

    def test_registration_works_after_unregister(self):
        with telemetry_sink.capture() as sink:
            a = TeePlatform.hyperenclave(SMALL)
            sink.register("gu", a.machine.telemetry)
            sink.unregister(a.machine.telemetry)
            b = TeePlatform.hyperenclave(SMALL)
            label = sink.register("gu", b.machine.telemetry)
        assert label == "gu"                     # freed label was reused
        assert sink.machines() == [("gu", b.machine)]

    def test_fingerprints_skip_unregistered_machines(self):
        with telemetry_sink.capture() as sink:
            a = TeePlatform.hyperenclave(SMALL)
            b = TeePlatform.hyperenclave(SMALL)
            sink.unregister(a.machine.telemetry)
            fingerprints = sink.state_fingerprints()
        assert list(fingerprints) == ["machine-2"]
        assert fingerprints["machine-2"] == b.machine.state_hash()
