"""Percentile derivation from log2-bucket histograms.

The estimates interpolate linearly inside the bucket holding the target
rank, so on power-of-two buckets the worst case is one bucket width — a
factor of two.  These tests pin that bound against exact numpy
percentiles on uniform, bimodal, and heavy-tailed distributions, plus
the edge cases (empty, single observation, single bucket, q=0/100)
where clamping to the observed min/max makes the estimate exact.
"""

import pytest

from repro.telemetry import (SUMMARY_QUANTILES, Histogram,
                             percentile_from_buckets)

np = pytest.importorskip("numpy")


def fill(values) -> Histogram:
    hist = Histogram()
    for value in values:
        hist.observe(value)
    return hist


def assert_within_factor_two(hist, values, q):
    exact = float(np.percentile(np.asarray(values, dtype=float), q))
    estimate = hist.percentile(q)
    assert estimate is not None
    if exact > 0:
        assert exact / 2 <= estimate <= exact * 2, \
            f"p{q}: estimate {estimate} vs exact {exact}"
    assert hist.min <= estimate <= hist.max


class TestAgainstNumpy:
    @pytest.mark.parametrize("q", SUMMARY_QUANTILES)
    def test_uniform(self, q):
        values = list(range(1, 1001))
        assert_within_factor_two(fill(values), values, q)

    @pytest.mark.parametrize("q", SUMMARY_QUANTILES)
    def test_bimodal(self, q):
        # Two cost populations an order of magnitude apart — the shape
        # of ecall costs vs EPC-swap costs.  The split is uneven so no
        # tested rank falls exactly in the empty gap between the modes,
        # where every value between them is an equally valid percentile.
        rng = np.random.default_rng(20260808)
        values = np.concatenate([rng.integers(90, 130, 450),
                                 rng.integers(9_000, 17_000, 550)])
        assert_within_factor_two(fill(values), values, q)

    @pytest.mark.parametrize("q", SUMMARY_QUANTILES)
    def test_heavy_tail(self, q):
        rng = np.random.default_rng(42)
        values = (rng.pareto(1.5, 2000) * 100 + 1).astype(int)
        assert_within_factor_two(fill(values), values, q)

    def test_tail_percentiles_are_monotone(self):
        rng = np.random.default_rng(7)
        hist = fill((rng.pareto(2.0, 5000) * 300 + 1).astype(int))
        p = hist.percentiles()
        assert p["p50"] <= p["p95"] <= p["p99"]


class TestEdgeCases:
    def test_empty_histogram_returns_none(self):
        hist = Histogram()
        assert hist.percentile(50) is None
        assert hist.percentiles() == {}

    def test_single_observation_is_exact_everywhere(self):
        hist = fill([1234])
        for q in (0, 1, 50, 99, 100):
            assert hist.percentile(q) == 1234    # clamped to min == max

    def test_single_bucket_clamps_to_observed_range(self):
        # 100 and 120 share bucket [64, 128); interpolation alone would
        # reach down to 64, the min clamp keeps the estimate observed.
        hist = fill([100] * 10 + [120] * 10)
        assert 100 <= hist.percentile(50) <= 120
        assert hist.percentile(0) == 100
        assert hist.percentile(100) == 120

    def test_q0_and_q100_hit_the_observed_extremes(self):
        hist = fill([3, 700, 50_000])
        assert hist.percentile(0) == 3
        assert hist.percentile(100) == 50_000

    def test_out_of_range_q_raises(self):
        hist = fill([1])
        with pytest.raises(ValueError, match="percentile out of range"):
            hist.percentile(101)
        with pytest.raises(ValueError, match="percentile out of range"):
            hist.percentile(-1)


class TestPercentileFromBuckets:
    def test_hand_computed_interpolation(self):
        # Two buckets of two: rank target for p50 over 4 observations is
        # 2.0, which lands exactly at the first bucket's upper bound.
        buckets = [(0, 1, 2), (1, 2, 2)]
        assert percentile_from_buckets(buckets, 4, 50) == pytest.approx(1.0)
        # p75 -> target 3.0, one observation into the second bucket:
        # 1 + (2-1) * (3-2)/2 = 1.5.
        assert percentile_from_buckets(buckets, 4, 75) == pytest.approx(1.5)

    def test_empty_and_zero_count(self):
        assert percentile_from_buckets([], 0, 50) is None
        assert percentile_from_buckets([(0, 1, 0)], 0, 50) is None

    def test_accepts_generators(self):
        # Histogram.percentile passes a generator; the fallback path
        # must not try to re-consume it.
        gen = ((lo, hi, n) for lo, hi, n in [(4, 8, 5)])
        assert percentile_from_buckets(gen, 5, 100) == 8
