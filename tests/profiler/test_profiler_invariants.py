"""The invariants that make profiling safe on calibrated runs.

* Capturing telemetry and building the exact profile never charges the
  simulated clock — a profiled run's cycle counts are bit-identical to a
  bare run (Table 1/2 calibration is untouched);
* attribution is total — frame self-cycles sum exactly to root-span
  cycles, for each machine and combined;
* the emitted collapsed-stack file is well-formed for flamegraph tooling
  and conserves the same total.
"""

from repro.platform import TeePlatform
from repro.profiler import (parse_collapsed, profile_document, self_total,
                            validate_profile, write_collapsed)
from repro.telemetry import sink as telemetry_sink

from tests.sdk.conftest import SMALL, demo_image


def _lifecycle(record_total) -> tuple:
    """Load, ecall, ocall round-trip, heap traffic, destroy."""
    platform = TeePlatform.hyperenclave(SMALL)
    handle = platform.load_enclave(demo_image())
    handle.register_ocall("ocall_sink", lambda data, n: 0)
    handle.proxies.add_numbers(a=1, b=2)
    handle.proxies.sum_bytes(data=b"\x05" * 512, n=512)
    handle.proxies.echo_through_ocall(data=b"ping", n=4)
    va = handle.ctx.malloc(8192)
    handle.ctx.write(va, b"y" * 8192)
    handle.destroy()
    record_total.append(platform.machine.cycles.total)
    return platform


class TestProfilerInvariants:
    def test_profiled_run_is_bit_identical_to_bare_run(self):
        totals = []
        _lifecycle(totals)                        # bare: no sink, no spans
        with telemetry_sink.capture() as sink:    # profiled
            _lifecycle(totals)
        doc = profile_document(sink.items)
        assert doc["combined"]["total_span_cycles"] > 0
        assert totals[0] == totals[1]

    def test_accounting_is_total_on_a_real_run(self):
        with telemetry_sink.capture() as sink:
            _lifecycle([])
        doc = profile_document(sink.items)
        validate_profile(doc)
        for machine in doc["machines"]:
            assert not machine["truncated"]
            assert self_total(machine) == machine["total_span_cycles"]
        assert self_total(doc["combined"]) == \
            doc["combined"]["total_span_cycles"]

    def test_real_run_covers_the_edge_call_stacks(self):
        with telemetry_sink.capture() as sink:
            _lifecycle([])
        doc = profile_document(sink.items)
        stacks = {tuple(f["stack"]) for f in doc["combined"]["frames"]}
        assert ("sdk.ecall",) in stacks
        assert ("sdk.ecall", "world.eenter") in stacks
        assert ("sdk.ecall", "world.eexit") in stacks
        assert any("sdk.ocall" in stack for stack in stacks)

    def test_collapsed_file_conserves_total(self, tmp_path):
        with telemetry_sink.capture() as sink:
            _lifecycle([])
        doc = profile_document(sink.items)
        path = write_collapsed(tmp_path / "run.collapsed", doc)
        parsed = parse_collapsed(path.read_text())
        assert sum(parsed.values()) == doc["combined"]["total_span_cycles"]
        assert all(count > 0 for count in parsed.values())
