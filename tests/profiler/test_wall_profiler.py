"""Unit tests for the wall-clock (host-time) profiler.

A monkeypatched ``perf_counter_ns`` makes every span's wall duration
hand-computable, which pins the dual-domain frame aggregation (self vs
inclusive wall-ns), the efficiency ratios, the subsystem shares, the
wall flamegraph format, and the CLI's graceful degradation on profiles
written before the wall profiler existed.
"""

import json
import time

import pytest

from repro.hw.cycles import CycleCounter
from repro.profiler import (efficiency_frames, efficiency_report,
                            has_wall_data, host_clock_ns, machine_profile,
                            profile_document, subsystem_wall_shares,
                            wall_collapsed_lines, wall_frames, wall_report,
                            wall_summary, write_wall_collapsed)
from repro.profiler.__main__ import main as profiler_main
from repro.telemetry import Telemetry


class FakeClock:
    """perf_counter_ns stand-in: +1000 ns per call, so spans have exact
    hand-checkable durations (enter and exit each consume one tick)."""

    def __init__(self, step_ns: int = 1000) -> None:
        self.now = 0
        self.step = step_ns

    def __call__(self) -> int:
        self.now += self.step
        return self.now


@pytest.fixture
def fake_clock(monkeypatch):
    clock = FakeClock()
    monkeypatch.setattr(time, "perf_counter_ns", clock)
    return clock


def make_tel() -> Telemetry:
    tel = Telemetry(CycleCounter())
    tel.enable()
    return tel


def run_workload(tel: Telemetry) -> None:
    """One nested tree; with FakeClock every wall charge is exact.

    Clock trace (1000 ns per call):
      sdk.ecall    enter@1000                           exit@6000
      world.eenter           enter@2000 exit@3000
      world.eexit                       enter@4000 exit@5000
    So: eenter/eexit dur=1000 self=1000; ecall dur=5000, child=2000,
    self=3000.
    """
    with tel.span("sdk.ecall", enclave=1):
        tel.cycles.charge(100, "sdk-ecall")
        with tel.span("world.eenter"):
            tel.cycles.charge(1500, "eenter:hu")
        with tel.span("world.eexit"):
            tel.cycles.charge(400, "eexit:hu")


class TestWallFrameAggregation:
    def test_self_vs_inclusive_wall_per_stack(self, fake_clock):
        tel = make_tel()
        run_workload(tel)
        profile = machine_profile(tel, "m")
        frames = {tuple(f["stack"]): f for f in profile["frames"]}
        ecall = frames[("sdk.ecall",)]
        assert ecall["wall_ns"] == 5000          # inclusive
        assert ecall["self_wall_ns"] == 3000     # minus both children
        assert frames[("sdk.ecall", "world.eenter")]["self_wall_ns"] == 1000
        assert frames[("sdk.ecall", "world.eexit")]["self_wall_ns"] == 1000
        assert profile["total_span_wall_ns"] == 5000   # root spans only

    def test_self_wall_sums_to_root_wall(self, fake_clock):
        tel = make_tel()
        run_workload(tel)
        run_workload(tel)
        profile = machine_profile(tel, "m")
        assert sum(f["self_wall_ns"] for f in profile["frames"]) == \
            profile["total_span_wall_ns"] == 10000

    def test_wall_frames_ranked_heaviest_first(self, fake_clock):
        tel = make_tel()
        run_workload(tel)
        document = profile_document([("m", tel)])
        ranked = wall_frames(document)
        assert ranked[0]["stack"] == ["sdk.ecall"]
        assert [f["self_wall_ns"] for f in ranked] == [3000, 1000, 1000]

    def test_subsystem_shares_sum_to_one(self, fake_clock):
        tel = make_tel()
        run_workload(tel)
        document = profile_document([("m", tel)])
        shares = subsystem_wall_shares(document)
        assert set(shares) == {"sdk", "world"}
        assert shares["sdk"]["self_wall_ns"] == 3000
        assert shares["world"]["self_wall_ns"] == 2000
        assert shares["sdk"]["share"] == pytest.approx(0.6)
        assert sum(e["share"] for e in shares.values()) == pytest.approx(1.0)

    def test_summary_mirrors_cycle_summary_shape(self, fake_clock):
        tel = make_tel()
        run_workload(tel)
        document = profile_document([("m", tel)])
        summary = wall_summary(document, n=2)
        assert summary["total_span_wall_ns"] == 5000
        assert summary["machines"] == 1
        assert len(summary["top_self_wall"]) == 2
        assert summary["top_self_wall"][0]["stack"] == "sdk.ecall"


class TestEfficiencyFrames:
    def test_wall_ns_per_cycle_ratio(self, fake_clock):
        tel = make_tel()
        run_workload(tel)
        document = profile_document([("m", tel)])
        frames = {";".join(f["stack"]): f
                  for f in efficiency_frames(document)}
        # sdk.ecall: 3000 ns over 100 self cycles = 30 ns/cycle.
        assert frames["sdk.ecall"]["wall_ns_per_cycle"] == \
            pytest.approx(30.0)
        # world.eenter: 1000 ns over 1500 cycles ~ 0.67 ns/cycle.
        assert frames["sdk.ecall;world.eenter"]["wall_ns_per_cycle"] == \
            pytest.approx(1000 / 1500)

    def test_worst_ratio_first_and_min_cycles_filter(self, fake_clock):
        tel = make_tel()
        run_workload(tel)
        document = profile_document([("m", tel)])
        ranked = efficiency_frames(document)
        ratios = [f["wall_ns_per_cycle"] for f in ranked]
        assert ratios == sorted(ratios, reverse=True)
        assert ranked[0]["stack"] == ["sdk.ecall"]     # 30 ns/cycle
        # min_cycles=1000 drops sdk.ecall (100 self cycles): its ratio
        # would be noise on a real run.
        filtered = efficiency_frames(document, min_cycles=1000)
        assert all(f["self_cycles"] >= 1000 for f in filtered)
        assert ["sdk.ecall"] not in [f["stack"] for f in filtered]

    def test_report_names_the_hot_path(self, fake_clock):
        tel = make_tel()
        run_workload(tel)
        document = profile_document([("m", tel)])
        text = efficiency_report(document, min_cycles=1)
        assert "ns/cycle" in text
        assert "sdk.ecall" in text


class TestWallFlamegraph:
    def test_collapsed_lines_weighted_by_self_wall(self, fake_clock):
        tel = make_tel()
        run_workload(tel)
        document = profile_document([("m", tel)])
        lines = wall_collapsed_lines(document)
        assert "m;sdk.ecall 3000" in lines
        assert "m;sdk.ecall;world.eenter 1000" in lines

    def test_write_round_trip(self, fake_clock, tmp_path):
        tel = make_tel()
        run_workload(tel)
        document = profile_document([("m", tel)])
        path = write_wall_collapsed(tmp_path / "x.wall.collapsed", document)
        content = path.read_text().strip().splitlines()
        assert len(content) == 3
        assert all(line.rsplit(" ", 1)[1].isdigit() for line in content)


class TestBackCompat:
    def _old_document(self, tmp_path):
        """A profile as PR-3 wrote it: no wall fields anywhere."""
        tel = make_tel()
        run_workload(tel)
        document = profile_document([("m", tel)])
        for snap in document["machines"] + [document["combined"]]:
            snap.pop("total_span_wall_ns", None)
            for frame in snap["frames"]:
                frame.pop("wall_ns", None)
                frame.pop("self_wall_ns", None)
        path = tmp_path / "old.profile.json"
        path.write_text(json.dumps(document))
        return document, path

    def test_has_wall_data(self, fake_clock, tmp_path):
        old, _ = self._old_document(tmp_path)
        assert not has_wall_data(old)
        tel = make_tel()
        run_workload(tel)
        assert has_wall_data(profile_document([("m", tel)]))

    def test_cli_wall_and_efficiency_exit_2_on_old_profiles(
            self, fake_clock, tmp_path, capsys):
        _, path = self._old_document(tmp_path)
        assert profiler_main(["wall", str(path)]) == 2
        assert profiler_main(["efficiency", str(path)]) == 2
        err = capsys.readouterr().err
        assert "no wall-domain data" in err

    def test_cli_wall_and_efficiency_on_current_profiles(
            self, fake_clock, tmp_path, capsys):
        tel = make_tel()
        run_workload(tel)
        document = profile_document([("m", tel)])
        path = tmp_path / "cur.profile.json"
        path.write_text(json.dumps(document))
        out_path = tmp_path / "cur.wall.collapsed"
        assert profiler_main(["wall", str(path),
                              "-o", str(out_path)]) == 0
        assert out_path.exists()
        assert profiler_main(["efficiency", str(path),
                              "--min-cycles", "1"]) == 0
        out = capsys.readouterr().out
        assert "wall share by subsystem" in out
        assert "ns/cycle" in out


class TestHostClock:
    def test_host_clock_is_monotonic_ns(self):
        a = host_clock_ns()
        b = host_clock_ns()
        assert isinstance(a, int) and b >= a
