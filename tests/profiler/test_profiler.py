"""Unit tests for the exact cycle-attribution profiler.

Synthetic span trees with hand-computable cycle charges pin the frame
aggregation (calls, inclusive vs self cycles), the per-enclave/per-CPU
breakdowns, the collapsed-stack round-trip, and the diff ranking.
"""

import json

import pytest

from repro.hw.cycles import CycleCounter
from repro.profiler import (FrameDelta, collapsed_lines, diff_profiles,
                            diff_report, machine_profile, parse_collapsed,
                            profile_document, profile_summary, self_total,
                            validate_profile, write_collapsed)
from repro.profiler.__main__ import main as profiler_main
from repro.telemetry import Telemetry, UnclosedSpanError


def make_tel() -> Telemetry:
    tel = Telemetry(CycleCounter())
    tel.enable()
    return tel


def run_workload(tel: Telemetry, scale: int = 1) -> None:
    """Two root spans, one nested pair; every charge is hand-checkable."""
    with tel.span("ecall", enclave=1, cpu=0):
        tel.cycles.charge(100 * scale, "sdk-ecall")
        with tel.span("eenter"):
            tel.cycles.charge(500 * scale, "eenter:hu")
        tel.cycles.charge(40 * scale, "sdk-ecall")
        with tel.span("eexit"):
            tel.cycles.charge(380 * scale, "eexit:hu")
    with tel.span("attest", enclave=2):
        tel.cycles.charge(30 * scale, "crypto")


class TestFrameAggregation:
    def test_frames_keyed_by_exact_stack(self):
        tel = make_tel()
        run_workload(tel)
        profile = machine_profile(tel, "m")
        frames = {tuple(f["stack"]): f for f in profile["frames"]}
        assert set(frames) == {("ecall",), ("ecall", "eenter"),
                               ("ecall", "eexit"), ("attest",)}
        assert frames[("ecall",)]["cycles"] == 1020      # inclusive
        assert frames[("ecall",)]["self_cycles"] == 140  # minus children
        assert frames[("ecall", "eenter")]["self_cycles"] == 500
        assert frames[("ecall", "eexit")]["self_cycles"] == 380
        assert frames[("attest",)]["self_cycles"] == 30

    def test_calls_accumulate_per_stack(self):
        tel = make_tel()
        run_workload(tel)
        run_workload(tel)
        profile = machine_profile(tel, "m")
        frames = {tuple(f["stack"]): f for f in profile["frames"]}
        assert frames[("ecall",)]["calls"] == 2
        assert frames[("ecall", "eenter")]["calls"] == 2
        assert frames[("ecall", "eenter")]["self_cycles"] == 1000

    def test_self_cycles_sum_to_root_span_cycles(self):
        tel = make_tel()
        run_workload(tel)
        profile = machine_profile(tel, "m")
        assert profile["total_span_cycles"] == 1050
        assert self_total(profile) == profile["total_span_cycles"]

    def test_breakdowns_split_self_cycles_by_label(self):
        tel = make_tel()
        run_workload(tel)
        profile = machine_profile(tel, "m")
        # Child spans carry no enclave label -> bucket "-".
        assert profile["by_enclave"] == {"1": 140, "-": 880, "2": 30}
        assert sum(profile["by_enclave"].values()) == 1050
        assert profile["by_cpu"] == {"0": 1050}

    def test_document_combines_machines(self):
        tel_a, tel_b = make_tel(), make_tel()
        run_workload(tel_a)
        run_workload(tel_b, scale=2)
        doc = profile_document([("a", tel_a), ("b", tel_b)])
        validate_profile(doc)
        assert doc["combined"]["total_span_cycles"] == 1050 * 3
        combined = {tuple(f["stack"]): f for f in doc["combined"]["frames"]}
        assert combined[("ecall", "eenter")]["self_cycles"] == 1500
        assert combined[("ecall", "eenter")]["calls"] == 2
        assert self_total(doc["combined"]) == 1050 * 3

    def test_summary_ranks_by_self_cycles(self):
        tel = make_tel()
        run_workload(tel)
        summary = profile_summary(profile_document([("m", tel)]), n=2)
        assert summary["total_span_cycles"] == 1050
        assert summary["machines"] == 1
        stacks = [f["stack"] for f in summary["top_self"]]
        assert stacks == ["ecall;eenter", "ecall;eexit"]

    def test_profiling_reads_without_charging(self):
        tel = make_tel()
        run_workload(tel)
        before = tel.cycles.total
        machine_profile(tel, "m")
        profile_document([("m", tel)])
        assert tel.cycles.total == before


class TestUnclosedSpans:
    def test_strict_profile_raises_with_span_names(self):
        tel = make_tel()
        outer = tel.span("outer")
        outer.__enter__()
        with pytest.raises(UnclosedSpanError, match="outer"):
            machine_profile(tel, "m")
        outer.__exit__(None, None, None)
        machine_profile(tel, "m")   # closed: no longer raises

    def test_lenient_profile_reports_open_names(self):
        tel = make_tel()
        span = tel.span("pending")
        span.__enter__()
        profile = machine_profile(tel, "m", strict=False)
        assert profile["open_spans"] == ["pending"]
        span.__exit__(None, None, None)


class TestCollapsed:
    def test_round_trip_preserves_self_cycles(self):
        tel = make_tel()
        run_workload(tel)
        doc = profile_document([("m", tel)])
        parsed = parse_collapsed("\n".join(collapsed_lines(doc)))
        assert parsed[("m", "ecall", "eenter")] == 500
        assert sum(parsed.values()) == 1050

    def test_combined_mode_drops_machine_prefix(self):
        tel = make_tel()
        run_workload(tel)
        doc = profile_document([("m", tel)])
        parsed = parse_collapsed(
            "\n".join(collapsed_lines(doc, prefix_machine=False)))
        assert parsed[("ecall", "eexit")] == 380

    def test_lines_are_flamegraph_shaped(self, tmp_path):
        """Every line must be `frame;frame... <int>` — the exact input
        format of flamegraph.pl / speedscope / inferno."""
        tel = make_tel()
        run_workload(tel)
        path = write_collapsed(tmp_path / "out.collapsed",
                               profile_document([("m", tel)]))
        for line in path.read_text().splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack and count.isdigit() and int(count) > 0
            assert all(frame for frame in stack.split(";"))

    def test_zero_self_frames_are_skipped(self):
        tel = make_tel()
        with tel.span("wrapper"):          # all cycles go to the child
            with tel.span("inner"):
                tel.cycles.charge(10, "sdk-ecall")
        lines = collapsed_lines(profile_document([("m", tel)]))
        assert lines == ["m;wrapper;inner 10"]

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_collapsed("no-count-here")


class TestDiff:
    def _docs(self):
        base_tel, cur_tel = make_tel(), make_tel()
        run_workload(base_tel)
        run_workload(cur_tel, scale=2)
        with cur_tel.span("new_phase"):
            cur_tel.cycles.charge(7, "other")
        return (profile_document([("m", base_tel)]),
                profile_document([("m", cur_tel)]))

    def test_largest_delta_first(self):
        base, cur = self._docs()
        deltas = diff_profiles(base, cur)
        assert deltas[0].stack == ("ecall", "eenter")
        assert deltas[0].delta == 500
        assert all(abs(a.delta) >= abs(b.delta)
                   for a, b in zip(deltas, deltas[1:]))

    def test_frames_missing_on_one_side_count_from_zero(self):
        base, cur = self._docs()
        table = {d.stack: d for d in diff_profiles(base, cur)}
        assert table[("new_phase",)].base_self == 0
        assert table[("new_phase",)].delta == 7
        only_base = FrameDelta(("gone",), base_self=9, cur_self=0,
                               base_calls=1, cur_calls=0)
        assert only_base.delta == -9

    def test_report_names_total_movement(self):
        base, cur = self._docs()
        text = diff_report(base, cur)
        assert "1,050 -> 2,107" in text
        assert "ecall;eenter" in text

    def test_identical_profiles_report_no_movement(self):
        base, _ = self._docs()
        assert "no frame moved a single cycle" in diff_report(base, base)


class TestProfilerCli:
    def _write_doc(self, tmp_path, name, scale=1):
        tel = make_tel()
        run_workload(tel, scale=scale)
        path = tmp_path / name
        path.write_text(json.dumps(profile_document([("m", tel)])))
        return path

    def test_report_prints_top_frames(self, tmp_path, capsys):
        path = self._write_doc(tmp_path, "p.json")
        assert profiler_main(["report", str(path), "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "total span cycles: 1,050" in out
        assert "ecall;eenter" in out

    def test_collapse_writes_parseable_file(self, tmp_path, capsys):
        path = self._write_doc(tmp_path, "p.json")
        assert profiler_main(["collapse", str(path)]) == 0
        parsed = parse_collapsed((tmp_path / "p.collapsed").read_text())
        assert sum(parsed.values()) == 1050

    def test_diff_exit_codes_track_total_movement(self, tmp_path, capsys):
        base = self._write_doc(tmp_path, "base.json")
        cur = self._write_doc(tmp_path, "cur.json", scale=2)
        assert profiler_main(["diff", str(base), str(base)]) == 0
        assert profiler_main(["diff", str(base), str(cur)]) == 1

    def test_invalid_profile_is_a_usage_error(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}")
        assert profiler_main(["report", str(bogus)]) == 2
