"""Crash forensics: a SanitizerViolation leaves an inspectable bundle.

Emission is opt-in (active recorder or ``REPRO_FORENSICS_DIR``); the
bundle carries enough to debug post-mortem without re-running — state
hash + per-component fingerprints, CPU/TLB/page-table dump, the open
span stack, the last journal events, and a metrics snapshot.
"""

from __future__ import annotations

import pytest

from repro.flightrec import forensics
from repro.flightrec.scenario import run_recorded
from repro.hw.machine import Machine, MachineConfig
from repro.monitor.boot import measured_late_launch
from repro.sanitizer import SAN_MEASURE, SanitizerViolation
from tests.monitor.conftest import build_minimal_enclave

SANITIZED_CONFIG = MachineConfig(
    phys_size=512 * 1024 * 1024,
    reserved_base=256 * 1024 * 1024,
    reserved_size=128 * 1024 * 1024,
    sanitize=True,
)


def _provoke_violation(machine, monitor):
    """Patch a measured page behind the monitor's back (SAN-MEASURE)."""
    eid, enclave = build_minimal_enclave(monitor, machine)
    machine.phys.write(enclave.pages[0].pa, b"patched after measurement")
    monitor.audit_invariants()


class TestEmissionGate:
    def test_no_bundle_without_optin(self, tmp_path, monkeypatch):
        monkeypatch.delenv(forensics.FORENSICS_DIR_ENV, raising=False)
        machine = Machine(SANITIZED_CONFIG)
        boot = measured_late_launch(machine,
                                    monitor_private_size=32 * 1024 * 1024)
        with pytest.raises(SanitizerViolation) as exc:
            _provoke_violation(machine, boot.monitor)
        assert not hasattr(exc.value, "forensic_bundle")

    def test_env_var_enables_emission(self, tmp_path, monkeypatch):
        monkeypatch.setenv(forensics.FORENSICS_DIR_ENV, str(tmp_path))
        machine = Machine(SANITIZED_CONFIG)
        boot = measured_late_launch(machine,
                                    monitor_private_size=32 * 1024 * 1024)
        with pytest.raises(SanitizerViolation) as exc:
            _provoke_violation(machine, boot.monitor)
        bundle_path = exc.value.forensic_bundle
        document = forensics.load_bundle(bundle_path)
        assert document["error"]["type"] == "SanitizerViolation"
        assert document["error"]["code"] == SAN_MEASURE


class TestBundleContents:
    @pytest.fixture
    def bundle(self, tmp_path, monkeypatch):
        monkeypatch.setenv(forensics.FORENSICS_DIR_ENV, str(tmp_path))
        machine = Machine(SANITIZED_CONFIG)
        machine.telemetry.enable()
        boot = measured_late_launch(machine,
                                    monitor_private_size=32 * 1024 * 1024)
        with pytest.raises(SanitizerViolation) as exc:
            _provoke_violation(machine, boot.monitor)
        return machine, forensics.load_bundle(exc.value.forensic_bundle)

    def test_state_hash_matches_live_machine(self, bundle):
        machine, document = bundle
        assert document["state_hash"] == machine.state_hash()
        assert set(document["state_fingerprint"]) >= \
            {"cpu", "cycles", "monitor", "phys", "tlb", "tpm"}

    def test_dump_covers_cpu_tlb_and_page_tables(self, bundle):
        _, document = bundle
        dump = document["dump"]
        assert "cpu" in dump and "tlb" in dump
        monitor_dump = dump["monitor"]
        assert monitor_dump["enclaves"], "enclave page tables must be walked"

    def test_bundle_carries_trace_tail_and_metrics(self, bundle):
        _, document = bundle
        assert document["events"], "trace tail must not be empty"
        assert document["trace_stats"]["recorded"] > 0
        names = {(m["subsystem"], m["name"]) for m in document["metrics"]}
        assert ("sanitizer", "violations") in names

    def test_render_is_human_readable(self, bundle):
        _, document = bundle
        text = forensics.render_bundle(document)
        assert "SanitizerViolation" in text
        assert "state hash:" in text
        assert "last" in text and "events:" in text
        verbose = forensics.render_bundle(document, verbose=True)
        assert "state dump:" in verbose


class TestCrashedScenario:
    def test_crashed_recorded_run_emits_bundles(self, lifecycle_scenario,
                                                tmp_path, monkeypatch):
        from repro.flightrec import scenario as flightrec_scenario
        monkeypatch.setenv(forensics.FORENSICS_DIR_ENV, str(tmp_path))

        def crashing(args):
            from tests.flightrec.conftest import demo_lifecycle
            demo_lifecycle(args)
            raise RuntimeError("scenario blew up")

        flightrec_scenario.register("test:crash", crashing)
        try:
            with pytest.raises(RuntimeError, match="blew up") as exc:
                run_recorded("test:crash", {"iters": 1})
        finally:
            flightrec_scenario.unregister("test:crash")
        document = forensics.load_bundle(exc.value.forensic_bundle)
        assert document["error"]["type"] == "RuntimeError"
        # Recorder was active, so the tail comes from the lossless
        # journal and the label from the journal header.
        assert document["label"].startswith("machine-")
        assert document["events"]
