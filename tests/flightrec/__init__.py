"""Flight-recorder tests: journal, record/replay, forensics, CLI."""
