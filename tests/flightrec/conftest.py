"""Fixtures: a registered programmatic scenario over the demo enclave."""

from __future__ import annotations

import pytest

from repro.flightrec import scenario as flightrec_scenario
from repro.platform import TeePlatform
from tests.sdk.conftest import SMALL, demo_image

SCENARIO_ID = "test:demo-lifecycle"


def demo_lifecycle(args: dict) -> dict:
    """A small deterministic workload: create, 3x(ecall+ocall), destroy."""
    platform = TeePlatform.hyperenclave(SMALL)
    handle = platform.load_enclave(demo_image())
    handle.register_ocall("ocall_sink", lambda data, n: 0)
    total = 0
    for _ in range(args.get("iters", 3)):
        total += handle.proxies.add_numbers(a=40, b=2)
        handle.proxies.echo_through_ocall(data=b"hello", n=5)
    handle.destroy()
    return {"sum": total, "cycles": platform.machine.cycles.total}


@pytest.fixture
def lifecycle_scenario():
    """Register the demo-lifecycle scenario for the duration of a test."""
    flightrec_scenario.register(SCENARIO_ID, demo_lifecycle)
    yield SCENARIO_ID
    flightrec_scenario.unregister(SCENARIO_ID)
