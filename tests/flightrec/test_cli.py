"""CLI smoke tests: record -> info -> replay -> inspect, in-process.

The exit-code contract is what CI scripts against: replay returns 0 on a
bit-identical re-execution, 1 on divergence, 2 on operational errors.
"""

from __future__ import annotations

import pytest

from repro.flightrec import forensics
from repro.flightrec.cli import main


@pytest.fixture
def journal_path(lifecycle_scenario, tmp_path):
    """A journal recorded through the CLI itself."""
    path = tmp_path / "run.journal.json"
    code = main(["record", lifecycle_scenario, "-o", str(path),
                 "--args", '{"iters": 2}', "--checkpoint-every", "16"])
    assert code == 0
    return path


class TestRecord:
    def test_record_writes_journal(self, lifecycle_scenario, tmp_path,
                                   capsys):
        path = tmp_path / "run.journal.json"
        assert main(["record", lifecycle_scenario, "-o", str(path)]) == 0
        assert path.exists()
        out = capsys.readouterr().out
        assert "recorded" in out and "checkpoints" in out

    def test_scenarios_lists_registered_and_bench(self, lifecycle_scenario,
                                                  capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert lifecycle_scenario in out
        assert "bench:table1_edge_calls" in out

    def test_bad_args_json_is_an_error(self, lifecycle_scenario, tmp_path):
        assert main(["record", lifecycle_scenario,
                     "-o", str(tmp_path / "x.json"),
                     "--args", "not json"]) == 2


class TestReplay:
    def test_clean_replay_exits_zero(self, journal_path, capsys):
        assert main(["replay", str(journal_path)]) == 0
        assert "zero divergence" in capsys.readouterr().out

    def test_perturbed_replay_exits_one_and_names_event(self, journal_path,
                                                        capsys):
        code = main(["replay", str(journal_path),
                     "--perturb-category", "sdk-ecall",
                     "--perturb-at", "3"])
        assert code == 1
        out = capsys.readouterr().out
        assert "DIVERGENCE" in out
        assert "first divergent event is seq #" in out

    def test_missing_journal_exits_two(self, tmp_path):
        assert main(["replay", str(tmp_path / "nope.json")]) == 2


class TestInfoAndInspect:
    def test_info_shows_header_and_summary(self, journal_path, capsys):
        assert main(["info", str(journal_path)]) == 0
        out = capsys.readouterr().out
        assert "scenario:" in out and "test:demo-lifecycle" in out
        assert "hash chain verified" in out

    def test_inspect_renders_bundle(self, lifecycle_scenario, tmp_path,
                                    monkeypatch, capsys):
        from repro.flightrec import scenario as flightrec_scenario
        monkeypatch.setenv(forensics.FORENSICS_DIR_ENV, str(tmp_path))

        def crashing(args):
            from tests.flightrec.conftest import demo_lifecycle
            demo_lifecycle(args)
            raise RuntimeError("boom")

        flightrec_scenario.register("test:cli-crash", crashing)
        try:
            with pytest.raises(RuntimeError) as exc:
                flightrec_scenario.run_recorded("test:cli-crash", {})
        finally:
            flightrec_scenario.unregister("test:cli-crash")
        assert main(["inspect", exc.value.forensic_bundle]) == 0
        out = capsys.readouterr().out
        assert "forensic bundle" in out and "RuntimeError" in out

    def test_inspect_rejects_non_bundle(self, journal_path):
        assert main(["inspect", str(journal_path)]) == 2
