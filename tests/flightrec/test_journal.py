"""Unit tests for the journal format and its hash chain.

The chain is the journal's integrity story: checkpoint *k*'s chain value
commits to every checkpoint before it, so any tampering — an edited
state hash, a reordered checkpoint, a truncated prefix — breaks
``verify_chain()`` on load.
"""

import json

import pytest

from repro.flightrec.journal import (JOURNAL_KIND, JOURNAL_VERSION,
                                     Checkpoint, Journal, JournalError,
                                     JournalEvent)

HEADER = {"scenario": "test:unit", "args": {"iters": 2},
          "checkpoint_every": 4, "machines": []}


def make_journal() -> Journal:
    journal = Journal(dict(HEADER))
    for seq in range(6):
        journal.add_event(JournalEvent(0, seq, 100 * seq, "hypercall",
                                       f"op{seq}", "create:demo#1"))
    journal.add_checkpoint(0, 3, 300, "a" * 64)
    journal.add_checkpoint(0, 5, 500, "b" * 64)
    return journal


class TestRoundTrip:
    def test_write_load_preserves_everything(self, tmp_path):
        journal = make_journal()
        journal.summary = {"total_events": 6}
        path = journal.write(tmp_path / "run.journal.json")
        loaded = Journal.load(path)
        assert loaded.header == journal.header
        assert [e.as_list() for e in loaded.events] == \
            [e.as_list() for e in journal.events]
        assert [c.as_list() for c in loaded.checkpoints] == \
            [c.as_list() for c in journal.checkpoints]
        assert loaded.summary == {"total_events": 6}

    def test_document_carries_version_and_kind(self):
        doc = make_journal().as_document()
        assert doc["version"] == JOURNAL_VERSION
        assert doc["kind"] == JOURNAL_KIND

    def test_wrong_kind_rejected(self):
        doc = make_journal().as_document()
        doc["kind"] = "something-else"
        with pytest.raises(JournalError, match="kind"):
            Journal.from_document(doc)

    def test_missing_scenario_rejected(self):
        doc = make_journal().as_document()
        del doc["header"]["scenario"]
        with pytest.raises(JournalError, match="scenario"):
            Journal.from_document(doc)


class TestHashChain:
    def test_identical_appends_produce_identical_chains(self):
        a, b = make_journal(), make_journal()
        assert [c.chain for c in a.checkpoints] == \
            [c.chain for c in b.checkpoints]

    def test_chain_depends_on_scenario_identity(self):
        a = Journal(dict(HEADER))
        b = Journal(dict(HEADER, args={"iters": 3}))
        a.add_checkpoint(0, 3, 300, "a" * 64)
        b.add_checkpoint(0, 3, 300, "a" * 64)
        assert a.checkpoints[0].chain != b.checkpoints[0].chain

    def test_tampered_state_hash_detected(self, tmp_path):
        path = make_journal().write(tmp_path / "run.journal.json")
        doc = json.loads(path.read_text())
        doc["checkpoints"][0][3] = "f" * 64      # rewrite the state hash
        with pytest.raises(JournalError, match="hash chain"):
            Journal.from_document(doc)

    def test_reordered_checkpoints_detected(self, tmp_path):
        path = make_journal().write(tmp_path / "run.journal.json")
        doc = json.loads(path.read_text())
        doc["checkpoints"].reverse()
        with pytest.raises(JournalError, match="hash chain"):
            Journal.from_document(doc)

    def test_truncated_prefix_detected(self, tmp_path):
        path = make_journal().write(tmp_path / "run.journal.json")
        doc = json.loads(path.read_text())
        del doc["checkpoints"][0]                # later chains don't reseed
        with pytest.raises(JournalError, match="hash chain"):
            Journal.from_document(doc)

    def test_truncated_suffix_passes(self, tmp_path):
        # Dropping the *tail* keeps a valid (shorter) chain: replay then
        # reports the length mismatch instead.
        path = make_journal().write(tmp_path / "run.journal.json")
        doc = json.loads(path.read_text())
        del doc["checkpoints"][-1]
        assert len(Journal.from_document(doc).checkpoints) == 1


class TestEvents:
    def test_event_key_excludes_machine_slot(self):
        event = JournalEvent(3, 7, 700, "eenter", "enclave=1", "ecall:f#1")
        assert event.key() == (7, 700, "eenter", "enclave=1", "ecall:f#1")

    def test_malformed_event_record_rejected(self):
        with pytest.raises(JournalError, match="event"):
            JournalEvent.from_list([0, 1, 2])

    def test_malformed_checkpoint_record_rejected(self):
        with pytest.raises(JournalError, match="checkpoint"):
            Checkpoint.from_list({"seq": 1})

    def test_events_between_filters_by_seq_and_machine(self):
        journal = make_journal()
        journal.add_event(JournalEvent(1, 2, 42, "eexit", "x", ""))
        picked = journal.events_between(1, 3, machine=0)
        assert [e.seq for e in picked] == [1, 2, 3]
        assert all(e.machine == 0 for e in picked)
