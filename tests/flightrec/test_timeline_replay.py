"""Timeline sampling through record/replay: same rows on both sides.

The sampler is driven purely by the simulated cycle counter, so a
recorded run and its journal replay — which re-executes the same op
sequence — must produce bit-identical timeline documents, and recording
with sampling enabled must not move a single event or checkpoint.
"""

from __future__ import annotations

import json

from repro.flightrec.replay import replay_journal
from repro.flightrec.scenario import run_recorded
from repro.telemetry import sink as telemetry_sink

INTERVAL = 50_000


def _recorded_with_timeline(lifecycle_scenario):
    with telemetry_sink.capture(timeline_interval=INTERVAL) as sink:
        journal, figures = run_recorded(lifecycle_scenario, {"iters": 3},
                                        checkpoint_every=16)
        document = sink.timeline_document()
    return journal, figures, document


class TestTimelineReplay:
    def test_sampling_does_not_perturb_the_journal(self, lifecycle_scenario):
        bare, _ = run_recorded(lifecycle_scenario, {"iters": 3},
                               checkpoint_every=16)
        sampled, _, document = _recorded_with_timeline(lifecycle_scenario)
        assert document is not None
        assert [e.as_list() for e in sampled.events] == \
            [e.as_list() for e in bare.events]
        assert [c.chain for c in sampled.checkpoints] == \
            [c.chain for c in bare.checkpoints]

    def test_replay_reproduces_the_sampled_series(self, lifecycle_scenario):
        journal, _, recorded_doc = _recorded_with_timeline(
            lifecycle_scenario)
        with telemetry_sink.capture(timeline_interval=INTERVAL) as sink:
            result = replay_journal(journal, window=8)
            replayed_doc = sink.timeline_document()
        assert result.ok, result.render()
        assert replayed_doc is not None
        assert json.dumps(replayed_doc, sort_keys=True) == \
            json.dumps(recorded_doc, sort_keys=True)

    def test_sampled_run_has_rows(self, lifecycle_scenario):
        _, _, document = _recorded_with_timeline(lifecycle_scenario)
        timeline = document["timelines"][0]
        assert timeline["interval"] == INTERVAL
        assert timeline["samples"], "lifecycle run must cross boundaries"
        assert "epc.free_frames" in timeline["samples"][0]["series"]
