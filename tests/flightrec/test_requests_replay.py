"""Request tracing through record/replay: same trees on both sides.

The tracer observes only the simulated cycle counter and the monitor's
op boundaries, so a recorded run and its journal replay must produce
bit-identical requests documents — and recording with tracing enabled
must not move a single journal event or checkpoint.
"""

from __future__ import annotations

import json

from repro.flightrec.replay import replay_journal
from repro.flightrec.scenario import run_recorded
from repro.telemetry import sink as telemetry_sink


def _recorded_traced(lifecycle_scenario):
    with telemetry_sink.capture(trace_requests=True) as sink:
        journal, figures = run_recorded(lifecycle_scenario, {"iters": 3},
                                        checkpoint_every=16)
        document = sink.requests_document()
    return journal, figures, document


class TestRequestsReplay:
    def test_tracing_does_not_perturb_the_journal(self, lifecycle_scenario):
        bare, _ = run_recorded(lifecycle_scenario, {"iters": 3},
                               checkpoint_every=16)
        traced, _, document = _recorded_traced(lifecycle_scenario)
        assert document is not None
        assert [e.as_list() for e in traced.events] == \
            [e.as_list() for e in bare.events]
        assert [c.chain for c in traced.checkpoints] == \
            [c.chain for c in bare.checkpoints]

    def test_replay_reproduces_the_traced_requests(self, lifecycle_scenario):
        journal, _, recorded_doc = _recorded_traced(lifecycle_scenario)
        with telemetry_sink.capture(trace_requests=True) as sink:
            result = replay_journal(journal, window=8)
            replayed_doc = sink.requests_document()
        assert result.ok, result.render()
        assert replayed_doc is not None
        assert json.dumps(replayed_doc, sort_keys=True) == \
            json.dumps(recorded_doc, sort_keys=True)

    def test_traced_run_records_the_lifecycle_calls(self,
                                                    lifecycle_scenario):
        _, _, document = _recorded_traced(lifecycle_scenario)
        (trace,) = document["traces"]
        names = [r["name"] for r in trace["requests"]]
        # 3 iterations of (add_numbers + echo_through_ocall).
        assert names.count("add_numbers") == 3
        assert names.count("echo_through_ocall") == 3
        echo = next(r for r in trace["requests"]
                    if r["name"] == "echo_through_ocall")
        kinds = [s["kind"] for s in echo["segments"]]
        assert "eenter" in kinds
