"""Record/replay over the real platform: the tentpole guarantees.

* recording perturbs nothing — cycle totals and state hashes match a
  bare run exactly;
* a clean replay is bit-identical, checkpoint chain and all;
* an injected +1-cycle perturbation is localized to the *exact* first
  divergent event, not just "somewhere after checkpoint k".
"""

from __future__ import annotations

import pytest

from repro.flightrec import recorder as flightrec_recorder
from repro.flightrec.journal import Journal
from repro.flightrec.perturb import perturb_cycles
from repro.flightrec.replay import replay_journal
from repro.flightrec.scenario import ScenarioError, run_recorded
from tests.flightrec.conftest import demo_lifecycle


@pytest.fixture
def recorded(lifecycle_scenario, tmp_path):
    """One recorded demo-lifecycle run, round-tripped through disk."""
    journal, figures = run_recorded(lifecycle_scenario, {"iters": 3},
                                    checkpoint_every=16)
    path = journal.write(tmp_path / "run.journal.json")
    return Journal.load(path), figures


class TestRecording:
    def test_journal_captures_events_and_checkpoints(self, recorded):
        journal, figures = recorded
        assert figures["sum"] == 3 * 42
        assert len(journal.events) > 50
        assert len(journal.checkpoints) >= 2
        kinds = {e.kind for e in journal.events}
        assert {"eenter", "eexit", "hypercall"} <= kinds

    def test_events_carry_causal_ids(self, recorded):
        journal, _ = recorded
        causes = {e.cause for e in journal.events}
        assert any(c.startswith("create:demo#") for c in causes)
        assert any("ecall:add_numbers#" in c for c in causes)
        assert any("ocall:ocall_sink#" in c for c in causes)

    def test_event_seq_is_gapless(self, recorded):
        # The journal taps the ring, so wrap-around loses nothing.
        journal, _ = recorded
        seqs = [e.seq for e in journal.events if e.machine == 0]
        assert seqs == list(range(len(seqs)))

    def test_header_records_run_identity(self, recorded):
        journal, _ = recorded
        header = journal.header
        assert header["scenario"] == "test:demo-lifecycle"
        assert header["args"] == {"iters": 3}
        assert header["machines"], "machine configs must be in the header"
        assert header["provenance"]["costs_fingerprint"]

    def test_recording_does_not_perturb_cycles(self, lifecycle_scenario):
        bare = demo_lifecycle({"iters": 3})
        _, recorded_figures = run_recorded(lifecycle_scenario, {"iters": 3},
                                           checkpoint_every=8)
        assert recorded_figures["cycles"] == bare["cycles"]

    def test_two_recordings_are_bit_identical(self, lifecycle_scenario):
        a, _ = run_recorded(lifecycle_scenario, {"iters": 3},
                            checkpoint_every=16)
        b, _ = run_recorded(lifecycle_scenario, {"iters": 3},
                            checkpoint_every=16)
        assert [e.as_list() for e in a.events] == \
            [e.as_list() for e in b.events]
        assert [c.chain for c in a.checkpoints] == \
            [c.chain for c in b.checkpoints]

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ScenarioError, match="unknown scenario"):
            run_recorded("test:no-such-scenario", {})

    def test_recorder_deactivated_after_run(self, recorded):
        assert flightrec_recorder.current() is None


class TestReplay:
    def test_clean_replay_has_zero_divergence(self, recorded):
        journal, _ = recorded
        result = replay_journal(journal)
        assert result.ok, result.render()
        assert result.divergence is None

    def test_perturbation_localized_to_exact_event(self, recorded):
        journal, _ = recorded
        perturb = perturb_cycles("sdk-ecall", extra=1.0, at=5)
        result = replay_journal(journal, perturb=perturb)
        assert perturb.fired
        assert not result.ok
        div = result.divergence
        assert div.kind == "event"
        # The 5th sdk-ecall charge lands inside an ecall's world switch:
        # the first event whose cycle stamp moved names it exactly.
        assert div.baseline_event.seq == div.replay_event.seq
        assert div.replay_event.cycle == div.baseline_event.cycle + 1
        assert "ecall:" in div.baseline_event.cause

    def test_divergence_render_shows_both_windows(self, recorded):
        journal, _ = recorded
        result = replay_journal(
            journal, perturb=perturb_cycles("sdk-ecall", extra=1.0, at=5))
        text = result.render()
        assert "DIVERGENCE" in text
        assert "baseline window:" in text and "replay window:" in text
        assert text.count("=>") == 2              # one marker per side

    def test_unfired_perturbation_still_replays_clean(self, recorded):
        journal, _ = recorded
        perturb = perturb_cycles("no-such-category", extra=1.0, at=1)
        result = replay_journal(journal, perturb=perturb)
        assert result.ok
        assert not perturb.fired
