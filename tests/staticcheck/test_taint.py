"""SC006: trust-boundary taint analysis over fixtures."""

from __future__ import annotations

PHYS = '''
    """Fixture physical memory."""

    class PhysicalMemory:
        """P."""

        def write(self, pa, data):
            """Write."""
            self.frames[pa] = data

        def read(self, pa, n):
            """Read."""
            return self.frames[pa][:n]

    class FramePool:
        """F."""

        def alloc(self):
            """Alloc."""
            return self.free.pop()
'''


def by_rule(findings, rule):
    """Unsuppressed findings for one rule."""
    return [f for f in findings if f.rule == rule and not f.suppressed]


class TestSC006:
    def test_direct_phys_write_from_app(self, run_passes):
        found = run_passes({
            "hw/phys.py": PHYS,
            "apps/evil.py": '''
                """Fixture."""

                def leak(machine, data):
                    """Bypass the barrier."""
                    machine.phys.write(0, data)
                    return None
                ''',
        })
        hits = by_rule(found, "SC006")
        assert len(hits) == 1
        assert hits[0].sink == "repro.hw.phys:PhysicalMemory.write"
        assert hits[0].chain == ["repro.apps.evil:leak",
                                 "repro.hw.phys:PhysicalMemory.write"]

    def test_flow_through_helper_still_caught(self, run_passes):
        found = run_passes({
            "hw/phys.py": PHYS,
            "osim/driver.py": '''
                """Fixture."""

                def entry(machine, data):
                    """OS-side entry."""
                    _stash(machine, data)

                def _stash(machine, data):
                    """Helper one hop down."""
                    machine.phys.write(64, data)
                ''',
        })
        hits = by_rule(found, "SC006")
        assert len(hits) == 1
        assert hits[0].chain[0] in ("repro.osim.driver:entry",
                                    "repro.osim.driver:_stash")
        assert hits[0].chain[-1] == "repro.hw.phys:PhysicalMemory.write"

    def test_barrier_routed_flow_is_clean(self, run_passes):
        found = run_passes({
            "hw/phys.py": PHYS,
            "sdk/urts.py": '''
                """Fixture barrier."""

                def copy_in(machine, data):
                    """Validating bridge; may touch phys itself."""
                    machine.phys.write(0, data)
                ''',
            "apps/good.py": '''
                """Fixture."""
                from repro.sdk.urts import copy_in

                def ok(machine, data):
                    """Marshalled."""
                    copy_in(machine, data)
                ''',
        })
        assert by_rule(found, "SC006") == []

    def test_public_monitor_entry_is_a_barrier(self, run_passes):
        found = run_passes({
            "hw/phys.py": PHYS,
            "monitor/rustmonitor.py": '''
                """Fixture monitor."""

                class RustMonitor:
                    """M."""

                    def ecreate(self, machine, size):
                        """Validated entry; phys access inside is fine."""
                        machine.phys.write(0, b"x" * size)
                ''',
            "apps/via_monitor.py": '''
                """Fixture."""
                from repro.monitor.rustmonitor import RustMonitor

                def ok(mon, machine):
                    """Hypercall crossing."""
                    RustMonitor.ecreate(mon, machine, 8)
                ''',
        })
        assert by_rule(found, "SC006") == []

    def test_unrelated_write_method_not_flagged(self, run_passes):
        # A fuzzy .write() whose receiver doesn't look like phys memory
        # must not be reported (name-based dispatch noise control).
        found = run_passes({
            "hw/phys.py": PHYS,
            "apps/logger.py": '''
                """Fixture."""

                def log(sink, line):
                    """Plain file-ish write."""
                    sink.write(0, line)
                ''',
        })
        assert by_rule(found, "SC006") == []
