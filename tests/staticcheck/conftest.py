"""Fixtures: tiny fake ``repro`` trees for the staticcheck passes."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.staticcheck.analyzer import analyze
from repro.staticcheck.config import StaticcheckConfig


@pytest.fixture
def fake_tree(tmp_path):
    """Write ``{relative/path.py: source}`` under a fake ``repro`` root
    and return the root path (module names resolve as ``repro.*``)."""
    def build(files: dict[str, str]) -> Path:
        root = tmp_path / "repro"
        for rel, source in files.items():
            target = root / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source))
        return root
    return build


@pytest.fixture
def run_passes(fake_tree):
    """Build a fake tree and run the full analyzer over it."""
    def run(files: dict[str, str],
            config: StaticcheckConfig | None = None):
        root = fake_tree(files)
        return analyze([root], config or StaticcheckConfig())
    return run
