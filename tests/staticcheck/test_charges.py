"""SC003/SC004/SC005: the charge-coverage passes over fixtures."""

from __future__ import annotations

from repro.staticcheck.config import StaticcheckConfig

MONITOR_HEADER = '''
    """Fixture monitor."""

    class RustMonitor:
        """Fixture."""

        def _charge_hypercall(self, op):
            """Charge."""
            self.cycles.charge(100, 'hypercall')
'''


def monitor_with(body: str) -> dict[str, str]:
    """A fixture rustmonitor module with extra methods appended."""
    return {"monitor/rustmonitor.py": MONITOR_HEADER + body}


def by_rule(findings, rule):
    """Unsuppressed findings for one rule."""
    return [f for f in findings if f.rule == rule and not f.suppressed]


class TestSC003:
    def test_uncharged_entry_point(self, run_passes):
        found = run_passes(monitor_with('''
        def forgotten(self, x):
            """Never charges."""
            return x + 1
        '''))
        hits = by_rule(found, "SC003")
        assert [f.symbol for f in hits] == \
            ["repro.monitor.rustmonitor:RustMonitor.forgotten"]
        assert hits[0].chain == [hits[0].symbol]

    def test_charge_through_helper_chain_accepted(self, run_passes):
        found = run_passes(monitor_with('''
        def outer(self, x):
            """Charges two hops down."""
            return self._inner(x)

        def _inner(self, x):
            """Helper."""
            self._charge_hypercall('outer')
            return x
        '''))
        assert by_rule(found, "SC003") == []

    def test_exemption_from_config(self, run_passes):
        found = run_passes(
            monitor_with('''
        def boot_only(self):
            """Boot-time, exempt."""
            return 1
            '''),
            StaticcheckConfig(charge_exempt=(
                "RustMonitor.boot_only -- fixture: boot-time setup",)))
        assert by_rule(found, "SC003") == []

    def test_private_methods_and_properties_skipped(self, run_passes):
        found = run_passes(monitor_with('''
        @property
        def state(self):
            """Accessor."""
            return self._state

        def _helper(self):
            """Private."""
            return 0
        '''))
        assert by_rule(found, "SC003") == []


class TestSC005:
    def test_uncharged_exit_path(self, run_passes):
        found = run_passes(monitor_with('''
        def partial(self, flag, x):
            """Charges only one branch."""
            if flag:
                self._charge_hypercall('partial')
                return x
            return x * 2
        '''))
        hits = by_rule(found, "SC005")
        assert len(hits) == 1
        assert "x * 2" in hits[0].sink

    def test_constant_guard_return_exempt(self, run_passes):
        found = run_passes(monitor_with('''
        def guarded(self, size):
            """Zero-work early-out is fine."""
            if size <= 0:
                return 0
            self._charge_hypercall('guarded')
            return size
        '''))
        assert by_rule(found, "SC005") == []

    def test_raise_path_exempt(self, run_passes):
        found = run_passes(monitor_with('''
        def checked(self, size):
            """Error paths need not charge."""
            if size < 0:
                raise ValueError(size)
            self._charge_hypercall('checked')
            return size
        '''))
        assert by_rule(found, "SC005") == []

    def test_return_of_charging_call_accepted(self, run_passes):
        found = run_passes(monitor_with('''
        def delegate(self, x):
            """The returned call itself always charges."""
            return self._paid(x)

        def _paid(self, x):
            """Helper that charges on every path."""
            self._charge_hypercall('delegate')
            return x
        '''))
        assert by_rule(found, "SC005") == []


class TestSC004:
    FASTPATH = '''
        """Fixture mode switch."""

        MODE = 0
    '''

    def test_matching_categories_pass(self, run_passes):
        found = run_passes({
            "hw/fastpath.py": self.FASTPATH,
            "hw/mem.py": '''
                """Fixture."""
                from repro.hw import fastpath

                class Mem:
                    """M."""

                    def touch(self, n):
                        """Touch."""
                        if fastpath.MODE:
                            self.cycles.charge(n, 'mem')
                            return n
                        self.cycles.charge(n, 'mem')
                        return n
                ''',
        })
        assert by_rule(found, "SC004") == []

    def test_category_drift_flagged(self, run_passes):
        found = run_passes({
            "hw/fastpath.py": self.FASTPATH,
            "hw/mem.py": '''
                """Fixture."""
                from repro.hw import fastpath

                class Mem:
                    """M."""

                    def touch(self, n):
                        """Touch."""
                        if fastpath.MODE:
                            self.cycles.charge(n, 'mem_fast')
                            return n
                        self.cycles.charge(n, 'mem')
                        return n
                ''',
        })
        hits = by_rule(found, "SC004")
        assert len(hits) == 1
        assert "'mem_fast'" in hits[0].message
        assert "'mem'" in hits[0].message

    def test_transitive_categories_compared(self, run_passes):
        # The fast branch charges through a helper; same category, pass.
        found = run_passes({
            "hw/fastpath.py": self.FASTPATH,
            "hw/mem.py": '''
                """Fixture."""
                from repro.hw import fastpath

                class Mem:
                    """M."""

                    def touch(self, n):
                        """Touch."""
                        if fastpath.MODE:
                            return self._fast(n)
                        self.cycles.charge(n, 'mem')
                        return n

                    def _fast(self, n):
                        """Helper."""
                        self.cycles.charge(n, 'mem')
                        return n
                ''',
        })
        assert by_rule(found, "SC004") == []

    def test_local_np_alias_guard_detected(self, run_passes):
        found = run_passes({
            "hw/fastpath.py": self.FASTPATH + '''
        np = None
            ''',
            "hw/cachemod.py": '''
                """Fixture."""
                from repro.hw import fastpath

                class Cache:
                    """C."""

                    def sweep(self, lines):
                        """Sweep."""
                        np = fastpath.np
                        if np is not None:
                            self.cycles.charge(1, 'evict_fast')
                            return 1
                        self.cycles.charge(1, 'evict')
                        return 1
                ''',
        })
        assert len(by_rule(found, "SC004")) == 1
