"""Mutation tests: inject real violations into the live tree.

Each mutation overlays a violation onto ``src/repro`` (no files are
touched on disk) and asserts the analyzer catches it with the correct
call chain.  A final end-to-end case copies the repo into a tmp dir,
mutates it for real, and checks the CLI exit codes flip 0 -> 1.
"""

from __future__ import annotations

import shutil
from pathlib import Path

from repro.staticcheck.analyzer import analyze
from repro.staticcheck.cli import main
from repro.staticcheck.config import load_staticcheck_config

ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = ROOT / "src" / "repro"


def repo_config():
    """The repo's own [tool.repro-staticcheck] settings."""
    return load_staticcheck_config(ROOT / "pyproject.toml")


def run_with_overlay(overlay: dict[str, str]):
    """Analyze the real tree with injected sources."""
    return analyze([SRC_REPRO], repo_config(), overlay)


class TestInjectedViolations:
    def test_wall_clock_in_hw_is_caught_with_chain(self):
        target = SRC_REPRO / "hw" / "cycles.py"
        mutated = target.read_text() + (
            '\n\ndef _mutated_probe(counter):\n'
            '    """Mutation fixture: wall clock feeding a charge."""\n'
            '    import time\n'
            '    counter.charge(time.time(), "mutation")\n'
            '    return 0\n')
        found = run_with_overlay({target.as_posix(): mutated})
        hits = [f for f in found
                if f.rule == "SC001" and not f.suppressed
                and f.symbol.endswith(":_mutated_probe")]
        assert len(hits) == 1
        assert hits[0].sink == "time.time"
        assert hits[0].chain[-1] == "time.time"
        assert hits[0].chain[0] == "repro.hw.cycles:_mutated_probe"

    def test_uncharged_monitor_entry_is_caught(self):
        target = SRC_REPRO / "monitor" / "rustmonitor.py"
        source = target.read_text()
        anchor = "    def demote_primary_os(self"
        assert anchor in source
        mutated = source.replace(anchor, (
            '    def mutated_entry(self):\n'
            '        """Mutation fixture: entry point with no charge."""\n'
            '        return self.os_demoted\n\n' + anchor))
        found = run_with_overlay({target.as_posix(): mutated})
        hits = [f for f in found
                if f.rule == "SC003" and not f.suppressed]
        assert [f.symbol for f in hits] == \
            ["repro.monitor.rustmonitor:RustMonitor.mutated_entry"]
        assert hits[0].chain == [hits[0].symbol]

    def test_unmarshalled_taint_flow_is_caught(self):
        leak = (SRC_REPRO / "apps" / "mutated_leak.py").as_posix()
        found = run_with_overlay({leak: (
            '"""Mutation fixture: app writes phys memory directly."""\n\n\n'
            'def leak(machine, data):\n'
            '    """Bypass the marshalling barrier."""\n'
            '    machine.phys.write(4096, data)\n'
            '    return None\n')})
        hits = [f for f in found
                if f.rule == "SC006" and not f.suppressed
                and f.path == leak]
        assert len(hits) == 1
        assert hits[0].sink == "repro.hw.phys:PhysicalMemory.write"
        assert hits[0].chain == ["repro.apps.mutated_leak:leak",
                                 "repro.hw.phys:PhysicalMemory.write"]

    def test_wall_clock_trace_id_in_tracer_is_caught(self):
        """The request tracer is an SC001 root: a trace id derived from
        the wall clock (instead of the per-vCPU counter) must be a new
        finding, with no pragma able to hide behind the package."""
        target = SRC_REPRO / "telemetry" / "requests.py"
        mutated = target.read_text() + (
            '\n\ndef _mutated_request_id(tracer):\n'
            '    """Mutation fixture: wall-clock trace id."""\n'
            '    import time\n'
            '    return f"{tracer.label}/{time.time()}"\n')
        found = run_with_overlay({target.as_posix(): mutated})
        hits = [f for f in found
                if f.rule == "SC001" and not f.suppressed
                and f.symbol.endswith(":_mutated_request_id")]
        assert len(hits) == 1
        assert hits[0].sink == "time.time"
        assert hits[0].chain[0] == \
            "repro.telemetry.requests:_mutated_request_id"

    def test_random_tie_break_in_critpath_is_caught(self):
        """The critical-path analyzer promises bit-identical reports,
        so it is a root too: an unseeded-random tie-break is SC001."""
        target = SRC_REPRO / "analysis" / "critpath.py"
        mutated = target.read_text() + (
            '\n\ndef _mutated_tie_break(children):\n'
            '    """Mutation fixture: random critical-path tie-break."""\n'
            '    import random\n'
            '    return random.choice(children)\n')
        found = run_with_overlay({target.as_posix(): mutated})
        hits = [f for f in found
                if f.rule == "SC001" and not f.suppressed
                and f.symbol.endswith(":_mutated_tie_break")]
        assert len(hits) == 1
        assert hits[0].sink == "random.choice"

    def test_unmutated_tree_has_no_such_findings(self):
        found = analyze([SRC_REPRO], repo_config())
        assert not any("mutated" in f.symbol for f in found)


class TestEndToEndExitCodes:
    def test_cli_flips_zero_to_one_on_mutation(self, tmp_path,
                                               monkeypatch, capsys):
        shutil.copytree(SRC_REPRO, tmp_path / "src" / "repro",
                        ignore=shutil.ignore_patterns("__pycache__"))
        shutil.copy(ROOT / "pyproject.toml", tmp_path / "pyproject.toml")
        shutil.copy(ROOT / "staticcheck-baseline.json",
                    tmp_path / "staticcheck-baseline.json")
        monkeypatch.chdir(tmp_path)

        assert main(["src/repro"]) == 0

        cycles = tmp_path / "src" / "repro" / "hw" / "cycles.py"
        cycles.write_text(cycles.read_text() + (
            '\n\ndef _mutated_probe(counter):\n'
            '    """Mutation fixture."""\n'
            '    import time\n'
            '    counter.charge(time.time(), "mutation")\n'
            '    return 0\n'))
        capsys.readouterr()
        assert main(["src/repro"]) == 1
        out = capsys.readouterr().out
        assert "_mutated_probe" in out
        assert "time.time" in out
