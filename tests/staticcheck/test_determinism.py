"""SC001/SC002: the determinism pass over fixture corpora."""

from __future__ import annotations

from repro.staticcheck.config import StaticcheckConfig


def by_rule(findings, rule):
    """Unsuppressed findings for one rule."""
    return [f for f in findings if f.rule == rule and not f.suppressed]


class TestSC001:
    def test_direct_wall_clock_in_hw(self, run_passes):
        found = run_passes({"hw/engine.py": '''
            """Fixture."""
            import time

            def step(n):
                """Step."""
                return time.time() + n
            '''})
        hits = by_rule(found, "SC001")
        assert len(hits) == 1
        assert hits[0].sink == "time.time"
        assert hits[0].chain[-1] == "time.time"
        assert "wall clock" in hits[0].message

    def test_interprocedural_chain_across_modules(self, run_passes):
        found = run_passes({
            "hw/engine.py": '''
                """Fixture."""
                from repro.support.clocks import now

                def step(n):
                    """Step."""
                    return now() + n
                ''',
            "support/clocks.py": '''
                """Fixture."""
                import time

                def now():
                    """Now."""
                    return time.time()
                ''',
        })
        hits = by_rule(found, "SC001")
        assert len(hits) == 1
        assert hits[0].chain == ["repro.hw.engine:step",
                                 "repro.support.clocks:now", "time.time"]
        assert hits[0].path.endswith("support/clocks.py")

    def test_renamed_import_still_caught(self, run_passes):
        found = run_passes({"hw/engine.py": '''
            """Fixture."""
            from time import perf_counter as pc

            def step():
                """Step."""
                return pc()
            '''})
        assert [f.sink for f in by_rule(found, "SC001")] == \
            ["time.perf_counter"]

    def test_local_alias_still_caught(self, run_passes):
        found = run_passes({"monitor/mod.py": '''
            """Fixture."""
            import time

            def step():
                """Step."""
                t = time.clock_gettime_ns
                return t(0)
            '''})
        assert [f.sink for f in by_rule(found, "SC001")] == \
            ["time.clock_gettime_ns"]

    def test_environ_and_id_flagged(self, run_passes):
        found = run_passes({"osim/mod.py": '''
            """Fixture."""
            import os

            def step(obj):
                """Step."""
                return os.environ.get("X"), id(obj)
            '''})
        sinks = sorted(f.sink for f in by_rule(found, "SC001"))
        assert sinks == ["builtins.id", "os.environ.get"]

    def test_seeded_random_allowed_unseeded_flagged(self, run_passes):
        found = run_passes({"hw/rng.py": '''
            """Fixture."""
            import random

            def good(seed):
                """Good."""
                return random.Random(seed).random()

            def bad():
                """Bad."""
                return random.random()
            '''})
        hits = by_rule(found, "SC001")
        assert [f.symbol for f in hits] == ["repro.hw.rng:bad"]

    def test_sanctioned_clock_not_flagged(self, run_passes):
        found = run_passes({
            "hw/engine.py": '''
                """Fixture."""
                from repro.profiler.wall import host_clock_ns

                def step():
                    """Step."""
                    return host_clock_ns()
                ''',
            "profiler/wall.py": '''
                """Fixture."""
                import time

                def host_clock_ns():
                    """Sanctioned."""
                    return time.perf_counter_ns()
                ''',
        })
        assert by_rule(found, "SC001") == []

    def test_excluded_observer_layer_not_flagged(self, run_passes):
        found = run_passes({
            "hw/engine.py": '''
                """Fixture."""
                from repro.telemetry.export import stamp

                def step():
                    """Step."""
                    return stamp()
                ''',
            "telemetry/export.py": '''
                """Fixture."""
                import time

                def stamp():
                    """Host-side export timestamp."""
                    return time.time()
                ''',
        })
        assert by_rule(found, "SC001") == []

    def test_untracked_layer_not_a_root(self, run_passes):
        # apps/ is not a determinism root; a wall clock there that no
        # charged code reaches is fine.
        found = run_passes({"apps/tool.py": '''
            """Fixture."""
            import time

            def stamp():
                """Stamp."""
                return time.time()
            '''})
        assert by_rule(found, "SC001") == []

    def test_pragma_suppresses_with_justification(self, run_passes):
        found = run_passes({"hw/engine.py": '''
            """Fixture."""
            import time

            def step():
                """Step."""
                # repro-lint: disable=SC001 -- fixture waiver
                return time.time()
            '''})
        hits = [f for f in found if f.rule == "SC001"]
        assert len(hits) == 1
        assert hits[0].suppressed
        assert hits[0].justification == "fixture waiver"

    def test_timeline_sampler_is_a_root_despite_telemetry_exclude(
            self, run_passes):
        # Mirrors the repository's pyproject override: the timeline
        # sampler runs on the charged path (CycleCounter.charge calls
        # it), so repro/telemetry/timeline.py is a determinism root
        # even though the rest of telemetry/ is excluded observer code.
        config = StaticcheckConfig(
            determinism_roots=("repro/hw/", "repro/monitor/",
                               "repro/osim/",
                               "repro/telemetry/timeline.py"),
            determinism_exclude=("repro/telemetry/core.py",
                                 "repro/telemetry/export.py",
                                 "repro/profiler/"))
        files = {
            "telemetry/timeline.py": '''
                """Fixture."""
                import time

                def on_charge(total):
                    """A sampler that cheats with host time."""
                    return time.monotonic() + total
                ''',
            "telemetry/export.py": '''
                """Fixture."""
                import time

                def stamp():
                    """Host-side export timestamp: legitimately excluded."""
                    return time.time()
                ''',
        }
        hits = by_rule(run_passes(files, config), "SC001")
        assert [f.sink for f in hits] == ["time.monotonic"]
        assert hits[0].symbol == "repro.telemetry.timeline:on_charge"
        assert "wall clock" in hits[0].message

    def test_disable_rule_via_config(self, run_passes):
        found = run_passes({"hw/engine.py": '''
            """Fixture."""
            import time

            def step():
                """Step."""
                return time.time()
            '''}, StaticcheckConfig(disable=("SC001",)))
        assert by_rule(found, "SC001") == []


class TestSC002:
    def test_set_loop_feeding_charge(self, run_passes):
        found = run_passes({"hw/epc.py": '''
            """Fixture."""

            def sweep(counter, frames):
                """Sweep."""
                live = set(frames)
                for frame in live:
                    counter.charge(frame, 'epc')
                return 0
            '''})
        hits = by_rule(found, "SC002")
        assert len(hits) == 1
        assert "live" in hits[0].sink

    def test_sorted_set_loop_allowed(self, run_passes):
        found = run_passes({"hw/epc.py": '''
            """Fixture."""

            def sweep(counter, frames):
                """Sweep."""
                live = set(frames)
                for frame in sorted(live):
                    counter.charge(frame, 'epc')
                return 0
            '''})
        assert by_rule(found, "SC002") == []

    def test_set_loop_without_charges_allowed(self, run_passes):
        found = run_passes({"hw/epc.py": '''
            """Fixture."""

            def count(frames):
                """Count."""
                total = 0
                for frame in set(frames):
                    total += frame
                return total
            '''})
        assert by_rule(found, "SC002") == []
