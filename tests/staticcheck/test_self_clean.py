"""The self-clean guarantee: src/repro passes its own verifier.

The committed baseline is exact-gated: the tree must produce exactly
the baselined findings — anything new fails, and any baseline entry
that stops firing fails too, so the accepted-debt list only shrinks.
"""

from __future__ import annotations

from pathlib import Path

from repro.staticcheck.analyzer import analyze
from repro.staticcheck.baseline import Baseline
from repro.staticcheck.cli import main
from repro.staticcheck.config import load_staticcheck_config

ROOT = Path(__file__).resolve().parents[2]


def test_tree_matches_committed_baseline_exactly(monkeypatch):
    monkeypatch.chdir(ROOT)
    config = load_staticcheck_config(ROOT / "pyproject.toml")
    findings = analyze([Path("src/repro")], config)
    baseline = Baseline.load(ROOT / "staticcheck-baseline.json")
    delta = baseline.delta(findings)
    assert delta.new == [], [f.render() for f in delta.new]
    assert delta.stale == [], delta.stale
    assert delta.matched == len(baseline.entries)


def test_cli_gate_exits_zero(monkeypatch, capsys):
    monkeypatch.chdir(ROOT)
    assert main(["src/repro"]) == 0


def test_every_suppression_pragma_has_a_justification(monkeypatch):
    # Suppressed findings must carry the pragma's why-text; an SC pragma
    # without a justification does not suppress at all (rules.py), so
    # every suppressed finding here proves the shared syntax works.
    monkeypatch.chdir(ROOT)
    config = load_staticcheck_config(ROOT / "pyproject.toml")
    findings = analyze([Path("src/repro")], config)
    suppressed = [f for f in findings if f.suppressed]
    assert suppressed, "expected the sanctioned SC001 waivers to appear"
    for finding in suppressed:
        assert finding.justification


def test_baseline_only_contains_design_debt():
    # Every baselined entry is the known osim-manages-its-own-memory
    # pattern; nothing else may hide in the accepted-debt list.
    baseline = Baseline.load(ROOT / "staticcheck-baseline.json")
    for entry in baseline.entries.values():
        assert entry["rule"] == "SC006"
        assert entry["path"] == "src/repro/osim/kernel.py"
