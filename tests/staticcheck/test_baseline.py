"""Baseline semantics: exact two-sided gate, stable fingerprints."""

from __future__ import annotations

import json

from repro.staticcheck.baseline import Baseline
from repro.staticcheck.findings import StaticFinding


def finding(rule="SC001", path="src/repro/hw/x.py", line=10,
            symbol="repro.hw.x:f", sink="time.time") -> StaticFinding:
    """A fabricated finding for gate tests."""
    return StaticFinding(rule=rule, path=path, line=line, symbol=symbol,
                         message="m", chain=[symbol, sink], sink=sink)


class TestFingerprint:
    def test_line_number_does_not_change_fingerprint(self):
        assert finding(line=10).fingerprint() == \
            finding(line=99).fingerprint()

    def test_rule_and_sink_do_change_it(self):
        base = finding().fingerprint()
        assert finding(rule="SC003").fingerprint() != base
        assert finding(sink="os.urandom").fingerprint() != base


class TestGate:
    def test_empty_baseline_makes_every_finding_new(self):
        delta = Baseline().delta([finding()])
        assert len(delta.new) == 1
        assert not delta.clean

    def test_matched_finding_is_clean(self, tmp_path):
        path = tmp_path / "bl.json"
        Baseline.from_findings([finding()], path).write()
        delta = Baseline.load(path).delta([finding(line=42)])
        assert delta.clean
        assert delta.matched == 1

    def test_stale_entry_fails_the_gate(self, tmp_path):
        path = tmp_path / "bl.json"
        Baseline.from_findings([finding(), finding(rule="SC003")],
                               path).write()
        delta = Baseline.load(path).delta([finding()])
        assert not delta.clean
        assert len(delta.stale) == 1
        assert delta.stale[0]["rule"] == "SC003"

    def test_suppressed_findings_do_not_enter_the_baseline(self, tmp_path):
        waived = finding()
        waived.suppressed = True
        path = tmp_path / "bl.json"
        Baseline.from_findings([waived], path).write()
        assert Baseline.load(path).entries == {}

    def test_write_is_deterministic_and_sorted(self, tmp_path):
        a, b = finding(), finding(rule="SC006", sink="phys.write")
        p1, p2 = tmp_path / "1.json", tmp_path / "2.json"
        Baseline.from_findings([a, b], p1).write()
        Baseline.from_findings([b, a], p2).write()
        assert p1.read_text() == p2.read_text()
        data = json.loads(p1.read_text())
        assert data["version"] == 1
        assert len(data["findings"]) == 2

    def test_missing_file_loads_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "absent.json").entries == {}
