"""CLI behavior: formats, exit codes, baseline workflow."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.staticcheck.cli import main

BAD_HW = {
    "hw/engine.py": '''
        """Fixture."""
        import time

        def step(n):
            """Step."""
            return time.time() + n
        ''',
}

CLEAN_HW = {
    "hw/engine.py": '''
        """Fixture."""

        def step(n):
            """Step."""
            return n + 1
        ''',
}


@pytest.fixture
def tree(tmp_path):
    """Write fixture files and return the fake repro root as a string."""
    def build(files):
        root = tmp_path / "repro"
        for rel, source in files.items():
            target = root / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source))
        return str(root)
    return build


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tree, capsys):
        assert main([tree(CLEAN_HW), "--no-baseline"]) == 0

    def test_finding_exits_one(self, tree, capsys):
        assert main([tree(BAD_HW), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "SC001" in out
        assert "call chain:" in out
        assert "time.time" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2

    def test_disable_flag(self, tree, capsys):
        assert main([tree(BAD_HW), "--no-baseline",
                     "--disable", "SC001"]) == 0

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("SC001", "SC002", "SC003", "SC004", "SC005",
                     "SC006"):
            assert rule in out


class TestBaselineWorkflow:
    def test_write_then_gate_clean_then_regress(self, tree, tmp_path,
                                                capsys):
        root = tree(BAD_HW)
        baseline = tmp_path / "bl.json"
        assert main([root, "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        # Accepted debt gates clean...
        assert main([root, "--baseline", str(baseline)]) == 0
        # ...a new violation fails...
        extra = tmp_path / "repro" / "hw" / "extra.py"
        extra.write_text('"""F."""\nimport time\n\n\n'
                         'def t():\n    """T."""\n    return time.time()\n')
        assert main([root, "--baseline", str(baseline)]) == 1
        # ...and fixing MORE than the baseline expects fails too (stale).
        extra.unlink()
        (tmp_path / "repro" / "hw" / "engine.py").write_text(
            '"""F."""\n\n\ndef step(n):\n    """S."""\n    return n\n')
        assert main([root, "--baseline", str(baseline)]) == 1
        assert "stale" in capsys.readouterr().out


class TestFormats:
    def test_json_report(self, tree, capsys):
        main([tree(BAD_HW), "--no-baseline", "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["findings"][0]["rule"] == "SC001"
        assert doc["findings"][0]["chain"][-1] == "time.time"
        assert doc["gate"]["clean"] is False

    def test_sarif_report(self, tree, capsys):
        main([tree(BAD_HW), "--no-baseline", "--format", "sarif"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-staticcheck"
        assert {r["id"] for r in run["tool"]["driver"]["rules"]} >= \
            {"SC001", "SC006"}
        result = run["results"][0]
        assert result["ruleId"] == "SC001"
        assert result["level"] == "error"
        assert result["locations"][0]["physicalLocation"]["region"][
            "startLine"] > 0
        assert "partialFingerprints" in result

    def test_sarif_baselined_findings_are_notes(self, tree, tmp_path,
                                                capsys):
        root = tree(BAD_HW)
        baseline = tmp_path / "bl.json"
        main([root, "--baseline", str(baseline), "--write-baseline"])
        capsys.readouterr()
        main([root, "--baseline", str(baseline), "--format", "sarif"])
        doc = json.loads(capsys.readouterr().out)
        levels = [r["level"] for r in doc["runs"][0]["results"]]
        assert levels == ["note"]
