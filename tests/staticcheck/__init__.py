"""Tests for the whole-program static verifier (repro.staticcheck)."""
