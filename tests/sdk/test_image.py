"""Tests for enclave images, layout computation and offline signing."""

import dataclasses

import pytest

from repro.crypto.rsa import cached_keypair
from repro.errors import SdkError
from repro.hw.phys import PAGE_SIZE
from repro.monitor.structs import EnclaveConfig, EnclaveMode, PageType
from repro.platform import TeePlatform, replace_image_mode
from repro.sdk.image import EnclaveImage, compute_layout

KEY = cached_keypair(b"vendor-signing-key", 768)

EDL = """
enclave {
    trusted { public uint64 f(uint64 x); };
    untrusted { };
};
"""


def make_image(**config_kwargs):
    return EnclaveImage.build("img", EDL, {"f": lambda ctx, x: x + 1},
                              EnclaveConfig(**config_kwargs))


class TestImage:
    def test_missing_implementation_rejected(self):
        with pytest.raises(SdkError, match="no implementation"):
            EnclaveImage.build("bad", EDL, {})

    def test_code_bytes_stable(self):
        img = make_image()
        assert img.code_bytes() == img.code_bytes()

    def test_code_bytes_change_with_function(self):
        a = EnclaveImage.build("img", EDL, {"f": lambda ctx, x: x + 1})
        b = EnclaveImage.build("img", EDL, {"f": lambda ctx, x: x + 2})
        # Lambdas at different source positions fingerprint differently.
        assert a.code_bytes() != b.code_bytes()

    def test_code_bytes_change_with_name(self):
        a = make_image()
        b = make_image()
        b.name = "other"
        assert a.code_bytes() != b.code_bytes()


class TestLayout:
    def test_sections_present(self):
        layout = compute_layout(make_image(tcs_count=2,
                                           ssa_frames_per_tcs=3))
        types = [p.page_type for p in layout.pages]
        assert types.count(PageType.TCS) == 2
        assert types.count(PageType.SSA) == 6
        assert PageType.REG in types

    def test_heap_not_eadded(self):
        image = make_image(heap_size=1024 * 1024)
        layout = compute_layout(image)
        # The heap demand-commits: no page offsets inside the heap range.
        for page in layout.pages:
            assert not (layout.heap_start <= page.offset
                        < layout.heap_start + layout.heap_size)
        assert layout.heap_size == 1024 * 1024

    def test_offsets_unique_and_aligned(self):
        layout = compute_layout(make_image())
        offsets = [p.offset for p in layout.pages]
        assert len(set(offsets)) == len(offsets)
        assert all(o % PAGE_SIZE == 0 for o in offsets)

    def test_elrange_covers_everything(self):
        layout = compute_layout(make_image())
        top = max(p.offset for p in layout.pages) + PAGE_SIZE
        assert layout.elrange_size >= top
        assert layout.elrange_size >= layout.heap_start + layout.heap_size

    def test_stack_scales_with_tcs(self):
        small = compute_layout(make_image(tcs_count=1))
        large = compute_layout(make_image(tcs_count=4))
        assert large.elrange_size > small.elrange_size


class TestSigning:
    def test_offline_measurement_matches_monitor(self):
        """image.sign() must predict the exact MRENCLAVE the monitor
        computes while loading — otherwise EINIT would reject."""
        platform = TeePlatform.hyperenclave()
        image = make_image()
        sig = image.sign(KEY)
        handle = platform.load_enclave(image, KEY)
        assert handle.enclave.secs.mrenclave == sig.enclave_hash
        handle.destroy()

    def test_different_mode_different_measurement(self):
        image = make_image(mode=EnclaveMode.GU)
        gu_sig = image.sign(KEY)
        hu_sig = replace_image_mode(image, EnclaveMode.HU).sign(KEY)
        assert gu_sig.enclave_hash != hu_sig.enclave_hash

    def test_svn_carried_through(self):
        image = dataclasses.replace(make_image(), isv_svn=3, isv_prod_id=7)
        sig = image.sign(KEY)
        assert sig.isv_svn == 3
        assert sig.isv_prod_id == 7
