"""Tests for ECALL/OCALL marshalling semantics and their calibrated costs."""

import pytest

from repro.errors import SdkError, SecurityViolation
from repro.hw import costs
from repro.monitor.structs import EnclaveMode
from repro.platform import TeePlatform

from .conftest import SMALL, demo_image


class TestEcallSemantics:
    def test_scalars(self, he_handle):
        assert he_handle.proxies.add_numbers(a=20, b=22) == 42

    def test_in_buffer(self, he_handle):
        assert he_handle.proxies.sum_bytes(data=b"\x01\x02\x03", n=3) == 6

    def test_out_buffer(self, he_handle):
        ret, outs = he_handle.proxies.fill_pattern(n=16)
        assert ret == 16
        assert outs["buf"] == bytes((i * 7) & 0xFF for i in range(16))

    def test_inout_buffer(self, he_handle):
        ret, outs = he_handle.proxies.increment_all(buf=b"\x00\x01\xFF", n=3)
        assert outs["buf"] == b"\x01\x02\x00"

    def test_private_ecall_blocked(self, he_handle):
        with pytest.raises(SecurityViolation):
            he_handle.ecall("private_entry")

    def test_unknown_ecall(self, he_handle):
        from repro.errors import EdlError
        with pytest.raises(EdlError):
            he_handle.ecall("nonexistent")

    def test_size_mismatch_rejected(self, he_handle):
        with pytest.raises(SdkError):
            he_handle.proxies.sum_bytes(data=b"\x01\x02", n=5)

    def test_missing_argument_rejected(self, he_handle):
        with pytest.raises(SdkError):
            he_handle.proxies.sum_bytes(data=b"\x01")

    def test_unknown_argument_rejected(self, he_handle):
        with pytest.raises(SdkError):
            he_handle.proxies.add_numbers(a=1, b=2, c=3)

    def test_oversized_payload_overflows_msbuf(self, he_handle):
        big = he_handle.msbuf_vma.size   # larger than the ECALL region
        with pytest.raises(SdkError, match="overflow"):
            he_handle.proxies.sum_bytes(data=b"\x00" * big, n=big)

    def test_enclave_state_persists_across_ecalls(self, he_handle):
        he_handle.proxies.store_secret(secret=b"hunter2", n=7)
        assert he_handle.proxies.check_secret(guess=b"hunter2", n=7) == 1
        assert he_handle.proxies.check_secret(guess=b"hunter1", n=7) == 0

    def test_destroyed_enclave_rejects_ecalls(self, he_platform):
        handle = he_platform.load_enclave(demo_image())
        handle.destroy()
        with pytest.raises(SdkError):
            handle.proxies.add_numbers(a=1, b=2)

    def test_concurrent_tcs_exhaustion(self, he_handle):
        """Each ECALL takes a TCS; a recursive ECALL from an OCALL would
        need a second, and the config has two."""
        tcs1 = he_handle.enclave.acquire_tcs()
        tcs2 = he_handle.enclave.acquire_tcs()
        from repro.errors import EnclaveError
        with pytest.raises(EnclaveError):
            he_handle.proxies.add_numbers(a=1, b=2)
        he_handle.enclave.release_tcs(tcs1)
        he_handle.enclave.release_tcs(tcs2)
        assert he_handle.proxies.add_numbers(a=1, b=2) == 3


class TestOcallSemantics:
    def test_in_ocall(self, he_handle):
        # echo_through_ocall forwards the buffer to ocall_sink.
        assert he_handle.proxies.echo_through_ocall(
            data=b"\x01\x01\x01", n=3) == 3

    def test_out_ocall(self, he_platform):
        handle = he_platform.load_enclave(_ocall_out_image())
        handle.register_ocall(
            "ocall_source",
            lambda data, n: (n, {"data": bytes(i & 0xFF for i in range(n))}))
        assert handle.ecall("pull", n=5) == 0 + 1 + 2 + 3 + 4
        handle.destroy()

    def test_inout_ocall(self, he_platform):
        handle = he_platform.load_enclave(_ocall_out_image())
        handle.register_ocall(
            "ocall_transform",
            lambda data, n: (0, {"data": bytes(b ^ 0xFF for b in data)}))
        assert handle.ecall("flip", n=4) == (0xFF - 1) * 4 + (0 + 1 + 2 + 3)
        handle.destroy()

    def test_unregistered_ocall_fails(self, he_platform):
        handle = he_platform.load_enclave(_ocall_out_image())
        with pytest.raises(SdkError, match="no OCALL implementation"):
            handle.ecall("pull", n=4)
        handle.destroy()

    def test_ocall_output_overflow_rejected(self, he_platform):
        handle = he_platform.load_enclave(_ocall_out_image())
        handle.register_ocall("ocall_source",
                              lambda data, n: (0, {"data": b"\x00" * (n + 9)}))
        with pytest.raises(SdkError, match="larger"):
            handle.ecall("pull", n=4)
        handle.destroy()


_OCALL_EDL = """
enclave {
    trusted {
        public uint64 pull(uint64 n);
        public uint64 flip(uint64 n);
    };
    untrusted {
        uint64 ocall_source([out, size=n] bytes data, uint64 n);
        uint64 ocall_transform([in, out, size=n] bytes data, uint64 n);
    };
};
"""


def _pull(ctx, n):
    _, outs = ctx.ocall("ocall_source", n=n)
    return sum(outs["data"])


def _flip(ctx, n):
    payload = bytes([1] * n)
    _, outs = ctx.ocall("ocall_transform", data=payload, n=n)
    return sum(outs["data"]) + sum(range(n))


def _ocall_out_image():
    from repro.sdk.image import EnclaveImage
    return EnclaveImage.build("ocaller", _OCALL_EDL,
                              {"pull": _pull, "flip": _flip})


class TestCalibratedCosts:
    """Empty edge calls must land exactly on the Table 1 numbers."""

    @pytest.mark.parametrize("mode,expected", [
        (EnclaveMode.GU, 9480), (EnclaveMode.HU, 8440),
        (EnclaveMode.P, 9700),
    ])
    def test_empty_ecall_cost(self, he_platform, mode, expected):
        handle = he_platform.load_enclave(demo_image(mode))
        handle.proxies.add_numbers(a=0, b=0)      # warm the path
        with he_platform.cycles.measure() as span:
            handle.proxies.add_numbers(a=0, b=0)
        assert span.elapsed == expected
        handle.destroy()

    def test_empty_ecall_cost_sgx(self, sgx_platform):
        handle = sgx_platform.load_enclave(demo_image())
        handle.proxies.add_numbers(a=0, b=0)
        with sgx_platform.cycles.measure() as span:
            handle.proxies.add_numbers(a=0, b=0)
        assert span.elapsed == 14432
        handle.destroy()

    @pytest.mark.parametrize("mode,expected", [
        (EnclaveMode.GU, 4920), (EnclaveMode.HU, 4120),
        (EnclaveMode.P, 5260),
    ])
    def test_empty_ocall_cost(self, he_platform, mode, expected):
        handle = he_platform.load_enclave(demo_image(mode))
        handle.register_ocall("ocall_nop", lambda: 0)

        def entry(ctx):
            with he_platform.cycles.measure() as span:
                ctx.ocall("ocall_nop")
            entry.measured = span.elapsed
            return 0

        # Run the OCALL from inside a real ECALL context.
        handle.image.trusted_funcs["add_numbers"] = \
            lambda ctx, a, b: entry(ctx)
        handle.proxies.add_numbers(a=0, b=0)
        assert entry.measured == expected
        handle.destroy()

    def test_empty_ocall_cost_sgx(self, sgx_platform):
        handle = sgx_platform.load_enclave(demo_image())
        handle.register_ocall("ocall_nop", lambda: 0)

        def entry(ctx):
            with sgx_platform.cycles.measure() as span:
                ctx.ocall("ocall_nop")
            entry.measured = span.elapsed
            return 0

        handle.image.trusted_funcs["add_numbers"] = \
            lambda ctx, a, b: entry(ctx)
        handle.proxies.add_numbers(a=0, b=0)
        assert entry.measured == 12432
        handle.destroy()
