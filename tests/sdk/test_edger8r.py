"""Tests for the Edger8r proxy generator."""

import pytest

from repro.errors import SdkError

from .conftest import demo_image


@pytest.fixture
def handle(he_platform):
    h = he_platform.load_enclave(demo_image())
    yield h
    h.destroy()


def test_only_public_ecalls_get_proxies(handle):
    assert hasattr(handle.proxies, "add_numbers")
    assert not hasattr(handle.proxies, "private_entry")


def test_no_proxies_for_ocalls(handle):
    assert not hasattr(handle.proxies, "ocall_sink")


def test_proxy_validates_unknown_kwargs(handle):
    with pytest.raises(SdkError, match="unknown"):
        handle.proxies.add_numbers(a=1, b=2, zz=3)


def test_proxy_validates_missing_kwargs(handle):
    with pytest.raises(SdkError, match="missing"):
        handle.proxies.add_numbers(a=1)


def test_out_buffers_not_required_as_arguments(handle):
    # fill_pattern's [out] buffer must not be in the required set.
    ret, outs = handle.proxies.fill_pattern(n=4)
    assert "buf" in outs


def test_proxy_metadata(handle):
    assert handle.proxies.add_numbers.__name__ == "add_numbers"
    assert "ECALL" in handle.proxies.add_numbers.__doc__


def test_repr_lists_public_entries(handle):
    text = repr(handle.proxies)
    assert "add_numbers" in text
    assert "private_entry" not in text


class TestSourceCodegen:
    """The sgx_edger8r-style source emitter."""

    def _generated(self, handle):
        from repro.sdk.edger8r import generate_source, load_generated
        source = generate_source(handle.image.edl, handle.image.name)
        module = load_generated(source)
        module["bind"](handle)
        return source, module

    def test_source_compiles_and_binds(self, handle):
        source, module = self._generated(handle)
        assert "def add_numbers" in source
        assert module["add_numbers"](a=20, b=22) == 42

    def test_generated_matches_dynamic_proxies(self, handle):
        _, module = self._generated(handle)
        assert module["sum_bytes"](data=b"\x01\x02", n=2) == \
            handle.proxies.sum_bytes(data=b"\x01\x02", n=2)

    def test_private_ecalls_not_emitted(self, handle):
        source, module = self._generated(handle)
        assert "private_entry" not in source

    def test_type_checks_in_generated_code(self, handle):
        _, module = self._generated(handle)
        with pytest.raises(TypeError, match="expected bytes"):
            module["sum_bytes"](data=12345, n=2)

    def test_unbound_module_refuses_calls(self, handle):
        from repro.sdk.edger8r import generate_source, load_generated
        module = load_generated(
            generate_source(handle.image.edl, handle.image.name))
        with pytest.raises(RuntimeError, match="bind"):
            module["add_numbers"](a=1, b=2)

    def test_ocall_names_listed(self, handle):
        _, module = self._generated(handle)
        assert "ocall_sink" in module["OCALL_NAMES"]

    def test_generation_is_deterministic(self, handle):
        from repro.sdk.edger8r import generate_source
        a = generate_source(handle.image.edl, handle.image.name)
        b = generate_source(handle.image.edl, handle.image.name)
        assert a == b
