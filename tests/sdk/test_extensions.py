"""Tests for the extension features: switchless OCALLs and the P-Enclave
interrupt-anomaly detector."""

import pytest

from repro.errors import SdkError
from repro.hw import costs
from repro.monitor.structs import EnclaveMode
from repro.platform import TeePlatform

from .conftest import SMALL, demo_image


@pytest.fixture(scope="module")
def platform():
    return TeePlatform.hyperenclave(SMALL)


class TestSwitchlessOcalls:
    @pytest.fixture
    def handle(self, platform):
        h = platform.load_enclave(demo_image())
        h.register_ocall("ocall_sink", lambda data, n: sum(data) & 0xFFFF)
        h.register_ocall("ocall_nop", lambda: 0)
        yield h
        h.destroy()

    def test_results_identical(self, handle):
        regular = handle.proxies.echo_through_ocall(data=b"\x02" * 4, n=4)
        handle.enable_switchless()
        switchless = handle.proxies.echo_through_ocall(data=b"\x02" * 4,
                                                       n=4)
        assert regular == switchless

    def test_switchless_is_much_cheaper(self, platform, handle):
        measured = {}

        def entry(ctx, a, b):
            with platform.cycles.measure() as span:
                ctx.ocall("ocall_nop")
            measured["cycles"] = span.elapsed
            return 0

        handle.image.trusted_funcs["add_numbers"] = entry
        handle.proxies.add_numbers(a=0, b=0)
        regular = measured["cycles"]
        assert regular == costs.ocall_expected("gu")

        handle.enable_switchless()
        handle.proxies.add_numbers(a=0, b=0)
        switchless = measured["cycles"]
        expected = (costs.SWITCHLESS_ENQUEUE_CYCLES
                    + costs.SWITCHLESS_POLL_INTERVAL_CYCLES / 2
                    + costs.SWITCHLESS_COMPLETE_CYCLES)
        assert switchless == expected
        assert switchless < regular / 5

    def test_no_world_switch_in_switchless_mode(self, handle):
        handle.enable_switchless()
        exits_before = handle.world.exits
        handle.proxies.echo_through_ocall(data=b"\x01", n=1)
        # Only the wrapping ECALL's exit, not the OCALL's.
        assert handle.world.exits == exits_before + 1

    def test_worker_cycles_accounted(self, handle):
        handle.enable_switchless()

        def busy_impl(data, n):
            handle.machine.cycles.charge(5000, "untrusted-work")
            return 0

        handle.register_ocall("ocall_sink", busy_impl)
        handle.proxies.echo_through_ocall(data=b"\x01", n=1)
        assert handle.switchless_calls == 1
        assert handle.switchless_worker_cycles >= 5000

    def test_disable_restores_world_switches(self, handle):
        handle.enable_switchless()
        handle.disable_switchless()
        exits_before = handle.world.exits
        handle.proxies.echo_through_ocall(data=b"\x01", n=1)
        assert handle.world.exits == exits_before + 2   # ECALL + OCALL

    def test_needs_a_worker(self, handle):
        with pytest.raises(SdkError):
            handle.enable_switchless(workers=0)


class TestInterruptMonitor:
    def _p_handle(self, platform):
        return platform.load_enclave(demo_image(EnclaveMode.P))

    def test_requires_p_enclave(self, platform):
        handle = platform.load_enclave(demo_image(EnclaveMode.GU))
        with pytest.raises(SdkError):
            handle.ctx.enable_interrupt_monitor()
        handle.destroy()

    def test_benign_rate_stays_in_enclave(self, platform):
        handle = self._p_handle(platform)
        ctx = handle.ctx
        ctx.enable_interrupt_monitor(window_cycles=1_000_000,
                                     max_per_window=32)
        for _ in range(20):
            platform.machine.cycles.charge(100_000, "compute")  # spread out
            assert ctx.deliver_interrupt(32)
        assert not ctx.interrupt_anomaly
        handle.destroy()

    def test_interrupt_storm_detected_and_rerouted(self, platform):
        """An SGX-Step-style storm (interrupt every few hundred cycles)
        trips the detector; later interrupts go to the primary OS."""
        handle = self._p_handle(platform)
        ctx = handle.ctx
        ctx.enable_interrupt_monitor(window_cycles=1_000_000,
                                     max_per_window=32)
        delivered_in_enclave = 0
        for _ in range(50):
            platform.machine.cycles.charge(500, "compute")
            if ctx.deliver_interrupt(32):
                delivered_in_enclave += 1
        assert ctx.interrupt_anomaly
        assert delivered_in_enclave <= 33
        assert not handle.enclave.whitelisted_vectors   # rerouted
        handle.destroy()

    def test_unarmed_monitor_rejects_delivery(self, platform):
        handle = self._p_handle(platform)
        with pytest.raises(SdkError):
            handle.ctx.deliver_interrupt(32)
        handle.destroy()

    def test_old_arrivals_age_out(self, platform):
        handle = self._p_handle(platform)
        ctx = handle.ctx
        ctx.enable_interrupt_monitor(window_cycles=10_000,
                                     max_per_window=5)
        # Five quick interrupts, then a long gap, then five more: the
        # window must have slid, so no anomaly.
        for _ in range(5):
            platform.machine.cycles.charge(100, "compute")
            ctx.deliver_interrupt(32)
        platform.machine.cycles.charge(50_000, "compute")
        for _ in range(5):
            platform.machine.cycles.charge(100, "compute")
            ctx.deliver_interrupt(32)
        assert not ctx.interrupt_anomaly
        handle.destroy()
