"""Tests for the attested secure channel between enclaves."""

import dataclasses

import pytest

from repro.crypto import dh
from repro.errors import (AttestationError, SealError, SecurityViolation)
from repro.sdk.channel import SecureChannel, establish_pair

from .conftest import demo_image


@pytest.fixture
def pair(he_platform):
    image_a = demo_image()
    image_a.name = "channel-a"
    image_b = demo_image()
    image_b.name = "channel-b"
    a = he_platform.load_enclave(image_a)
    b = he_platform.load_enclave(image_b)
    yield a, b
    a.destroy()
    b.destroy()


class TestDh:
    def test_shared_secret_agreement(self):
        a = dh.generate_keypair(b"entropy-a" * 4)
        b = dh.generate_keypair(b"entropy-b" * 4)
        assert a.shared_secret(b.public) == b.shared_secret(a.public)

    def test_different_pairs_different_secrets(self):
        a = dh.generate_keypair(b"entropy-a" * 4)
        b = dh.generate_keypair(b"entropy-b" * 4)
        c = dh.generate_keypair(b"entropy-c" * 4)
        assert a.shared_secret(b.public) != a.shared_secret(c.public)

    def test_degenerate_public_rejected(self):
        a = dh.generate_keypair(b"entropy-a" * 4)
        with pytest.raises(ValueError):
            a.shared_secret(1)
        with pytest.raises(ValueError):
            a.shared_secret(dh.P - 1)

    def test_weak_entropy_rejected(self):
        with pytest.raises(ValueError):
            dh.generate_keypair(b"short")


class TestHandshake:
    def test_establish_and_exchange(self, pair):
        a, b = pair
        chan_a, chan_b = establish_pair(a.ctx, b.ctx)
        assert chan_a.established and chan_b.established
        record = chan_a.send(b"confidential payload")
        assert b"confidential payload" not in record
        assert chan_b.recv(record) == b"confidential payload"
        # And the other direction.
        assert chan_a.recv(chan_b.send(b"reply")) == b"reply"

    def test_mitm_key_substitution_detected(self, pair):
        """The OS swaps in its own DH public value: the report binding
        no longer matches, so the handshake aborts."""
        a, b = pair
        chan_a = SecureChannel(a.ctx, b.ctx.enclave.secs.mrenclave)
        chan_b = SecureChannel(b.ctx, a.ctx.enclave.secs.mrenclave)
        flight_a = chan_a.initiate()
        mitm = dh.generate_keypair(b"attacker-entropy" * 2)
        forged = dataclasses.replace(flight_a, dh_public=mitm.public) \
            if dataclasses.is_dataclass(flight_a) else flight_a
        forged.dh_public = mitm.public
        with pytest.raises(SecurityViolation, match="substituted"):
            chan_b.complete(forged)

    def test_wrong_peer_enclave_rejected(self, pair, he_platform):
        a, b = pair
        imposter_image = demo_image()
        imposter_image.name = "imposter"
        imposter = he_platform.load_enclave(imposter_image)
        # The imposter handshakes with B, claiming to be... itself; B
        # expected A's MRENCLAVE.
        chan_b = SecureChannel(b.ctx, a.ctx.enclave.secs.mrenclave)
        chan_i = SecureChannel(imposter.ctx, b.ctx.enclave.secs.mrenclave)
        with pytest.raises(AttestationError):
            chan_b.complete(chan_i.initiate())
        imposter.destroy()

    def test_send_before_establish_rejected(self, pair):
        a, b = pair
        chan = SecureChannel(a.ctx, b.ctx.enclave.secs.mrenclave)
        with pytest.raises(SecurityViolation):
            chan.send(b"too early")


class TestRecords:
    @pytest.fixture
    def channels(self, pair):
        a, b = pair
        return establish_pair(a.ctx, b.ctx)

    def test_tampered_record_rejected(self, channels):
        chan_a, chan_b = channels
        record = bytearray(chan_a.send(b"data"))
        record[-1] ^= 1
        with pytest.raises(SealError):
            chan_b.recv(bytes(record))

    def test_replay_rejected(self, channels):
        chan_a, chan_b = channels
        record = chan_a.send(b"once")
        chan_b.recv(record)
        with pytest.raises(SecurityViolation, match="replay"):
            chan_b.recv(record)

    def test_reorder_rejected(self, channels):
        chan_a, chan_b = channels
        first = chan_a.send(b"one")
        second = chan_a.send(b"two")
        with pytest.raises(SecurityViolation, match="replay|reorder"):
            chan_b.recv(second)
        chan_b.recv(first)

    def test_truncated_record_rejected(self, channels):
        _, chan_b = channels
        with pytest.raises(SealError):
            chan_b.recv(b"\x00" * 4)

    def test_third_party_cannot_decrypt(self, pair, he_platform):
        a, b = pair
        chan_a, chan_b = establish_pair(a.ctx, b.ctx)
        eve_image = demo_image()
        eve_image.name = "eve"
        eve = he_platform.load_enclave(eve_image)
        chan_e = SecureChannel(eve.ctx, a.ctx.enclave.secs.mrenclave)
        chan_e._session_key = b"\x00" * 32       # guessing
        record = chan_a.send(b"secret")
        with pytest.raises(SealError):
            chan_e.recv(record)
        eve.destroy()
