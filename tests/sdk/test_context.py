"""Tests for EnclaveContext services: memory, sealing, reports, user_check."""

import pytest

from repro.errors import SdkError, SealError, SecurityViolation
from repro.monitor.sealing import SealPolicy
from repro.monitor.structs import EnclaveMode
from repro.platform import TeePlatform

from .conftest import SMALL, demo_image


@pytest.fixture
def ctx(he_handle):
    return he_handle.ctx


class TestEnclaveMemory:
    def test_malloc_write_read(self, ctx):
        va = ctx.malloc(100)
        ctx.write(va, b"x" * 100)
        assert ctx.read(va, 100) == b"x" * 100

    def test_heap_demand_commits(self, ctx, he_handle):
        pages_before = len(he_handle.enclave.pages)
        va = ctx.malloc(3 * 4096)
        ctx.write(va, b"z" * (3 * 4096))
        assert len(he_handle.enclave.pages) > pages_before

    def test_heap_exhaustion(self, ctx):
        with pytest.raises(SdkError, match="heap"):
            ctx.malloc(1 << 40)

    def test_malloc_zero_rejected(self, ctx):
        with pytest.raises(SdkError):
            ctx.malloc(0)

    def test_heap_reset(self, ctx):
        va1 = ctx.malloc(64)
        ctx.heap_reset()
        assert ctx.malloc(64) == va1

    def test_cross_page_write(self, ctx):
        va = ctx.malloc(2 * 4096)
        data = bytes(range(256)) * 32   # 8 KB
        ctx.write(va, data)
        assert ctx.read(va, len(data)) == data

    def test_reads_charge_cycles(self, ctx, he_platform):
        va = ctx.malloc(64)
        ctx.write(va, b"a" * 64)
        with he_platform.cycles.measure() as span:
            ctx.read(va, 64)
        assert span.elapsed > 0


class TestSealing:
    def test_roundtrip(self, ctx):
        blob = ctx.seal_data(b"api key", aad=b"v1")
        assert ctx.unseal_data(blob, aad=b"v1") == b"api key"

    def test_wrong_aad_fails(self, ctx):
        blob = ctx.seal_data(b"api key", aad=b"v1")
        with pytest.raises(SealError):
            ctx.unseal_data(blob, aad=b"v2")

    def test_other_enclave_cannot_unseal(self, he_platform, he_handle):
        blob = he_handle.ctx.seal_data(b"mine")
        other_image = demo_image()
        other_image.name = "other-enclave"
        other = he_platform.load_enclave(other_image)
        with pytest.raises(SealError):
            other.ctx.unseal_data(blob)
        other.destroy()

    def test_mrsigner_policy_shares_across_enclaves(self, he_platform,
                                                    he_handle):
        blob = he_handle.ctx.seal_data(b"shared", policy=SealPolicy.MRSIGNER)
        other_image = demo_image()
        other_image.name = "sibling-enclave"
        other = he_platform.load_enclave(other_image)
        assert other.ctx.unseal_data(blob) == b"shared"
        other.destroy()

    def test_tampered_blob_fails(self, ctx):
        blob = bytearray(ctx.seal_data(b"data"))
        blob[-1] ^= 1
        with pytest.raises(SealError):
            ctx.unseal_data(bytes(blob))


class TestAttestation:
    def test_local_report_between_enclaves(self, he_platform, he_handle):
        other_image = demo_image()
        other_image.name = "verifier-enclave"
        other = he_platform.load_enclave(other_image)
        report = he_handle.ctx.create_report(
            other.enclave.secs.mrenclave, b"channel-binding")
        assert other.ctx.verify_report(report)
        other.destroy()

    def test_quote_verifies(self, he_platform, he_handle):
        from repro.monitor.attestation import QuoteVerifier
        quote = he_handle.ctx.get_quote(b"report data", b"nonce-1")
        verifier = QuoteVerifier(he_platform.boot.golden)
        report = verifier.verify(
            quote, expected_mrenclave=he_handle.enclave.secs.mrenclave,
            expected_nonce=b"nonce-1")
        assert report.report_data == b"report data"

    def test_random_is_random(self, ctx):
        assert ctx.random(16) != ctx.random(16)


class TestUserCheck:
    def test_user_check_within_msbuf_allowed(self, he_handle):
        va = he_handle.msbuf_user_alloc(64)
        he_handle.app_write(va, bytes([5] * 64))
        assert he_handle.proxies.read_user(ptr=va, n=64) == 5 * 64

    def test_user_check_outside_msbuf_blocked(self, he_handle):
        # Arbitrary app heap memory: unreachable from a HyperEnclave enclave.
        vma = he_handle.kernel.mmap(he_handle.process, 4096, populate=True)
        he_handle.app_write(vma.start, bytes([9] * 16))
        with pytest.raises(SecurityViolation):
            he_handle.proxies.read_user(ptr=vma.start, n=16)

    def test_user_check_on_sgx_reaches_everything(self, sgx_handle):
        """On the SGX baseline, user_check pointers reach the whole app
        address space (the behaviour enclave malware abuses)."""
        vma = sgx_handle.kernel.mmap(sgx_handle.process, 4096, populate=True)
        sgx_handle.app_write(vma.start, bytes([9] * 16))
        assert sgx_handle.proxies.read_user(ptr=vma.start, n=16) == 9 * 16

    def test_msbuf_user_region_exhaustion(self, he_handle):
        with pytest.raises(SdkError):
            he_handle.msbuf_user_alloc(he_handle.msbuf_vma.size)
