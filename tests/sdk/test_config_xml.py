"""Tests for SGX-style XML enclave configuration."""

import pytest

from repro.errors import SdkError
from repro.monitor.structs import EnclaveMode
from repro.sdk.config_xml import parse_config_xml
from repro.sdk.image import EnclaveImage

FULL = """
<EnclaveConfiguration>
  <ProdID>7</ProdID>
  <ISVSVN>3</ISVSVN>
  <HeapMaxSize>0x400000</HeapMaxSize>
  <StackMaxSize>0x40000</StackMaxSize>
  <TCSNum>4</TCSNum>
  <SSAFrameNum>2</SSAFrameNum>
  <MarshallingBufferSize>0x20000</MarshallingBufferSize>
  <EnclaveMode>HU</EnclaveMode>
  <DisableDebug>1</DisableDebug>
</EnclaveConfiguration>
"""


def test_full_config_parses():
    parsed = parse_config_xml(FULL)
    assert parsed.prod_id == 7
    assert parsed.isv_svn == 3
    c = parsed.config
    assert c.heap_size == 0x400000
    assert c.stack_size == 0x40000
    assert c.tcs_count == 4
    assert c.ssa_frames_per_tcs == 2
    assert c.marshalling_buffer_size == 0x20000
    assert c.mode is EnclaveMode.HU
    assert c.debug is False


def test_defaults_when_elements_omitted():
    parsed = parse_config_xml("<EnclaveConfiguration></EnclaveConfiguration>")
    assert parsed.config.mode is EnclaveMode.GU
    assert parsed.prod_id == 0


def test_decimal_and_hex_accepted():
    parsed = parse_config_xml(
        "<EnclaveConfiguration><TCSNum>8</TCSNum>"
        "<HeapMaxSize>0x100000</HeapMaxSize></EnclaveConfiguration>")
    assert parsed.config.tcs_count == 8
    assert parsed.config.heap_size == 0x100000


@pytest.mark.parametrize("bad,match", [
    ("<Wrong/>", "EnclaveConfiguration"),
    ("not xml at all <", "malformed"),
    ("<EnclaveConfiguration><Bogus>1</Bogus></EnclaveConfiguration>",
     "unknown"),
    ("<EnclaveConfiguration><TCSNum>four</TCSNum></EnclaveConfiguration>",
     "integer"),
    ("<EnclaveConfiguration><EnclaveMode>TURBO</EnclaveMode>"
     "</EnclaveConfiguration>", "unknown mode"),
    ("<EnclaveConfiguration><EnclaveMode>SGX</EnclaveMode>"
     "</EnclaveConfiguration>", "reserved"),
])
def test_rejects_malformed(bad, match):
    with pytest.raises(SdkError, match=match):
        parse_config_xml(bad)


def test_invalid_sizes_rejected_by_config():
    from repro.errors import EnclaveError
    with pytest.raises(EnclaveError):
        parse_config_xml("<EnclaveConfiguration>"
                         "<HeapMaxSize>100</HeapMaxSize>"
                         "</EnclaveConfiguration>")


class TestImageIntegration:
    EDL = "enclave { trusted { public uint64 f(); }; untrusted { }; };"

    def test_build_from_xml(self):
        image = EnclaveImage.build("xml-img", self.EDL,
                                   {"f": lambda ctx: 1},
                                   config_xml=FULL)
        assert image.config.mode is EnclaveMode.HU
        assert image.isv_prod_id == 7
        assert image.isv_svn == 3

    def test_both_configs_rejected(self):
        from repro.monitor.structs import EnclaveConfig
        with pytest.raises(SdkError, match="not both"):
            EnclaveImage.build("x", self.EDL, {"f": lambda ctx: 1},
                               EnclaveConfig(), config_xml=FULL)

    def test_xml_image_loads_and_runs(self):
        from repro.platform import TeePlatform
        from tests.sdk.conftest import SMALL
        platform = TeePlatform.hyperenclave(SMALL)
        image = EnclaveImage.build("xml-live", self.EDL,
                                   {"f": lambda ctx: 99},
                                   config_xml=FULL)
        handle = platform.load_enclave(image)
        assert handle.proxies.f() == 99
        assert handle.enclave.secs.isv_prod_id == 7
        handle.destroy()
