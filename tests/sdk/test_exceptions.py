"""Tests for in-enclave exception handling (Table 2 mechanics)."""

import pytest

from repro.hw import costs
from repro.monitor.structs import EnclaveConfig, EnclaveMode, PagePerm
from repro.platform import TeePlatform
from repro.sdk.image import EnclaveImage

EDL = """
enclave {
    trusted {
        public uint64 take_ud();
        public uint64 gc_round(uint64 npages);
    };
    untrusted { };
};
"""

PAGE = 4096


def t_take_ud(ctx):
    hits = {"count": 0}

    def handler(c, vector):
        hits["count"] += 1

    ctx.register_exception_handler(handler)
    ctx.trigger_ud()
    return hits["count"]


def t_gc_round(ctx, npages):
    """The paper's GC scenario: allocate, revoke write, fault, restore."""
    size = npages * PAGE
    va = ctx.malloc(size)
    ctx.write(va, b"\x00" * size)                  # commit pages

    def pf_handler(c, fault_va):
        page = fault_va & ~(PAGE - 1)
        c.mprotect(page, 1, PagePerm.RW)           # restore write access

    ctx.register_pf_handler(pf_handler)
    ctx.mprotect(va, npages, PagePerm.R)           # revoke writes
    faults = 0
    for i in range(npages):
        ctx.write(va + i * PAGE, b"!")             # triggers #PF + restore
        faults += 1
    return faults


def image(mode):
    return EnclaveImage.build(
        "exceptional", EDL, {"take_ud": t_take_ud, "gc_round": t_gc_round},
        EnclaveConfig(mode=mode, heap_size=1024 * 1024))


@pytest.fixture(scope="module")
def platform():
    from .conftest import SMALL
    return TeePlatform.hyperenclave(SMALL)


@pytest.fixture(scope="module")
def sgx():
    from .conftest import SMALL
    return TeePlatform.intel_sgx(SMALL)


class TestUdHandling:
    @pytest.mark.parametrize("mode,expected", [
        (EnclaveMode.P, 258),
        (EnclaveMode.GU, 17490),
        (EnclaveMode.HU, 15723),
    ])
    def test_ud_cost_matches_table2(self, platform, mode, expected):
        handle = platform.load_enclave(image(mode))

        measured = {}

        def take_ud_measured(ctx):
            ctx.register_exception_handler(lambda c, v: None)
            with platform.cycles.measure() as span:
                ctx.trigger_ud()
            measured["cycles"] = span.elapsed
            return 0

        handle.image.trusted_funcs["take_ud"] = take_ud_measured
        handle.proxies.take_ud()
        assert measured["cycles"] == expected
        handle.destroy()

    def test_ud_cost_sgx(self, sgx):
        handle = sgx.load_enclave(image(EnclaveMode.SGX))
        measured = {}

        def take_ud_measured(ctx):
            ctx.register_exception_handler(lambda c, v: None)
            with sgx.cycles.measure() as span:
                ctx.trigger_ud()
            measured["cycles"] = span.elapsed
            return 0

        handle.image.trusted_funcs["take_ud"] = take_ud_measured
        handle.proxies.take_ud()
        assert measured["cycles"] == 28561
        handle.destroy()

    def test_handler_actually_runs(self, platform):
        for mode in (EnclaveMode.P, EnclaveMode.GU):
            handle = platform.load_enclave(image(mode))
            assert handle.proxies.take_ud() == 1
            handle.destroy()

    def test_unhandled_ud_aborts(self, platform):
        handle = platform.load_enclave(image(EnclaveMode.GU))
        from repro.errors import EnclaveError

        def bad(ctx):
            ctx.trigger_ud()
            return 0

        handle.image.trusted_funcs["take_ud"] = bad
        with pytest.raises(EnclaveError):
            handle.proxies.take_ud()
        handle.destroy()


class TestGcPageFaults:
    @pytest.mark.parametrize("mode", [EnclaveMode.P, EnclaveMode.GU])
    def test_gc_round_completes(self, platform, mode):
        handle = platform.load_enclave(image(mode))
        assert handle.proxies.gc_round(npages=4) == 4
        handle.destroy()

    def test_pf_costs_match_table2(self, platform):
        per_mode = {}
        for mode in (EnclaveMode.P, EnclaveMode.GU):
            handle = platform.load_enclave(image(mode))
            measured = {}

            def gc_measured(ctx, npages, _m=measured):
                size = npages * PAGE
                va = ctx.malloc(size)
                ctx.write(va, b"\x00" * size)
                ctx.register_pf_handler(
                    lambda c, fva: c.mprotect(fva & ~(PAGE - 1), 1,
                                              PagePerm.RW))
                ctx.mprotect(va, npages, PagePerm.R)
                with platform.cycles.measure() as span:
                    ctx.write(va, b"!")
                # Subtract the memory-system cost of the write itself,
                # leaving the pure fault-handling cycles.
                _m["cycles"] = span.elapsed - span.categories.get(
                    "enclave-memory", 0)
                return 1

            handle.image.trusted_funcs["gc_round"] = gc_measured
            handle.proxies.gc_round(npages=1)
            per_mode[mode] = measured["cycles"]
            handle.destroy()

        assert per_mode[EnclaveMode.GU] == 2660
        assert per_mode[EnclaveMode.P] == 1132

    def test_fault_without_handler_propagates(self, platform):
        handle = platform.load_enclave(image(EnclaveMode.GU))
        from repro.errors import PageFault

        def no_handler(ctx, npages):
            va = ctx.malloc(PAGE)
            ctx.write(va, b"\x00" * PAGE)
            ctx.mprotect(va, 1, PagePerm.R)
            ctx.write(va, b"!")
            return 0

        handle.image.trusted_funcs["gc_round"] = no_handler
        with pytest.raises(PageFault):
            handle.proxies.gc_round(npages=1)
        handle.destroy()

    def test_p_enclave_mprotect_cheaper_than_gu(self, platform):
        """P edits its own page table; GU must hypercall (Sec 4.3)."""
        measured = {}
        for mode in (EnclaveMode.P, EnclaveMode.GU):
            handle = platform.load_enclave(image(mode))

            def protect_only(ctx, npages, _mode=mode):
                va = ctx.malloc(PAGE)
                ctx.write(va, b"\x00" * PAGE)
                with platform.cycles.measure() as span:
                    ctx.mprotect(va, 1, PagePerm.R)
                measured[_mode] = span.elapsed
                return 0

            handle.image.trusted_funcs["gc_round"] = protect_only
            handle.proxies.gc_round(npages=1)
            handle.destroy()
        assert measured[EnclaveMode.P] < measured[EnclaveMode.GU]
