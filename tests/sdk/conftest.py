"""Fixtures: platforms and a demo enclave image used across SDK tests."""

from __future__ import annotations

import pytest

from repro.hw.machine import MachineConfig
from repro.monitor.structs import EnclaveConfig, EnclaveMode
from repro.platform import TeePlatform
from repro.sdk.image import EnclaveImage

SMALL = MachineConfig(
    phys_size=1024 * 1024 * 1024,
    reserved_base=512 * 1024 * 1024,
    reserved_size=256 * 1024 * 1024,
)

DEMO_EDL = """
enclave {
    trusted {
        public uint64 add_numbers(uint64 a, uint64 b);
        public uint64 sum_bytes([in, size=n] bytes data, uint64 n);
        public uint64 fill_pattern([out, size=n] bytes buf, uint64 n);
        public uint64 increment_all([in, out, size=n] bytes buf, uint64 n);
        public uint64 echo_through_ocall([in, size=n] bytes data, uint64 n);
        public uint64 read_user([user_check] bytes ptr, uint64 n);
        public uint64 store_secret([in, size=n] bytes secret, uint64 n);
        public uint64 check_secret([in, size=n] bytes guess, uint64 n);
        uint64 private_entry();
    };
    untrusted {
        uint64 ocall_sink([in, size=n] bytes data, uint64 n);
        uint64 ocall_source([out, size=n] bytes data, uint64 n);
        uint64 ocall_transform([in, out, size=n] bytes data, uint64 n);
        uint64 ocall_nop();
    };
};
"""


def t_add_numbers(ctx, a, b):
    return (a + b) & (2**64 - 1)


def t_sum_bytes(ctx, data, n):
    ctx.compute(n)
    return sum(data)


def t_fill_pattern(ctx, buf, n):
    for i in range(n):
        buf[i] = (i * 7) & 0xFF
    return n


def t_increment_all(ctx, buf, n):
    for i in range(n):
        buf[i] = (buf[i] + 1) & 0xFF
    return n


def t_echo_through_ocall(ctx, data, n):
    ret = ctx.ocall("ocall_sink", data=data, n=n)
    return ret


def t_read_user(ctx, ptr, n):
    data = ctx.copy_from_user(ptr, n)
    return sum(data)


def t_store_secret(ctx, secret, n):
    va = ctx.malloc(n)
    ctx.write(va, secret)
    ctx.globals["secret_va"] = va
    ctx.globals["secret_len"] = n
    return 0


def t_check_secret(ctx, guess, n):
    va = ctx.globals.get("secret_va")
    if va is None:
        return 0
    stored = ctx.read(va, ctx.globals["secret_len"])
    return 1 if stored == guess else 0


TRUSTED = {
    "add_numbers": t_add_numbers,
    "sum_bytes": t_sum_bytes,
    "fill_pattern": t_fill_pattern,
    "increment_all": t_increment_all,
    "echo_through_ocall": t_echo_through_ocall,
    "read_user": t_read_user,
    "store_secret": t_store_secret,
    "check_secret": t_check_secret,
}


def demo_image(mode: EnclaveMode = EnclaveMode.GU) -> EnclaveImage:
    return EnclaveImage.build(
        "demo", DEMO_EDL, dict(TRUSTED),
        EnclaveConfig(mode=mode, heap_size=1024 * 1024,
                      stack_size=64 * 1024, tcs_count=2,
                      marshalling_buffer_size=256 * 1024))


@pytest.fixture(scope="module")
def he_platform():
    return TeePlatform.hyperenclave(SMALL)


@pytest.fixture(scope="module")
def sgx_platform():
    return TeePlatform.intel_sgx(SMALL)


@pytest.fixture
def he_handle(he_platform):
    handle = he_platform.load_enclave(demo_image())
    _register_ocalls(handle)
    yield handle
    handle.destroy()


@pytest.fixture
def sgx_handle(sgx_platform):
    handle = sgx_platform.load_enclave(demo_image())
    _register_ocalls(handle)
    yield handle
    handle.destroy()


def _register_ocalls(handle):
    handle.register_ocall("ocall_sink", lambda data, n: sum(data) & 0xFFFF)
    handle.register_ocall(
        "ocall_source",
        lambda data, n: (n, {"data": bytes(i & 0xFF for i in range(n))}))
    handle.register_ocall(
        "ocall_transform",
        lambda data, n: (n, {"data": bytes((b ^ 0xFF) for b in data)}))
    handle.register_ocall("ocall_nop", lambda: 0)
