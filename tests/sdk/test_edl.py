"""Tests for the EDL parser."""

import pytest

from repro.errors import EdlError
from repro.sdk.edl import Direction, parse_edl

GOOD = """
enclave {
    trusted {
        /* a public entry */
        public uint64 put([in, size=len] bytes key, uint64 len);
        public void clear();
        uint64 internal();  // private helper
    };
    untrusted {
        uint64 ocall_write([in, size=n] bytes data, uint64 n);
        void ocall_log([string] bytes message);
        uint64 ocall_read([out, size=n] bytes data, uint64 n);
        uint64 ocall_raw([user_check] bytes p, uint64 n);
        uint64 ocall_update([in, out, size=n] bytes data, uint64 n);
    };
};
"""


def test_parses_sections():
    edl = parse_edl(GOOD)
    assert len(edl.trusted) == 3
    assert len(edl.untrusted) == 5


def test_public_flag():
    edl = parse_edl(GOOD)
    assert edl.trusted_by_name("put").public
    assert not edl.trusted_by_name("internal").public


def test_directions():
    edl = parse_edl(GOOD)
    assert edl.untrusted_by_name("ocall_write").param("data").direction \
        is Direction.IN
    assert edl.untrusted_by_name("ocall_read").param("data").direction \
        is Direction.OUT
    assert edl.untrusted_by_name("ocall_update").param("data").direction \
        is Direction.INOUT
    assert edl.untrusted_by_name("ocall_raw").param("p").direction \
        is Direction.USER_CHECK


def test_string_attribute_implies_in():
    edl = parse_edl(GOOD)
    param = edl.untrusted_by_name("ocall_log").param("message")
    assert param.is_string
    assert param.direction is Direction.IN


def test_size_expr_references_param():
    edl = parse_edl(GOOD)
    assert edl.trusted_by_name("put").param("key").size_expr == "len"


def test_literal_size():
    edl = parse_edl("""
    enclave { trusted {
        public void f([in, size=4096] bytes page);
    }; };""")
    assert edl.trusted_by_name("f").param("page").size_expr == 4096


def test_comments_stripped():
    parse_edl("enclave { /* x */ trusted { // y\n }; };")


@pytest.mark.parametrize("bad,why", [
    ("enclave { trusted { public uint64 f(", "eof"),
    ("enclave { trusted { public float f(); }; };", "bad type"),
    ("enclave { untrusted { public uint64 f(); }; };", "public untrusted"),
    ("enclave { trusted { public uint64 f([in] bytes b); }; };", "no size"),
    ("enclave { trusted { public uint64 f([in, size=m] bytes b); }; };",
     "size ref missing"),
    ("enclave { trusted { public uint64 f(uint64 a, uint64 a); }; };",
     "dup param"),
    ("enclave { trusted { public uint64 f(); public uint64 f(); }; };",
     "dup func"),
    ("enclave { trusted { public uint64 f([in] uint64 a); }; };",
     "attrs on scalar"),
    ("enclave { trusted { public uint64 f([in, user_check, size=n] "
     "bytes b, uint64 n); }; };", "bad combo"),
    ("enclave { weird { }; };", "bad section"),
    ("enclave { trusted { }; }; extra", "trailing"),
    ("enclave { trusted { public uint64 f(); }; }; @", "bad char"),
])
def test_rejects_malformed(bad, why):
    with pytest.raises(EdlError):
        parse_edl(bad)


def test_unknown_function_lookup():
    edl = parse_edl(GOOD)
    with pytest.raises(EdlError):
        edl.trusted_by_name("nope")
    with pytest.raises(EdlError):
        edl.untrusted_by_name("nope")


def test_bytes_without_direction_rejected():
    with pytest.raises(EdlError):
        parse_edl("enclave { trusted { "
                  "public uint64 f(bytes b, uint64 n); }; };")
