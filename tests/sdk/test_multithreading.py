"""Tests for multi-threaded enclaves (one TCS per thread, Sec 3.4)."""

import pytest

from repro.errors import EnclaveError
from repro.monitor.structs import EnclaveConfig, EnclaveMode
from repro.platform import TeePlatform
from repro.sdk.image import EnclaveImage

from .conftest import SMALL

EDL = """
enclave {
    trusted {
        public uint64 outer(uint64 depth);
        public uint64 bump();
    };
    untrusted {
        uint64 ocall_reenter(uint64 depth);
    };
};
"""


def t_outer(ctx, depth):
    """Simulates thread A holding a TCS while thread B ECALLs in: the
    OCALL's untrusted side performs a second, concurrent ECALL."""
    if depth == 0:
        return 1
    return ctx.ocall("ocall_reenter", depth=depth)


def t_bump(ctx):
    ctx.globals["counter"] = ctx.globals.get("counter", 0) + 1
    return ctx.globals["counter"]


def image(tcs_count):
    return EnclaveImage.build(
        "threads", EDL, {"outer": t_outer, "bump": t_bump},
        EnclaveConfig(mode=EnclaveMode.GU, tcs_count=tcs_count))


@pytest.fixture(scope="module")
def platform():
    return TeePlatform.hyperenclave(SMALL)


def test_concurrent_ecalls_take_distinct_tcs(platform):
    handle = platform.load_enclave(image(tcs_count=3))
    busy = []

    def reenter(depth):
        busy.append(sum(t.busy for t in handle.enclave.tcs_list))
        # The "second thread" calls into the enclave while the first one
        # is parked in an OCALL.
        return handle.ecall("outer", depth=depth - 1)

    handle.register_ocall("ocall_reenter", reenter)
    assert handle.ecall("outer", depth=2) == 1
    # While nested, 2 then 3 TCSs were simultaneously busy.
    assert busy == [1, 2]
    assert all(not t.busy for t in handle.enclave.tcs_list)
    handle.destroy()


def test_thread_exhaustion_is_an_error(platform):
    handle = platform.load_enclave(image(tcs_count=2))
    handle.register_ocall(
        "ocall_reenter", lambda depth: handle.ecall("outer", depth=depth - 1))
    with pytest.raises(EnclaveError, match="TCS"):
        handle.ecall("outer", depth=3)    # needs 3 TCSs, has 2
    handle.destroy()


def test_threads_share_enclave_globals(platform):
    handle = platform.load_enclave(image(tcs_count=2))
    assert handle.ecall("bump") == 1
    assert handle.ecall("bump") == 2      # same enclave state
    handle.destroy()


def test_tcs_released_after_error(platform):
    handle = platform.load_enclave(image(tcs_count=1))

    def boom(ctx):
        raise ValueError("in-enclave crash")

    handle.image.trusted_funcs["bump"] = boom
    with pytest.raises(ValueError):
        handle.ecall("bump")
    # The TCS must not leak.
    assert all(not t.busy for t in handle.enclave.tcs_list)
    handle.destroy()
