"""End-to-end tests for the bench harness and regression gate.

The load-bearing one is the *injection* test: inflating the hypercall
world-switch cost (VMEXIT/VMENTRY steps) by 10% must trip the gate
against a baseline recorded with the calibrated model — the exact
failure mode ``python -m repro.bench check`` exists to catch in CI.
"""

import json

import pytest

from repro.bench import load_artifact, validate_artifact
from repro.bench.cli import main as bench_main
from repro.bench.registry import REGISTRY
from repro.bench.runner import (DEFAULT_BASELINE_DIR, check_benches,
                                run_benches)
from repro.hw import costs
from repro.hw.costs import WorldSwitchCosts
from repro.profiler import parse_collapsed

TABLE1 = REGISTRY["table1_edge_calls"]
TABLE2 = REGISTRY["table2_exceptions"]
GATE_SET = ("table1_edge_calls", "table2_exceptions", "fig7_marshalling",
            "fig11_memenc")


@pytest.fixture(scope="module")
def table1_run(tmp_path_factory):
    """One real Table 1 run: baseline + side artifacts in temp dirs."""
    baseline_dir = tmp_path_factory.mktemp("baselines")
    artifacts_dir = tmp_path_factory.mktemp("artifacts")
    (output,) = run_benches([TABLE1], baseline_dir=baseline_dir,
                            artifacts_dir=artifacts_dir, results_path=None,
                            log=lambda *_: None)
    return baseline_dir, artifacts_dir, output


def _inflated_switch_costs(factor: float) -> dict:
    """The cost model with the hypercall trap/return steps scaled."""
    def scale(steps):
        return [(name, round(cost * factor))
                if name in ("vmexit", "vmentry") else (name, cost)
                for name, cost in steps]
    return {mode: WorldSwitchCosts(eenter=scale(sw.eenter),
                                   eexit=scale(sw.eexit))
            for mode, sw in costs.SWITCH_COSTS.items()}


class TestRunOne:
    def test_artifact_records_calibrated_ecall_cycles(self, table1_run):
        _, _, output = table1_run
        figures = output.artifact["figures"]
        for label, mode in (("HU-Enclave", "hu"), ("GU-Enclave", "gu"),
                            ("P-Enclave", "p"), ("Intel SGX", "sgx")):
            assert figures[label]["ecall"] == costs.ecall_expected(mode)
        assert output.artifact["metrics"]["HU-Enclave.ecall"] == 8440.0

    def test_artifact_carries_telemetry_and_profile(self, table1_run):
        _, _, output = table1_run
        artifact = output.artifact
        validate_artifact(artifact)
        assert artifact["telemetry"]["machines"] >= 4   # one per mode
        assert artifact["metrics"]["telemetry.total_cycles"] > 0
        assert artifact["metrics"]["profile.total_span_cycles"] > 0
        assert artifact["profile"]["top_self"]

    def test_side_artifacts_are_loadable(self, table1_run):
        _, artifacts_dir, output = table1_run
        snapshot = json.loads(
            (artifacts_dir / "table1_edge_calls.telemetry.json").read_text())
        assert snapshot["machines"]
        trace = json.loads((artifacts_dir /
                            "table1_edge_calls.telemetry.trace.json")
                           .read_text())
        assert trace["traceEvents"]
        collapsed = parse_collapsed(
            (artifacts_dir / "table1_edge_calls.collapsed").read_text())
        assert sum(collapsed.values()) == \
            output.profile_doc["combined"]["total_span_cycles"]


class TestGate:
    def test_rerun_reproduces_the_baseline_exactly(self, table1_run):
        baseline_dir, _, _ = table1_run
        (result,) = check_benches([TABLE1], baseline_dir=baseline_dir,
                                  log=lambda *_: None)
        assert result.ok, [d.metric for d in result.failures]
        # Zero tolerance really was in force: deterministic to the cycle.
        assert result.tolerance == 0.0

    def test_injected_hypercall_cost_regression_is_caught(
            self, table1_run, monkeypatch):
        baseline_dir, _, _ = table1_run
        monkeypatch.setattr(costs, "SWITCH_COSTS",
                            _inflated_switch_costs(1.1))
        (result,) = check_benches([TABLE1], baseline_dir=baseline_dir,
                                  log=lambda *_: None)
        assert not result.ok
        regressed = {d.metric for d in result.failures
                     if d.status == "regressed"}
        # Every mode that traps through the monitor pays the injected
        # cost; the fingerprint note flags the cost model too.
        assert "HU-Enclave.ecall" in regressed
        assert "GU-Enclave.ecall" in regressed
        assert "P-Enclave.ecall" in regressed
        assert any("cost model changed" in note for note in result.notes)

    def test_cli_check_exits_nonzero_on_injection(self, table1_run,
                                                  monkeypatch, capsys):
        baseline_dir, _, _ = table1_run
        monkeypatch.setattr(costs, "SWITCH_COSTS",
                            _inflated_switch_costs(1.1))
        code = bench_main(["check", "table1_edge_calls",
                           "--baseline-dir", str(baseline_dir)])
        assert code == 1
        assert "GATE FAILED" in capsys.readouterr().out

    def test_missing_baseline_fails_the_gate(self, tmp_path):
        (result,) = check_benches([TABLE1], baseline_dir=tmp_path,
                                  log=lambda *_: None)
        assert not result.ok
        assert any("no committed baseline" in note for note in result.notes)


class TestFingerprints:
    def test_artifact_fingerprints_one_machine_per_mode(self, table1_run):
        _, _, output = table1_run
        assert set(output.artifact["fingerprints"]) == \
            {"gu", "hu", "p", "sgx"}
        for digest in output.artifact["fingerprints"].values():
            assert len(digest) == 64            # sha256 hex

    def test_rerun_reproduces_every_fingerprint(self, table1_run):
        baseline_dir, _, _ = table1_run
        (result,) = check_benches([TABLE1], baseline_dir=baseline_dir,
                                  log=lambda *_: None)
        assert result.ok
        checked = {d.metric for d in result.deltas}
        assert {"state_hash.gu", "state_hash.hu", "state_hash.p",
                "state_hash.sgx"} <= checked

    def test_tampered_fingerprint_fails_the_gate(self, table1_run,
                                                 tmp_path):
        baseline_dir, _, _ = table1_run
        path = baseline_dir / "BENCH_table1_edge_calls.json"
        doc = json.loads(path.read_text())
        doc["fingerprints"]["hu"] = "f" * 64
        path.write_text(json.dumps(doc))
        (result,) = check_benches([TABLE1], baseline_dir=baseline_dir,
                                  log=lambda *_: None)
        assert not result.ok
        assert [d.metric for d in result.failures] == ["state_hash.hu"]

    def test_recording_leaves_table1_bit_identical(self, table1_run,
                                                   tmp_path):
        # The flight recorder is a pure observer: a recorded Table 1 run
        # produces the same metrics AND the same state hashes as the
        # bare run, and its journal replays without divergence.
        from repro.bench.runner import run_one
        from repro.flightrec.journal import Journal
        _, _, bare = table1_run
        recorded = run_one(TABLE1, profile=False, record_dir=tmp_path)
        assert recorded.artifact["metrics"]["HU-Enclave.ecall"] == \
            costs.ecall_expected("hu")
        for metric, value in bare.artifact["metrics"].items():
            if metric.startswith("profile."):
                continue            # profiling disabled on the rerun
            if metric.startswith("throughput."):
                continue            # wall-derived: varies run to run
            assert recorded.artifact["metrics"][metric] == value, metric
        assert recorded.artifact["fingerprints"] == \
            bare.artifact["fingerprints"]
        journal = Journal.load(tmp_path / "table1_edge_calls.journal.json")
        assert journal.header["scenario"] == "bench:table1_edge_calls"
        assert journal.events and journal.checkpoints


class TestCommittedBaselines:
    def test_gate_set_baselines_are_committed_and_valid(self):
        for name in GATE_SET:
            path = DEFAULT_BASELINE_DIR / f"BENCH_{name}.json"
            assert path.exists(), f"run `python -m repro.bench run` for {name}"
            artifact = load_artifact(path)
            assert artifact["name"] == name
            assert artifact["tolerance"] == REGISTRY[name].tolerance

    def test_committed_table_baselines_pin_paper_values(self):
        table1 = load_artifact(
            DEFAULT_BASELINE_DIR / "BENCH_table1_edge_calls.json")
        assert table1["metrics"]["HU-Enclave.ecall"] == 8440.0
        assert table1["metrics"]["Intel SGX.ecall"] == 14432.0
        table2 = load_artifact(
            DEFAULT_BASELINE_DIR / "BENCH_table2_exceptions.json")
        assert table2["metrics"]["P-Enclave.ud"] == 258.0
        assert table2["metrics"]["Intel SGX.ud"] == 28561.0


class TestCli:
    def test_run_then_check_round_trip(self, tmp_path, capsys):
        baseline_dir = tmp_path / "baselines"
        artifacts_dir = tmp_path / "artifacts"
        assert bench_main(["run", "table2_exceptions", "--no-results",
                           "--baseline-dir", str(baseline_dir),
                           "--artifacts", str(artifacts_dir)]) == 0
        baseline = baseline_dir / "BENCH_table2_exceptions.json"
        assert baseline.exists()
        assert (artifacts_dir / "table2_exceptions.collapsed").exists()
        assert bench_main(["check", "table2_exceptions",
                           "--baseline-dir", str(baseline_dir)]) == 0
        assert "gate passed" in capsys.readouterr().out

    def test_diff_flags_a_perturbed_artifact(self, tmp_path, capsys):
        base = DEFAULT_BASELINE_DIR / "BENCH_table2_exceptions.json"
        perturbed = load_artifact(base)
        perturbed["metrics"]["P-Enclave.ud"] += 26.0       # ~10%
        cur = tmp_path / "BENCH_table2_exceptions.json"
        cur.write_text(json.dumps(perturbed))
        assert bench_main(["diff", str(base), str(base)]) == 0
        assert bench_main(["diff", str(base), str(cur)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_unknown_bench_is_a_usage_error(self, capsys):
        assert bench_main(["run", "no_such_bench", "--no-results"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err
