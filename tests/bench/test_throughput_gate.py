"""The throughput gate: direction-aware wall-clock regression checks.

Synthetic telemetry (spans under a monkeypatched ``perf_counter_ns``)
makes the throughput and latency blocks hand-checkable without running a
real benchmark; the compare tests then pin the direction-aware band
(slowdowns beyond the band fail, speedups of any size pass) and the
version-1 baseline forward-compat path (warn and skip, never fail).
"""

import time

import pytest

from repro.bench import (BenchSpec, SLOWDOWN_ENV, artifact_version,
                         build_artifact, compare_artifacts,
                         validate_artifact)
from repro.bench.runner import _injected_slowdown
from repro.hw.cycles import CycleCounter
from repro.telemetry import Telemetry
from repro.telemetry.export import snapshot_document

SPEC = BenchSpec("fakebench", "synthetic throughput bench", "exact",
                 tolerance=0.0, throughput_tolerance=0.75)


class TickClock:
    def __init__(self, step_ns: int = 1000) -> None:
        self.now = 0
        self.step = step_ns

    def __call__(self) -> int:
        self.now += self.step
        return self.now


@pytest.fixture
def fake_clock(monkeypatch):
    clock = TickClock()
    monkeypatch.setattr(time, "perf_counter_ns", clock)
    return clock


def sim_telemetry() -> dict:
    """A deterministic snapshot: two enclaves, sdk + world spans."""
    tel = Telemetry(CycleCounter())
    tel.enable()
    for enclave, cost in ((1, 8000), (2, 9000)):
        for _ in range(20):
            with tel.span("sdk.ecall", enclave=enclave):
                tel.cycles.charge(cost, "sdk-ecall")
                with tel.span("world.eenter", enclave=enclave):
                    tel.cycles.charge(1200, "eenter:hu")
    return snapshot_document([("m", tel)])


def artifact(wall_seconds=2.0, telemetry=None):
    doc = sim_telemetry() if telemetry is None else telemetry
    return build_artifact(SPEC, {"score": 1.0}, doc, None,
                          wall_seconds=wall_seconds)


class TestThroughputBlock:
    def test_rate_and_gated_metric(self, fake_clock):
        art = artifact(wall_seconds=2.0)
        validate_artifact(art)
        assert artifact_version(art) == 2
        block = art["throughput"]
        total = art["telemetry"]["total_cycles"]
        assert block["sim_cycles"] == total
        assert block["sim_cycles_per_wall_second"] == \
            pytest.approx(total / 2.0)
        assert block["direction"] == "higher_is_better"
        assert block["tolerance"] == 0.75
        assert art["metrics"]["throughput.sim_cycles_per_wall_second"] == \
            pytest.approx(total / 2.0)

    def test_wall_shares_include_harness_remainder(self, fake_clock):
        art = artifact(wall_seconds=2.0)
        shares = art["throughput"]["wall_share_by_subsystem"]
        assert set(shares) == {"sdk", "world", "harness"}
        # Span wall-time is tiny against 2 s, so the harness (time
        # outside any span) dominates; shares always sum to 1.
        assert shares["harness"] == pytest.approx(
            1.0 - shares["sdk"] - shares["world"])
        wall_ns = art["throughput"]["wall_ns_by_subsystem"]
        assert sum(wall_ns.values()) == pytest.approx(2.0 * 1e9)

    def test_no_wall_seconds_means_no_throughput(self, fake_clock):
        art = artifact(wall_seconds=None)
        assert art["throughput"] is None
        assert not any(m.startswith("throughput.")
                       for m in art["metrics"])


class TestLatencyBlock:
    def test_per_enclave_percentiles(self, fake_clock):
        art = artifact()
        table = art["latency"]["m"]
        assert set(table) == {"1", "2"}
        row = table["1"]["sdk.ecall"]
        assert row["count"] == 20
        # Every observation for enclave 1 is 8000 + 1200 = 9200 cycles
        # (inclusive), a single-bucket histogram: clamping makes all
        # three percentiles exact.
        assert row["p50"] == row["p95"] == row["p99"] == 9200
        assert table["2"]["sdk.ecall"]["p99"] == 10200
        assert table["1"]["world.eenter"]["p50"] == 1200
        assert art["metrics"]["latency.m.1.sdk.ecall.p99"] == 9200

    def test_latency_metrics_are_deterministic(self, fake_clock):
        a, b = artifact(), artifact()
        lat_a = {k: v for k, v in a["metrics"].items()
                 if k.startswith("latency.")}
        lat_b = {k: v for k, v in b["metrics"].items()
                 if k.startswith("latency.")}
        assert lat_a and lat_a == lat_b


class TestDirectionAwareGate:
    def scaled(self, base, factor, fake_telemetry=None):
        """The same artifact with the throughput rate scaled."""
        import copy
        cur = copy.deepcopy(base)
        rate = cur["throughput"]["sim_cycles_per_wall_second"] * factor
        cur["throughput"]["sim_cycles_per_wall_second"] = rate
        cur["metrics"]["throughput.sim_cycles_per_wall_second"] = rate
        return cur

    def test_identical_runs_pass_with_zero_cycle_band(self, fake_clock):
        base = artifact()
        result = compare_artifacts(base, artifact())
        assert result.ok and not result.notes

    def test_slowdown_beyond_band_fails(self, fake_clock):
        base = artifact()
        result = compare_artifacts(base, self.scaled(base, 0.2))
        assert not result.ok
        (failure,) = result.failures
        assert failure.metric == "throughput.sim_cycles_per_wall_second"
        assert failure.status == "regressed"

    def test_slowdown_within_band_passes(self, fake_clock):
        base = artifact()
        # -50% is inside the 75% band (fail threshold: below 25%).
        assert compare_artifacts(base, self.scaled(base, 0.5)).ok

    def test_any_speedup_passes(self, fake_clock):
        base = artifact()
        # +900% would fail a symmetric band; higher_is_better passes it.
        assert compare_artifacts(base, self.scaled(base, 10.0)).ok

    def test_band_travels_with_the_baseline(self, fake_clock):
        base = artifact()
        base["throughput"]["tolerance"] = 0.10     # a strict baseline
        assert not compare_artifacts(base, self.scaled(base, 0.85)).ok
        assert compare_artifacts(base, self.scaled(base, 0.95)).ok


class TestV1BaselineCompat:
    def as_v1(self, art):
        """Strip everything version 2 added, as a PR-4-era baseline."""
        import copy
        old = copy.deepcopy(art)
        del old["artifact_version"]
        old["version"] = 1
        old["throughput"] = None
        old["latency"] = None
        old["metrics"] = {k: v for k, v in old["metrics"].items()
                          if not k.startswith(("throughput.", "latency."))}
        return old

    def test_v1_baseline_warns_and_passes(self, fake_clock):
        current = artifact()
        old = self.as_v1(current)
        assert artifact_version(old) == 1
        result = compare_artifacts(old, current)
        assert result.ok
        assert len(result.notes) == 2          # throughput + latency
        assert all("regenerate" in note for note in result.notes)

    def test_v2_baseline_does_not_warn(self, fake_clock):
        current = artifact()
        result = compare_artifacts(artifact(), current)
        assert not result.notes

    def test_figure_named_latency_still_gates_against_v1(self, fake_clock):
        # A *figure* whose flattened metrics share the "latency." prefix
        # must not be swallowed by the v1 skip: it exists in the old
        # baseline's metrics, so drift in it still fails the gate.
        current = build_artifact(SPEC, {"latency": {"hu": 100.0}},
                                 sim_telemetry(), None, wall_seconds=2.0)
        old = self.as_v1(current)
        old["metrics"]["latency.hu"] = 100.0
        old["figures"] = {"latency": {"hu": 100.0}}
        drifted = dict(current, metrics=dict(current["metrics"]))
        drifted["metrics"]["latency.hu"] = 250.0
        result = compare_artifacts(old, drifted)
        assert any(d.metric == "latency.hu" and d.status == "regressed"
                   for d in result.failures)


class TestSlowdownHook:
    def test_env_parsing(self, monkeypatch):
        monkeypatch.delenv(SLOWDOWN_ENV, raising=False)
        assert _injected_slowdown() == 0.0
        monkeypatch.setenv(SLOWDOWN_ENV, "2.5")
        assert _injected_slowdown() == 2.5
        monkeypatch.setenv(SLOWDOWN_ENV, "nonsense")
        assert _injected_slowdown() == 0.0
