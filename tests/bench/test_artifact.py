"""Unit tests for the bench artifact format, the gate comparison, and
the registry — everything that runs without executing a benchmark."""

import dataclasses

import pytest

from repro.bench import (ARTIFACT_KIND, ARTIFACT_VERSION, REGISTRY,
                         BenchSpec, build_artifact, compare_artifacts,
                         compare_report, costs_fingerprint, flatten_metrics,
                         gate_specs, load_artifact, resolve,
                         validate_artifact, write_artifact)
from repro.bench.compare import FingerprintDelta, MetricDelta

FAKE = BenchSpec("fake", "a fake benchmark", "shape", tolerance=0.05)


def fake_artifact(**figure_overrides) -> dict:
    figures = {"latency": {"hu": 100.0, "gu": 200.0}, "ratio": [0.5, 1.0]}
    figures.update(figure_overrides)
    return build_artifact(FAKE, figures, None, None)


class TestFlattenMetrics:
    def test_numeric_leaves_by_dot_path(self):
        flat = flatten_metrics({"a": {"b": 1, "c": [1.5, 2]}})
        assert flat == {"a.b": 1.0, "a.c.0": 1.5, "a.c.1": 2.0}

    def test_non_numeric_leaves_are_skipped(self):
        flat = flatten_metrics({"s": "text", "flag": True, "none": None,
                                "n": 3})
        assert flat == {"n": 3.0}

    def test_bare_number_gets_a_name(self):
        assert flatten_metrics(7) == {"value": 7.0}


class TestArtifact:
    def test_build_produces_valid_artifact(self):
        artifact = fake_artifact()
        validate_artifact(artifact)
        assert artifact["version"] == ARTIFACT_VERSION
        assert artifact["kind"] == ARTIFACT_KIND
        assert artifact["name"] == "fake"
        assert artifact["metrics"]["latency.hu"] == 100.0
        assert artifact["telemetry"] is None and artifact["profile"] is None
        assert artifact["provenance"]["costs_fingerprint"]

    def test_write_load_round_trip(self, tmp_path):
        path = write_artifact(tmp_path / "BENCH_fake.json", fake_artifact())
        assert load_artifact(path) == fake_artifact()

    def test_validate_rejects_non_numeric_metrics(self):
        artifact = fake_artifact()
        artifact["metrics"]["bad"] = "oops"
        with pytest.raises(ValueError, match="non-numeric"):
            validate_artifact(artifact)

    def test_validate_rejects_empty_metrics(self):
        artifact = fake_artifact()
        artifact["metrics"] = {}
        with pytest.raises(ValueError, match="non-empty metrics"):
            validate_artifact(artifact)

    def test_dataclass_figures_are_jsonable(self):
        @dataclasses.dataclass
        class Point:
            cycles: int

        artifact = build_artifact(FAKE, {"pts": [Point(3)]}, None, None)
        assert artifact["figures"]["pts"] == [{"cycles": 3}]
        assert artifact["metrics"]["pts.0.cycles"] == 3.0

    def test_costs_fingerprint_tracks_the_cost_model(self, monkeypatch):
        from repro.hw import costs
        before = costs_fingerprint()
        assert before == costs_fingerprint()          # stable
        monkeypatch.setattr(costs, "VMEXIT_CYCLES", costs.VMEXIT_CYCLES + 1)
        assert costs_fingerprint() != before          # any constant counts


class TestCompare:
    def test_identical_artifacts_pass(self):
        result = compare_artifacts(fake_artifact(), fake_artifact())
        assert result.ok
        assert not result.notes
        assert "gate passed" in compare_report([result])

    def test_drift_outside_band_fails(self):
        base = fake_artifact()
        cur = fake_artifact(latency={"hu": 107.0, "gu": 200.0})  # +7% > 5%
        result = compare_artifacts(base, cur)
        assert not result.ok
        (failure,) = result.failures
        assert failure.metric == "latency.hu"
        assert failure.status == "regressed"
        assert failure.rel_change == pytest.approx(0.07)
        assert "GATE FAILED" in compare_report([result])

    def test_drift_inside_band_passes(self):
        cur = fake_artifact(latency={"hu": 104.0, "gu": 200.0})  # +4% < 5%
        assert compare_artifacts(fake_artifact(), cur).ok

    def test_zero_tolerance_trips_on_one_cycle(self):
        base, cur = fake_artifact(), fake_artifact(ratio=[0.5, 1.0 + 1e-6])
        assert compare_artifacts(base, cur, tolerance=0.0).ok is False
        assert compare_artifacts(base, cur).ok                # 5% band

    def test_missing_and_new_metrics_both_fail(self):
        base = fake_artifact()
        cur = fake_artifact()
        del cur["metrics"]["ratio.0"]
        cur["metrics"]["brand.new"] = 1.0
        result = compare_artifacts(base, cur)
        statuses = {d.metric: d.status for d in result.failures}
        assert statuses == {"ratio.0": "missing", "brand.new": "new"}

    def test_cost_model_change_is_noted(self):
        base = fake_artifact()
        cur = fake_artifact()
        cur["provenance"]["costs_fingerprint"] = "deadbeefdeadbeef"
        result = compare_artifacts(base, cur)
        assert result.ok                      # informational, not gating
        assert any("cost model changed" in note for note in result.notes)

    def test_near_zero_baseline_uses_absolute_floor(self):
        delta = MetricDelta("m", baseline=0.0, current=5e-10, tolerance=0.01)
        assert delta.status == "ok"
        delta = MetricDelta("m", baseline=0.0, current=1e-6, tolerance=0.01)
        assert delta.status == "regressed"


class TestFingerprintCompare:
    def test_exact_equality_no_band(self):
        assert FingerprintDelta("state_hash.gu", "a" * 64, "a" * 64)\
            .status == "ok"
        assert FingerprintDelta("state_hash.gu", "a" * 64, "b" * 64)\
            .status == "regressed"
        assert FingerprintDelta("state_hash.gu", None, "a" * 64)\
            .status == "new"
        assert FingerprintDelta("state_hash.gu", "a" * 64, None)\
            .status == "missing"

    def test_changed_fingerprint_fails_the_gate(self):
        base = fake_artifact()
        base["fingerprints"] = {"gu": "a" * 64}
        cur = fake_artifact()
        cur["fingerprints"] = {"gu": "b" * 64}
        result = compare_artifacts(base, cur)
        (failure,) = result.failures
        assert failure.metric == "state_hash.gu"
        assert failure.status == "regressed"
        assert failure.rel_change is None      # no band to be inside of
        assert "state_hash.gu" in compare_report([result])

    def test_baseline_without_fingerprints_skips_the_check(self):
        # Pre-fingerprint baselines still gate on metrics; regenerating
        # them with `python -m repro.bench run` opts into the check.
        base = fake_artifact()
        base["fingerprints"] = {}
        cur = fake_artifact()
        cur["fingerprints"] = {"gu": "a" * 64}
        result = compare_artifacts(base, cur)
        assert result.ok
        assert not any(d.metric.startswith("state_hash.")
                       for d in result.deltas)

    def test_vanished_machine_fails_the_gate(self):
        base = fake_artifact()
        base["fingerprints"] = {"gu": "a" * 64, "hu": "b" * 64}
        cur = fake_artifact()
        cur["fingerprints"] = {"gu": "a" * 64}
        result = compare_artifacts(base, cur)
        (failure,) = result.failures
        assert failure.metric == "state_hash.hu"
        assert failure.status == "missing"

    def test_non_string_fingerprint_rejected_by_validation(self):
        artifact = fake_artifact()
        artifact["fingerprints"] = {"gu": 42}
        with pytest.raises(ValueError, match="non-string fingerprint"):
            validate_artifact(artifact)


class TestRegistry:
    def test_gate_set_is_the_acceptance_list(self):
        assert [spec.name for spec in gate_specs()] == \
            ["table1_edge_calls", "table2_exceptions", "fig7_marshalling",
             "fig11_memenc"]

    def test_exact_benches_have_zero_tolerance(self):
        for name in ("table1_edge_calls", "table2_exceptions"):
            assert REGISTRY[name].kind == "exact"
            assert REGISTRY[name].tolerance == 0.0

    def test_every_spec_maps_to_a_bench_module(self):
        import importlib
        import importlib.util
        for spec in REGISTRY.values():
            assert importlib.util.find_spec(spec.module_name) is not None

    def test_resolve_accepts_bench_prefix_and_defaults_to_gate(self):
        assert resolve([]) == gate_specs()
        (spec,) = resolve(["bench_fig7_marshalling"])
        assert spec.name == "fig7_marshalling"
        assert len(resolve([], all_benches=True)) == len(REGISTRY)

    def test_resolve_rejects_unknown_names(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            resolve(["no_such_bench"])
