"""Critical-path analysis: breakdowns, percentiles, attribution rules."""

from __future__ import annotations

from repro.analysis.critpath import (CLASSES, critical_path, critpath_class,
                                     interference_report, interference_text,
                                     latency_tables, percentile,
                                     request_breakdown, requests_report,
                                     slowest_requests)


def _request(seq=0, name="call", tenant="1", begin=0, end=1000, *,
             categories=None, steals=None, segments=None, error=False):
    return {"id": f"t/cpu0/{seq}", "seq": seq, "vcpu": 0, "name": name,
            "tenant": tenant, "begin": begin, "end": end, "error": error,
            "categories": categories or {}, "steals": steals or {},
            "segments": segments or []}


def _document(requests, tenants=None, label="t"):
    return {"version": 1, "kind": "hyperenclave-requests",
            "traces": [{"label": label, "tenants": tenants or {},
                        "requests": requests}]}


class TestClassMap:
    def test_known_categories_fold_into_the_five_classes(self):
        assert critpath_class("swap-in") == "swap-stall"
        assert critpath_class("eenter:gu") == "world-switch"
        assert critpath_class("sdk-ecall") == "marshalling"
        assert critpath_class("hypercall") == "kernel"
        assert critpath_class("enclave-memory") == "enclave-compute"

    def test_mapping_is_total(self):
        assert critpath_class("no-such-category") == "other"
        assert critpath_class("exception:gu") == "enclave-compute"
        for category in ("memcpy", "tlb-shootdown", "demand-paging"):
            assert critpath_class(category) in CLASSES

    def test_breakdown_preserves_the_total(self):
        request = _request(categories={"swap-in": 700, "memcpy": 200,
                                       "mystery": 100})
        breakdown = request_breakdown(request)
        assert sum(breakdown.values()) == 1000
        assert breakdown["swap-stall"] == 700
        assert breakdown["other"] == 100


class TestCriticalPath:
    def test_follows_the_heaviest_child(self):
        light = {"kind": "ocall", "begin": 10, "end": 20, "segments": []}
        deep = {"kind": "swap_in", "begin": 120, "end": 420, "segments": []}
        heavy = {"kind": "page_fault", "begin": 100, "end": 600,
                 "segments": [deep]}
        request = _request(end=1000, segments=[light, heavy])
        hops = critical_path(request)
        assert [h["kind"] for h in hops] == \
            ["request", "page_fault", "swap_in"]
        assert hops[0]["cycles"] == 1000
        assert hops[1]["self_cycles"] == 500 - 300

    def test_tie_breaks_on_the_earliest_child(self):
        first = {"kind": "eenter", "begin": 0, "end": 100, "segments": []}
        second = {"kind": "eexit", "begin": 200, "end": 300, "segments": []}
        request = _request(end=400, segments=[first, second])
        hops = critical_path(request)
        assert hops[1]["kind"] == "eenter"


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 0.50) == 50
        assert percentile(values, 0.95) == 95
        assert percentile(values, 0.99) == 99
        assert percentile([7], 0.99) == 7
        assert percentile([], 0.5) == 0


class TestLatencyTables:
    def test_tail_cause_names_the_dominant_class(self):
        fast = [_request(seq=i, end=100,
                         categories={"enclave-memory": 100})
                for i in range(9)]
        slow = _request(seq=9, end=10_000,
                        categories={"swap-in": 9_000, "memcpy": 1_000})
        rows = latency_tables(_document(fast + [slow]))
        (row,) = rows
        assert row["count"] == 10
        assert row["p50"] == 100
        assert row["p99"] == 10_000
        assert row["tail_class"] == "swap-stall"
        assert "swap-stall" in row["tail_cause"]

    def test_groups_by_tenant_and_name_with_display_names(self):
        requests = [_request(seq=0, tenant="1", name="get"),
                    _request(seq=1, tenant="2", name="get"),
                    _request(seq=2, tenant="1", name="put")]
        rows = latency_tables(_document(requests,
                                        tenants={"1": "tenant-a"}))
        assert [(r["tenant"], r["name"]) for r in rows] == \
            [("tenant-a", "get"), ("tenant-a", "put"), ("2", "get")]


class TestInterference:
    def test_cross_tenant_pairs_beat_self_steals(self):
        requests = [
            _request(seq=0, tenant="2",
                     steals={"1->1": 50, "1->2": 5}),
            _request(seq=1, tenant="1",
                     categories={"swap-in": 400, "memory": 600}),
        ]
        (entry,) = interference_report(
            _document(requests, tenants={"1": "a", "2": "b"}))
        assert entry["victim"] == "a"
        assert entry["aggressor"] == "b"
        (row,) = entry["rows"]
        assert row == {"victim": "a", "aggressor": "b",
                       "frames_stolen": 5,
                       "victim_requests_stalled": 1,
                       "victim_swap_stall_cycles": 400}

    def test_tie_breaks_match_the_timeline_episode_rules(self):
        # Equal counts: max(sorted(...)) keeps the first maximal entry,
        # i.e. the lexically smallest key — same rule as the timeline
        # episode detector, so the two reports agree on ties.
        requests = [_request(steals={"a->b": 3, "c->b": 3})]
        (entry,) = interference_report(_document(requests))
        assert entry["victim"] == "a"
        assert entry["aggressor"] == "b"

    def test_no_steals_reports_none(self):
        (entry,) = interference_report(_document([_request()]))
        assert entry["victim"] is None and entry["rows"] == []
        assert "no EPC steals" in interference_text(_document([_request()]))


class TestRenderers:
    def test_report_and_slowest_render(self):
        slow = _request(seq=1, name="sweep", end=5_000,
                        categories={"swap-out": 4_000},
                        segments=[{"kind": "page_fault", "begin": 100,
                                   "end": 4_100, "segments": []}])
        document = _document([_request(), slow])
        report = requests_report(document)
        assert "2 traced request(s)" in report
        text = slowest_requests(document, limit=1)
        assert "t/cpu0/1" in text and "page_fault" in text
        assert "t/cpu0/0" not in text
