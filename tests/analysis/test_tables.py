"""Tests for result formatting."""

import pytest

from repro.analysis.tables import TextTable, fmt_cycles, fmt_ratio, series


def test_fmt_cycles():
    assert fmt_cycles(1234567.8) == "1,234,568"
    assert fmt_cycles(0) == "0"


def test_fmt_ratio():
    assert fmt_ratio(0.8132) == "81%"
    assert fmt_ratio(1.0) == "100%"


def test_table_render_alignment():
    table = TextTable("T", ["a", "longheader"])
    table.add_row("x", 1)
    table.add_row("yyyy", 22)
    rendered = table.render()
    lines = rendered.splitlines()
    assert lines[0] == "== T =="
    assert all(len(line) == len(lines[1]) for line in lines[1:])
    assert "longheader" in lines[1]


def test_table_rejects_wrong_row_width():
    table = TextTable("T", ["a", "b"])
    with pytest.raises(ValueError):
        table.add_row("only one")


def test_series_builds_columns():
    table = series("S", [1, 2], {"x2": [2.0, 4.0], "x3": [3.0, 6.0]},
                   x_label="n")
    assert table.headers == ["n", "x2", "x3"]
    assert table.rows[0] == ["1", "2", "3"]
    assert table.data["x2"] == [2.0, 4.0]


def test_show_prints(capsys):
    table = TextTable("T", ["c"])
    table.add_row("v")
    table.show()
    out = capsys.readouterr().out
    assert "== T ==" in out
    assert "v" in out
