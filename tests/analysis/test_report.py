"""Tests for the markdown report generator."""

import json

import pytest

from repro.analysis.report import main, render


@pytest.fixture
def sample_results():
    return {
        "table1_edge_calls": {
            "HU-Enclave": {"ecall": 8440}, "GU-Enclave": {"ecall": 9480},
            "P-Enclave": {"ecall": 9700}, "Intel SGX": {"ecall": 14432},
        },
        "table2_exceptions": {
            "P-Enclave": {"ud": 258}, "GU-Enclave": {"ud": 17490},
            "Intel SGX": {"ud": 28561},
        },
        "fig8b_sqlite": {
            "records": [10, 20], "GU-Enclave": [0.99, 0.98],
            "HU-Enclave": [0.99, 0.98], "SGX": [0.8, 0.5],
        },
        "fig8d_redis": {"relative_max_throughput": {
            "HU-Enclave": 0.76, "GU-Enclave": 0.72, "SGX": 0.52,
            "baseline": 1.0}},
        "fig11_memenc": {"normalized": {"sgx/random": [1.0, 1000.0]}},
        "ablation_edmm": {},
    }


def test_render_marks_exact_matches(sample_results):
    text = render(sample_results)
    assert text.count("(exact)") == 7


def test_render_marks_mismatches(sample_results):
    sample_results["table1_edge_calls"]["HU-Enclave"]["ecall"] = 9999
    text = render(sample_results)
    assert "DIFFERS" in text


def test_render_handles_partial_results():
    text = render({"ablation_edmm": {}})
    assert "Ablations recorded" in text
    assert "Table 1" not in text


def test_render_lists_ablations(sample_results):
    assert "- ablation_edmm" in render(sample_results)


def test_main_with_file(tmp_path, capsys, sample_results):
    path = tmp_path / "results.json"
    path.write_text(json.dumps(sample_results))
    assert main([str(path)]) == 0
    assert "Benchmark run digest" in capsys.readouterr().out


def test_main_missing_file(tmp_path, capsys):
    assert main([str(tmp_path / "nope.json")]) == 1
    assert "no results" in capsys.readouterr().err


def test_main_against_recorded_run(capsys):
    """The repo's recorded results must render (regression guard)."""
    import pathlib
    recorded = pathlib.Path(__file__).parents[2] / "benchmarks" \
        / "results.json"
    if not recorded.exists():
        pytest.skip("no recorded run")
    assert main([str(recorded)]) == 0
