"""Tests for the LibOS layer (Occlum-like and native)."""

import pytest

from repro.errors import OsError, SdkError
from repro.libos.base import LIBOS_EDL_UNTRUSTED
from repro.libos.native import NativeLibos
from repro.libos.occlum import OcclumLibos, register_libos_ocalls
from repro.monitor.structs import EnclaveConfig, EnclaveMode
from repro.platform import TeePlatform
from repro.sdk.image import EnclaveImage

EDL = """
enclave {
    trusted {
        public uint64 fs_roundtrip([in, size=n] bytes data, uint64 n);
        public uint64 fs_stat_missing();
        public uint64 echo_server(uint64 port);
        public uint64 accept_conn(uint64 port);
        public uint64 serve_once(uint64 conn);
    };
    untrusted {
""" + LIBOS_EDL_UNTRUSTED + """
    };
};
"""


def t_fs_roundtrip(ctx, data, n):
    libos = OcclumLibos(ctx)
    libos.write_file("/f", data)
    assert libos.read_file("/f") == data
    assert libos.stat("/f") == n
    assert libos.exists("/f")
    assert not libos.exists("/nope")
    return 1


def t_fs_stat_missing(ctx):
    libos = OcclumLibos(ctx)
    try:
        libos.stat("/missing")
    except OsError:
        return 1
    return 0


def t_echo_server(ctx, port):
    libos = OcclumLibos(ctx)
    libos.listen(int(port))
    ctx.globals["libos"] = libos
    return 0


def t_accept_conn(ctx, port):
    return ctx.globals["libos"].accept(int(port))


def t_serve_once(ctx, conn):
    libos = ctx.globals["libos"]
    data = libos.recv(int(conn))
    if data is None:
        return 0
    libos.send(int(conn), data[::-1])
    return len(data)


@pytest.fixture
def loaded():
    platform = TeePlatform.hyperenclave()
    image = EnclaveImage.build(
        "libos-test", EDL,
        {"fs_roundtrip": t_fs_roundtrip,
         "fs_stat_missing": t_fs_stat_missing,
         "echo_server": t_echo_server, "accept_conn": t_accept_conn,
         "serve_once": t_serve_once},
        EnclaveConfig(mode=EnclaveMode.GU, heap_size=4 * 1024 * 1024,
                      # recv OCALLs ocalloc RECV_CAPACITY (64 KB) frames.
                      marshalling_buffer_size=512 * 1024))
    handle = platform.load_enclave(image)
    register_libos_ocalls(handle, platform.loopback)
    yield platform, handle
    handle.destroy()


class TestOcclumFs:
    def test_in_enclave_fs_roundtrip(self, loaded):
        _, handle = loaded
        assert handle.proxies.fs_roundtrip(data=b"occlum file", n=11) == 1

    def test_missing_file_raises(self, loaded):
        _, handle = loaded
        assert handle.proxies.fs_stat_missing() == 1

    def test_fs_charges_enclave_memory(self, loaded):
        platform, handle = loaded
        with platform.cycles.measure() as span:
            handle.proxies.fs_roundtrip(data=b"x" * 4096, n=4096)
        assert span.categories.get("enclave-memory", 0) > 0


class TestOcclumSockets:
    def test_echo_over_ocalls(self, loaded):
        platform, handle = loaded
        handle.proxies.echo_server(port=7777)
        client = platform.loopback.connect(7777)
        # The enclave accepts through its LibOS OCALL path.
        conn = handle.proxies.accept_conn(port=7777)
        platform.loopback.send(client, b"hello", from_client=True)

        # Run the serve step as a real ECALL.
        served = handle.proxies.serve_once(conn=conn)
        assert served == 5
        reply = platform.loopback.recv(client, from_client=False)
        assert reply == b"olleh"

    def test_recv_idle_returns_zero(self, loaded):
        platform, handle = loaded
        handle.proxies.echo_server(port=7778)
        platform.loopback.connect(7778)
        conn = handle.proxies.accept_conn(port=7778)
        assert handle.proxies.serve_once(conn=conn) == 0

    def test_send_on_unknown_connection(self, loaded):
        platform, handle = loaded

        def t_bad(ctx, port):
            libos = OcclumLibos(ctx)
            libos.send(9999, b"x")
            return 0

        handle.image.trusted_funcs["echo_server"] = t_bad
        with pytest.raises(SdkError):
            handle.proxies.echo_server(port=1)

    def test_socket_io_crosses_boundary(self, loaded):
        """LibOS network ops must cost OCALL round trips."""
        platform, handle = loaded
        handle.proxies.echo_server(port=7779)
        client = platform.loopback.connect(7779)
        conn = handle.proxies.accept_conn(port=7779)
        platform.loopback.send(client, b"ping", from_client=True)
        with platform.cycles.measure() as span:
            handle.proxies.serve_once(conn=conn)
        assert span.categories.get("sdk-ocall", 0) > 0


class TestNativeLibos:
    @pytest.fixture
    def native(self):
        platform = TeePlatform.native()
        return platform, NativeLibos(platform.kernel, platform.loopback,
                                     platform.os_vfs)

    def test_fs_roundtrip(self, native):
        _, libos = native
        libos.write_file("/doc", b"data")
        assert libos.read_file("/doc") == b"data"
        assert libos.stat("/doc") == 4
        assert libos.exists("/doc")

    def test_sockets(self, native):
        platform, libos = native
        libos.listen(80)
        client = platform.loopback.connect(80)
        conn = libos.accept(80)
        platform.loopback.send(client, b"req", from_client=True)
        assert libos.recv(conn) == b"req"
        libos.send(conn, b"resp")
        assert platform.loopback.recv(client, from_client=False) == b"resp"
        libos.close(conn)
        with pytest.raises(SdkError):
            libos.recv(conn)

    def test_every_op_is_a_syscall(self, native):
        platform, libos = native
        before = platform.kernel.syscalls
        libos.write_file("/f", b"1")
        libos.read_file("/f")
        libos.exists("/f")
        assert platform.kernel.syscalls == before + 3
