"""Repository-level consistency checks.

Documentation that references missing files, benchmarks absent from the
experiment index, or public modules without docstrings are the kind of
rot a released artifact cannot afford; these tests pin them down.
"""

import ast
import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parents[1]
SRC = ROOT / "src" / "repro"


def test_every_module_has_a_docstring():
    missing = []
    for path in SRC.rglob("*.py"):
        tree = ast.parse(path.read_text())
        if ast.get_docstring(tree) is None:
            missing.append(str(path.relative_to(ROOT)))
    assert not missing, missing


def test_every_public_class_and_function_documented():
    undocumented = []
    for path in SRC.rglob("*.py"):
        tree = ast.parse(path.read_text())
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                if node.name.startswith("_"):
                    continue
                if ast.get_docstring(node) is None:
                    undocumented.append(
                        f"{path.relative_to(ROOT)}:{node.name}")
    assert not undocumented, undocumented


def test_design_md_references_existing_modules():
    design = (ROOT / "DESIGN.md").read_text()
    for dotted in set(re.findall(r"`repro\.([a-z_.]+)`", design)):
        parts = dotted.split(".")
        candidates = [
            SRC.joinpath(*parts).with_suffix(".py"),
            SRC.joinpath(*parts) / "__init__.py",
            # Attribute references like repro.monitor.rustmonitor.foo
            SRC.joinpath(*parts[:-1]).with_suffix(".py"),
        ]
        assert any(c.exists() for c in candidates), dotted


def test_every_benchmark_is_documented():
    docs = (ROOT / "DESIGN.md").read_text() + (ROOT / "README.md").read_text()
    for bench in (ROOT / "benchmarks").glob("bench_*.py"):
        assert bench.name in docs, f"{bench.name} missing from docs"


def test_readme_examples_exist():
    readme = (ROOT / "README.md").read_text()
    for name in re.findall(r"`examples/([a-z_]+\.py)`", readme):
        assert (ROOT / "examples" / name).exists(), name


def test_experiments_covers_every_paper_artifact():
    experiments = (ROOT / "EXPERIMENTS.md").read_text()
    for artifact in ("Table 1", "Table 2", "Figure 7", "Figure 8a",
                     "Figure 8b", "Figure 8c", "Figure 8d", "Table 3",
                     "Figure 10", "Figure 11"):
        assert artifact in experiments, artifact


def test_costs_validate_importable():
    import repro.hw.costs as costs
    costs.validate()


def test_version_exported():
    import repro
    assert repro.__version__
