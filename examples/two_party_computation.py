#!/usr/bin/env python3
"""Two enclaves compute on joint data over an attested secure channel.

A small privacy-preserving pipeline, like the paper's production use:

* a *data* enclave holds customer records,
* an *analytics* enclave computes an aggregate,
* they mutually attest (local attestation binds ephemeral DH keys),
  derive a session key, and stream records as AEAD ciphertext through
  untrusted memory — the OS relays the bytes but learns nothing,
* the analytics enclave checkpoints its state with rollback-protected
  sealing (TPM monotonic counter), so the operator can't replay an old
  checkpoint to double-count.

Run:  python examples/two_party_computation.py
"""

from repro.errors import SealError, SecurityViolation
from repro.monitor.structs import EnclaveConfig, EnclaveMode
from repro.platform import TeePlatform
from repro.sdk.channel import SecureChannel, establish_pair
from repro.sdk.image import EnclaveImage

EDL = "enclave { trusted { public uint64 noop(); }; untrusted { }; };"

RECORDS = [b"alice,2100", b"bob,875", b"carol,13500", b"dave,40"]


def _image(name):
    return EnclaveImage.build(name, EDL, {"noop": lambda ctx: 0},
                              EnclaveConfig(mode=EnclaveMode.GU))


def main() -> None:
    platform = TeePlatform.hyperenclave()
    data = platform.load_enclave(_image("data-enclave"))
    analytics = platform.load_enclave(_image("analytics-enclave"))

    print("== mutual attestation + key exchange ==")
    chan_data, chan_analytics = establish_pair(data.ctx, analytics.ctx)
    print("   channel established (DH public values bound via EREPORT)")

    print("== streaming records through untrusted memory ==")
    total = 0
    for record in RECORDS:
        ciphertext = chan_data.send(record)       # what the OS sees
        assert record not in ciphertext
        plaintext = chan_analytics.recv(ciphertext)
        total += int(plaintext.split(b",")[1])
    print(f"   {len(RECORDS)} encrypted records relayed; "
          f"aggregate = {total}")

    print("== a MITM OS tampers with a record ==")
    evil = bytearray(chan_data.send(b"mallory,999999"))
    evil[-3] ^= 0xFF
    try:
        chan_analytics.recv(bytes(evil))
        print("   !!! tampering went unnoticed")
    except SealError:
        print("   tampered record rejected (AEAD)")

    print("== rollback-protected checkpointing ==")
    first = analytics.ctx.seal_versioned(b"aggregate=%d" % total)
    second = analytics.ctx.seal_versioned(b"aggregate=%d,final" % total)
    restored = analytics.ctx.unseal_versioned(second)
    print(f"   current checkpoint restores: {restored.decode()}")
    try:
        analytics.ctx.unseal_versioned(first)
        print("   !!! stale checkpoint accepted")
    except SealError as exc:
        print(f"   stale checkpoint rejected: {exc}")

    data.destroy()
    analytics.destroy()
    print("done.")


if __name__ == "__main__":
    main()
