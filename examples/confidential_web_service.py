#!/usr/bin/env python3
"""A confidential web service: the Lighttpd-in-Occlum setup of Sec 7.4.

Runs the HTTP server inside an enclave under the LibOS (documents live in
the in-enclave filesystem, sockets cross as OCALLs through the
marshalling buffer), serves real requests over the loopback, and compares
the three enclave operation modes plus the SGX baseline on the same
workload.

Run:  python examples/confidential_web_service.py
"""

from repro.apps.driver import aex_roundtrip_cycles
from repro.apps.webserver import (HTTP_PORT, http_request,
                                  make_http_enclave_image, parse_response)
from repro.libos.occlum import register_libos_ocalls
from repro.monitor.structs import EnclaveMode
from repro.platform import TeePlatform

DOCUMENT = b"<html><body><h1>Served from inside an enclave</h1></body></html>"
REQUESTS = 40


def serve_on(mode: EnclaveMode) -> float:
    platform = (TeePlatform.intel_sgx() if mode is EnclaveMode.SGX
                else TeePlatform.hyperenclave())
    handle = platform.load_enclave(make_http_enclave_image(
        mode, heap_size=16 * 1024 * 1024))
    register_libos_ocalls(handle, platform.loopback)
    handle.proxies.http_init(port=HTTP_PORT)
    handle.proxies.http_load(path=b"/index.html", plen=11,
                             doc=DOCUMENT, n=len(DOCUMENT))

    client = platform.loopback.connect(HTTP_PORT)
    conn = handle.proxies.http_accept(port=HTTP_PORT)

    # One verified end-to-end request first.
    platform.loopback.send(client, http_request("/index.html"),
                           from_client=True)
    handle.proxies.http_serve(conn=conn)
    status, body = parse_response(
        platform.loopback.recv(client, from_client=False))
    assert (status, body) == (200, DOCUMENT)

    with platform.cycles.measure() as span:
        for _ in range(REQUESTS):
            platform.loopback.send(client, http_request("/index.html"),
                                   from_client=True)
            handle.proxies.http_serve(conn=conn)
            platform.machine.cycles.charge(2 * aex_roundtrip_cycles(
                mode.value), "aex")
            platform.loopback.recv(client, from_client=False)
    handle.destroy()
    return span.elapsed / REQUESTS


def main() -> None:
    print("serving a real request from each mode, then timing "
          f"{REQUESTS} requests:\n")
    print(f"{'mode':<12} {'cycles/request':>16} {'vs HU':>8}")
    results = {mode: serve_on(mode) for mode in
               (EnclaveMode.HU, EnclaveMode.GU, EnclaveMode.P,
                EnclaveMode.SGX)}
    hu = results[EnclaveMode.HU]
    for mode, cycles in results.items():
        print(f"{mode.name + '-Enclave':<12} {cycles:>16,.0f} "
              f"{cycles / hu:>7.2f}x")
    print("\nHU-Enclave is the optimal mode for I/O-heavy servers "
          "(Sec 4.2 / Figure 8c).")
    assert results[EnclaveMode.HU] < results[EnclaveMode.GU] \
        < results[EnclaveMode.SGX]


if __name__ == "__main__":
    main()
