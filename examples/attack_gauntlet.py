#!/usr/bin/env python3
"""Run the full attack gauntlet against HyperEnclave and the SGX model.

Reproduces the paper's security analysis (Sec 6) as executable scenarios:
memory-mapping attacks (Figure 9), enclave malware (arbitrary app-memory
access and EEXIT hijack), DMA attacks (R-3), and trust-chain rollbacks.
The asymmetry on the enclave-malware rows — blocked on HyperEnclave,
successful on the SGX baseline — is the paper's point.

Run:  python examples/attack_gauntlet.py
"""

from repro.attacks import dma, malware, mapping, rollback, \
    sidechannel
from repro.monitor.attestation import QuoteVerifier
from repro.monitor.structs import EnclaveConfig, EnclaveMode
from repro.platform import TeePlatform
from repro.sdk.image import EnclaveImage

EDL = """
enclave {
    trusted {
        public uint64 add_numbers(uint64 a, uint64 b);
        public uint64 read_user([user_check] bytes ptr, uint64 n);
    };
    untrusted { };
};
"""


def _image(name):
    return EnclaveImage.build(
        name, EDL,
        {"add_numbers": lambda ctx, a, b: a + b,
         "read_user": lambda ctx, ptr, n: sum(ctx.copy_from_user(ptr, n))},
        EnclaveConfig())


def gauntlet(platform, label):
    handle = platform.load_enclave(_image(f"victim-{label}"))
    vma = platform.kernel.mmap(platform.process, 4096, populate=True)
    platform.kernel.user_write(platform.process, vma.start,
                               b"HOST-TLS-KEY-0001")

    attacks = [
        mapping.alias_enclave_pages(platform, handle),
        mapping.map_enclave_frame_into_process(platform, handle),
        mapping.os_remaps_marshalling_buffer(platform, handle),
        malware.scrape_app_memory(platform, handle, secret_va=vma.start,
                                  secret_len=17),
        malware.tamper_app_memory(platform, handle, target_va=vma.start),
        malware.eexit_hijack(platform, handle, rogue_target=0x41414141),
        dma.dma_read_enclave_memory(platform, handle),
        dma.dma_write_monitor_memory(platform),
        dma.dma_from_unregistered_device(platform),
        rollback.forge_pcr_state(platform),
        rollback.steal_sealed_root_key(platform),
        rollback.quote_replay(platform, handle,
                              QuoteVerifier(platform.boot.golden)),
    ]
    # The single-stepping row needs a P-Enclave victim with the monitor
    # armed (Sec 4.3); other modes cannot observe their own interrupts.
    if platform.kind == "hyperenclave":
        p_image = _image(f"victim-p-{label}")
        import dataclasses
        p_image = dataclasses.replace(
            p_image, config=dataclasses.replace(p_image.config,
                                                mode=EnclaveMode.P))
        p_handle = platform.load_enclave(p_image)
        attacks.append(sidechannel.single_stepping_attack(platform,
                                                          p_handle))
    else:
        attacks.append(sidechannel.single_stepping_attack(platform,
                                                          handle))
    return attacks


def main() -> None:
    he = TeePlatform.hyperenclave()
    sgx = TeePlatform.intel_sgx()

    he_results = gauntlet(he, "he")
    sgx_results = gauntlet(sgx, "sgx")

    width = max(len(r.name) for r in he_results) + 2
    print(f"{'attack':<{width}} {'HyperEnclave':<14} {'SGX model':<12}")
    print("-" * (width + 28))
    blocked_he = blocked_sgx = 0
    for he_r, sgx_r in zip(he_results, sgx_results):
        he_v = "BLOCKED" if he_r.blocked else "succeeded"
        sgx_v = "BLOCKED" if sgx_r.blocked else "succeeded"
        blocked_he += he_r.blocked
        blocked_sgx += sgx_r.blocked
        print(f"{he_r.name:<{width}} {he_v:<14} {sgx_v:<12}")
    print("-" * (width + 28))
    print(f"{'blocked':<{width}} {blocked_he}/{len(he_results):<13} "
          f"{blocked_sgx}/{len(sgx_results)}")
    assert blocked_he == len(he_results), \
        "HyperEnclave must block every attack"


if __name__ == "__main__":
    main()
