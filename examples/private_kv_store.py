#!/usr/bin/env python3
"""A privacy-preserving key-value store — the paper's deployment scenario.

A FinTech operator runs a database of customer records inside an enclave:

* the client *attests* the enclave before sending any data (the full
  HyperEnclave quote chain: TPM EK -> AIK -> PCRs -> hapk -> MRENCLAVE),
* records cross the boundary through the marshalling buffer,
* lookups run inside the enclave against an in-enclave B-tree (litedb),
* the database key is *sealed*, so only this exact enclave on this exact
  platform can recover it after a restart,
* the untrusted OS, a peer process, and a DMA-capable device all try to
  read the records — and bounce off.

Run:  python examples/private_kv_store.py
"""

from repro.apps.litedb import LiteDb
from repro.attacks import dma, malware
from repro.errors import SecurityViolation
from repro.monitor.attestation import QuoteVerifier
from repro.monitor.structs import EnclaveConfig, EnclaveMode
from repro.platform import TeePlatform
from repro.sdk.image import EnclaveImage

VALUE_SIZE = 64

EDL = """
enclave {
    trusted {
        public uint64 db_open();
        public uint64 db_put([in, size=klen] bytes key, uint64 klen,
                             [in, size=64] bytes value);
        public uint64 db_get([in, size=klen] bytes key, uint64 klen,
                             [out, size=64] bytes value);
        public uint64 db_export_master_key([out, size=cap] bytes blob,
                                           uint64 cap);
    };
    untrusted { };
};
"""


def db_open(ctx):
    ctx.globals["db"] = LiteDb(ctx, value_size=VALUE_SIZE)
    ctx.globals["master_key"] = ctx.random(32)
    return 0


def db_put(ctx, key, klen, value):
    ctx.globals["db"].put(bytes(key), bytes(value))
    return ctx.globals["db"].count


def db_get(ctx, key, klen, value):
    found = ctx.globals["db"].get(bytes(key))
    if found is None:
        return 0
    value[:] = found
    return 1


def db_export_master_key(ctx, blob, cap):
    sealed = ctx.seal_data(ctx.globals["master_key"], aad=b"kv-master-key")
    blob[:len(sealed)] = sealed
    return len(sealed)


RECORDS = {
    b"alice": b"balance=1042.17 risk=low".ljust(VALUE_SIZE, b" "),
    b"bob": b"balance=99.50   risk=medium".ljust(VALUE_SIZE, b" "),
    b"carol": b"balance=777777. risk=high".ljust(VALUE_SIZE, b" "),
}


def main() -> None:
    platform = TeePlatform.hyperenclave()
    image = EnclaveImage.build(
        "private-kv", EDL,
        {"db_open": db_open, "db_put": db_put, "db_get": db_get,
         "db_export_master_key": db_export_master_key},
        EnclaveConfig(mode=EnclaveMode.GU, heap_size=16 * 1024 * 1024))
    handle = platform.load_enclave(image)

    print("== client attests the enclave before sending data ==")
    quote = handle.ctx.get_quote(b"session-key-hash", b"client-nonce-7")
    report = QuoteVerifier(platform.boot.golden).verify(
        quote, expected_mrenclave=handle.enclave.secs.mrenclave,
        expected_nonce=b"client-nonce-7")
    print(f"   attested MRENCLAVE {report.mrenclave.hex()[:24]}...: OK")

    print("== loading customer records into the enclave ==")
    handle.proxies.db_open()
    for key, value in RECORDS.items():
        count = handle.proxies.db_put(key=key, klen=len(key), value=value)
    print(f"   {count} records stored in the in-enclave B-tree")

    print("== querying ==")
    ret, outs = handle.proxies.db_get(key=b"bob", klen=3)
    assert ret == 1
    print(f"   bob -> {outs['value'].strip().decode()}")
    ret = handle.proxies.db_get(key=b"mallory", klen=7)
    result = ret[0] if isinstance(ret, tuple) else ret
    print(f"   mallory -> {'found' if result else 'no such record'}")

    print("== sealing the master key for restarts ==")
    _, outs = handle.proxies.db_export_master_key(cap=256)
    sealed = outs["blob"].rstrip(b"\x00")
    print(f"   sealed master key: {len(sealed)} bytes on untrusted disk")

    print("== attacks ==")
    # 1. The OS maps an app page onto an enclave frame and reads it.
    try:
        victim_pa = handle.enclave.pages[0].pa
        platform.monitor.check_normal_access(victim_pa)
        print("   !!! OS read enclave memory")
    except SecurityViolation as exc:
        print(f"   OS direct read: BLOCKED ({type(exc).__name__})")
    # 2. A DMA device goes for the enclave frames.
    result = dma.dma_read_enclave_memory(platform, handle)
    print(f"   rogue NIC DMA:  "
          f"{'BLOCKED' if result.blocked else '!!! LEAKED'}")
    # 3. A malicious enclave tries to scrape the host app.
    evil_image = EnclaveImage.build(
        "evil", "enclave { trusted { public uint64 add_numbers(uint64 a, "
        "uint64 b); }; untrusted { }; };",
        {"add_numbers": lambda ctx, a, b: a + b})
    evil = platform.load_enclave(evil_image)
    vma = platform.kernel.mmap(platform.process, 4096, populate=True)
    platform.kernel.user_write(platform.process, vma.start, b"APP-SECRET")
    result = malware.scrape_app_memory(platform, evil, secret_va=vma.start,
                                       secret_len=10)
    print(f"   enclave malware scraping the app: "
          f"{'BLOCKED' if result.blocked else '!!! LEAKED'}")

    handle.destroy()
    print("done.")


if __name__ == "__main__":
    main()
