#!/usr/bin/env python3
"""P-Enclaves: in-enclave exception handling and page-table management.

The paper's motivating example (Sec 4.3): a garbage collector tracks
mutations with page-permission traps.  A user-mode enclave (GU) must trap
to RustMonitor for every permission change and page fault; a privileged
enclave (P) installs its own IDT handler and edits its own level-1 page
table, so a write-barrier round trip costs ~1,132 cycles instead of
~2,660 (Table 2) — and an in-enclave #UD costs 258 cycles instead of a
17,490-cycle two-phase AEX.

Run:  python examples/gc_penclave.py
"""

from repro.monitor.structs import EnclaveConfig, EnclaveMode, PagePerm
from repro.platform import TeePlatform
from repro.sdk.image import EnclaveImage

PAGE = 4096
HEAP_PAGES = 24

EDL = """
enclave {
    trusted {
        public uint64 gc_epoch(uint64 npages);
        public uint64 take_ud(uint64 times);
    };
    untrusted { };
};
"""


def gc_epoch(ctx, npages):
    """One write-barrier epoch over an ``npages`` heap.

    Revoke write access, let the mutator fault on every page it touches,
    record the dirty set in the handler, restore permissions.
    """
    n = int(npages)
    heap = ctx.globals.get("gc_heap")
    if heap is None:
        heap = ctx.malloc(n * PAGE)
        ctx.write(heap, b"\x00" * (n * PAGE))
        ctx.globals["gc_heap"] = heap
    dirty = set()

    def write_barrier(c, fault_va):
        page = fault_va & ~(PAGE - 1)
        dirty.add(page)
        c.mprotect(page, 1, PagePerm.RW)

    ctx.register_pf_handler(write_barrier)
    ctx.mprotect(heap, n, PagePerm.R)          # arm the barrier
    for i in range(n):                          # the mutator writes
        ctx.write(heap + i * PAGE, b"mutated!")
    return len(dirty)


def take_ud(ctx, times):
    hits = [0]
    ctx.register_exception_handler(lambda c, v: hits.__setitem__(0,
                                                                 hits[0] + 1))
    for _ in range(int(times)):
        ctx.trigger_ud()
    return hits[0]


def build(mode):
    return EnclaveImage.build(
        "gc-demo", EDL, {"gc_epoch": gc_epoch, "take_ud": take_ud},
        EnclaveConfig(mode=mode, heap_size=(HEAP_PAGES + 8) * PAGE))


def main() -> None:
    platform = TeePlatform.hyperenclave()
    print(f"{'mode':<12} {'GC epoch (cycles/page)':>24} "
          f"{'#UD (cycles each)':>20}")
    results = {}
    for mode in (EnclaveMode.GU, EnclaveMode.P):
        handle = platform.load_enclave(build(mode))
        handle.proxies.gc_epoch(npages=HEAP_PAGES)   # warm: commit heap
        with platform.cycles.measure() as span:
            dirty = handle.proxies.gc_epoch(npages=HEAP_PAGES)
        assert dirty == HEAP_PAGES
        gc_cycles = span.elapsed / HEAP_PAGES
        with platform.cycles.measure() as span:
            handle.proxies.take_ud(times=50)
        ud_cycles = (span.elapsed - 9_700) / 50   # subtract the ECALL
        results[mode] = (gc_cycles, ud_cycles)
        print(f"{mode.name + '-Enclave':<12} {gc_cycles:>24,.0f} "
              f"{ud_cycles:>20,.0f}")
        handle.destroy()

    gu, p = results[EnclaveMode.GU], results[EnclaveMode.P]
    print(f"\nP-Enclave speedup: GC {gu[0] / p[0]:.1f}x, "
          f"#UD {gu[1] / p[1]:.0f}x")
    print("(paper: GC ~2.3x, #UD ~68x — Table 2)")


if __name__ == "__main__":
    main()
