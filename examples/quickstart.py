#!/usr/bin/env python3
"""Quickstart: boot a HyperEnclave platform and run your first enclave.

Walks the whole paper flow end to end:

1. measured late launch (boot chain -> TPM PCRs -> RustMonitor),
2. define an enclave interface in EDL and implement the trusted functions,
3. load the enclave (ECREATE/EADD/EINIT through /dev/hyper_enclave,
   marshalling buffer pinned and registered),
4. ECALLs and OCALLs through the generated proxies,
5. sealing and remote attestation.

Run:  python examples/quickstart.py
"""

from repro.monitor.attestation import QuoteVerifier
from repro.monitor.structs import EnclaveConfig, EnclaveMode
from repro.platform import TeePlatform
from repro.sdk.image import EnclaveImage

EDL = """
enclave {
    trusted {
        public uint64 count_words([in, size=n] bytes text, uint64 n);
        public uint64 store_secret([in, size=n] bytes secret, uint64 n);
        public uint64 reveal_sealed([out, size=cap] bytes blob, uint64 cap);
    };
    untrusted {
        uint64 ocall_progress(uint64 percent);
    };
};
"""


def count_words(ctx, text, n):
    """A trusted function: counts words, reporting progress via OCALL."""
    ctx.ocall("ocall_progress", percent=50)
    words = len(text.split())
    ctx.compute(n)                      # charge the scan cost
    ctx.ocall("ocall_progress", percent=100)
    return words


def store_secret(ctx, secret, n):
    """Keep a secret in enclave memory — the OS can never read it."""
    va = ctx.malloc(n)
    ctx.write(va, secret)
    ctx.globals["secret"] = (va, n)
    return 0


def reveal_sealed(ctx, blob, cap):
    """Export the secret sealed to this enclave's identity."""
    va, n = ctx.globals["secret"]
    sealed = ctx.seal_data(ctx.read(va, n), aad=b"quickstart-v1")
    blob[:len(sealed)] = sealed
    return len(sealed)


def main() -> None:
    print("== booting the platform (measured late launch) ==")
    platform = TeePlatform.hyperenclave()
    monitor = platform.monitor
    print(f"   RustMonitor up; EPC pool: "
          f"{monitor.epc_pool.free_pages * 4096 // (1 << 20)} MB free")

    print("== building and loading the enclave ==")
    image = EnclaveImage.build(
        "quickstart", EDL,
        {"count_words": count_words, "store_secret": store_secret,
         "reveal_sealed": reveal_sealed},
        EnclaveConfig(mode=EnclaveMode.GU))
    handle = platform.load_enclave(image)
    handle.register_ocall(
        "ocall_progress", lambda percent: print(f"   ... {percent}%") or 0)
    print(f"   MRENCLAVE = {handle.enclave.secs.mrenclave.hex()[:32]}...")

    print("== ECALL with an OCALL inside ==")
    text = b"an open and cross platform trusted execution environment"
    words = handle.proxies.count_words(text=text, n=len(text))
    print(f"   word count = {words}")

    print("== sealing a secret ==")
    handle.proxies.store_secret(secret=b"k3y-m4terial", n=12)
    _, outs = handle.proxies.reveal_sealed(cap=256)
    sealed = outs["blob"].rstrip(b"\x00")
    print(f"   sealed blob ({len(sealed)} bytes): {sealed[:24].hex()}...")
    recovered = handle.ctx.unseal_data(sealed, aad=b"quickstart-v1")
    assert recovered == b"k3y-m4terial"
    print(f"   unsealed inside the enclave: {recovered.decode()}")

    print("== remote attestation ==")
    quote = handle.ctx.get_quote(b"channel-binding", b"verifier-nonce")
    verifier = QuoteVerifier(platform.boot.golden)
    report = verifier.verify(quote,
                             expected_mrenclave=handle.enclave.secs.mrenclave,
                             expected_nonce=b"verifier-nonce")
    print(f"   quote verified; report data = {report.report_data!r}")

    print("== cycle accounting ==")
    top = sorted(platform.cycles.breakdown().items(),
                 key=lambda kv: -kv[1])[:5]
    for category, cycles in top:
        print(f"   {category:<16} {cycles:>12,.0f} cycles")
    handle.destroy()
    print("done.")


if __name__ == "__main__":
    main()
