"""Plain-text tables and series, printed in the paper's shape.

The benchmark harness regenerates each paper table/figure as text; these
helpers keep the formatting consistent and the rows machine-readable
(each table also exposes ``.data`` for EXPERIMENTS.md extraction).
"""

from __future__ import annotations

from dataclasses import dataclass, field


def fmt_cycles(value: float) -> str:
    """1234567.8 -> '1,234,568'."""
    return f"{value:,.0f}"


def fmt_ratio(value: float) -> str:
    """0.8132 -> '81%'."""
    return f"{value * 100:.0f}%"


@dataclass
class TextTable:
    """An aligned text table."""

    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    data: dict = field(default_factory=dict)

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has "
                f"{len(self.headers)} columns")
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells):
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

        out = [f"== {self.title} ==",
               line(self.headers),
               "-+-".join("-" * w for w in widths)]
        out.extend(line(row) for row in self.rows)
        return "\n".join(out)

    def show(self) -> None:
        print()
        print(self.render())


def series(title: str, xs: list, ys_by_label: dict[str, list],
           x_label: str = "x") -> TextTable:
    """A figure rendered as one x-column plus one column per series."""
    table = TextTable(title=title, headers=[x_label, *ys_by_label])
    for i, x in enumerate(xs):
        table.add_row(x, *(f"{ys[i]:.3g}" for ys in ys_by_label.values()))
    table.data = {"x": list(xs),
                  **{label: list(ys) for label, ys in ys_by_label.items()}}
    return table
