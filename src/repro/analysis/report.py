"""Render ``benchmarks/results.json`` into a markdown summary.

Usage::

    python -m repro.analysis.report [path/to/results.json]

Prints a compact paper-vs-measured digest of the recorded benchmark run —
the data EXPERIMENTS.md is written from.  When a telemetry snapshot is
given (or ``telemetry.json`` sits next to the results file), the digest
ends with the top-N "where did the cycles go" section; when committed
``BENCH_*.json`` baselines sit in ``benchmarks/baselines/``, their
perf-trajectory digest (cycle totals + hottest profile frames) is
appended too.
"""

from __future__ import annotations

import json
import pathlib
import sys

# The paper's headline numbers, for side-by-side rendering.
PAPER = {
    "table1_ecall": {"HU-Enclave": 8440, "GU-Enclave": 9480,
                     "P-Enclave": 9700, "Intel SGX": 14432},
    "table2_ud": {"P-Enclave": 258, "GU-Enclave": 17490,
                  "Intel SGX": 28561},
    "fig8d_relmax": {"HU-Enclave": 0.89, "GU-Enclave": 0.72, "SGX": 0.48},
}


def _line(out: list[str], text: str = "") -> None:
    out.append(text)


def render_baselines(baseline_dir: pathlib.Path) -> str:
    """Markdown digest of the committed ``BENCH_*.json`` baselines."""
    from repro.bench.artifact import load_artifact
    out: list[str] = ["## Committed bench baselines "
                      "(`python -m repro.bench check` gates these)"]
    for path in sorted(baseline_dir.glob("BENCH_*.json")):
        try:
            artifact = load_artifact(path)
        except (ValueError, json.JSONDecodeError) as exc:
            out.append(f"- {path.name}: INVALID ({exc})")
            continue
        line = (f"- **{artifact['name']}** ({artifact['bench_kind']}, "
                f"±{100 * artifact.get('tolerance', 0):g}%): "
                f"{len(artifact['metrics'])} gated metrics")
        telemetry = artifact.get("telemetry")
        if telemetry:
            line += (f", {telemetry['total_cycles']:,.0f} simulated "
                     f"cycles over {telemetry['machines']} machine(s)")
        out.append(line)
        profile = artifact.get("profile")
        if profile and profile.get("top_self"):
            top = profile["top_self"][0]
            out.append(f"  - hottest frame: `{top['stack']}` "
                       f"({top['self_cycles']:,} self cycles, "
                       f"{top['calls']} calls)")
    out.append("")
    return "\n".join(out)


def render(results: dict, telemetry: dict | None = None) -> str:
    """Markdown digest of a recorded run (plus optional telemetry)."""
    out: list[str] = ["# Benchmark run digest", ""]

    if "table1_edge_calls" in results:
        _line(out, "## Table 1 — ECALL cycles (paper / measured)")
        for platform, paper in PAPER["table1_ecall"].items():
            measured = results["table1_edge_calls"][platform]["ecall"]
            mark = "exact" if measured == paper else "DIFFERS"
            _line(out, f"- {platform}: {paper:,} / {measured:,.0f} ({mark})")
        _line(out)

    if "table2_exceptions" in results:
        _line(out, "## Table 2 — #UD cycles (paper / measured)")
        for platform, paper in PAPER["table2_ud"].items():
            measured = results["table2_exceptions"][platform]["ud"]
            mark = "exact" if measured == paper else "DIFFERS"
            _line(out, f"- {platform}: {paper:,} / {measured:,.0f} ({mark})")
        _line(out)

    if "fig8b_sqlite" in results:
        r = results["fig8b_sqlite"]
        _line(out, "## Figure 8b — SQLite relative throughput")
        for mode in ("GU-Enclave", "HU-Enclave", "SGX"):
            values = ", ".join(f"{v:.2f}" for v in r[mode])
            _line(out, f"- {mode}: [{values}] over records {r['records']}")
        _line(out)

    if "fig8d_redis" in results:
        _line(out, "## Figure 8d — Redis relative max throughput "
                   "(paper / measured)")
        rel = results["fig8d_redis"]["relative_max_throughput"]
        for mode, paper in PAPER["fig8d_relmax"].items():
            _line(out, f"- {mode}: {paper:.2f} / {rel[mode]:.2f}")
        _line(out)

    if "fig11_memenc" in results:
        norm = results["fig11_memenc"]["normalized"]
        _line(out, "## Figure 11 — normalized latency at 256 MB")
        for name, values in sorted(norm.items()):
            _line(out, f"- {name}: {values[-1]:.3g}x")
        _line(out)

    ablations = [k for k in results if k.startswith("ablation_")]
    if ablations:
        _line(out, "## Ablations recorded")
        for name in sorted(ablations):
            _line(out, f"- {name}")
        _line(out)

    if telemetry is not None:
        from repro.telemetry.export import top_report
        _line(out, "## Telemetry")
        _line(out, "```")
        _line(out, top_report(telemetry))
        _line(out, "```")
        _line(out)

    return "\n".join(out)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: print the digest for a results file.

    Usage: ``report.py [results.json [telemetry.json]]``.  The telemetry
    snapshot defaults to ``telemetry.json`` next to the results file.
    """
    args = argv if argv is not None else sys.argv[1:]
    path = pathlib.Path(args[0]) if args else \
        pathlib.Path(__file__).resolve().parents[3] / "benchmarks" \
        / "results.json"
    if not path.exists():
        print(f"no results at {path}; run pytest benchmarks/ first",
              file=sys.stderr)
        return 1
    telemetry_path = pathlib.Path(args[1]) if len(args) > 1 else \
        path.with_name("telemetry.json")
    telemetry = json.loads(telemetry_path.read_text()) \
        if telemetry_path.exists() else None
    print(render(json.loads(path.read_text()), telemetry))
    baseline_dir = path.with_name("baselines")
    if baseline_dir.is_dir() and any(baseline_dir.glob("BENCH_*.json")):
        print(render_baselines(baseline_dir))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
