"""Result formatting for the benchmark harness."""

from repro.analysis.tables import TextTable, fmt_cycles, fmt_ratio, series

__all__ = ["TextTable", "fmt_cycles", "fmt_ratio", "series"]
