"""Critical-path analysis over request traces.

Consumes the requests JSON documents produced by
:mod:`repro.telemetry.requests` and derives the *why was this slow*
answers: per-request critical paths through the causal segment tree,
per-request cycle breakdowns into five coarse classes
(``enclave-compute`` / ``world-switch`` / ``marshalling`` /
``swap-stall`` / ``kernel``), per-tenant and per-call-name p50/p95/p99
latency tables with an attributed tail cause, and the cross-tenant
interference report (which tenant's EPC steals stalled whose requests).

Everything here is a pure function of the input document — no host
time, no randomness, no I/O — so reports are bit-reproducible across
runs, ``REPRO_FASTPATH`` modes and flight-recorder replay, and the
module holds the staticcheck SC001 determinism bar alongside the
tracer that feeds it.

The victim/aggressor attribution rules intentionally mirror the
timeline pressure-episode detector (`repro.telemetry.timeline._episode`):
cross-tenant steal pairs are preferred over self-steals, and ties break
deterministically via ``max(sorted(...))``.
"""

from __future__ import annotations

import math

#: The five breakdown classes (plus the total-preserving catch-all).
CLASSES = ("enclave-compute", "world-switch", "marshalling",
           "swap-stall", "kernel", "other")

_EXACT_CLASS = {
    # world switch
    "tlb-warmup": "world-switch",
    # edge-call marshalling
    "memcpy": "marshalling", "sdk-ecall": "marshalling",
    "sdk-ocall": "marshalling", "switchless": "marshalling",
    # EPC pressure stalls
    "swap-in": "swap-stall", "swap-out": "swap-stall",
    "demand-paging": "swap-stall", "edmm-sgx2": "swap-stall",
    # monitor / OS kernel work
    "hypercall": "kernel", "tlb-shootdown": "kernel",
    "pte-update": "kernel", "interrupt": "kernel",
    "measure": "kernel", "seal": "kernel", "seal-key": "kernel",
    "syscall": "kernel", "kernel-work": "kernel", "ctxsw": "kernel",
    "pte-fill": "kernel", "os-fault": "kernel", "signal": "kernel",
    "npt-fill": "kernel", "vfs": "kernel", "link": "kernel",
    # in-enclave (and native) execution
    "enclave-memory": "enclave-compute", "native-memory": "enclave-compute",
    "memory": "enclave-compute", "compute": "enclave-compute",
    "own-pt-update": "enclave-compute", "invlpg": "enclave-compute",
    "resident-touch": "enclave-compute",
}
_PREFIX_CLASS = {
    "eenter": "world-switch", "eexit": "world-switch",
    "aex": "world-switch", "eresume": "world-switch",
    # Exception-handler and page-fault trampoline work executes inside
    # the enclave on the request's behalf.
    "exception": "enclave-compute", "pf": "enclave-compute",
}


def critpath_class(category: str) -> str:
    """Fold a cycle-charge category into a critical-path class.

    Total like :func:`repro.telemetry.core.subsystem_for_category`:
    unknown categories land in ``other``, so class totals always sum
    exactly to the request total.
    """
    cls = _EXACT_CLASS.get(category)
    if cls is not None:
        return cls
    head = category.split(":", 1)[0]
    return _PREFIX_CLASS.get(head, _EXACT_CLASS.get(head, "other"))


# -- per-request analysis ----------------------------------------------------


def request_duration(request: dict) -> int:
    """Cycle-domain wall duration of one request."""
    return request["end"] - request["begin"]


def request_breakdown(request: dict) -> dict[str, float]:
    """The request's charged cycles folded into critical-path classes."""
    out: dict[str, float] = {}
    for category, cycles in request["categories"].items():
        cls = critpath_class(category)
        out[cls] = out.get(cls, 0) + cycles
    return out


def _segment_cycles(segment: dict) -> int:
    return segment["end"] - segment["begin"]


def critical_path(request: dict) -> list[dict]:
    """The heaviest root-to-leaf chain through the segment tree.

    Returns one hop per level, root (the request itself) first; each
    hop carries its span and self cycles (duration minus children).
    """
    hops: list[dict] = []
    node = {"kind": "request", "name": request["name"],
            "begin": request["begin"], "end": request["end"],
            "segments": request["segments"]}
    while True:
        children = node["segments"]
        cycles = node["end"] - node["begin"]
        hop = {"kind": node["kind"], "begin": node["begin"],
               "end": node["end"], "cycles": cycles,
               "self_cycles": cycles - sum(_segment_cycles(c)
                                           for c in children)}
        if "name" in node:
            hop["name"] = node["name"]
        hops.append(hop)
        if not children:
            return hops
        # Deterministic tie-break: the *earliest* of the heaviest.
        node = max(children,
                   key=lambda c: (_segment_cycles(c), -c["begin"]))


# -- latency tables ----------------------------------------------------------


def percentile(sorted_values: list, q: float):
    """Exact nearest-rank percentile over an ascending-sorted list."""
    if not sorted_values:
        return 0
    rank = math.ceil(q * len(sorted_values))
    return sorted_values[max(0, min(rank, len(sorted_values)) - 1)]


def _display(trace: dict, tenant: str) -> str:
    return str(trace.get("tenants", {}).get(tenant, tenant))


def latency_tables(document: dict) -> list[dict]:
    """Per-(tenant, call-name) latency rows with attributed tail cause.

    Each row reports count, p50/p95/p99/max cycle latency, and the
    breakdown class that dominates the tail (requests at or above the
    p99 latency) — e.g. ``tail_cause = "p99 dominated by swap-stall"``.
    """
    rows: list[dict] = []
    for trace in document["traces"]:
        groups: dict[tuple[str, str], list[dict]] = {}
        for request in trace["requests"]:
            groups.setdefault((request["tenant"], request["name"]),
                              []).append(request)
        for (tenant, name) in sorted(groups):
            requests = groups[(tenant, name)]
            durations = sorted(request_duration(r) for r in requests)
            p99 = percentile(durations, 0.99)
            tail = [r for r in requests if request_duration(r) >= p99]
            cause: dict[str, float] = {}
            for request in tail:
                for cls, cycles in request_breakdown(request).items():
                    cause[cls] = cause.get(cls, 0) + cycles
            tail_class = (max(sorted(cause), key=lambda k: cause[k])
                          if cause else None)
            tail_total = sum(cause.values())
            tail_share = (cause[tail_class] / tail_total
                          if tail_class and tail_total else 0.0)
            rows.append({
                "trace": trace["label"],
                "enclave": tenant,
                "tenant": _display(trace, tenant),
                "name": name,
                "count": len(requests),
                "errors": sum(1 for r in requests if r["error"]),
                "p50": percentile(durations, 0.50),
                "p95": percentile(durations, 0.95),
                "p99": p99,
                "max": durations[-1],
                "tail_class": tail_class,
                "tail_share": round(tail_share, 4),
                "tail_cause": (f"p99 dominated by {tail_class} "
                               f"({tail_share:.0%})"
                               if tail_class else "n/a"),
            })
    return rows


# -- cross-tenant interference -----------------------------------------------


def _pair(key: str) -> tuple[str, str]:
    victim, sep, aggressor = key.partition("->")
    return (victim, aggressor if sep else victim)


def interference_report(document: dict) -> list[dict]:
    """Which tenant's EPC steals stalled whose requests.

    One entry per trace: the folded steal pairs, the overall
    victim/aggressor (same preference and tie-break rules as the
    timeline episode detector, so the two reports always agree), and
    per-pair rows counting the victim's stalled requests and swap-stall
    cycles.
    """
    out: list[dict] = []
    for trace in document["traces"]:
        pairs: dict[str, float] = {}
        for request in trace["requests"]:
            for key, count in request["steals"].items():
                pairs[key] = pairs.get(key, 0) + count
        cross = {k: v for k, v in pairs.items() if _pair(k)[0] != _pair(k)[1]}
        chosen = cross or pairs
        victim = aggressor = None
        if chosen:
            stolen_from: dict[str, float] = {}
            stolen_by: dict[str, float] = {}
            for key, count in chosen.items():
                v, a = _pair(key)
                stolen_from[v] = stolen_from.get(v, 0) + count
                stolen_by[a] = stolen_by.get(a, 0) + count
            victim = max(sorted(stolen_from), key=lambda k: stolen_from[k])
            aggressor = max(sorted(stolen_by), key=lambda k: stolen_by[k])

        # Swap-stall exposure per tenant: how many of its requests
        # actually stalled, and for how many cycles.
        stalled: dict[str, int] = {}
        stall_cycles: dict[str, float] = {}
        for request in trace["requests"]:
            cycles = request_breakdown(request).get("swap-stall", 0)
            if cycles > 0:
                tenant = request["tenant"]
                stalled[tenant] = stalled.get(tenant, 0) + 1
                stall_cycles[tenant] = stall_cycles.get(tenant, 0) + cycles

        rows = []
        for key in sorted(chosen):
            v, a = _pair(key)
            rows.append({
                "victim": _display(trace, v),
                "aggressor": _display(trace, a),
                "frames_stolen": chosen[key],
                "victim_requests_stalled": stalled.get(v, 0),
                "victim_swap_stall_cycles": stall_cycles.get(v, 0),
            })
        out.append({
            "trace": trace["label"],
            "pairs": dict(sorted(pairs.items())),
            "victim": None if victim is None else _display(trace, victim),
            "aggressor": (None if aggressor is None
                          else _display(trace, aggressor)),
            "rows": rows,
        })
    return out


# -- text renderers (the ``requests`` CLI and bench digests) -----------------


def requests_report(document: dict) -> str:
    """Plain-text latency digest of a requests document."""
    lines: list[str] = []
    for trace in document["traces"]:
        requests = trace["requests"]
        lines.append(f"requests [{trace['label']}]: "
                     f"{len(requests)} traced request(s)")
    rows = latency_tables(document)
    if rows:
        lines.append(f"  {'tenant':<12} {'call':<16} {'n':>4} "
                     f"{'p50':>12} {'p95':>12} {'p99':>12} {'max':>12}  "
                     f"tail cause")
        for row in rows:
            lines.append(
                f"  {row['tenant']:<12} {row['name']:<16} "
                f"{row['count']:>4} {row['p50']:>12,} {row['p95']:>12,} "
                f"{row['p99']:>12,} {row['max']:>12,}  "
                f"{row['tail_cause']}")
    return "\n".join(lines)


def slowest_requests(document: dict, *, limit: int = 10) -> str:
    """The slowest requests with their critical paths, one block each."""
    flat: list[tuple[dict, dict]] = []
    for trace in document["traces"]:
        for request in trace["requests"]:
            flat.append((trace, request))
    flat.sort(key=lambda item: (-request_duration(item[1]),
                                item[1]["id"]))
    lines: list[str] = []
    for trace, request in flat[:limit]:
        duration = request_duration(request)
        lines.append(f"{request['id']}  {request['name']} "
                     f"[{_display(trace, request['tenant'])}]  "
                     f"{duration:,} cycles"
                     + ("  ERROR" if request["error"] else ""))
        breakdown = request_breakdown(request)
        parts = [f"{cls}={breakdown[cls]:,.0f}"
                 for cls in CLASSES if breakdown.get(cls)]
        lines.append(f"  breakdown: {', '.join(parts) or 'none'}")
        hops = critical_path(request)
        chain = " > ".join(
            f"{hop['kind']}" + (f":{hop['name']}" if "name" in hop else "")
            + f" ({hop['cycles']:,})" for hop in hops)
        lines.append(f"  critical path: {chain}")
    if not lines:
        lines.append("no requests traced")
    return "\n".join(lines)


def interference_text(document: dict) -> str:
    """Plain-text cross-tenant interference digest."""
    lines: list[str] = []
    for entry in interference_report(document):
        lines.append(f"interference [{entry['trace']}]: "
                     f"victim={entry['victim']} "
                     f"aggressor={entry['aggressor']}")
        if not entry["rows"]:
            lines.append("  no EPC steals recorded")
            continue
        for row in entry["rows"]:
            lines.append(
                f"  {row['victim']} <- {row['aggressor']}: "
                f"{row['frames_stolen']:g} frames stolen, "
                f"{row['victim_requests_stalled']} victim request(s) "
                f"stalled for {row['victim_swap_stall_cycles']:,.0f} "
                f"swap-stall cycles")
    return "\n".join(lines)
