"""Memory-encryption engine models (Sec 3.2 "Memory encryption", Fig 11).

HyperEnclave uses AMD SME (AES-XTS, no integrity metadata); SGX1 uses the
Memory Encryption Engine (AES-CTR plus a Merkle/counter tree for integrity
and freshness).  Both act at cache-line granularity on LLC misses:

* :class:`AmdSme` charges a flat pipelined-XTS latency per missed line.
* :class:`IntelMee` additionally walks a counter tree; counter-tree lines
  have their own small metadata cache, so sequential traffic amortizes the
  tree while random traffic over a large footprint pays metadata misses.
  This locality difference is what separates the SGX and HyperEnclave
  curves in Figure 11 and the memory-intensive workloads in Figure 8.

All constants live in :mod:`repro.hw.costs`.

:meth:`IntelMee.miss_cycles_run` is the fast-path bulk kernel: within a
run of consecutive missed lines only the *first* line of each level-1
counter-tree group walks the tree; the rest probe the just-refreshed node
and hit, so their cost and counter effects are closed-form.  Charges and
metadata-cache state match per-line :meth:`IntelMee.miss_cycles` calls
bit for bit.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.hw import costs


class EncryptionEngine:
    """Base engine: no encryption, no extra cost."""

    name = "none"

    def miss_cycles(self, line_id: int, *, write: bool = False,
                    streaming: bool = False) -> float:
        """Extra cycles charged for one missed cache line.

        ``streaming`` marks prefetcher-friendly sequential misses, whose
        decrypt latency the pipeline hides almost completely.
        """
        return 0.0

    def writeback_cycles(self) -> float:
        """Extra cycles charged when a dirty line is evicted to DRAM."""
        return 0.0

    def reset(self) -> None:
        """Drop any internal metadata state (e.g. on reboot)."""

    def stats(self) -> dict[str, int]:
        """Engine-internal counters for the telemetry collectors."""
        return {}


class NoEncryption(EncryptionEngine):
    """Plaintext DRAM (the no-protection baselines)."""


class AmdSme(EncryptionEngine):
    """AMD Secure Memory Encryption: AES-XTS, no integrity metadata."""

    name = "amd-sme"

    def __init__(self, per_miss: float = costs.SME_MISS_EXTRA_CYCLES,
                 per_writeback: float = costs.SME_WRITEBACK_EXTRA_CYCLES,
                 per_stream_miss: float = costs.SME_STREAM_MISS_EXTRA_CYCLES
                 ) -> None:
        self.per_miss = per_miss
        self.per_writeback = per_writeback
        self.per_stream_miss = per_stream_miss

    def miss_cycles(self, line_id: int, *, write: bool = False,
                    streaming: bool = False) -> float:
        return self.per_stream_miss if streaming else self.per_miss

    def writeback_cycles(self) -> float:
        return self.per_writeback


class IntelMee(EncryptionEngine):
    """Intel SGX Memory Encryption Engine: AES-CTR + counter tree.

    Each missed data line requires the counter-tree nodes covering it.  A
    level-``l`` metadata line covers ``64**l`` data lines; metadata lines
    live in a small cache, so workloads with locality (or sequential
    sweeps) rarely miss them while uniform-random traffic over a large
    footprint misses a node or two per access.
    """

    name = "intel-mee"

    def __init__(self,
                 per_miss: float = costs.MEE_MISS_EXTRA_CYCLES,
                 levels: int = costs.MEE_TREE_LEVELS,
                 arity_shift: int = costs.MEE_TREE_ARITY_SHIFT,
                 cache_lines: int = costs.MEE_METADATA_CACHE_LINES,
                 per_writeback: float = costs.MEE_WRITEBACK_EXTRA_CYCLES
                 ) -> None:
        self.per_miss = per_miss
        self.per_writeback = per_writeback
        self.per_stream_miss = costs.MEE_STREAM_MISS_EXTRA_CYCLES
        self.levels = levels
        self.arity_shift = arity_shift
        self.cache_lines = cache_lines
        self._metadata: OrderedDict[tuple[int, int], None] = OrderedDict()
        self.metadata_hits = 0
        self.metadata_misses = 0

    def miss_cycles(self, line_id: int, *, write: bool = False,
                    streaming: bool = False) -> float:
        extra = self.per_stream_miss if streaming else self.per_miss
        metadata = self._metadata
        node = line_id
        for level in range(1, self.levels + 1):
            node >>= self.arity_shift
            key = (level, node)
            extra += costs.MEE_METADATA_PROBE_CYCLES
            if key in metadata:
                metadata.move_to_end(key)
                self.metadata_hits += 1
                # Upper levels are covered once a lower node hits.
                break
            self.metadata_misses += 1
            extra += costs.MEE_METADATA_MISS_CYCLES
            metadata[key] = None
            if len(metadata) > self.cache_lines:
                metadata.popitem(last=False)
        return extra

    def miss_cycles_run(self, start: int, stop: int, *,
                        write: bool = False, streaming: bool = False
                        ) -> float:
        """Total miss cycles for consecutive missed lines ``[start, stop)``.

        The first line of each level-1 counter-tree group does the full
        tree walk (inserting/refreshing the level-1 node); the *second*
        line probes that node, hits, and moves it to MRU (replayed here
        as one ``move_to_end``, since the first walk may have left an
        upper-level node above it); every later line's probe hits the
        already-MRU node with no cache mutation.  The group remainder is
        therefore a single multiplication.  Bit-identical to per-line
        calls.
        """
        if self.levels < 1:
            base = self.per_stream_miss if streaming else self.per_miss
            return (stop - start) * base
        if self.cache_lines < self.levels:
            # A metadata cache smaller than one walk can evict the
            # level-1 node during its own walk; no shortcut is exact.
            return sum(self.miss_cycles(line, write=write,
                                        streaming=streaming)
                       for line in range(start, stop))
        shift = self.arity_shift
        per_line = (self.per_stream_miss if streaming else self.per_miss) \
            + costs.MEE_METADATA_PROBE_CYCLES
        metadata = self._metadata
        extra = 0.0
        line = start
        group_hits = 0
        while line < stop:
            extra += self.miss_cycles(line, write=write, streaming=streaming)
            group_end = ((line >> shift) + 1) << shift
            if group_end > stop:
                group_end = stop
            rest = group_end - line - 1
            if rest > 0:
                metadata.move_to_end((1, line >> shift))
                extra += rest * per_line
                group_hits += rest
            line = group_end
        self.metadata_hits += group_hits
        return extra

    def writeback_cycles(self) -> float:
        return self.per_writeback

    def reset(self) -> None:
        """Drop the metadata cache *and* its hit/miss counters.

        ``MemorySubsystem.reset_state()`` means "cold machine between
        benchmark configurations"; counters carrying across
        configurations would skew any stats-derived figure and make
        per-configuration telemetry non-reproducible.
        """
        self._metadata.clear()
        self.metadata_hits = 0
        self.metadata_misses = 0

    def stats(self) -> dict[str, int]:
        return {"metadata_hits": self.metadata_hits,
                "metadata_misses": self.metadata_misses,
                "metadata_cached": len(self._metadata)}
