"""Calibrated cycle-cost constants — the single calibration point.

Every constant here is either taken directly from the HyperEnclave paper
(Sec. 4.2: hypercall ~880 cycles, syscall ~120 cycles; Table 1/2 targets)
or itemized so the mechanism steps sum to the paper's published numbers.
The world-switch engine, the SDK and the exception paths charge these
step-by-step, so the micro-benchmarks *recompute* the paper's tables from
the itemization rather than printing constants.

Layout
------
* trap-mechanism primitives (VM exit/entry, syscall/sysret),
* per-enclave-mode world-switch step lists (EENTER / EEXIT),
* SDK software-path step lists (ECALL / OCALL),
* exception-handling step lists (#UD AEX two-phase, #PF),
* memory-system parameters (LLC, DRAM, walks, memcpy),
* memory-encryption and EPC-paging parameters.

``validate()`` asserts that every itemization sums to the paper target;
the test-suite calls it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# ---------------------------------------------------------------------------
# Trap mechanism primitives (paper Sec 4.2: hypercall ~880, syscall ~120).
# ---------------------------------------------------------------------------
VMEXIT_CYCLES = 500
VMENTRY_CYCLES = 380
HYPERCALL_ROUNDTRIP = VMEXIT_CYCLES + VMENTRY_CYCLES           # 880
SYSCALL_CYCLES = 60
SYSRET_CYCLES = 60
SYSCALL_ROUNDTRIP = SYSCALL_CYCLES + SYSRET_CYCLES             # 120

# ---------------------------------------------------------------------------
# World switches: per-mode EENTER / EEXIT step itemization.
# Sums must equal Table 1: HU 1163/1144, GU 1704/1319, P 1649/1401.
# ---------------------------------------------------------------------------
Steps = list[tuple[str, int]]


@dataclass(frozen=True)
class WorldSwitchCosts:
    """Itemized entry/exit steps for one enclave operation mode."""

    eenter: Steps
    eexit: Steps

    @property
    def eenter_total(self) -> int:
        return sum(c for _, c in self.eenter)

    @property
    def eexit_total(self) -> int:
        return sum(c for _, c in self.eexit)


GU_SWITCH = WorldSwitchCosts(
    eenter=[
        ("vmexit", VMEXIT_CYCLES),              # app hypercall traps in
        ("validate_tcs", 120),
        ("save_app_vcpu", 180),
        ("load_enclave_vcpu", 180),
        ("switch_gpt_npt", 160),
        ("tlb_flush", 184),
        ("vmentry", VMENTRY_CYCLES),            # into the enclave VM
    ],
    eexit=[
        ("vmexit", VMEXIT_CYCLES),              # enclave hypercall traps in
        ("save_enclave_vcpu", 150),
        ("restore_app_vcpu", 145),
        ("tlb_flush", 144),
        ("vmentry", VMENTRY_CYCLES),            # back to the app
    ],
)
assert GU_SWITCH.eenter_total == 1704
assert GU_SWITCH.eexit_total == 1319

HU_SWITCH = WorldSwitchCosts(
    eenter=[
        ("vmexit", VMEXIT_CYCLES),              # app hypercall traps in
        ("validate_tcs", 120),
        ("save_app_vcpu", 180),
        ("load_host_context", 160),             # CR3 switch to enclave PT
        ("tlb_flush_asid", 143),
        ("sysret", SYSRET_CYCLES),              # drop to host ring-3
    ],
    eexit=[
        ("syscall", SYSCALL_CYCLES),            # enclave SYSCALLs to monitor
        ("save_enclave_context", 150),
        ("restore_app_vcpu", 160),
        ("tlb_flush_asid", 130),
        ("exit_checks", 264),
        ("vmentry", VMENTRY_CYCLES),            # back into the normal VM
    ],
)
assert HU_SWITCH.eenter_total == 1163
assert HU_SWITCH.eexit_total == 1144

P_SWITCH = WorldSwitchCosts(
    eenter=[
        ("vmexit", VMEXIT_CYCLES),
        ("validate_tcs", 120),
        ("save_app_vcpu", 180),
        ("load_enclave_privileged_state", 285),  # + GDT/IDT/CR3
        ("tlb_flush", 184),
        ("vmentry", VMENTRY_CYCLES),
    ],
    eexit=[
        ("vmexit", VMEXIT_CYCLES),
        ("save_enclave_privileged_state", 232),
        ("restore_app_vcpu", 145),
        ("tlb_flush", 144),
        ("vmentry", VMENTRY_CYCLES),
    ],
)
assert P_SWITCH.eenter_total == 1649
assert P_SWITCH.eexit_total == 1401

# Intel SGX hardware EENTER/EEXIT (baseline cost model; chosen so the SGX
# ECALL total lands on the paper's 14,432 once the SDK path is added).
SGX_SWITCH = WorldSwitchCosts(
    eenter=[
        ("eenter_ucode", 2900),                 # microcoded checks + TLB
        ("epcm_checks", 620),
        ("ssa_frame_setup", 482),
    ],
    eexit=[
        ("eexit_ucode", 2800),
        ("tlb_scrub", 660),
        ("register_scrub", 437),
    ],
)
assert SGX_SWITCH.eenter_total == 4002
assert SGX_SWITCH.eexit_total == 3897

# ---------------------------------------------------------------------------
# SDK software path (shared across modes; the paper uses the same SGX SDK
# v2.13 on all platforms).  ECALL = eenter + eexit + ECALL_SDK + mode extra.
# ---------------------------------------------------------------------------
ECALL_SDK_STEPS: Steps = [
    ("urts_lock_tcs", 820),
    ("urts_ocall_frame", 830),
    ("trts_entry_checks", 900),
    ("trts_stack_setup", 550),
    ("trts_dispatch", 380),
    ("trts_return", 1403),
    ("urts_epilogue", 1250),
]
ECALL_SDK_BASE = sum(c for _, c in ECALL_SDK_STEPS)
assert ECALL_SDK_BASE == 6133

OCALL_SDK_STEPS: Steps = [
    ("trts_ocalloc_frame", 520),
    ("trts_save_context", 380),
    ("urts_ocall_dispatch", 413),
    ("trts_resume_context", 500),
]
OCALL_SDK_BASE = sum(c for _, c in OCALL_SDK_STEPS)
assert OCALL_SDK_BASE == 1813

# Post-world-switch TLB/cache warm-up penalty per mode.  GU and P flush the
# whole TLB on a switch (the enclave runs under its own GPT/NPT) so the SDK
# path immediately after entry takes extra misses; HU only switches ASIDs.
# OCALLs run a much shorter SDK path after re-entry, so their warm-up share
# is smaller; the SGX OCALL extra also covers the AEP/ERESUME bookkeeping
# in the uRTS.
TLB_WARMUP_EXTRA = {
    "hu": 0,
    "gu": 324,
    "p": 517,
    "sgx": 400,
}
OCALL_WARMUP_EXTRA = {
    "hu": 0,
    "gu": 84,
    "p": 397,
    "sgx": 2720,
}

# Expected edge-call totals (Table 1) — derived, then asserted.
_EXPECTED_ECALL = {
    "hu": HU_SWITCH.eenter_total + HU_SWITCH.eexit_total + ECALL_SDK_BASE + TLB_WARMUP_EXTRA["hu"],
    "gu": GU_SWITCH.eenter_total + GU_SWITCH.eexit_total + ECALL_SDK_BASE + TLB_WARMUP_EXTRA["gu"],
    "p": P_SWITCH.eenter_total + P_SWITCH.eexit_total + ECALL_SDK_BASE + TLB_WARMUP_EXTRA["p"],
    "sgx": SGX_SWITCH.eenter_total + SGX_SWITCH.eexit_total + ECALL_SDK_BASE + TLB_WARMUP_EXTRA["sgx"],
}
assert _EXPECTED_ECALL == {"hu": 8440, "gu": 9480, "p": 9700, "sgx": 14432}

_EXPECTED_OCALL = {
    mode: (SWITCH.eexit_total + SWITCH.eenter_total + OCALL_SDK_BASE
           + OCALL_WARMUP_EXTRA[mode])
    for mode, SWITCH in (("hu", HU_SWITCH), ("gu", GU_SWITCH),
                         ("p", P_SWITCH), ("sgx", SGX_SWITCH))
}
assert _EXPECTED_OCALL == {"hu": 4120, "gu": 4920, "p": 5260, "sgx": 12432}

# ---------------------------------------------------------------------------
# Exceptions (Table 2).  #UD inside a user-mode enclave triggers an AEX and
# two-phase handling: AEX -> OS signal -> internal ECALL to the in-enclave
# handler -> ERESUME.  P-Enclaves deliver through their own IDT.
# ---------------------------------------------------------------------------
AEX_STEPS = {
    "gu": [
        ("vmexit", VMEXIT_CYCLES),
        ("save_and_scrub_enclave_state", 600),
        ("inject_to_primary_os", VMENTRY_CYCLES),
    ],
    "hu": [
        ("trap_to_monitor", 300),
        ("save_and_scrub_enclave_state", 600),
        ("inject_to_primary_os", VMENTRY_CYCLES),
    ],
    "p": [
        ("vmexit", VMEXIT_CYCLES),
        ("save_and_scrub_enclave_state", 700),
        ("inject_to_primary_os", VMENTRY_CYCLES),
    ],
    "sgx": [
        ("aex_ucode", 2600),
        ("ssa_save", 900),
    ],
}
OS_SIGNAL_DISPATCH = 3200        # kernel signal delivery to the uRTS handler
EXCEPTION_HANDLER_WORK = 1000    # in-enclave SSA fix-up (both platforms)
ERESUME_STEPS = {
    "gu": [
        ("vmexit", VMEXIT_CYCLES),
        ("restore_enclave_vcpu", 1266),
        ("tlb_flush", 184),
        ("vmentry", VMENTRY_CYCLES),
    ],
    "hu": [
        ("vmexit", VMEXIT_CYCLES),
        ("restore_enclave_context", 1100),
        ("tlb_flush_asid", 143),
        ("sysret", SYSRET_CYCLES),
    ],
    "p": [
        ("vmexit", VMEXIT_CYCLES),
        ("restore_enclave_privileged_state", 1500),
        ("tlb_flush", 184),
        ("vmentry", VMENTRY_CYCLES),
    ],
    "sgx": [
        ("eresume_ucode", 5400),
        ("ssa_restore", 1029),
    ],
}

# In-enclave delivery through the P-Enclave's own IDT (no world switch).
P_ENCLAVE_EXCEPTION_STEPS: Steps = [
    ("idt_delivery", 130),
    ("handler_dispatch", 68),
    ("iret", 60),
]
assert sum(c for _, c in P_ENCLAVE_EXCEPTION_STEPS) == 258

# Two-phase #UD totals (Table 2: GU 17,490; SGX 28,561; P 258).
_aex = lambda m: sum(c for _, c in AEX_STEPS[m])
_eres = lambda m: sum(c for _, c in ERESUME_STEPS[m])
assert (_aex("gu") + OS_SIGNAL_DISPATCH + _EXPECTED_ECALL["gu"]
        + EXCEPTION_HANDLER_WORK + _eres("gu")) == 17490
assert (_aex("sgx") + OS_SIGNAL_DISPATCH + _EXPECTED_ECALL["sgx"]
        + EXCEPTION_HANDLER_WORK + _eres("sgx")) == 28561

# #PF handling for the GC scenario (Table 2: GU 2,660; P 1,132).
# GU: fault traps to RustMonitor, which resumes the in-enclave handler; the
# handler must hypercall back to change the page permission.
GU_PF_STEPS: Steps = [
    ("vmexit", VMEXIT_CYCLES),
    ("monitor_pf_decode", 300),
    ("vmentry_resume_handler", VMENTRY_CYCLES),
    ("enclave_handler_work", 100),
    ("mprotect_hypercall", HYPERCALL_ROUNDTRIP),
    ("monitor_pte_update_invlpg", 300),
    ("resume", 200),
]
assert sum(c for _, c in GU_PF_STEPS) == 2660

# P: the fault is delivered through the enclave's own IDT and the handler
# edits its own level-1 page table.
P_PF_STEPS: Steps = [
    ("idt_delivery", 258),
    ("own_pt_walk_update", 474),
    ("invlpg", 200),
    ("iret_resume", 200),
]
assert sum(c for _, c in P_PF_STEPS) == 1132

# Demand-paging #PF (EDMM / swap-in): RustMonitor picks a free page from the
# pool and inserts a mapping (Sec 3.2).  Not a paper table; itemized.
DEMAND_PAGING_PF_STEPS: Steps = [
    ("vmexit", VMEXIT_CYCLES),
    ("pool_alloc", 150),
    ("pte_insert", 300),
    ("vmentry", VMENTRY_CYCLES),
]

# SGX2 EDMM baseline: "the enclaves need to send the EDMM request to the
# SGX driver through OCALLs ... the changes need to be explicitly checked
# and accepted by the enclaves to take effect, which involves heavy
# enclave mode switches" (Sec 3.2).  A dynamically added page costs an
# AEX + driver EAUG + ERESUME + in-enclave EACCEPT.
SGX2_EDMM_DRIVER_CYCLES = 3_000      # driver ioctl + EAUG/EMODPR ucode
SGX2_EACCEPT_CYCLES = 1_500          # EACCEPT/EACCEPTCOPY in the enclave

# ---------------------------------------------------------------------------
# Memory system.
# ---------------------------------------------------------------------------
CACHE_LINE = 64
LLC_SIZE = 8 * 1024 * 1024           # paper: LLC is 8 MB
LLC_HIT_CYCLES = 15                  # random hit in L2/LLC
DRAM_CYCLES = 365                    # random DRAM access (incl. row activate)
SEQ_STREAM_CYCLES = 6                # prefetched sequential per-8B access
PAGE_WALK_GUEST_CYCLES = 120         # 1-level (4-step) walk, cached PTEs
PAGE_WALK_NESTED_CYCLES = 180        # 2-D (up to 24-step) walk, cached PTEs

# memcpy: streaming copies move ~20 B/cycle; a call costs a fixed overhead.
MEMCPY_FIXED_CYCLES = 60
MEMCPY_CYCLES_PER_LINE = 3.2

# Compute model: one "abstract op" (compare, add, hash step...) in workload
# kernels charges this many cycles.
OP_CYCLES = 1.0

# ---------------------------------------------------------------------------
# Memory encryption engines (see repro.hw.memenc) and SGX EPC paging.
# Calibrated so the Figure 11 ratio bands reproduce: beyond the LLC the
# normalized latency reaches ~2.4x/25x (HyperEnclave seq/random) and
# ~3x/30x (SGX), and beyond the EPC ~45x/1000x on SGX.
# ---------------------------------------------------------------------------
SME_MISS_EXTRA_CYCLES = 22           # pipelined AES-XTS per missed line
SME_STREAM_MISS_EXTRA_CYCLES = 12    # XTS on a prefetched stream (hidden)
SME_WRITEBACK_EXTRA_CYCLES = 12      # XTS re-encrypt on dirty eviction
MEE_MISS_EXTRA_CYCLES = 200          # AES-CTR decrypt + MAC check per miss
MEE_STREAM_MISS_EXTRA_CYCLES = 40    # pipelined decrypt on a stream
MEE_WRITEBACK_EXTRA_CYCLES = 320     # re-MAC + counter bump + tree update
MEE_METADATA_PROBE_CYCLES = 30       # counter-tree cache probe
MEE_METADATA_MISS_CYCLES = 220       # counter-tree line fetch + verify
MEE_TREE_ARITY_SHIFT = 6             # one counter line covers 64 data lines
MEE_TREE_LEVELS = 2                  # levels that can realistically miss
MEE_METADATA_CACHE_LINES = 4096

SGX_EPC_SIZE = 93 * 1024 * 1024      # paper: ~93 MB usable EPC
SGX_EPC_FAULT_CYCLES = 40_000       # EWB + ELDU + driver, cold fault
# Under sustained thrashing the SGX driver batches evictions (EWB of many
# pages per ioctl), so the marginal per-fault cost drops.
SGX_EPC_FAULT_BATCHED_CYCLES = 26_000
# First touch of a page while the EPC still has room: just an EAUG +
# zeroing, no eviction traffic.
SGX_EPC_POPULATE_CYCLES = 2_400
HYPERENCLAVE_EPC_SIZE = 24 * 1024 * 1024 * 1024  # 24 GB reserved (paper)

# TLB geometry.
TLB_ENTRIES = 1536

# TLB shootdown: changing a mapping that other CPUs may have cached
# requires an IPI to each of them plus a wait for acknowledgements.
IPI_BASE_CYCLES = 1_200            # send + local wait setup
IPI_PER_CPU_CYCLES = 450           # per remote CPU ack latency (pipelined)

# ---------------------------------------------------------------------------
# Switchless calls (Tian et al. [66], "Switchless Calls Made Practical in
# Intel SGX" — cited by the paper as a context-switch optimization): a
# busy-polling untrusted worker serves OCALL requests from a shared ring
# in the marshalling buffer, trading a burned core for the world switch.
# Costs: enqueue + worker pickup (half the poll interval on average) +
# completion spin.
# ---------------------------------------------------------------------------
SWITCHLESS_ENQUEUE_CYCLES = 180        # request descriptor + fence
SWITCHLESS_POLL_INTERVAL_CYCLES = 400  # worker poll-loop period
SWITCHLESS_COMPLETE_CYCLES = 240       # result pickup + spin exit

# ---------------------------------------------------------------------------
# Validation — the test-suite calls this.
# ---------------------------------------------------------------------------
EXPECTED_TABLE1 = {
    # mode: (EENTER, EEXIT, ECALL, OCALL)
    "hu": (1163, 1144, 8440, 4120),
    "gu": (1704, 1319, 9480, 4920),
    "p": (1649, 1401, 9700, 5260),
    "sgx": (None, None, 14432, 12432),
}
EXPECTED_TABLE2 = {
    # mode: (#UD, #PF)
    "sgx": (28561, None),
    "gu": (17490, 2660),
    "p": (258, 1132),
}

SWITCH_COSTS = {"gu": GU_SWITCH, "hu": HU_SWITCH, "p": P_SWITCH,
                "sgx": SGX_SWITCH}


def ecall_expected(mode: str) -> int:
    """Table-1 ECALL total implied by the itemization for ``mode``."""
    return _EXPECTED_ECALL[mode]


def ocall_expected(mode: str) -> int:
    """Table-1 OCALL total implied by the itemization for ``mode``."""
    return _EXPECTED_OCALL[mode]


def ud_exception_expected(mode: str) -> int:
    """Table-2 #UD total implied by the itemization for ``mode``."""
    if mode == "p":
        return sum(c for _, c in P_ENCLAVE_EXCEPTION_STEPS)
    return (_aex(mode) + OS_SIGNAL_DISPATCH + _EXPECTED_ECALL[mode]
            + EXCEPTION_HANDLER_WORK + _eres(mode))


def pf_gc_expected(mode: str) -> int:
    """Table-2 GC #PF total implied by the itemization for ``mode``."""
    steps = {"gu": GU_PF_STEPS, "p": P_PF_STEPS}[mode]
    return sum(c for _, c in steps)


def validate() -> None:
    """Assert every itemization sums to its paper target."""
    for mode, (eenter, eexit, ecall, ocall) in EXPECTED_TABLE1.items():
        if eenter is not None:
            assert SWITCH_COSTS[mode].eenter_total == eenter, mode
            assert SWITCH_COSTS[mode].eexit_total == eexit, mode
        assert ecall_expected(mode) == ecall, mode
        assert ocall_expected(mode) == ocall, mode
    assert ud_exception_expected("gu") == 17490
    assert ud_exception_expected("sgx") == 28561
    assert ud_exception_expected("p") == 258
    assert pf_gc_expected("gu") == 2660
    assert pf_gc_expected("p") == 1132
