"""Last-level-cache model.

A set of resident 64-byte lines with LRU eviction.  The workload memory
model (``repro.hw.memmodel``) and the memory-encryption engines consult it:
hits cost :data:`~repro.hw.costs.LLC_HIT_CYCLES`, misses cost a DRAM access
plus whatever the active encryption engine charges per missed line.

:meth:`Llc.access_range` is the fast-path bulk kernel: it processes an
ascending line range in one call, taking provably exact shortcuts for the
all-hit and all-miss cases (including the cyclic-sweep all-miss case where
residual entries are always evicted before being reached) and falling back
to an inlined per-line loop otherwise.  Counters, dirty bits, and the LRU
order come out bit-identical to per-line :meth:`Llc.access_ex` calls.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.hw import costs, fastpath


class Llc:
    """LRU cache of line ids (line id = physical/abstract address // 64)."""

    __slots__ = ("line_size", "capacity_lines", "_lines", "hits", "misses")

    def __init__(self, size_bytes: int = costs.LLC_SIZE,
                 line_size: int = costs.CACHE_LINE) -> None:
        if size_bytes < line_size:
            raise ValueError("cache smaller than one line")
        self.line_size = line_size
        self.capacity_lines = size_bytes // line_size
        self._lines: OrderedDict[int, bool] = OrderedDict()  # line -> dirty
        self.hits = 0
        self.misses = 0

    def access(self, line_id: int, *, write: bool = False) -> bool:
        """Touch one line; returns True on hit.  Evicts LRU on fill."""
        return self.access_ex(line_id, write=write)[0]

    def access_ex(self, line_id: int, *,
                  write: bool = False) -> tuple[bool, bool]:
        """Touch one line; returns (hit, evicted_dirty_line).

        The second flag drives the encryption engines' write-back costs:
        a dirty line leaving the LLC must be re-encrypted (and, for MEE,
        re-MACed with a counter-tree update).
        """
        dirty = self._lines.get(line_id)
        if dirty is not None:
            self._lines.move_to_end(line_id)
            if write and not dirty:
                self._lines[line_id] = True
            self.hits += 1
            return True, False
        self.misses += 1
        self._lines[line_id] = write
        evicted_dirty = False
        if len(self._lines) > self.capacity_lines:
            _, evicted_dirty = self._lines.popitem(last=False)
        return False, evicted_dirty

    # -- bulk range kernel (fast path) ---------------------------------------

    def _sweep_evicts_all(self, first: int, last: int) -> bool:
        """True when an all-miss sweep of ``[first, last]`` is exact.

        Hypothesis: every access misses.  Then after the accesses before
        line ``l`` there have been ``max(0, S + (l - first) - C)``
        evictions (S = current size, C = capacity), removing the oldest
        entries in LRU order.  A cached key ``k`` at 1-based LRU position
        ``i`` is therefore gone before the sweep reaches it iff
        ``k - i >= first + C - S``.  When that holds for every cached key
        inside the range the hypothesis is self-consistent — the sweep
        really does miss on every line.  When it fails we simply fall
        back to the per-line loop, so the check is sound either way.
        """
        lines = self._lines
        bound = first + self.capacity_lines - len(lines)
        np = fastpath.np
        if np is not None and len(lines) > 2048:
            keys = np.fromiter(lines.keys(), dtype=np.int64,
                               count=len(lines))
            pos = np.arange(1, len(lines) + 1, dtype=np.int64)
            in_range = (keys >= first) & (keys <= last)
            return bool(np.all(~in_range | (keys - pos >= bound)))
        for i, k in enumerate(lines, 1):
            if first <= k <= last and k - i < bound:
                return False
        return True

    def access_range(self, first: int, last: int, *, write: bool = False
                     ) -> tuple[int, int, int, list[tuple[int, int]]]:
        """Touch every line in ``[first, last]`` ascending, once each.

        Returns ``(hits, misses, dirty_evictions, missed_runs)`` where
        ``missed_runs`` is the ascending list of half-open ``(start,
        stop)`` runs of missed lines — what a metadata-walking encryption
        engine needs to charge exactly.  State and counters match a
        per-line :meth:`access_ex` loop bit for bit.
        """
        lines = self._lines
        n = last - first + 1
        if n == 1:
            hit, evicted_dirty = self.access_ex(first, write=write)
            if hit:
                return 1, 0, 0, []
            return 0, 1, 1 if evicted_dirty else 0, [(first, first + 1)]

        rng = range(first, last + 1)
        contains = lines.__contains__

        # All-hit: no inserts, hence no evictions — initial membership is
        # final membership, so the pre-scan is exact.
        if all(map(contains, rng)):
            self.hits += n
            if len(lines) == n:
                # The range covers every cached line: the final LRU order
                # is simply ascending — rebuild at C speed.
                if write:
                    self._lines = OrderedDict.fromkeys(rng, True)
                elif not any(lines.values()):
                    self._lines = OrderedDict.fromkeys(rng, False)
                else:
                    self._lines = OrderedDict((l, lines[l]) for l in rng)
            else:
                mte = lines.move_to_end
                if write:
                    for l in rng:
                        mte(l)
                        lines[l] = True
                else:
                    for l in rng:
                        mte(l)
            return n, 0, 0, []

        # All-miss: exact when nothing in the range is cached (a line this
        # sweep inserts is never revisited), or when every cached in-range
        # line is provably evicted before being reached (cyclic sweep).
        if not any(map(contains, rng)) or self._sweep_evicts_all(first, last):
            self.misses += n
            size0 = len(lines)
            cap = self.capacity_lines
            evictions = size0 + n - cap
            dirty_evictions = 0
            if evictions <= 0:
                lines.update(dict.fromkeys(rng, write))
            elif evictions >= size0:
                # Every old entry is evicted, plus the first
                # ``evictions - size0`` lines of the sweep itself.
                dirty_evictions = sum(lines.values())
                if write:
                    dirty_evictions += evictions - size0
                self._lines = OrderedDict.fromkeys(
                    range(last - cap + 1, last + 1), write)
            else:
                popitem = lines.popitem
                for _ in range(evictions):
                    if popitem(last=False)[1]:
                        dirty_evictions += 1
                lines.update(dict.fromkeys(rng, write))
            return 0, n, dirty_evictions, [(first, last + 1)]

        # Mixed: the per-line reference loop, inlined with bound locals.
        hits = misses = dirty_evictions = 0
        runs: list[tuple[int, int]] = []
        run_start = -1
        get = lines.get
        mte = lines.move_to_end
        popitem = lines.popitem
        cap = self.capacity_lines
        for l in rng:
            d = get(l)
            if d is not None:
                if run_start >= 0:
                    runs.append((run_start, l))
                    run_start = -1
                mte(l)
                if write and not d:
                    lines[l] = True
                hits += 1
            else:
                if run_start < 0:
                    run_start = l
                misses += 1
                lines[l] = write
                if len(lines) > cap:
                    if popitem(last=False)[1]:
                        dirty_evictions += 1
        if run_start >= 0:
            runs.append((run_start, last + 1))
        self.hits += hits
        self.misses += misses
        return hits, misses, dirty_evictions, runs

    # -- maintenance ---------------------------------------------------------

    def contains(self, line_id: int) -> bool:
        return line_id in self._lines

    def flush_line(self, line_id: int) -> None:
        """CLFLUSH: drop one line (the Figure-7 benchmark uses this)."""
        self._lines.pop(line_id, None)

    def flush_range(self, start: int, length: int) -> None:
        """CLFLUSH over a byte range of line-addressable memory."""
        first = start // self.line_size
        last = (start + max(length - 1, 0)) // self.line_size
        if last - first + 1 > 4 * len(self._lines):
            # Sparse cache, huge range: walk the resident lines instead.
            for line in [l for l in self._lines if first <= l <= last]:
                del self._lines[line]
            return
        for line in range(first, last + 1):
            self._lines.pop(line, None)

    def flush_all(self) -> None:
        self._lines.clear()

    def stats(self) -> dict[str, int]:
        """Hit/miss counters for the telemetry collectors."""
        return {"hits": self.hits, "misses": self.misses,
                "lines": len(self._lines),
                "capacity_lines": self.capacity_lines}

    def __len__(self) -> int:
        return len(self._lines)
