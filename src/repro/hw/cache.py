"""Last-level-cache model.

A set of resident 64-byte lines with LRU eviction.  The workload memory
model (``repro.hw.memmodel``) and the memory-encryption engines consult it:
hits cost :data:`~repro.hw.costs.LLC_HIT_CYCLES`, misses cost a DRAM access
plus whatever the active encryption engine charges per missed line.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.hw import costs


class Llc:
    """LRU cache of line ids (line id = physical/abstract address // 64)."""

    def __init__(self, size_bytes: int = costs.LLC_SIZE,
                 line_size: int = costs.CACHE_LINE) -> None:
        if size_bytes < line_size:
            raise ValueError("cache smaller than one line")
        self.line_size = line_size
        self.capacity_lines = size_bytes // line_size
        self._lines: OrderedDict[int, bool] = OrderedDict()  # line -> dirty
        self.hits = 0
        self.misses = 0

    def access(self, line_id: int, *, write: bool = False) -> bool:
        """Touch one line; returns True on hit.  Evicts LRU on fill."""
        return self.access_ex(line_id, write=write)[0]

    def access_ex(self, line_id: int, *,
                  write: bool = False) -> tuple[bool, bool]:
        """Touch one line; returns (hit, evicted_dirty_line).

        The second flag drives the encryption engines' write-back costs:
        a dirty line leaving the LLC must be re-encrypted (and, for MEE,
        re-MACed with a counter-tree update).
        """
        dirty = self._lines.get(line_id)
        if dirty is not None:
            self._lines.move_to_end(line_id)
            if write and not dirty:
                self._lines[line_id] = True
            self.hits += 1
            return True, False
        self.misses += 1
        self._lines[line_id] = write
        evicted_dirty = False
        if len(self._lines) > self.capacity_lines:
            _, evicted_dirty = self._lines.popitem(last=False)
        return False, evicted_dirty

    def contains(self, line_id: int) -> bool:
        return line_id in self._lines

    def flush_line(self, line_id: int) -> None:
        """CLFLUSH: drop one line (the Figure-7 benchmark uses this)."""
        self._lines.pop(line_id, None)

    def flush_range(self, start: int, length: int) -> None:
        """CLFLUSH over a byte range of line-addressable memory."""
        first = start // self.line_size
        last = (start + max(length - 1, 0)) // self.line_size
        for line in range(first, last + 1):
            self._lines.pop(line, None)

    def flush_all(self) -> None:
        self._lines.clear()

    def stats(self) -> dict[str, int]:
        """Hit/miss counters for the telemetry collectors."""
        return {"hits": self.hits, "misses": self.misses,
                "lines": len(self._lines),
                "capacity_lines": self.capacity_lines}

    def __len__(self) -> int:
        return len(self._lines)
