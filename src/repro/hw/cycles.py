"""Cycle accounting.

Every simulated hardware or software step charges cycles to the machine's
:class:`CycleCounter`.  Benchmarks read the counter before and after a
region of interest; categories let us itemize where time went (world
switches, page walks, memcpy, encryption, compute, ...).
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from typing import Iterator


class CycleCounter:
    """A monotonically increasing cycle counter with per-category totals."""

    __slots__ = ("total", "by_category", "_timeline")

    def __init__(self) -> None:
        self.total: int = 0
        self.by_category: dict[str, int] = defaultdict(int)
        # Optional cycle-domain timeline sampler (repro.telemetry.
        # timeline); None keeps the disabled path to one load + branch.
        self._timeline = None

    def charge(self, cycles: float, category: str = "misc") -> None:
        """Add ``cycles`` to the running total under ``category``."""
        if cycles < 0:
            raise ValueError(f"negative cycle charge: {cycles}")
        self.total += cycles
        self.by_category[category] += cycles
        timeline = self._timeline
        if timeline is not None and self.total >= timeline.next_cycle:
            timeline.on_charge(self.total)

    def read(self) -> int:
        """Current total as an integral stamp, like RDTSC.

        ``total`` itself may carry fractional sub-cycle charges (some
        cost-model terms are amortized averages); the architectural
        counter software reads is always a whole number of cycles.
        """
        return int(self.total)

    @contextmanager
    def measure(self) -> Iterator["CycleSpan"]:
        """Context manager measuring the cycles spent inside the block."""
        span = CycleSpan(self)
        span.start()
        try:
            yield span
        finally:
            span.stop()

    def breakdown(self) -> dict[str, int]:
        """A copy of the per-category totals."""
        return dict(self.by_category)


class CycleSpan:
    """A start/stop measurement window over a :class:`CycleCounter`."""

    def __init__(self, counter: CycleCounter) -> None:
        self._counter = counter
        self._start: float | None = None
        self.elapsed: float = 0.0
        self._start_categories: dict[str, int] = {}
        self._end_categories: dict[str, int] = {}
        self._categories: dict[str, float] | None = {}

    def start(self) -> None:
        self._start = self._counter.total
        self._start_categories = dict(self._counter.by_category)

    def stop(self) -> None:
        if self._start is None:
            raise RuntimeError("CycleSpan.stop() before start()")
        self.elapsed = self._counter.total - self._start
        # Snapshot now, diff lazily: most measurement loops only read
        # ``elapsed``, so the per-category delta is computed on demand.
        self._end_categories = dict(self._counter.by_category)
        self._categories = None
        self._start = None

    @property
    def categories(self) -> dict[str, float]:
        """Per-category cycle deltas over the span ({} before stop)."""
        if self._categories is None:
            start = self._start_categories
            self._categories = {
                cat: total - start.get(cat, 0)
                for cat, total in self._end_categories.items()
                if total != start.get(cat, 0)
            }
        return self._categories
