"""IOMMU: DMA access control (security requirement R-3).

Peripherals issue DMA against physical addresses.  Once RustMonitor
enables protection, any DMA that targets monitor- or enclave-owned frames
is rejected unless an explicit mapping allows it — "HyperEnclave restricts
the physical memory used by the peripherals with the support of the
IOMMU" (Sec 3.2).
"""

from __future__ import annotations

from repro.errors import SecurityViolation
from repro.hw.phys import OwnerKind, PhysicalMemory


class Iommu:
    """A device-table IOMMU over the simulated physical memory."""

    def __init__(self, phys: PhysicalMemory) -> None:
        self.phys = phys
        self.enabled = False
        # device id -> list of (base, size) windows DMA may target.
        self._allowed: dict[str, list[tuple[int, int]]] = {}

    def enable(self) -> None:
        self.enabled = True

    def allow(self, device: str, base: int, size: int) -> None:
        """Grant ``device`` DMA access to [base, base+size)."""
        self._allowed.setdefault(device, []).append((base, size))

    def revoke_all(self, device: str) -> None:
        self._allowed.pop(device, None)

    def _check(self, device: str, pa: int, length: int, *,
               write: bool) -> None:
        owner = self.phys.owner_of(pa)
        if not self.enabled:
            # Without IOMMU protection every DMA goes straight through —
            # this is the attack the monitor's boot sequence must close.
            return
        protected = owner.kind in (OwnerKind.MONITOR, OwnerKind.ENCLAVE)
        for base, size in self._allowed.get(device, []):
            if base <= pa and pa + length <= base + size:
                if protected:
                    # Windows into protected memory are never grantable.
                    break
                return
        if protected:
            op = "write" if write else "read"
            raise SecurityViolation(
                f"IOMMU blocked DMA {op} by {device!r} to {owner.kind.value} "
                f"frame at {pa:#x}")
        if device not in self._allowed:
            raise SecurityViolation(
                f"IOMMU blocked DMA by unknown device {device!r}")
        raise SecurityViolation(
            f"IOMMU blocked DMA by {device!r} outside its windows at {pa:#x}")

    def dma_read(self, device: str, pa: int, length: int) -> bytes:
        """DMA read; raises :class:`SecurityViolation` if disallowed."""
        self._check(device, pa, length, write=False)
        return self.phys.read(pa, length)

    def dma_write(self, device: str, pa: int, data: bytes) -> None:
        """DMA write; raises :class:`SecurityViolation` if disallowed."""
        self._check(device, pa, len(data), write=True)
        self.phys.write(pa, data)
