"""Structured execution tracing.

A bounded in-memory event buffer the platform components append to when
tracing is enabled: world switches, hypercalls, exceptions, page faults,
swaps.  Disabled by default (zero overhead beyond one branch); enabled it
is the observability surface a production monitor would expose — and what
the debugging story in the artifact appendix leans on.

Every event carries a monotonic sequence number (``seq``) assigned from a
total counter that keeps counting across ring wrap-around, so event loss
is observable: ``total_recorded - len(buffer)`` events have been dropped,
and :meth:`TraceBuffer.stats` reports both.  Events also carry the
current *causal context* — a path of ``ecall:``/``ocall:`` scopes pushed
by the SDK — so a hypercall deep in the monitor can be attributed to the
edge call that triggered it.  Taps registered with :meth:`TraceBuffer.tap`
see every event before it can be evicted, which is how the flight
recorder keeps a lossless journal off a bounded ring.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event, stamped with the integral cycle count."""

    cycle: int
    kind: str          # "eenter" | "eexit" | "aex" | "hypercall" | ...
    detail: str
    seq: int = 0       # monotonic across ring wrap-around
    cause: str = ""    # causal scope path, e.g. "ecall:nop#3/ocall:log#1"

    def __str__(self) -> str:
        tail = f"  <{self.cause}>" if self.cause else ""
        return (f"#{self.seq:<6} [{self.cycle:>14,}] {self.kind:<12} "
                f"{self.detail}{tail}")


class TraceBuffer:
    """A bounded ring of :class:`TraceEvent` with loss accounting."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self.enabled = False
        self.capacity = capacity
        self.total_recorded = 0
        self.dropped = 0
        self.on_drop: Callable[[int], None] | None = None
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._cycles = None
        self._taps: list[Callable[[TraceEvent], None]] = []
        self._cause_stack: list[str] = []
        self._cause_seq = 0

    def attach(self, cycles) -> None:
        """Bind the cycle counter that timestamps events."""
        self._cycles = cycles

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # ------------------------------------------------------------- causes --

    def push_cause(self, label: str) -> str:
        """Enter a causal scope; returns the full unique cause path.

        Each push gets a process-unique ``#N`` suffix so two ecalls with
        the same name remain distinguishable in the journal.
        """
        self._cause_seq += 1
        scope = f"{label}#{self._cause_seq}"
        parent = self._cause_stack[-1] if self._cause_stack else ""
        path = f"{parent}/{scope}" if parent else scope
        self._cause_stack.append(path)
        return path

    def pop_cause(self) -> None:
        if self._cause_stack:
            self._cause_stack.pop()

    @property
    def current_cause(self) -> str:
        return self._cause_stack[-1] if self._cause_stack else ""

    # ---------------------------------------------------------- recording --

    def tap(self, fn: Callable[[TraceEvent], None]) -> None:
        """Register a callback that sees every event before eviction."""
        self._taps.append(fn)

    def untap(self, fn: Callable[[TraceEvent], None]) -> None:
        if fn in self._taps:
            self._taps.remove(fn)

    def record(self, kind: str, detail: str = "") -> None:
        if not self.enabled:
            return
        cycle = self._cycles.read() if self._cycles is not None else 0
        event = TraceEvent(cycle=cycle, kind=kind, detail=detail,
                           seq=self.total_recorded,
                           cause=self.current_cause)
        self.total_recorded += 1
        if len(self._events) == self.capacity:
            self.dropped += 1
            if self.on_drop is not None:
                self.on_drop(1)
        self._events.append(event)
        for fn in self._taps:
            fn(event)

    def stats(self) -> dict:
        """Loss accounting: recorded / dropped / resident / capacity."""
        return {
            "recorded": self.total_recorded,
            "dropped": self.dropped,
            "entries": len(self._events),
            "capacity": self.capacity,
        }

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def dump(self, limit: int = 50) -> str:
        """The last ``limit`` events, newest last."""
        tail = list(self._events)[-limit:]
        return "\n".join(str(e) for e in tail)
