"""Structured execution tracing.

A bounded in-memory event buffer the platform components append to when
tracing is enabled: world switches, hypercalls, exceptions, page faults,
swaps.  Disabled by default (zero overhead beyond one branch); enabled it
is the observability surface a production monitor would expose — and what
the debugging story in the artifact appendix leans on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event, stamped with the integral cycle count."""

    cycle: int
    kind: str          # "eenter" | "eexit" | "aex" | "hypercall" | ...
    detail: str

    def __str__(self) -> str:
        return f"[{self.cycle:>14,}] {self.kind:<12} {self.detail}"


class TraceBuffer:
    """A bounded ring of :class:`TraceEvent`."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self.enabled = False
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._cycles = None

    def attach(self, cycles) -> None:
        """Bind the cycle counter that timestamps events."""
        self._cycles = cycles

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def record(self, kind: str, detail: str = "") -> None:
        if not self.enabled:
            return
        cycle = int(self._cycles.read()) if self._cycles is not None else 0
        self._events.append(TraceEvent(cycle=cycle, kind=kind,
                                       detail=detail))

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def dump(self, limit: int = 50) -> str:
        """The last ``limit`` events, newest last."""
        tail = list(self._events)[-limit:]
        return "\n".join(str(e) for e in tail)
