"""x86-64-style 4-level page tables, stored in simulated physical memory.

Page-table pages are real frames; entries are real 8-byte little-endian
PTEs with present / writable / user / accessed / dirty / NX bits and a
frame number.  The walker reports how many memory references it made so
the MMU can charge cycles, and the :class:`NestedTranslator` performs the
full two-dimensional walk (every guest-page-table access is itself
translated through the NPT), which is where the GU-Enclave / HU-Enclave
cost difference physically comes from.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import NestedPageFault, PageFault
from repro.hw.phys import PAGE_SIZE, PhysicalMemory

ENTRY_SIZE = 8
ENTRIES_PER_TABLE = PAGE_SIZE // ENTRY_SIZE
LEVELS = 4
VA_BITS = 48
_ADDR_MASK = 0x000F_FFFF_FFFF_F000


class PageTableFlags(enum.IntFlag):
    """PTE flag bits (subset of x86-64)."""

    PRESENT = 1 << 0
    WRITABLE = 1 << 1
    USER = 1 << 2
    ACCESSED = 1 << 5
    DIRTY = 1 << 6
    NX = 1 << 63

    # Convenience combinations.
    RW = PRESENT | WRITABLE
    URW = PRESENT | WRITABLE | USER
    URX = PRESENT | USER
    UR = PRESENT | USER | NX


@dataclass(frozen=True, slots=True)
class Translation:
    """Result of a successful walk."""

    pa: int
    flags: PageTableFlags
    refs: int               # page-table memory references made


@dataclass
class PagingStats:
    """Always-on lightweight walk counters for one page-table domain.

    Like :class:`~repro.hw.tlb.Tlb` hit/miss counts, these are plain int
    increments — cheap enough to leave unconditional — sampled by the
    telemetry hardware collectors at snapshot time.
    """

    walks: int = 0           # translate() calls
    refs: int = 0            # page-table memory references
    faults: int = 0          # walks that raised PageFault
    nested_walks: int = 0    # NestedTranslator two-dimensional walks
    nested_refs: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"walks": self.walks, "refs": self.refs,
                "faults": self.faults, "nested_walks": self.nested_walks,
                "nested_refs": self.nested_refs}


def _index(va: int, level: int) -> int:
    """Index into the ``level``-th table (level 3 = root) for ``va``."""
    return (va >> (12 + 9 * level)) & (ENTRIES_PER_TABLE - 1)


def page_of(va: int) -> int:
    """The page-aligned base of ``va``."""
    return va & ~(PAGE_SIZE - 1)


class PageTable:
    """One 4-level page table rooted at a physical frame.

    ``frame_alloc``/``frame_free`` supply intermediate table pages — the
    monitor passes its reserved pool, the primary OS its normal pool, so
    table memory is owned by whoever manages the mapping.
    """

    def __init__(self, phys: PhysicalMemory, frame_alloc: Callable[[], int],
                 frame_free: Callable[[int], None] | None = None,
                 stats: PagingStats | None = None,
                 asid: int | None = None) -> None:
        self.phys = phys
        self._alloc = frame_alloc
        self._free = frame_free
        self.stats = stats
        # Sanitizer metadata: ``asid`` ties this table to the TLB tag its
        # translations are cached under (enclave page tables use the
        # enclave id), so unmap/protect can be checked against shootdowns.
        # ``untrusted`` marks OS/process tables the sanitizer polices for
        # monitor/enclave-frame reachability.
        self.asid = asid
        self.untrusted = False
        self.root_pa = frame_alloc()
        self._table_frames: set[int] = {self.root_pa}

    # -- mapping management --------------------------------------------------

    def map(self, va: int, pa: int, flags: PageTableFlags) -> None:
        """Install a 4 KB mapping ``va -> pa`` with ``flags``."""
        self._check_canonical(va)
        if va % PAGE_SIZE or pa % PAGE_SIZE:
            raise ValueError("map() requires page-aligned va and pa")
        sanitizer = self.phys.sanitizer
        if sanitizer is not None:
            sanitizer.on_pt_map(self, va, pa)
        entry_pa = self._ensure_entry(va)
        self.phys.write_u64(entry_pa,
                            pa | int(flags | PageTableFlags.PRESENT))

    def unmap(self, va: int) -> int:
        """Remove the mapping for ``va``; returns the old PA."""
        entry_pa = self._find_entry(va)
        if entry_pa is None:
            raise PageFault(va, present=False)
        entry = self.phys.read_u64(entry_pa)
        if not entry & PageTableFlags.PRESENT:
            raise PageFault(va, present=False)
        self.phys.write_u64(entry_pa, 0)
        old_pa = entry & _ADDR_MASK
        sanitizer = self.phys.sanitizer
        if sanitizer is not None:
            sanitizer.on_pt_unmap(self, va, old_pa)
        return old_pa

    def protect(self, va: int, flags: PageTableFlags) -> None:
        """Replace the permission flags of an existing mapping."""
        entry_pa = self._find_entry(va)
        if entry_pa is None:
            raise PageFault(va, present=False)
        entry = self.phys.read_u64(entry_pa)
        if not entry & PageTableFlags.PRESENT:
            raise PageFault(va, present=False)
        pa = entry & _ADDR_MASK
        self.phys.write_u64(entry_pa, pa | int(flags | PageTableFlags.PRESENT))
        sanitizer = self.phys.sanitizer
        if sanitizer is not None:
            sanitizer.on_pt_protect(self, va)

    def is_mapped(self, va: int) -> bool:
        try:
            self.translate(va)
            return True
        except PageFault:
            return False

    def mappings(self) -> Iterator[tuple[int, int, PageTableFlags]]:
        """Iterate all (va, pa, flags) leaf mappings (for tests/debug)."""
        yield from self._walk_tables(self.root_pa, LEVELS - 1, 0)

    def _walk_tables(self, table_pa: int, level: int,
                     va_prefix: int) -> Iterator[tuple[int, int, PageTableFlags]]:
        for i in range(ENTRIES_PER_TABLE):
            entry = self.phys.read_u64(table_pa + i * ENTRY_SIZE)
            if not entry & PageTableFlags.PRESENT:
                continue
            va = va_prefix | (i << (12 + 9 * level))
            if level == 0:
                yield va, entry & _ADDR_MASK, PageTableFlags(
                    entry & ~_ADDR_MASK)
            else:
                yield from self._walk_tables(entry & _ADDR_MASK, level - 1, va)

    # -- translation ----------------------------------------------------------

    def translate(self, va: int, *, write: bool = False, user: bool = True,
                  fetch: bool = False, set_accessed: bool = True) -> Translation:
        """Walk the table; raise :class:`PageFault` on failure."""
        stats = self.stats
        if stats is None:
            return self._walk(va, write=write, user=user, fetch=fetch,
                              set_accessed=set_accessed)
        stats.walks += 1
        try:
            result = self._walk(va, write=write, user=user, fetch=fetch,
                                set_accessed=set_accessed)
        except PageFault:
            stats.faults += 1
            raise
        stats.refs += result.refs
        return result

    def _walk(self, va: int, *, write: bool, user: bool,
              fetch: bool, set_accessed: bool) -> Translation:
        self._check_canonical(va)
        table_pa = self.root_pa
        refs = 0
        for level in range(LEVELS - 1, -1, -1):
            entry_pa = table_pa + _index(va, level) * ENTRY_SIZE
            entry = self.phys.read_u64(entry_pa)
            refs += 1
            if not entry & PageTableFlags.PRESENT:
                raise PageFault(va, write=write, user=user, fetch=fetch,
                                present=False)
            if level == 0:
                flags = PageTableFlags(entry & ~_ADDR_MASK)
                self._check_permissions(va, flags, write, user, fetch)
                if set_accessed:
                    new = entry | PageTableFlags.ACCESSED
                    if write:
                        new |= PageTableFlags.DIRTY
                    if new != entry:
                        self.phys.write_u64(entry_pa, new)
                return Translation(pa=(entry & _ADDR_MASK) | (va & (PAGE_SIZE - 1)),
                                   flags=flags, refs=refs)
            table_pa = entry & _ADDR_MASK
        raise AssertionError("unreachable")

    @staticmethod
    def _check_permissions(va: int, flags: PageTableFlags, write: bool,
                           user: bool, fetch: bool) -> None:
        if write and not flags & PageTableFlags.WRITABLE:
            raise PageFault(va, write=True, user=user, present=True)
        if user and not flags & PageTableFlags.USER:
            raise PageFault(va, write=write, user=True, present=True)
        if fetch and flags & PageTableFlags.NX:
            raise PageFault(va, fetch=True, user=user, present=True)

    # -- internals -------------------------------------------------------------

    def _ensure_entry(self, va: int) -> int:
        """Walk down, allocating intermediate tables; return the leaf PTE PA."""
        table_pa = self.root_pa
        for level in range(LEVELS - 1, 0, -1):
            entry_pa = table_pa + _index(va, level) * ENTRY_SIZE
            entry = self.phys.read_u64(entry_pa)
            if not entry & PageTableFlags.PRESENT:
                new_table = self._alloc()
                self._table_frames.add(new_table)
                # Intermediate entries: present+writable+user; leaf flags rule.
                self.phys.write_u64(entry_pa, new_table | int(
                    PageTableFlags.PRESENT | PageTableFlags.WRITABLE |
                    PageTableFlags.USER))
                table_pa = new_table
            else:
                table_pa = entry & _ADDR_MASK
        return table_pa + _index(va, 0) * ENTRY_SIZE

    def _find_entry(self, va: int) -> int | None:
        """Return the leaf PTE PA for ``va`` or None if tables are missing."""
        self._check_canonical(va)
        table_pa = self.root_pa
        for level in range(LEVELS - 1, 0, -1):
            entry_pa = table_pa + _index(va, level) * ENTRY_SIZE
            entry = self.phys.read_u64(entry_pa)
            if not entry & PageTableFlags.PRESENT:
                return None
            table_pa = entry & _ADDR_MASK
        return table_pa + _index(va, 0) * ENTRY_SIZE

    def destroy(self) -> None:
        """Free all table frames back to the allocator."""
        if self._free is None:
            return
        for frame in sorted(self._table_frames, reverse=True):
            self._free(frame)
        self._table_frames.clear()

    @staticmethod
    def _check_canonical(va: int) -> None:
        if not 0 <= va < (1 << VA_BITS):
            raise PageFault(va, present=False)


class NestedTranslator:
    """Two-dimensional (guest PT + nested PT) address translation.

    Mirrors hardware nested paging: each guest-page-table access during the
    GPT walk is itself a guest-physical address that must be translated
    through the NPT, so a full 4+4-level walk makes up to 24 references.
    """

    def __init__(self, gpt: PageTable, npt: PageTable,
                 stats: PagingStats | None = None) -> None:
        self.gpt = gpt
        self.npt = npt
        self.stats = stats

    def translate(self, gva: int, *, write: bool = False, user: bool = True,
                  fetch: bool = False) -> Translation:
        if self.stats is not None:
            self.stats.nested_walks += 1
        refs = 0
        table_gpa = self.gpt.root_pa
        for level in range(LEVELS - 1, -1, -1):
            # The GPT table page itself lives at a guest-physical address:
            # translate it through the NPT first.
            table_hpa, npt_refs = self._npt_translate(table_gpa, write=False)
            refs += npt_refs
            entry_pa = table_hpa + _index(gva, level) * ENTRY_SIZE
            entry = self.gpt.phys.read_u64(entry_pa)
            refs += 1
            if not entry & PageTableFlags.PRESENT:
                raise PageFault(gva, write=write, user=user, fetch=fetch,
                                present=False)
            if level == 0:
                flags = PageTableFlags(entry & ~_ADDR_MASK)
                PageTable._check_permissions(gva, flags, write, user, fetch)
                leaf_gpa = (entry & _ADDR_MASK) | (gva & (PAGE_SIZE - 1))
                leaf_hpa, npt_refs = self._npt_translate(leaf_gpa,
                                                         write=write)
                refs += npt_refs
                if self.stats is not None:
                    self.stats.nested_refs += refs
                return Translation(pa=leaf_hpa, flags=flags, refs=refs)
            table_gpa = entry & _ADDR_MASK

        raise AssertionError("unreachable")

    def _npt_translate(self, gpa: int, *, write: bool) -> tuple[int, int]:
        try:
            result = self.npt.translate(gpa, write=write, user=True)
        except PageFault as fault:
            raise NestedPageFault(gpa, write=write,
                                  present=fault.present) from fault
        return result.pa, result.refs
