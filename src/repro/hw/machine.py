"""Machine assembly: one object owning all simulated hardware.

A :class:`Machine` corresponds to one physical server.  The default
configuration mirrors the paper's AMD test box scaled down: lazily
allocated physical memory (so multi-GB address spaces are cheap), a 2 GB
region reserved for RustMonitor + enclave memory, an 8 MB LLC, AMD-SME
memory encryption, and a TPM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw import costs
from repro.hw.cache import Llc
from repro.hw.cpu import Cpu
from repro.hw.cycles import CycleCounter
from repro.hw.interrupts import Idt, InterruptModel
from repro.hw.iommu import Iommu
from repro.hw.memenc import AmdSme, EncryptionEngine, IntelMee, NoEncryption
from repro.hw.phys import PAGE_SIZE, PhysicalMemory
from repro.hw.tlb import Tlb
from repro.hw.tpm import Tpm
from repro.telemetry import Telemetry

_ENGINES = {
    "none": NoEncryption,
    "amd-sme": AmdSme,
    "intel-mee": IntelMee,
}


@dataclass
class MachineConfig:
    """Hardware configuration knobs."""

    phys_size: int = 8 * 1024 * 1024 * 1024      # 8 GiB, lazily allocated
    reserved_base: int = 1 * 1024 * 1024 * 1024  # RustMonitor+EPC region base
    reserved_size: int = 2 * 1024 * 1024 * 1024  # grub cmdline reservation
    llc_size: int = costs.LLC_SIZE
    tlb_entries: int = costs.TLB_ENTRIES
    # Logical CPUs.  The paper's box has 128; the cost model only uses
    # this for TLB-shootdown IPIs, so the default of 1 keeps the
    # single-threaded microbenchmark calibration untouched.
    num_cpus: int = 1
    encryption: str = "amd-sme"                  # none | amd-sme | intel-mee
    tpm_seed: bytes = b"hyperenclave-reproduction"
    interrupt_interval_cycles: float = 400_000.0
    # Monitor-invariant sanitizer (repro.sanitizer): True/False forces it
    # on/off; None defers to the REPRO_SANITIZE environment variable.
    sanitize: bool | None = None

    def __post_init__(self) -> None:
        if self.encryption not in _ENGINES:
            raise ValueError(f"unknown encryption engine {self.encryption!r}")
        if self.reserved_base % PAGE_SIZE or self.reserved_size % PAGE_SIZE:
            raise ValueError("reserved region must be page aligned")
        if self.reserved_base + self.reserved_size > self.phys_size:
            raise ValueError("reserved region exceeds physical memory")
        if self.num_cpus < 1:
            raise ValueError("need at least one CPU")


class Machine:
    """One simulated server: CPU, memory, caches, TPM, IOMMU."""

    def __init__(self, config: MachineConfig | None = None) -> None:
        self.config = config or MachineConfig()
        self.cycles = CycleCounter()
        self.phys = PhysicalMemory(self.config.phys_size)
        self.tlb = Tlb(self.config.tlb_entries)
        self.cpu = Cpu(self.cycles, self.tlb)
        self.llc = Llc(self.config.llc_size)
        self.encryption: EncryptionEngine = _ENGINES[self.config.encryption]()
        self.tpm = Tpm(self.config.tpm_seed)
        self.iommu = Iommu(self.phys)
        self.idt = Idt()
        self.interrupts = InterruptModel(self.config.interrupt_interval_cycles)
        # The telemetry hub owns the trace ring; ``machine.trace`` stays
        # the raw-event surface existing callers/tests know.
        self.telemetry = Telemetry(self.cycles)
        self.trace = self.telemetry.ring
        self.telemetry.add_collector("tlb", self.tlb.stats)
        self.telemetry.add_collector("llc", self.llc.stats)
        self.telemetry.add_collector("trace", self.trace.stats)
        self.telemetry.add_collector(
            "encryption",
            lambda: {"engine": self.encryption.name,
                     **self.encryption.stats()})
        # Software layers (monitor, kernel) register state providers so
        # Machine.state_hash() folds their state too; dump providers give
        # the forensic bundles their one-shot deep dumps (page-table
        # walks are too expensive for per-checkpoint hashing).
        self.state_providers: dict[str, object] = {}
        self.dump_providers: dict[str, object] = {}
        # Attach the monitor-invariant sanitizer last, so its hooks see a
        # fully assembled machine.  Imported here: repro.sanitizer sits
        # above the hardware layer.
        from repro.sanitizer.runtime import Sanitizer, sanitize_enabled
        want = self.config.sanitize
        if want is None:
            want = sanitize_enabled()
        self.sanitizer = Sanitizer(self) if want else None
        # When a process-wide telemetry sink is active (--telemetry-out,
        # python -m repro.bench run), every machine registers itself so
        # no workload needs per-call-site capture plumbing.
        from repro.telemetry import sink as telemetry_sink
        active = telemetry_sink.current()
        if active is not None:
            active.auto_register(self.telemetry, machine=self)
        # Likewise for an active flight recorder (python -m repro.flightrec
        # record / replay): the machine journals itself on construction.
        from repro.flightrec import recorder as flightrec_recorder
        rec = flightrec_recorder.current()
        if rec is not None:
            rec.attach_machine(self)

    # -- state hashing -------------------------------------------------------

    def state_fingerprint(self) -> dict[str, str]:
        """Per-component state digests (the expanded form of state_hash).

        Folds the hardware (cycles, CPU context, physical-frame ownership
        and contents, TLB, TPM) plus whatever software layers registered
        via ``state_providers`` (monitor: enclaves, EPC, swap; kernel:
        processes, VMAs).  Comparing fingerprints names the component
        that diverged; comparing :meth:`state_hash` is one string.
        """
        from repro.hw import statehash
        parts = {
            "cycles": statehash.digest(self.cycles.total),
            "cpu": self.cpu.state_digest(),
            "phys": self.phys.state_digest(),
            "tlb": self.tlb.state_digest(),
            "tpm": self.tpm.state_digest(),
        }
        for name, provider in self.state_providers.items():
            parts[name] = statehash.digest(provider())
        return parts

    def state_hash(self) -> str:
        """One deterministic hash of the whole machine state."""
        from repro.hw import statehash
        return statehash.fold(self.state_fingerprint())

    def state_dump(self) -> dict:
        """Deep, human-readable state for forensic bundles (expensive)."""
        dump = {
            "cpu": {
                "mode": self.cpu.mode.value,
                "context": None if self.cpu.current is None else {
                    "name": self.cpu.current.name,
                    "mode": self.cpu.current.mode.value,
                    "gpt_root": self.cpu.current.gpt_root,
                    "npt_root": self.cpu.current.npt_root,
                    "host_pt_root": self.cpu.current.host_pt_root,
                    "asid": self.cpu.current.asid,
                    "regs": self.cpu.current.snapshot(),
                },
            },
            "tlb": self.tlb.entries_dump(),
        }
        for name, provider in self.dump_providers.items():
            dump[name] = provider()
        return dump

    def reboot(self) -> None:
        """Power cycle: PCRs reset, caches/TLB cold, cycle counter keeps going."""
        self.tpm.reboot()
        self.tlb.flush()
        self.llc.flush_all()
        self.encryption.reset()
        self.idt.clear()
        self.interrupts.reset()
