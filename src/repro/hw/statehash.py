"""Canonical hashing of simulated machine state.

The flight recorder's checkpoints, the bench determinism gate, and the
forensic bundles all need one answer to "is this machine in the same
state?".  :func:`canonical` normalizes arbitrary simulator values
(enums, bytes, dicts, dataclass-ish objects) into a deterministic,
JSON-like text form; :func:`digest` hashes it.  Everything here is a
pure function of the simulation — no wall clocks, ids, or dict order
leaks (repro-lint R001 applies to the artifacts these digests land in).
"""

from __future__ import annotations

import enum
import hashlib


def canonical(value) -> str:
    """A deterministic text rendering of a simulator value.

    Dicts and sets are sorted by key/value text, enums render as their
    value, bytes as hex — so two structurally-equal states always render
    identically regardless of insertion order or object identity.
    """
    # Enum before int: IntFlag/IntEnum members are ints too, and their
    # repr is not stable across Python versions — their value is.
    if isinstance(value, enum.Enum):
        return canonical(value.value)
    if value is None or isinstance(value, (bool, int, str)):
        return repr(value)
    if isinstance(value, float):
        # repr round-trips floats exactly; cycle totals are floats.
        return repr(value)
    if isinstance(value, (bytes, bytearray)):
        return bytes(value).hex()
    if isinstance(value, dict):
        items = sorted((canonical(k), canonical(v))
                       for k, v in value.items())
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(canonical(v) for v in value)) + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(canonical(v) for v in value) + "]"
    raise TypeError(f"cannot canonicalize {type(value).__name__} "
                    f"for state hashing")


def digest(value) -> str:
    """The sha256 hex digest of a value's canonical form."""
    return hashlib.sha256(canonical(value).encode()).hexdigest()


def fold(parts: dict[str, str]) -> str:
    """Fold named component digests into one machine state hash."""
    lines = "\n".join(f"{name}={parts[name]}" for name in sorted(parts))
    return hashlib.sha256(lines.encode()).hexdigest()


def chain(previous: str, *parts) -> str:
    """One link of a hash chain: H(prev ‖ parts...).

    Checkpoint k's chain value commits to every checkpoint before it, so
    chain equality at k proves the two runs agreed on *all* checkpoints
    up to k — the property replay bisection relies on.
    """
    h = hashlib.sha256(previous.encode())
    for part in parts:
        h.update(b"\x00")
        h.update(str(part).encode())
    return h.hexdigest()
