"""The ``REPRO_FASTPATH`` switch: fast-path mode for the hot loops.

The memory/cycle hot paths (``repro.hw.memmodel``, ``repro.hw.tlb``,
``repro.hw.cache``, ``repro.hw.memenc``) have two implementations:

* the *legacy* per-page/per-line reference loops (``REPRO_FASTPATH=0``),
  kept verbatim as the semantic ground truth, and
* the *fast* layered path (default): translation memoization above the
  TLB with deferred LRU bookkeeping, bulk LLC range kernels, and
  closed-form MEE counter-tree group charges.

Both produce bit-identical observable state — cycle totals, category
breakdowns, TLB/LLC/MEE counters, LRU orders, ``state_digest()``s — at
every observation point; ``tests/fastpath`` pins the equivalence and the
flight recorder replays journals across modes with zero divergence.

``REPRO_FASTPATH=numpy`` additionally vectorizes the bulk scans with
numpy when it is importable (pure-Python fallback otherwise — numpy is
never required).  ``docs/PERFORMANCE.md`` describes the layers.
"""

from __future__ import annotations

import os

MODE_LEGACY = 0
MODE_PYTHON = 1
MODE_NUMPY = 2

_ENV = "REPRO_FASTPATH"


def _import_numpy():
    try:
        import numpy
        return numpy
    except ImportError:
        return None


def _parse(raw: str | None) -> int:
    if raw is None:
        return MODE_PYTHON
    value = raw.strip().lower()
    if value in ("0", "off", "legacy", "false", "no"):
        return MODE_LEGACY
    if value == "numpy":
        return MODE_NUMPY
    # Any other value (including "", "1", "on") means the default fast
    # path — fail open to the pure-Python implementation.
    return MODE_PYTHON


# The resolved mode and (for MODE_NUMPY) the numpy module.  Module-level
# so the per-touch check is one attribute load; ``set_mode`` repoints
# them for tests.
MODE: int = _parse(os.environ.get(_ENV))
np = _import_numpy() if MODE == MODE_NUMPY else None
if MODE == MODE_NUMPY and np is None:
    MODE = MODE_PYTHON


def mode() -> int:
    """The active fast-path mode (module-level ``MODE`` mirror)."""
    return MODE


def enabled() -> bool:
    """True unless the legacy reference path is forced."""
    return MODE != MODE_LEGACY


def mode_name() -> str:
    """The active mode as a provenance-friendly string."""
    return {MODE_LEGACY: "legacy", MODE_PYTHON: "python",
            MODE_NUMPY: "numpy"}[MODE]


def set_mode(value: int | str | None) -> int:
    """Override the mode in-process (tests; see also ``REPRO_FASTPATH``).

    Accepts a mode constant or the same strings the environment variable
    takes; ``None`` re-reads the environment.  Returns the mode that
    took effect (numpy falls back to the pure-Python path when numpy is
    unavailable).  Existing ``MemorySubsystem`` instances pick the new
    mode up on their next touch; their cached engine-eligibility flags
    survive because eligibility is mode-independent.
    """
    global MODE, np
    if value is None:
        # repro-lint: disable=SC001 -- mode knob only: every mode charges
        # identical cycles (CI fastpath-equivalence gate + SC004 parity)
        MODE = _parse(os.environ.get(_ENV))
    elif isinstance(value, str):
        MODE = _parse(value)
    else:
        if value not in (MODE_LEGACY, MODE_PYTHON, MODE_NUMPY):
            raise ValueError(f"unknown fast-path mode {value!r}")
        MODE = value
    np = _import_numpy() if MODE == MODE_NUMPY else None
    if MODE == MODE_NUMPY and np is None:
        MODE = MODE_PYTHON
    return MODE
