"""Page-chunked copies between virtual ranges and physical memory.

Untrusted software (the OS simulation, the SDK's trusted runtime) never
touches :class:`~repro.hw.phys.PhysicalMemory` directly — every access
goes through one of these helpers with a *translate* callback supplied
by the caller.  The callback owns policy: page-table walks, demand
paging, monitor policing, enclave access control.  Keeping the raw
``phys.read``/``phys.write`` calls here (hardware layer) is what the
repro-lint rule R002 enforces.
"""

from __future__ import annotations

from typing import Callable

from repro.hw.phys import PAGE_SIZE, PhysicalMemory


def copy_in(phys: PhysicalMemory, translate: Callable[[int], int],
            va: int, size: int) -> bytes:
    """Read ``size`` bytes starting at virtual address ``va``.

    ``translate`` maps a VA to the PA of its page's base-offset byte; it
    is called once per page touched and may fault, demand-page, or
    police as the caller requires.
    """
    out = bytearray(max(size, 0))
    written = 0
    while size > 0:
        pa = translate(va)
        chunk = min(size, PAGE_SIZE - (va % PAGE_SIZE))
        out[written:written + chunk] = phys.read(pa, chunk)
        va += chunk
        size -= chunk
        written += chunk
    return bytes(out)


def copy_out(phys: PhysicalMemory, translate: Callable[[int], int],
             va: int, data: bytes) -> None:
    """Write ``data`` starting at virtual address ``va`` (same contract
    as :func:`copy_in`; ``translate`` should perform write checks)."""
    view = memoryview(data)
    while view:
        pa = translate(va)
        chunk = min(len(view), PAGE_SIZE - (va % PAGE_SIZE))
        # Hand phys.write the sub-view directly — it slices further
        # internally; no per-page bytes materialization.
        phys.write(pa, view[:chunk])
        va += chunk
        view = view[chunk:]
