"""Translation lookaside buffer with ASIDs.

World switches either flush the whole TLB (GU/P-Enclave: new GPT+NPT) or
just switch the active ASID (HU-Enclave), which is one of the mechanisms
behind the mode cost differences in Table 1.  The security analysis also
relies on flushes: "TLBs are cleared upon world switches to prevent
illegal memory accesses using stale TLB entries" (Sec 6).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.hw.phys import PAGE_SIZE
from repro.hw.paging import PageTableFlags


class Tlb:
    """A finite, LRU-evicting TLB keyed by (asid, virtual page number)."""

    def __init__(self, capacity: int = 1536) -> None:
        if capacity <= 0:
            raise ValueError("TLB capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[tuple[int, int], tuple[int, PageTableFlags]] \
            = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.flushes = 0
        # Set by repro.sanitizer when REPRO_SANITIZE=1: invalidations are
        # reported so the shadow TLB-coherence protocol can retire
        # pending-shootdown entries.
        self.sanitizer = None

    @staticmethod
    def _vpn(va: int) -> int:
        return va // PAGE_SIZE

    def lookup(self, asid: int, va: int) -> tuple[int, PageTableFlags] | None:
        """Return (page frame PA, flags) on hit, else None."""
        key = (asid, self._vpn(va))
        hit = self._entries.get(key)
        if hit is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return hit

    def insert(self, asid: int, va: int, pa_page: int,
               flags: PageTableFlags) -> None:
        key = (asid, self._vpn(va))
        self._entries[key] = (pa_page, flags)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invlpg(self, asid: int, va: int) -> None:
        """Invalidate one page's entry (the INVLPG instruction)."""
        self._entries.pop((asid, self._vpn(va)), None)
        if self.sanitizer is not None:
            self.sanitizer.on_tlb_invlpg(asid, self._vpn(va))

    def flush(self) -> None:
        """Drop every entry (full flush, e.g. MOV CR3 without PCID)."""
        self._entries.clear()
        self.flushes += 1
        if self.sanitizer is not None:
            self.sanitizer.on_tlb_flush()

    def flush_asid(self, asid: int) -> None:
        """Drop all entries for one ASID."""
        stale = [key for key in self._entries if key[0] == asid]
        for key in stale:
            del self._entries[key]
        self.flushes += 1
        if self.sanitizer is not None:
            self.sanitizer.on_tlb_flush_asid(asid)

    def entries_dump(self) -> list[dict]:
        """Every resident translation, LRU-oldest first (forensics)."""
        return [{"asid": asid, "vpn": vpn, "pa_page": pa,
                 "flags": int(flags)}
                for (asid, vpn), (pa, flags) in self._entries.items()]

    def state_digest(self) -> str:
        """A canonical hash of the resident entries and counters.

        LRU *order* is part of the state — it determines future
        evictions — so the digest folds the entry sequence, not just the
        set.
        """
        from repro.hw import statehash
        return statehash.digest({
            "entries": [(asid, vpn, pa, int(flags))
                        for (asid, vpn), (pa, flags)
                        in self._entries.items()],
            "hits": self.hits, "misses": self.misses,
            "flushes": self.flushes,
        })

    def stats(self) -> dict[str, int]:
        """Hit/miss/flush counters for the telemetry collectors."""
        return {"hits": self.hits, "misses": self.misses,
                "flushes": self.flushes, "entries": len(self._entries),
                "capacity": self.capacity}

    def __len__(self) -> int:
        return len(self._entries)
