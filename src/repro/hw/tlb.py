"""Translation lookaside buffer with ASIDs.

World switches either flush the whole TLB (GU/P-Enclave: new GPT+NPT) or
just switch the active ASID (HU-Enclave), which is one of the mechanisms
behind the mode cost differences in Table 1.  The security analysis also
relies on flushes: "TLBs are cleared upon world switches to prevent
illegal memory accesses using stale TLB entries" (Sec 6).

Fast path (``REPRO_FASTPATH``, see :mod:`repro.hw.fastpath`): a plain
resident-key *set* mirrors the OrderedDict's membership so the memory
model can confirm a hit without touching the LRU structure; the hit's
``move_to_end`` is deferred into a pending list and replayed — deduped
to each key's last occurrence, which yields the identical final order —
before any operation that observes or depends on LRU order (lookups,
inserts, flushes, dumps, digests).  The set is invalidated on exactly
the events the sanitizer already hooks: ``invlpg``, ``flush``,
``flush_asid``, plus capacity evictions; ASID switches need nothing
because keys carry the ASID.  Counters are maintained eagerly, so
``stats()`` and ``state_digest()`` are bit-identical to the legacy path.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.hw.phys import PAGE_SIZE
from repro.hw.paging import PageTableFlags


class Tlb:
    """A finite, LRU-evicting TLB keyed by (asid, virtual page number)."""

    __slots__ = ("capacity", "_entries", "hits", "misses", "flushes",
                 "sanitizer", "_resident", "_pending", "_asid_keys")

    def __init__(self, capacity: int = 1536) -> None:
        if capacity <= 0:
            raise ValueError("TLB capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[tuple[int, int], tuple[int, PageTableFlags]] \
            = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.flushes = 0
        # Set by repro.sanitizer when REPRO_SANITIZE=1: invalidations are
        # reported so the shadow TLB-coherence protocol can retire
        # pending-shootdown entries.
        self.sanitizer = None
        # Fast-path state: resident-key memo (always a subset of
        # ``_entries``), deferred-LRU pending list, and the per-ASID key
        # index that makes ``flush_asid`` O(entries of that ASID).
        self._resident: set[tuple[int, int]] = set()
        self._pending: list[tuple[int, int]] = []
        self._asid_keys: dict[int, set[tuple[int, int]]] = {}

    @staticmethod
    def _vpn(va: int) -> int:
        return va // PAGE_SIZE

    # -- deferred LRU ---------------------------------------------------------

    def fast_hit(self, asid: int, vpn: int) -> bool:
        """Memoized hit check: count the hit, defer the LRU move.

        Returns False when the key is not known-resident — the caller
        must fall back to :meth:`lookup` (which settles hit/miss
        accounting itself).  Equivalent to a :meth:`lookup` hit: the
        counter bumps now, the ``move_to_end`` replays before the next
        order-sensitive operation.
        """
        key = (asid, vpn)
        if key in self._resident:
            self.hits += 1
            self._pending.append(key)
            return True
        return False

    def _replay(self) -> None:
        """Apply deferred LRU moves; final order matches eager replay.

        Deduping to each key's *last* occurrence and replaying those in
        original order is order-equivalent to replaying every occurrence:
        only a key's final move decides its position.
        """
        pending = self._pending
        if not pending:
            return
        mte = self._entries.move_to_end
        if len(pending) == 1:
            mte(pending[0])
        else:
            # dict.fromkeys(reversed(...)) keeps first-seen = original
            # last occurrence; iterate reversed to restore source order.
            for key in reversed(dict.fromkeys(reversed(pending))):
                mte(key)
        pending.clear()

    # -- the architectural operations ----------------------------------------

    def lookup(self, asid: int, va: int) -> tuple[int, PageTableFlags] | None:
        """Return (page frame PA, flags) on hit, else None."""
        key = (asid, va // PAGE_SIZE)
        hit = self._entries.get(key)
        if hit is None:
            self.misses += 1
            return None
        if self._pending:
            self._replay()
        self._entries.move_to_end(key)
        self._resident.add(key)
        self.hits += 1
        return hit

    def insert(self, asid: int, va: int, pa_page: int,
               flags: PageTableFlags) -> None:
        if self._pending:
            self._replay()
        key = (asid, va // PAGE_SIZE)
        entries = self._entries
        entries[key] = (pa_page, flags)
        entries.move_to_end(key)
        self._resident.add(key)
        keys = self._asid_keys.get(asid)
        if keys is None:
            keys = self._asid_keys[asid] = set()
        keys.add(key)
        while len(entries) > self.capacity:
            evicted, _ = entries.popitem(last=False)
            self._resident.discard(evicted)
            old = self._asid_keys.get(evicted[0])
            if old is not None:
                old.discard(evicted)

    def invlpg(self, asid: int, va: int) -> None:
        """Invalidate one page's entry (the INVLPG instruction)."""
        if self._pending:
            self._replay()
        key = (asid, va // PAGE_SIZE)
        self._entries.pop(key, None)
        self._resident.discard(key)
        keys = self._asid_keys.get(asid)
        if keys is not None:
            keys.discard(key)
        if self.sanitizer is not None:
            self.sanitizer.on_tlb_invlpg(asid, key[1])

    def flush(self) -> None:
        """Drop every entry (full flush, e.g. MOV CR3 without PCID)."""
        self._entries.clear()
        self._resident.clear()
        self._pending.clear()
        self._asid_keys.clear()
        self.flushes += 1
        if self.sanitizer is not None:
            self.sanitizer.on_tlb_flush()

    def flush_asid(self, asid: int) -> None:
        """Drop all entries for one ASID (O(entries of that ASID))."""
        if self._pending:
            self._replay()
        stale = self._asid_keys.pop(asid, None)
        if stale:
            entries = self._entries
            resident = self._resident
            for key in stale:
                del entries[key]
                resident.discard(key)
        self.flushes += 1
        if self.sanitizer is not None:
            self.sanitizer.on_tlb_flush_asid(asid)

    def entries_dump(self) -> list[dict]:
        """Every resident translation, LRU-oldest first (forensics)."""
        if self._pending:
            self._replay()
        return [{"asid": asid, "vpn": vpn, "pa_page": pa,
                 "flags": int(flags)}
                for (asid, vpn), (pa, flags) in self._entries.items()]

    def state_digest(self) -> str:
        """A canonical hash of the resident entries and counters.

        LRU *order* is part of the state — it determines future
        evictions — so the digest folds the entry sequence, not just the
        set.
        """
        from repro.hw import statehash
        if self._pending:
            self._replay()
        return statehash.digest({
            "entries": [(asid, vpn, pa, int(flags))
                        for (asid, vpn), (pa, flags)
                        in self._entries.items()],
            "hits": self.hits, "misses": self.misses,
            "flushes": self.flushes,
        })

    def stats(self) -> dict[str, int]:
        """Hit/miss/flush counters for the telemetry collectors."""
        return {"hits": self.hits, "misses": self.misses,
                "flushes": self.flushes, "entries": len(self._entries),
                "capacity": self.capacity}

    def __len__(self) -> int:
        return len(self._entries)
