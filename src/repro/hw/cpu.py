"""CPU privilege modes and per-CPU state.

The paper's three system modes map onto VMX operation and rings:

* monitor mode   = VMX root, ring 0   (RustMonitor)
* normal mode    = VMX non-root, ring 0 / ring 3 (primary OS / apps)
* secure mode    = guest ring 3 (GU-Enclave), guest ring 0 (P-Enclave),
                   or host ring 3 (HU-Enclave)

The :class:`Cpu` tracks which context is live and charges the calibrated
cost of each transition step; the world-switch engine in
``repro.monitor.world`` drives it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import HardwareError
from repro.hw import costs
from repro.hw.cycles import CycleCounter
from repro.hw.tlb import Tlb


class CpuMode(enum.Enum):
    """Which privilege context is executing."""

    MONITOR = "monitor"          # VMX root, ring 0
    HOST_USER = "host-user"      # VMX root, ring 3 (HU-Enclave)
    GUEST_KERNEL = "guest-ring0"  # VMX non-root, ring 0 (primary OS / P-Enclave)
    GUEST_USER = "guest-ring3"   # VMX non-root, ring 3 (apps / GU-Enclave)


@dataclass
class VcpuState:
    """The register and address-space state of one virtual CPU context."""

    name: str
    mode: CpuMode
    gpt_root: int | None = None    # guest page table root (guest contexts)
    npt_root: int | None = None    # nested page table root (guest contexts)
    host_pt_root: int | None = None  # host page table root (host contexts)
    asid: int = 0
    regs: dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> dict[str, int]:
        return dict(self.regs)


class Cpu:
    """One logical CPU: current context, TLB, cycle counter."""

    def __init__(self, cycles: CycleCounter | None = None,
                 tlb: Tlb | None = None) -> None:
        self.cycles = cycles or CycleCounter()
        self.tlb = tlb or Tlb(costs.TLB_ENTRIES)
        self.current: Optional[VcpuState] = None
        self.mode: CpuMode = CpuMode.MONITOR
        self._next_asid = 1

    def allocate_asid(self) -> int:
        asid = self._next_asid
        self._next_asid += 1
        return asid

    def rdtsc(self) -> int:
        """Read the time-stamp counter (simulated cycles)."""
        return self.cycles.read()

    # -- context switching ------------------------------------------------------

    def load_context(self, state: VcpuState) -> None:
        """Make ``state`` the executing context (no cost: callers charge)."""
        self.current = state
        self.mode = state.mode

    def charge_steps(self, steps: costs.Steps, category: str) -> int:
        """Charge an itemized step list; returns the total charged.

        The steps all land on one category, and step costs are integers
        (``costs.Steps``), so charging their sum in one call leaves the
        counter and its per-category breakdown bit-identical to charging
        each step separately.
        """
        total = 0
        for _, cyc in steps:
            total += cyc
        self.cycles.charge(total, category)
        return total

    def state_digest(self) -> str:
        """A canonical hash of the CPU context (for Machine.state_hash)."""
        from repro.hw import statehash
        current = None
        if self.current is not None:
            c = self.current
            current = {
                "name": c.name, "mode": c.mode, "gpt_root": c.gpt_root,
                "npt_root": c.npt_root, "host_pt_root": c.host_pt_root,
                "asid": c.asid, "regs": c.regs,
            }
        return statehash.digest({
            "mode": self.mode, "next_asid": self._next_asid,
            "current": current,
        })

    def require_mode(self, *modes: CpuMode) -> None:
        """Guard: the executing context must be in one of ``modes``."""
        if self.mode not in modes:
            raise HardwareError(
                f"operation requires mode in {[m.value for m in modes]}, "
                f"CPU is in {self.mode.value}")
