"""Simulated hardware platform.

This package is the substrate everything else runs on: a cycle counter,
physical memory with frame ownership, real 4-level page tables (stored in
simulated physical memory) with a two-dimensional nested walker, a TLB, an
LLC cache model, memory-encryption engines (AMD-SME / Intel-MEE style), a
TPM 2.0 model, an IOMMU, and the CPU privilege-mode model.

The cost constants in :mod:`repro.hw.costs` are calibrated against the
numbers the HyperEnclave paper publishes (hypercall ~880 cycles, syscall
~120 cycles, Table 1/2 microbenchmarks); see DESIGN.md.
"""

from repro.hw.cycles import CycleCounter
from repro.hw.phys import PhysicalMemory, OwnerKind, PAGE_SIZE
from repro.hw.paging import PageTable, PageTableFlags, NestedTranslator
from repro.hw.tlb import Tlb
from repro.hw.cache import Llc
from repro.hw.memenc import (EncryptionEngine, NoEncryption, AmdSme,
                             IntelMee)
from repro.hw.tpm import Tpm
from repro.hw.iommu import Iommu
from repro.hw.cpu import Cpu, CpuMode
from repro.hw.machine import Machine, MachineConfig

__all__ = [
    "CycleCounter",
    "PhysicalMemory",
    "OwnerKind",
    "PAGE_SIZE",
    "PageTable",
    "PageTableFlags",
    "NestedTranslator",
    "Tlb",
    "Llc",
    "EncryptionEngine",
    "NoEncryption",
    "AmdSme",
    "IntelMee",
    "Tpm",
    "Iommu",
    "Cpu",
    "CpuMode",
    "Machine",
    "MachineConfig",
]
