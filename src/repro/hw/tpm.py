"""TPM 2.0 model: PCRs, extend, quote, seal/unseal, RNG.

The measured-late-launch chain (Sec 3.3) extends each boot component into
PCRs; the quote is signed with an AIK that is itself certified by the
burned-in EK, so a verifier can check the whole chain.  ``seal`` binds a
blob to the current PCR values and to *this* TPM's internal storage key —
unsealing on another TPM, or with different PCRs, fails.  PCRs reset on
reboot and can only ever be extended, never set, which is what makes the
measurement chain rollback-proof.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.crypto import (Drbg, RsaKeyPair, RsaPublicKey, aead_encrypt,
                          aead_decrypt, generate_keypair, hkdf, sha256)
from repro.errors import SealError, TpmError

NUM_PCRS = 24
PCR_SIZE = 32

# Key generation is the slow part of building a machine; memoize per seed
# so a deterministic test-suite pays it once.
_KEY_CACHE: dict[tuple[bytes, str], RsaKeyPair] = {}


def _cached_keypair(seed: bytes, label: str) -> RsaKeyPair:
    key = (seed, label)
    if key not in _KEY_CACHE:
        _KEY_CACHE[key] = generate_keypair(
            seed=sha256(b"tpm-key", label.encode(), seed))
    return _KEY_CACHE[key]


@dataclass(frozen=True)
class TpmQuote:
    """A signed report of selected PCR values.

    ``signature`` is the AIK's signature over (nonce, selection, values);
    ``aik_public``/``aik_cert`` form the certificate chain back to the EK.
    """

    nonce: bytes
    pcr_selection: tuple[int, ...]
    pcr_values: tuple[bytes, ...]
    signature: bytes
    aik_public: RsaPublicKey
    aik_cert: bytes

    def signed_payload(self) -> bytes:
        payload = b"TPM_QUOTE" + self.nonce
        payload += struct.pack("<I", len(self.pcr_selection))
        for idx, value in zip(self.pcr_selection, self.pcr_values):
            payload += struct.pack("<I", idx) + value
        return payload

    def verify(self, ek_public: RsaPublicKey) -> bool:
        """Verify the AIK certificate chain and the quote signature."""
        if not ek_public.verify(b"TPM_AIK_CERT" + self.aik_public.to_bytes(),
                                self.aik_cert):
            return False
        return self.aik_public.verify(self.signed_payload(), self.signature)


class Tpm:
    """A single TPM chip with its own EK, AIK, PCR bank and storage key."""

    def __init__(self, seed: bytes | None = None) -> None:
        self._drbg = Drbg(seed)
        self._seed = seed if seed is not None else self._drbg.read(32)
        self.pcrs: list[bytes] = [b"\x00" * PCR_SIZE] * NUM_PCRS
        self._storage_key = hkdf(self._seed, info=b"tpm-storage-root-key")
        self._ek: RsaKeyPair | None = None
        self._aik: RsaKeyPair | None = None
        self._aik_cert: bytes | None = None
        # NV storage: survives reboot() by design.
        self._nv_counters: dict[int, int] = {}

    # -- identity ------------------------------------------------------------

    @property
    def ek(self) -> RsaKeyPair:
        if self._ek is None:
            self._ek = _cached_keypair(self._seed, "endorsement")
        return self._ek

    @property
    def ek_public(self) -> RsaPublicKey:
        return self.ek.public

    @property
    def aik(self) -> RsaKeyPair:
        if self._aik is None:
            self._aik = _cached_keypair(self._seed, "attestation-identity")
        return self._aik

    def aik_cert(self) -> bytes:
        """The EK's certification of the AIK public key."""
        if self._aik_cert is None:
            self._aik_cert = self.ek.sign(
                b"TPM_AIK_CERT" + self.aik.public.to_bytes())
        return self._aik_cert

    # -- PCRs ------------------------------------------------------------------

    def extend(self, index: int, digest: bytes) -> bytes:
        """PCR extend: ``pcr = SHA256(pcr || digest)``; returns the new value."""
        self._check_pcr(index)
        if len(digest) != PCR_SIZE:
            raise TpmError(f"extend digest must be {PCR_SIZE} bytes")
        self.pcrs[index] = sha256(self.pcrs[index], digest)
        return self.pcrs[index]

    def read_pcr(self, index: int) -> bytes:
        self._check_pcr(index)
        return self.pcrs[index]

    def reboot(self) -> None:
        """Power cycle: PCRs reset to zero (and only extends can change them)."""
        self.pcrs = [b"\x00" * PCR_SIZE] * NUM_PCRS

    @staticmethod
    def _check_pcr(index: int) -> None:
        if not 0 <= index < NUM_PCRS:
            raise TpmError(f"no such PCR: {index}")

    # -- quote -----------------------------------------------------------------

    def quote(self, nonce: bytes, pcr_selection: tuple[int, ...]) -> TpmQuote:
        """Sign the selected PCR values (TPM2_Quote)."""
        for idx in pcr_selection:
            self._check_pcr(idx)
        values = tuple(self.pcrs[idx] for idx in pcr_selection)
        unsigned = TpmQuote(nonce=nonce, pcr_selection=tuple(pcr_selection),
                            pcr_values=values, signature=b"",
                            aik_public=self.aik.public,
                            aik_cert=self.aik_cert())
        signature = self.aik.sign(unsigned.signed_payload())
        return TpmQuote(nonce=nonce, pcr_selection=tuple(pcr_selection),
                        pcr_values=values, signature=signature,
                        aik_public=self.aik.public, aik_cert=self.aik_cert())

    # -- seal/unseal -------------------------------------------------------------

    def seal(self, data: bytes, pcr_selection: tuple[int, ...]) -> bytes:
        """Encrypt ``data`` bound to this TPM and the *current* PCR values."""
        for idx in pcr_selection:
            self._check_pcr(idx)
        policy = sha256(*[self.pcrs[idx] for idx in pcr_selection]) \
            if pcr_selection else b"\x00" * PCR_SIZE
        header = struct.pack("<I", len(pcr_selection)) + b"".join(
            struct.pack("<I", idx) for idx in pcr_selection)
        key = hkdf(self._storage_key, info=b"seal" + policy)
        return header + aead_encrypt(key, self.random(16), data, aad=policy)

    def unseal(self, blob: bytes) -> bytes:
        """Decrypt a sealed blob; fails unless PCRs match the seal-time values."""
        if len(blob) < 4:
            raise SealError("sealed blob too short")
        (count,) = struct.unpack_from("<I", blob)
        offset = 4
        if count > NUM_PCRS or len(blob) < offset + 4 * count:
            raise SealError("corrupt sealed blob header")
        selection = []
        for _ in range(count):
            (idx,) = struct.unpack_from("<I", blob, offset)
            self._check_pcr(idx)
            selection.append(idx)
            offset += 4
        policy = sha256(*[self.pcrs[idx] for idx in selection]) \
            if selection else b"\x00" * PCR_SIZE
        key = hkdf(self._storage_key, info=b"seal" + policy)
        return aead_decrypt(key, blob[offset:], aad=policy)

    # -- NV monotonic counters ---------------------------------------------------

    def nv_counter_define(self, index: int) -> None:
        """TPM2_NV_DefineSpace for a monotonic counter.

        NV counters survive reboots and can only ever increment — the
        anti-rollback primitive versioned sealed storage builds on.
        """
        if index in self._nv_counters:
            raise TpmError(f"NV counter {index} already defined")
        self._nv_counters[index] = 0

    def nv_counter_increment(self, index: int) -> int:
        """TPM2_NV_Increment; returns the new value."""
        if index not in self._nv_counters:
            raise TpmError(f"no NV counter at index {index}")
        self._nv_counters[index] += 1
        return self._nv_counters[index]

    def nv_counter_read(self, index: int) -> int:
        if index not in self._nv_counters:
            raise TpmError(f"no NV counter at index {index}")
        return self._nv_counters[index]

    # -- randomness -----------------------------------------------------------

    def random(self, n: int) -> bytes:
        """TPM2_GetRandom."""
        return self._drbg.read(n)

    # -- state hashing ---------------------------------------------------------

    def state_digest(self) -> str:
        """A canonical hash of PCRs, NV counters, and the DRBG position.

        The DRBG position matters: two runs that drew different amounts
        of TPM randomness are in different states even if every PCR
        matches, because their *next* random byte differs.
        """
        from repro.hw import statehash
        return statehash.digest({
            "pcrs": self.pcrs,
            "nv": self._nv_counters,
            "drbg": self._drbg.position(),
        })
