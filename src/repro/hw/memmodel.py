"""The workload-facing memory subsystem.

Workloads (the B-tree database, the web server, the NBench kernels...)
don't move every byte through the byte-accurate physical memory — that
fidelity is reserved for the paths where *security semantics* matter
(marshalling buffer, measurement, page tables).  For performance
accounting they call :meth:`MemorySubsystem.touch`, which drives the full
TLB -> LLC -> encryption-engine -> (optional EPC paging) pipeline and
charges cycles, per 64-byte line, exactly once per line touched.

An SGX backend attaches an :class:`EpcModel`: a page-granular LRU of EPC
residency.  A touch to a non-resident page costs an EPC page fault (EWB +
ELDU + driver); sustained thrashing switches to the driver's cheaper
batched-eviction path — this produces the Figure 8b cliff and the
beyond-EPC regime of Figure 11.

Two implementations drive the pipeline (see :mod:`repro.hw.fastpath`):
the per-page/per-line *legacy* reference loops (``REPRO_FASTPATH=0``)
and the default *fast* path, which memoizes translations above the TLB
(:meth:`~repro.hw.tlb.Tlb.fast_hit`), processes the line range through
the bulk :meth:`~repro.hw.cache.Llc.access_range` kernel, and charges
engine costs per missed *run* instead of per line.  Every cost constant
on this path is integer-valued (guarded at eligibility time), so the
re-associated sums are exact and the charge — a single
:meth:`~repro.hw.cycles.CycleCounter.charge` per touch, as before — is
bit-identical to the legacy path.
"""

from __future__ import annotations

from collections import OrderedDict, deque

from repro.hw import costs, fastpath
from repro.hw.cache import Llc
from repro.hw.cycles import CycleCounter
from repro.hw.memenc import (AmdSme, EncryptionEngine, IntelMee,
                             NoEncryption)
from repro.hw.phys import PAGE_SIZE
from repro.hw.tlb import Tlb

# Fast-path eligibility, part 1: every cost constant the bulk kernels
# re-associate must be integer-valued, so that summing them in a
# different order (n * cost instead of cost + cost + ...) is exact in
# floating point.  Evaluated once at import; a calibrated cost model
# with fractional per-line constants simply keeps the legacy loops.
_INTEGRAL_COSTS = all(float(value).is_integer() for value in (
    costs.LLC_HIT_CYCLES, costs.DRAM_CYCLES, costs.SEQ_STREAM_CYCLES,
    costs.PAGE_WALK_GUEST_CYCLES, costs.PAGE_WALK_NESTED_CYCLES,
    costs.MEE_METADATA_PROBE_CYCLES, costs.MEE_METADATA_MISS_CYCLES,
    costs.SGX_EPC_POPULATE_CYCLES, costs.SGX_EPC_FAULT_CYCLES,
    costs.SGX_EPC_FAULT_BATCHED_CYCLES))

# Fast-path eligibility, part 2: engine dispatch.  Exact-type checks on
# purpose — a subclass overriding miss_cycles must fall back to the
# legacy per-line loop that actually calls it.
_KIND_NONE, _KIND_FLAT, _KIND_MEE, _KIND_INELIGIBLE = 0, 1, 2, -1


def _engine_fast_kind(engine) -> int:
    t = type(engine)
    if t is NoEncryption or t is EncryptionEngine:
        return _KIND_NONE
    if t is AmdSme:
        constants = (engine.per_miss, engine.per_writeback,
                     engine.per_stream_miss)
        kind = _KIND_FLAT
    elif t is IntelMee:
        constants = (engine.per_miss, engine.per_writeback,
                     engine.per_stream_miss)
        kind = _KIND_MEE
    else:
        return _KIND_INELIGIBLE
    if all(float(value).is_integer() for value in constants):
        return kind
    return _KIND_INELIGIBLE


class EpcModel:
    """Page-granular EPC residency with LRU eviction and fault costs."""

    __slots__ = ("capacity_pages", "_resident", "faults", "_recent")

    def __init__(self, size_bytes: int = costs.SGX_EPC_SIZE) -> None:
        self.capacity_pages = max(size_bytes // PAGE_SIZE, 1)
        self._resident: OrderedDict[int, None] = OrderedDict()
        self.faults = 0
        self._recent: deque[bool] = deque(maxlen=64)  # fault history

    def access(self, page_id: int) -> float:
        """Touch a page; returns the fault cost in cycles (0 if resident)."""
        if page_id in self._resident:
            self._resident.move_to_end(page_id)
            self._recent.append(False)
            return 0.0
        self._resident[page_id] = None
        if len(self._resident) <= self.capacity_pages:
            # Room left in the EPC: first touch is just EAUG + zeroing.
            return float(costs.SGX_EPC_POPULATE_CYCLES)
        self._resident.popitem(last=False)
        self.faults += 1
        self._recent.append(True)
        if len(self._recent) >= 32 and self.fault_rate() > 0.5:
            # Sustained thrashing: the driver batches evictions, so the
            # marginal fault is cheaper than a cold one.
            return float(costs.SGX_EPC_FAULT_BATCHED_CYCLES)
        return float(costs.SGX_EPC_FAULT_CYCLES)

    def fault_rate(self) -> float:
        if not self._recent:
            return 0.0
        return sum(self._recent) / len(self._recent)

    def reset(self) -> None:
        self._resident.clear()
        self._recent.clear()
        self.faults = 0


class MemorySubsystem:
    """TLB + LLC + encryption engine (+ optional EPC) cost pipeline."""

    def __init__(self, cycles: CycleCounter,
                 engine: EncryptionEngine | None = None,
                 *,
                 llc: Llc | None = None,
                 tlb: Tlb | None = None,
                 epc: EpcModel | None = None,
                 nested_paging: bool = False,
                 category: str = "memory") -> None:
        self.cycles = cycles
        self.engine = engine if engine is not None else NoEncryption()
        # NOTE: Llc/Tlb define __len__, so an empty cache is falsy —
        # ``llc or Llc()`` would silently discard a caller-supplied one.
        self.llc = llc if llc is not None else Llc()
        self.tlb = tlb if tlb is not None else Tlb(costs.TLB_ENTRIES)
        self.epc = epc
        self.nested_paging = nested_paging
        self.category = category
        self.asid = 1
        # Fast-path eligibility, resolved at first touch (None = not yet
        # checked); swapping engine/llc/tlb afterwards requires a fresh
        # subsystem.
        self._fp_kind: int | None = None

    def _resolve_fp_kind(self) -> int:
        kind = _KIND_INELIGIBLE
        if _INTEGRAL_COSTS and type(self.llc) is Llc \
                and type(self.tlb) is Tlb \
                and (self.epc is None or type(self.epc) is EpcModel):
            kind = _engine_fast_kind(self.engine)
        self._fp_kind = kind
        return kind

    # -- the hot path ---------------------------------------------------------

    def touch(self, addr: int, size: int = 8, *, write: bool = False) -> float:
        """Access ``size`` bytes at abstract address ``addr``; charge cycles.

        Returns the cycles charged (useful to tests).
        """
        if size <= 0:
            return 0.0
        if fastpath.MODE:
            kind = self._fp_kind
            if kind is None:
                kind = self._resolve_fp_kind()
            if kind >= 0:
                return self._touch_fast(addr, size, write, False, kind)
        charged = 0.0
        first_line = addr // costs.CACHE_LINE
        last_line = (addr + size - 1) // costs.CACHE_LINE
        first_page = addr // PAGE_SIZE
        last_page = (addr + size - 1) // PAGE_SIZE

        for page in range(first_page, last_page + 1):
            if self.tlb.lookup(self.asid, page * PAGE_SIZE) is None:
                walk = (costs.PAGE_WALK_NESTED_CYCLES if self.nested_paging
                        else costs.PAGE_WALK_GUEST_CYCLES)
                charged += walk
                self.tlb.insert(self.asid, page * PAGE_SIZE, page * PAGE_SIZE,
                                flags=0)
            if self.epc is not None:
                charged += self.epc.access(page)

        for line in range(first_line, last_line + 1):
            hit, evicted_dirty = self.llc.access_ex(line, write=write)
            if hit:
                charged += costs.LLC_HIT_CYCLES
            else:
                charged += costs.DRAM_CYCLES
                charged += self.engine.miss_cycles(line, write=write)
            if evicted_dirty:
                charged += self.engine.writeback_cycles()

        self.cycles.charge(charged, self.category)
        return charged

    def touch_sequential(self, addr: int, size: int, *,
                         write: bool = False) -> float:
        """A prefetch-friendly streaming sweep over ``size`` bytes.

        Sequential DRAM traffic is latency-hidden by the prefetchers, so a
        missed line costs :data:`~repro.hw.costs.SEQ_STREAM_CYCLES` per
        8-byte word instead of the full DRAM latency, while encryption
        engines still see (and charge for) each missed line.
        """
        if size <= 0:
            return 0.0
        if fastpath.MODE:
            kind = self._fp_kind
            if kind is None:
                kind = self._resolve_fp_kind()
            if kind >= 0:
                return self._touch_fast(addr, size, write, True, kind)
        charged = 0.0
        first_line = addr // costs.CACHE_LINE
        last_line = (addr + size - 1) // costs.CACHE_LINE
        words_per_line = costs.CACHE_LINE // 8

        for page in range(addr // PAGE_SIZE, (addr + size - 1) // PAGE_SIZE + 1):
            if self.tlb.lookup(self.asid, page * PAGE_SIZE) is None:
                walk = (costs.PAGE_WALK_NESTED_CYCLES if self.nested_paging
                        else costs.PAGE_WALK_GUEST_CYCLES)
                charged += walk
                self.tlb.insert(self.asid, page * PAGE_SIZE, page * PAGE_SIZE,
                                flags=0)
            if self.epc is not None:
                charged += self.epc.access(page)

        for line in range(first_line, last_line + 1):
            hit, evicted_dirty = self.llc.access_ex(line, write=write)
            if hit:
                charged += costs.LLC_HIT_CYCLES
            else:
                charged += costs.SEQ_STREAM_CYCLES * words_per_line
                charged += self.engine.miss_cycles(line, write=write,
                                                   streaming=True)
            if evicted_dirty:
                charged += self.engine.writeback_cycles()

        self.cycles.charge(charged, self.category)
        return charged

    def _touch_fast(self, addr: int, size: int, write: bool,
                    streaming: bool, kind: int) -> float:
        """The layered fast path; charges identically to the legacy loops.

        Page stage: the TLB's resident-key memo confirms hot hits without
        LRU bookkeeping; misses fall into the reference lookup/walk/insert
        sequence, so counters and eviction order are untouched.  Line
        stage: one bulk :meth:`~repro.hw.cache.Llc.access_range` call,
        then closed-form cost arithmetic over the aggregate hit/miss/
        eviction counts — exact because every constant involved is
        integral (see ``_INTEGRAL_COSTS``).
        """
        charged = 0.0
        tlb = self.tlb
        asid = self.asid
        fast_hit = tlb.fast_hit
        epc = self.epc
        walk = (costs.PAGE_WALK_NESTED_CYCLES if self.nested_paging
                else costs.PAGE_WALK_GUEST_CYCLES)
        first_page = addr // PAGE_SIZE
        last_page = (addr + size - 1) // PAGE_SIZE
        if epc is None:
            for page in range(first_page, last_page + 1):
                if not fast_hit(asid, page) \
                        and tlb.lookup(asid, page * PAGE_SIZE) is None:
                    charged += walk
                    tlb.insert(asid, page * PAGE_SIZE, page * PAGE_SIZE,
                               flags=0)
        else:
            epc_access = epc.access
            for page in range(first_page, last_page + 1):
                if not fast_hit(asid, page) \
                        and tlb.lookup(asid, page * PAGE_SIZE) is None:
                    charged += walk
                    tlb.insert(asid, page * PAGE_SIZE, page * PAGE_SIZE,
                               flags=0)
                charged += epc_access(page)

        first_line = addr // costs.CACHE_LINE
        last_line = (addr + size - 1) // costs.CACHE_LINE
        hits, misses, dirty_evictions, missed_runs = \
            self.llc.access_range(first_line, last_line, write=write)
        if streaming:
            miss_base = costs.SEQ_STREAM_CYCLES * (costs.CACHE_LINE // 8)
        else:
            miss_base = costs.DRAM_CYCLES
        charged += hits * costs.LLC_HIT_CYCLES + misses * miss_base
        engine = self.engine
        if misses and kind:
            if kind == _KIND_FLAT:
                per = engine.per_stream_miss if streaming else engine.per_miss
                charged += misses * per
            else:
                for run_start, run_stop in missed_runs:
                    charged += engine.miss_cycles_run(
                        run_start, run_stop, write=write, streaming=streaming)
        if dirty_evictions:
            charged += dirty_evictions * engine.writeback_cycles()

        self.cycles.charge(charged, self.category)
        return charged

    def compute(self, ops: float) -> None:
        """Charge pure-compute cycles (one abstract op = ``OP_CYCLES``)."""
        self.cycles.charge(ops * costs.OP_CYCLES, "compute")

    def memcpy(self, size: int) -> float:
        """Charge a streaming copy of ``size`` bytes."""
        lines = max(1, (size + costs.CACHE_LINE - 1) // costs.CACHE_LINE)
        charged = costs.MEMCPY_FIXED_CYCLES + lines * costs.MEMCPY_CYCLES_PER_LINE
        self.cycles.charge(charged, "memcpy")
        return charged

    def clflush(self, addr: int, size: int) -> None:
        """Flush a byte range out of the LLC (the CLFLUSH loop in Fig 7)."""
        self.llc.flush_range(addr, size)

    def reset_state(self) -> None:
        """Cold caches/TLB (used between benchmark configurations)."""
        self.llc.flush_all()
        self.tlb.flush()
        self.engine.reset()
        if self.epc is not None:
            self.epc.reset()
