"""Simulated physical memory with frame ownership.

Physical memory is an array of 4 KB frames, lazily materialized as
``bytearray`` pages.  Every frame carries an *owner tag* — free, normal
(primary-OS-managed), monitor (RustMonitor's reserved region) or enclave
(with an enclave id).  Ownership is what the paper's security requirements
R-1..R-3 are about; the MMU, the monitor, and the IOMMU consult it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from types import MappingProxyType

from repro.errors import PhysicalMemoryError

PAGE_SIZE = 4096
PAGE_SHIFT = 12


class OwnerKind(enum.Enum):
    """Who owns a physical frame."""

    FREE = "free"
    NORMAL = "normal"          # primary-OS managed memory
    MONITOR = "monitor"        # RustMonitor's private reserved memory
    ENCLAVE = "enclave"        # enclave memory (tagged with an enclave id)
    DEVICE = "device"          # MMIO / device-visible buffers


@dataclass(frozen=True)
class Owner:
    """A frame owner tag; ``enclave_id`` is set only for ENCLAVE frames."""

    kind: OwnerKind
    enclave_id: int | None = None

    def __post_init__(self) -> None:
        if (self.kind is OwnerKind.ENCLAVE) != (self.enclave_id is not None):
            raise ValueError("enclave_id must be set iff kind is ENCLAVE")


FREE = Owner(OwnerKind.FREE)
NORMAL = Owner(OwnerKind.NORMAL)
MONITOR = Owner(OwnerKind.MONITOR)


def enclave_owner(enclave_id: int) -> Owner:
    """Owner tag for a frame belonging to enclave ``enclave_id``."""
    return Owner(OwnerKind.ENCLAVE, enclave_id)


class PhysicalMemory:
    """Byte-addressable physical memory made of owned 4 KB frames."""

    def __init__(self, size: int) -> None:
        if size <= 0 or size % PAGE_SIZE:
            raise ValueError("physical memory size must be a positive "
                             "multiple of the page size")
        self.size = size
        self.num_frames = size // PAGE_SIZE
        self._frames: dict[int, bytearray] = {}
        self._owners: dict[int, Owner] = {}
        # Set by repro.sanitizer when REPRO_SANITIZE=1; every ownership
        # transition is mirrored into its shadow model.
        self.sanitizer = None

    # -- ownership ---------------------------------------------------------

    def owner_of(self, pa: int) -> Owner:
        """Owner tag of the frame containing physical address ``pa``."""
        return self._owners.get(self._frame_no(pa), FREE)

    def owned_frames(self) -> MappingProxyType:
        """Read-only frame-number -> Owner view (FREE frames absent)."""
        return MappingProxyType(self._owners)

    def set_owner(self, pa: int, owner: Owner, npages: int = 1) -> None:
        """Tag ``npages`` frames starting at ``pa`` with ``owner``."""
        frame = self._frame_no(pa)
        if pa % PAGE_SIZE:
            raise PhysicalMemoryError(f"unaligned frame base {pa:#x}")
        if frame + npages > self.num_frames:
            raise PhysicalMemoryError("frame range beyond physical memory")
        for i in range(npages):
            if owner.kind is OwnerKind.FREE:
                self._owners.pop(frame + i, None)
            else:
                self._owners[frame + i] = owner
        if self.sanitizer is not None:
            self.sanitizer.on_set_owner(frame, owner, npages)

    # -- data --------------------------------------------------------------

    def read(self, pa: int, length: int) -> bytes:
        """Read ``length`` bytes at physical address ``pa``."""
        self._check_range(pa, length)
        out = bytearray()
        while length:
            frame, offset = divmod(pa, PAGE_SIZE)
            chunk = min(length, PAGE_SIZE - offset)
            page = self._frames.get(frame)
            if page is None:
                out += b"\x00" * chunk
            else:
                out += page[offset:offset + chunk]
            pa += chunk
            length -= chunk
        return bytes(out)

    def write(self, pa: int, data: bytes) -> None:
        """Write ``data`` at physical address ``pa``."""
        self._check_range(pa, len(data))
        view = memoryview(data)
        while view:
            frame, offset = divmod(pa, PAGE_SIZE)
            chunk = min(len(view), PAGE_SIZE - offset)
            page = self._frames.get(frame)
            if page is None:
                page = bytearray(PAGE_SIZE)
                self._frames[frame] = page
            page[offset:offset + chunk] = view[:chunk]
            pa += chunk
            view = view[chunk:]

    def read_u64(self, pa: int) -> int:
        return int.from_bytes(self.read(pa, 8), "little")

    def write_u64(self, pa: int, value: int) -> None:
        self.write(pa, (value & (2 ** 64 - 1)).to_bytes(8, "little"))

    def zero_frame(self, pa: int) -> None:
        """Scrub a frame (used when recycling enclave pages)."""
        if pa % PAGE_SIZE:
            raise PhysicalMemoryError(f"unaligned frame base {pa:#x}")
        self._check_range(pa, PAGE_SIZE)
        self._frames.pop(pa // PAGE_SIZE, None)

    # -- state hashing -----------------------------------------------------

    def state_digest(self) -> str:
        """A canonical hash of frame ownership and frame contents.

        A frame holding all zeroes hashes the same as an absent frame:
        ``zero_frame`` pops the backing page while a write of zeroes
        leaves it resident, and the two must not be distinguishable.
        """
        import hashlib
        h = hashlib.sha256()
        for frame in sorted(self._owners):
            owner = self._owners[frame]
            h.update(f"own:{frame}:{owner.kind.value}:"
                     f"{owner.enclave_id}\n".encode())
        zero = bytes(PAGE_SIZE)
        for frame in sorted(self._frames):
            page = self._frames[frame]
            if page == zero:
                continue
            h.update(f"mem:{frame}:".encode())
            h.update(hashlib.sha256(page).digest())
            h.update(b"\n")
        return h.hexdigest()

    # -- helpers -----------------------------------------------------------

    def _frame_no(self, pa: int) -> int:
        if not 0 <= pa < self.size:
            raise PhysicalMemoryError(f"physical address {pa:#x} out of range")
        return pa >> PAGE_SHIFT

    def _check_range(self, pa: int, length: int) -> None:
        if length < 0:
            raise PhysicalMemoryError("negative length")
        if not 0 <= pa <= self.size - length:
            raise PhysicalMemoryError(
                f"physical range [{pa:#x}, {pa + length:#x}) out of bounds")


class FramePool:
    """An allocator over a contiguous physical region.

    RustMonitor's reserved memory and the primary OS's normal memory each
    manage their own pool ("RustMonitor manages the reserved physical
    memory by maintaining a list of free pages", Sec 5.1).
    """

    def __init__(self, phys: PhysicalMemory, base: int, size: int,
                 owner: Owner) -> None:
        if base % PAGE_SIZE or size % PAGE_SIZE:
            raise ValueError("pool base/size must be page aligned")
        self.phys = phys
        self.base = base
        self.size = size
        self.default_owner = owner
        self._free: list[int] = list(range(base + size - PAGE_SIZE,
                                           base - 1, -PAGE_SIZE))

    @property
    def free_pages(self) -> int:
        return len(self._free)

    def alloc(self, owner: Owner | None = None) -> int:
        """Pop a free frame, tag it, scrub it, and return its base PA."""
        if not self._free:
            raise PhysicalMemoryError("frame pool exhausted")
        pa = self._free.pop()
        self.phys.set_owner(pa, owner or self.default_owner)
        self.phys.zero_frame(pa)
        return pa

    def free(self, pa: int) -> None:
        """Scrub a frame and return it to the pool."""
        if not self.base <= pa < self.base + self.size:
            raise PhysicalMemoryError(
                f"frame {pa:#x} does not belong to this pool")
        self.phys.zero_frame(pa)
        self.phys.set_owner(pa, FREE)
        self._free.append(pa)

    def contains(self, pa: int) -> bool:
        return self.base <= pa < self.base + self.size

    def state_digest(self) -> str:
        """A hash of the free list (order included: it decides the next
        allocation, so it is behavioral state, not bookkeeping)."""
        import hashlib
        h = hashlib.sha256()
        for pa in self._free:
            h.update(pa.to_bytes(8, "little"))
        return h.hexdigest()
