"""Simulated physical memory with frame ownership.

Physical memory is an array of 4 KB frames, lazily materialized as
``bytearray`` pages.  Every frame carries an *owner tag* — free, normal
(primary-OS-managed), monitor (RustMonitor's reserved region) or enclave
(with an enclave id).  Ownership is what the paper's security requirements
R-1..R-3 are about; the MMU, the monitor, and the IOMMU consult it.
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from dataclasses import dataclass
from types import MappingProxyType

from repro.errors import PhysicalMemoryError

PAGE_SIZE = 4096
PAGE_SHIFT = 12

# set_owner calls tagging at least this many frames at once are kept as
# a (start, end, owner) region instead of one dict entry per frame; the
# monitor's multi-GB reserved-memory tag at boot is the case that counts.
_REGION_MIN_PAGES = 4096


class OwnerKind(enum.Enum):
    """Who owns a physical frame."""

    FREE = "free"
    NORMAL = "normal"          # primary-OS managed memory
    MONITOR = "monitor"        # RustMonitor's private reserved memory
    ENCLAVE = "enclave"        # enclave memory (tagged with an enclave id)
    DEVICE = "device"          # MMIO / device-visible buffers


@dataclass(frozen=True)
class Owner:
    """A frame owner tag; ``enclave_id`` is set only for ENCLAVE frames."""

    kind: OwnerKind
    enclave_id: int | None = None

    def __post_init__(self) -> None:
        if (self.kind is OwnerKind.ENCLAVE) != (self.enclave_id is not None):
            raise ValueError("enclave_id must be set iff kind is ENCLAVE")


FREE = Owner(OwnerKind.FREE)
NORMAL = Owner(OwnerKind.NORMAL)
MONITOR = Owner(OwnerKind.MONITOR)


def enclave_owner(enclave_id: int) -> Owner:
    """Owner tag for a frame belonging to enclave ``enclave_id``."""
    return Owner(OwnerKind.ENCLAVE, enclave_id)


class PhysicalMemory:
    """Byte-addressable physical memory made of owned 4 KB frames."""

    def __init__(self, size: int) -> None:
        if size <= 0 or size % PAGE_SIZE:
            raise ValueError("physical memory size must be a positive "
                             "multiple of the page size")
        self.size = size
        self.num_frames = size // PAGE_SIZE
        self._frames: dict[int, bytearray] = {}
        # Per-frame owner overrides.  Frames covered by a bulk region may
        # carry an explicit FREE entry here: it shadows the region tag
        # (externally those frames simply read as FREE, like any other).
        self._owners: dict[int, Owner] = {}
        # Sorted, disjoint (start_frame, end_frame, owner) bulk tags;
        # _region_starts mirrors the start frames for bisection.
        self._regions: list[tuple[int, int, Owner]] = []
        self._region_starts: list[int] = []
        # Set by repro.sanitizer when REPRO_SANITIZE=1; every ownership
        # transition is mirrored into its shadow model.
        self.sanitizer = None

    # -- ownership ---------------------------------------------------------

    def owner_of(self, pa: int) -> Owner:
        """Owner tag of the frame containing physical address ``pa``."""
        frame = self._frame_no(pa)
        owner = self._owners.get(frame)
        if owner is not None:
            return owner
        region = self._region_covering(frame)
        return region[2] if region is not None else FREE

    def owned_frames(self) -> MappingProxyType:
        """Read-only frame-number -> Owner mapping (FREE frames absent)."""
        if not self._regions:
            return MappingProxyType(self._owners)
        combined: dict[int, Owner] = {}
        for start, end, owner in self._regions:
            combined.update(dict.fromkeys(range(start, end), owner))
        for frame, owner in self._owners.items():
            if owner.kind is OwnerKind.FREE:
                combined.pop(frame, None)
            else:
                combined[frame] = owner
        return MappingProxyType(combined)

    def set_owner(self, pa: int, owner: Owner, npages: int = 1) -> None:
        """Tag ``npages`` frames starting at ``pa`` with ``owner``."""
        frame = self._frame_no(pa)
        if pa % PAGE_SIZE:
            raise PhysicalMemoryError(f"unaligned frame base {pa:#x}")
        if frame + npages > self.num_frames:
            raise PhysicalMemoryError("frame range beyond physical memory")
        if owner.kind is OwnerKind.FREE:
            if npages >= _REGION_MIN_PAGES and self._regions:
                self._clear_range(frame, frame + npages)
            else:
                pop = self._owners.pop
                covering = self._region_covering
                for i in range(frame, frame + npages):
                    if covering(i) is not None:
                        self._owners[i] = FREE
                    else:
                        pop(i, None)
        elif npages >= _REGION_MIN_PAGES:
            self._clear_range(frame, frame + npages)
            self._insert_region(frame, frame + npages, owner)
        elif npages == 1:
            self._owners[frame] = owner
        else:
            self._owners.update(dict.fromkeys(range(frame, frame + npages),
                                              owner))
        if self.sanitizer is not None:
            self.sanitizer.on_set_owner(frame, owner, npages)

    def _region_covering(self, frame: int
                         ) -> tuple[int, int, Owner] | None:
        if not self._regions:
            return None
        i = bisect_right(self._region_starts, frame) - 1
        if i >= 0:
            region = self._regions[i]
            if frame < region[1]:
                return region
        return None

    def _insert_region(self, start: int, end: int, owner: Owner) -> None:
        i = bisect_right(self._region_starts, start)
        self._regions.insert(i, (start, end, owner))
        self._region_starts.insert(i, start)

    def _clear_range(self, start: int, end: int) -> None:
        """Remove every override and region tag in [start, end)."""
        if self._regions:
            kept: list[tuple[int, int, Owner]] = []
            for r_start, r_end, r_owner in self._regions:
                if r_end <= start or r_start >= end:
                    kept.append((r_start, r_end, r_owner))
                    continue
                if r_start < start:
                    kept.append((r_start, start, r_owner))
                if r_end > end:
                    kept.append((end, r_end, r_owner))
            self._regions = kept
            self._region_starts = [r[0] for r in kept]
        if self._owners:
            span = end - start
            if span < len(self._owners):
                pop = self._owners.pop
                for i in range(start, end):
                    pop(i, None)
            else:
                for f in [f for f in self._owners if start <= f < end]:
                    del self._owners[f]

    # -- data --------------------------------------------------------------

    def read(self, pa: int, length: int) -> bytes:
        """Read ``length`` bytes at physical address ``pa``."""
        self._check_range(pa, length)
        offset = pa & (PAGE_SIZE - 1)
        if offset + length <= PAGE_SIZE:
            # Single-frame read: one slice, no accumulator.
            page = self._frames.get(pa >> PAGE_SHIFT)
            if page is None:
                return bytes(length)
            return bytes(page[offset:offset + length])
        out = bytearray(length)
        written = 0
        while length:
            frame, offset = divmod(pa, PAGE_SIZE)
            chunk = min(length, PAGE_SIZE - offset)
            page = self._frames.get(frame)
            if page is not None:
                out[written:written + chunk] = page[offset:offset + chunk]
            pa += chunk
            length -= chunk
            written += chunk
        return bytes(out)

    def write(self, pa: int, data: bytes) -> None:
        """Write ``data`` at physical address ``pa``."""
        self._check_range(pa, len(data))
        view = memoryview(data)
        while view:
            frame, offset = divmod(pa, PAGE_SIZE)
            chunk = min(len(view), PAGE_SIZE - offset)
            page = self._frames.get(frame)
            if page is None:
                page = bytearray(PAGE_SIZE)
                self._frames[frame] = page
            page[offset:offset + chunk] = view[:chunk]
            pa += chunk
            view = view[chunk:]

    def read_u64(self, pa: int) -> int:
        # Page-table walks hammer this; a qword never straddles frames
        # when aligned, so take the direct single-frame slice.
        if pa & 7 == 0:
            if not 0 <= pa <= self.size - 8:
                raise PhysicalMemoryError(
                    f"physical range [{pa:#x}, {pa + 8:#x}) out of bounds")
            page = self._frames.get(pa >> PAGE_SHIFT)
            if page is None:
                return 0
            offset = pa & (PAGE_SIZE - 1)
            return int.from_bytes(page[offset:offset + 8], "little")
        return int.from_bytes(self.read(pa, 8), "little")

    def write_u64(self, pa: int, value: int) -> None:
        data = (value & (2 ** 64 - 1)).to_bytes(8, "little")
        if pa & 7 == 0:
            if not 0 <= pa <= self.size - 8:
                raise PhysicalMemoryError(
                    f"physical range [{pa:#x}, {pa + 8:#x}) out of bounds")
            frame = pa >> PAGE_SHIFT
            page = self._frames.get(frame)
            if page is None:
                page = self._frames[frame] = bytearray(PAGE_SIZE)
            offset = pa & (PAGE_SIZE - 1)
            page[offset:offset + 8] = data
            return
        self.write(pa, data)

    def zero_frame(self, pa: int) -> None:
        """Scrub a frame (used when recycling enclave pages)."""
        if pa % PAGE_SIZE:
            raise PhysicalMemoryError(f"unaligned frame base {pa:#x}")
        self._check_range(pa, PAGE_SIZE)
        self._frames.pop(pa // PAGE_SIZE, None)

    # -- state hashing -----------------------------------------------------

    def state_digest(self) -> str:
        """A canonical hash of frame ownership and frame contents.

        A frame holding all zeroes hashes the same as an absent frame:
        ``zero_frame`` pops the backing page while a write of zeroes
        leaves it resident, and the two must not be distinguishable.
        """
        import hashlib
        h = hashlib.sha256()
        owners = self._owners if not self._regions else self.owned_frames()
        # Bulk-tagged regions mean millions of frames share a handful of
        # Owner objects; caching the formatted tail and hashing joined
        # chunks feeds hashlib the exact same byte stream as the original
        # one-update-per-frame loop (digests are unchanged) at a fraction
        # of the cost.
        tails: dict[Owner, str] = {}
        frames = sorted(owners)
        for base in range(0, len(frames), 1 << 16):
            parts = []
            for frame in frames[base:base + (1 << 16)]:
                owner = owners[frame]
                tail = tails.get(owner)
                if tail is None:
                    tail = tails[owner] = (f"{owner.kind.value}:"
                                           f"{owner.enclave_id}\n")
                parts.append(f"own:{frame}:{tail}")
            h.update("".join(parts).encode())
        zero = bytes(PAGE_SIZE)
        for frame in sorted(self._frames):
            page = self._frames[frame]
            if page == zero:
                continue
            h.update(f"mem:{frame}:".encode())
            h.update(hashlib.sha256(page).digest())
            h.update(b"\n")
        return h.hexdigest()

    # -- helpers -----------------------------------------------------------

    def _frame_no(self, pa: int) -> int:
        if not 0 <= pa < self.size:
            raise PhysicalMemoryError(f"physical address {pa:#x} out of range")
        return pa >> PAGE_SHIFT

    def _check_range(self, pa: int, length: int) -> None:
        if length < 0:
            raise PhysicalMemoryError("negative length")
        if not 0 <= pa <= self.size - length:
            raise PhysicalMemoryError(
                f"physical range [{pa:#x}, {pa + length:#x}) out of bounds")


class FramePool:
    """An allocator over a contiguous physical region.

    RustMonitor's reserved memory and the primary OS's normal memory each
    manage their own pool ("RustMonitor manages the reserved physical
    memory by maintaining a list of free pages", Sec 5.1).
    """

    def __init__(self, phys: PhysicalMemory, base: int, size: int,
                 owner: Owner) -> None:
        if base % PAGE_SIZE or size % PAGE_SIZE:
            raise ValueError("pool base/size must be page aligned")
        self.phys = phys
        self.base = base
        self.size = size
        self.default_owner = owner
        # The free list is conceptually ``[top, top-P, ..., base]`` with
        # freed frames appended, popped from the end — i.e. untouched
        # frames hand out ascending from ``base`` and frees are reused
        # LIFO first.  It is represented lazily (a cursor over the
        # never-allocated tail plus an explicit recycled list) so pool
        # construction over gigabytes is O(1); allocation order and the
        # state digest are unchanged.
        self._cursor = base                  # next never-allocated PA
        self._recycled: list[int] = []

    @property
    def free_pages(self) -> int:
        untouched = (self.base + self.size - self._cursor) // PAGE_SIZE
        return untouched + len(self._recycled)

    def alloc(self, owner: Owner | None = None) -> int:
        """Pop a free frame, tag it, scrub it, and return its base PA."""
        if self._recycled:
            pa = self._recycled.pop()
        elif self._cursor < self.base + self.size:
            pa = self._cursor
            self._cursor += PAGE_SIZE
        else:
            raise PhysicalMemoryError("frame pool exhausted")
        self.phys.set_owner(pa, owner or self.default_owner)
        self.phys.zero_frame(pa)
        return pa

    def free(self, pa: int) -> None:
        """Scrub a frame and return it to the pool."""
        if not self.base <= pa < self.base + self.size:
            raise PhysicalMemoryError(
                f"frame {pa:#x} does not belong to this pool")
        self.phys.zero_frame(pa)
        self.phys.set_owner(pa, FREE)
        self._recycled.append(pa)

    def contains(self, pa: int) -> bool:
        return self.base <= pa < self.base + self.size

    def state_digest(self) -> str:
        """A hash of the free list (order included: it decides the next
        allocation, so it is behavioral state, not bookkeeping).

        The byte stream is the explicit free list this pool represents
        (untouched frames descending, then recycled frames in free
        order), so digests match the eager-list implementation exactly.
        """
        import hashlib
        import struct
        untouched = range(self.base + self.size - PAGE_SIZE,
                          self._cursor - 1, -PAGE_SIZE)
        h = hashlib.sha256(struct.pack(f"<{len(untouched)}Q", *untouched))
        h.update(struct.pack(f"<{len(self._recycled)}Q", *self._recycled))
        return h.hexdigest()
