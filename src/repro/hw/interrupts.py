"""Interrupt and exception vectors.

Only the pieces the evaluation needs: exception vector numbers (#UD, #PF),
an interrupt-arrival model (Poisson-ish deterministic spacing) used by the
I/O-intensive workloads to decide how many asynchronous enclave exits a
request suffers, and a tiny IDT abstraction that P-Enclaves program with
their own in-enclave handlers (Sec 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

# x86 exception vectors we model.
VEC_UD = 6      # invalid opcode
VEC_PF = 14     # page fault
VEC_TIMER = 32  # first external vector: timer tick
VEC_NIC = 33    # network card


@dataclass
class InterruptModel:
    """Deterministic interrupt arrivals: one every ``interval`` cycles.

    The servers in Figure 8c/8d receive NIC interrupts while the enclave
    runs; each one forces an AEX round trip whose cost depends on the
    enclave operation mode.
    """

    interval_cycles: float = 400_000.0
    _accumulated: float = 0.0

    def arrivals_during(self, cycles: float) -> int:
        """How many interrupts fire during a burst of ``cycles`` cycles."""
        if cycles < 0:
            raise ValueError("negative duration")
        self._accumulated += cycles
        count = int(self._accumulated // self.interval_cycles)
        self._accumulated -= count * self.interval_cycles
        return count

    def reset(self) -> None:
        self._accumulated = 0.0


class Idt:
    """An interrupt-descriptor table: vector -> handler.

    The primary OS owns one; a P-Enclave installs its own so white-listed
    exceptions are delivered without leaving the enclave.
    """

    def __init__(self) -> None:
        self._handlers: dict[int, Callable[..., object]] = {}

    def set_handler(self, vector: int, handler: Callable[..., object]) -> None:
        if not 0 <= vector < 256:
            raise ValueError(f"bad vector {vector}")
        self._handlers[vector] = handler

    def handler_for(self, vector: int) -> Callable[..., object] | None:
        return self._handlers.get(vector)

    def clear(self) -> None:
        self._handlers.clear()
