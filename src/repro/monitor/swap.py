"""Enclave page swapping (the EWB/ELDU analog, Sec 3.2).

When the enclave memory pool runs dry, RustMonitor can evict committed
enclave pages to *untrusted* normal memory: the page is encrypted and
MACed under a per-enclave swap key (derived from K_root and MRENCLAVE),
tagged with its virtual address and a per-page version, and the frame is
scrubbed and returned to the pool.  The trusted metadata — token, version
— stays in RustMonitor's memory, so the untrusted backing store can
neither tamper with, substitute, nor replay a blob:

* tamper     -> AEAD tag fails on swap-in;
* substitute -> the AAD binds the virtual address;
* replay     -> the AAD binds the version recorded in monitor memory.

Swap-in happens transparently on the enclave's next page fault.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.cipher import aead_encrypt, aead_decrypt
from repro.crypto.hashes import hkdf
from repro.errors import MonitorError, SecurityViolation, SealError
from repro.hw.phys import PAGE_SIZE

# EWB/ELDU-like costs: encrypt/MAC a 4 KB page + bookkeeping.
SWAP_OUT_CYCLES = 14_000
SWAP_IN_CYCLES = 15_500


class UntrustedSwapStore:
    """The OS-side backing store: a plain dict an attacker fully controls."""

    def __init__(self) -> None:
        self._blobs: dict[int, bytes] = {}
        self._next_token = 1

    def put(self, blob: bytes) -> int:
        token = self._next_token
        self._next_token += 1
        self._blobs[token] = blob
        return token

    def get(self, token: int) -> bytes:
        blob = self._blobs.get(token)
        if blob is None:
            raise MonitorError(f"swap store lost blob {token}")
        return blob

    def drop(self, token: int) -> None:
        self._blobs.pop(token, None)

    # Attacker's surface (used by the security tests):
    def tamper(self, token: int, byte_index: int) -> None:
        blob = bytearray(self._blobs[token])
        blob[byte_index % len(blob)] ^= 1
        self._blobs[token] = bytes(blob)

    def replace(self, token: int, other_token: int) -> None:
        self._blobs[token] = self._blobs[other_token]


@dataclass
class SwappedPageRecord:
    """Trusted per-page metadata kept in monitor memory."""

    token: int
    version: int
    perms: object            # PagePerm to restore


class EnclaveSwapState:
    """Per-enclave swap bookkeeping, owned by RustMonitor."""

    def __init__(self, swap_key: bytes) -> None:
        self.key = swap_key
        self.records: dict[int, SwappedPageRecord] = {}   # page VA -> rec
        self._version = 0

    def next_version(self) -> int:
        self._version += 1
        return self._version


def derive_swap_key(keys, mrenclave: bytes) -> bytes:
    """The per-enclave swap key: bound to K_root and the enclave identity."""
    return hkdf(keys.seal_key(mrenclave=mrenclave, mrsigner=b"",
                              policy=_mrenclave_policy()),
                info=b"page-swap-key")


def _mrenclave_policy():
    from repro.monitor.sealing import SealPolicy
    return SealPolicy.MRENCLAVE


def _aad(va: int, version: int) -> bytes:
    return b"EWB" + va.to_bytes(8, "little") + version.to_bytes(8, "little")


def swap_out_page(monitor, enclave, state: EnclaveSwapState,
                  store: UntrustedSwapStore, va: int) -> int:
    """Evict one committed page; returns the backing-store token."""
    page_va = va & ~(PAGE_SIZE - 1)
    page = enclave.page_at(page_va)
    if page is None:
        raise MonitorError(f"swap-out of uncommitted page {page_va:#x}")
    if page_va in state.records:
        raise MonitorError(f"page {page_va:#x} already swapped")
    tel = monitor.machine.telemetry
    tel.event("swap-out",
              lambda: f"enclave={enclave.enclave_id} va={page_va:#x}")
    tracer = tel.requests
    seg = (tracer.begin_segment("swap_out", f"{page_va:#x}")
           if tracer is not None else None)
    with tel.span("monitor.swap_out", enclave=enclave.enclave_id):
        phys = monitor.machine.phys
        content = phys.read(page.pa, PAGE_SIZE)
        version = state.next_version()
        nonce = monitor.machine.tpm.random(16)
        blob = aead_encrypt(state.key, nonce, content,
                            aad=_aad(page_va, version))
        token = store.put(blob)
        state.records[page_va] = SwappedPageRecord(
            token=token, version=version, perms=page.perms)
        # Scrub and free the frame; drop the mapping and stale TLB entries.
        enclave.pt.unmap(page_va)
        monitor.epc_pool.free(page.pa)
        del enclave.pages[page.offset]
        monitor._tlb_shootdown(enclave.enclave_id, page_va)
        monitor.machine.cycles.charge(SWAP_OUT_CYCLES, "swap-out")
        san = monitor.machine.sanitizer
        if san is not None:
            san.on_swap_out(enclave, page_va, version, page.pa)
    if tracer is not None:
        tracer.end_segment(seg)
    tel.count("monitor", "swap.pages_out", enclave=enclave.enclave_id)
    return token


def swap_in_page(monitor, enclave, state: EnclaveSwapState,
                 store: UntrustedSwapStore, va: int) -> None:
    """Fault path: bring a swapped page back, verifying integrity."""
    page_va = va & ~(PAGE_SIZE - 1)
    record = state.records.get(page_va)
    if record is None:
        raise MonitorError(f"page {page_va:#x} is not swapped")
    tel = monitor.machine.telemetry
    tel.event("swap-in",
              lambda: f"enclave={enclave.enclave_id} va={page_va:#x}")
    tracer = tel.requests
    seg = (tracer.begin_segment("swap_in", f"{page_va:#x}")
           if tracer is not None else None)
    with tel.span("monitor.swap_in", enclave=enclave.enclave_id):
        blob = store.get(record.token)
        try:
            content = aead_decrypt(state.key, blob,
                                   aad=_aad(page_va, record.version))
        except SealError as exc:
            raise SecurityViolation(
                f"swap-in integrity failure for enclave "
                f"{enclave.enclave_id} page {page_va:#x}: the untrusted "
                f"backing store returned a tampered/substituted/stale blob "
                f"({exc})") from exc
        # Under pool pressure the swap-in itself may need to evict a victim.
        pa = monitor._alloc_epc_frame(enclave.enclave_id)
        monitor.machine.phys.write(pa, content)
        enclave.commit_page(page_va, pa, record.perms)
        del state.records[page_va]
        store.drop(record.token)
        monitor.machine.cycles.charge(SWAP_IN_CYCLES, "swap-in")
        san = monitor.machine.sanitizer
        if san is not None:
            san.on_swap_in(enclave, page_va, record.version, pa)
    if tracer is not None:
        tracer.end_segment(seg)
    tel.count("monitor", "swap.pages_in", enclave=enclave.enclave_id)
