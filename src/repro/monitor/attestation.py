"""Remote attestation: the HyperEnclave quote (Sec 3.3, Figure 4).

The quote chains three layers of trust:

1. the **TPM quote** — PCRs covering the whole boot chain (CRTM, BIOS,
   grub, kernel, initramfs, RustMonitor image) *and* the measurement of
   RustMonitor's attestation public key (``hapk``), signed by the TPM's
   AIK, certified by the EK;
2. the **enclave measurement signature** (``ems``) — MRENCLAVE and report
   data signed with RustMonitor's attestation key;
3. the verifier's **golden values** — the expected PCR digests for a
   known-good platform.

A verifier accepts only if all three agree, so tampering with any booted
component, substituting a different monitor, or forging an enclave
measurement is detected.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.crypto.hashes import sha256
from repro.crypto.rsa import RsaPublicKey
from repro.errors import AttestationError
from repro.hw.tpm import TpmQuote

# PCR allocation (also used by repro.monitor.boot).
PCR_CRTM = 0
PCR_BIOS = 1
PCR_GRUB = 4
PCR_KERNEL = 8
PCR_INITRAMFS = 9
PCR_MONITOR = 10
PCR_HAPK = 11
BOOT_PCRS = (PCR_CRTM, PCR_BIOS, PCR_GRUB, PCR_KERNEL, PCR_INITRAMFS,
             PCR_MONITOR)
QUOTE_PCRS = BOOT_PCRS + (PCR_HAPK,)


@dataclass(frozen=True)
class EnclaveReport:
    """What the enclave attests to: its identity plus caller data."""

    mrenclave: bytes
    mrsigner: bytes
    isv_prod_id: int
    isv_svn: int
    report_data: bytes
    attributes: int = 0          # SECS attributes (incl. the DEBUG bit)

    def payload(self) -> bytes:
        return (b"EMS" + self.mrenclave + self.mrsigner
                + struct.pack("<HHQ", self.isv_prod_id, self.isv_svn,
                              self.attributes)
                + sha256(self.report_data))

    @property
    def debug(self) -> bool:
        from repro.monitor.structs import ATTR_DEBUG
        return bool(self.attributes & ATTR_DEBUG)


@dataclass(frozen=True)
class AttestationQuote:
    """The full HyperEnclave quote (Figure 4)."""

    report: EnclaveReport
    ems: bytes                   # enclave measurement signature (by hapk)
    hapk: RsaPublicKey           # hypervisor attestation public key
    tpm_quote: TpmQuote          # PCRs + hapk binding, signed by the AIK


@dataclass(frozen=True)
class PlatformGoldenValues:
    """Expected platform state, provisioned from a known-good boot."""

    pcr_values: dict[int, bytes] = field(default_factory=dict)
    ek_public: RsaPublicKey | None = None


class QuoteVerifier:
    """The remote relying party's verification logic."""

    def __init__(self, golden: PlatformGoldenValues) -> None:
        if golden.ek_public is None:
            raise AttestationError("golden values need the TPM EK")
        self.golden = golden

    def verify(self, quote: AttestationQuote, *,
               expected_mrenclave: bytes | None = None,
               expected_nonce: bytes | None = None,
               require_production: bool = False) -> EnclaveReport:
        """Full chain verification; returns the report on success.

        ``require_production`` rejects DEBUG enclaves — their memory is
        readable by the (untrusted) debugger, so no secret should ever be
        provisioned to one.
        """
        # 1. The TPM quote must verify back to the endorsement key.
        if not quote.tpm_quote.verify(self.golden.ek_public):
            raise AttestationError("TPM quote signature chain invalid")
        if expected_nonce is not None and \
                quote.tpm_quote.nonce != expected_nonce:
            raise AttestationError("TPM quote nonce mismatch (replay?)")

        reported = dict(zip(quote.tpm_quote.pcr_selection,
                            quote.tpm_quote.pcr_values))

        # 2. Every boot-chain PCR must match the golden platform.
        for idx in BOOT_PCRS:
            expected = self.golden.pcr_values.get(idx)
            if expected is None:
                raise AttestationError(f"golden values missing PCR {idx}")
            if reported.get(idx) != expected:
                raise AttestationError(
                    f"PCR {idx} mismatch: booted software differs from the "
                    f"golden platform")

        # 3. The hapk in the quote must be the one the TPM measured.
        hapk_pcr = reported.get(PCR_HAPK)
        expected_hapk_pcr = sha256(b"\x00" * 32, quote.hapk.fingerprint())
        if hapk_pcr != expected_hapk_pcr:
            raise AttestationError(
                "hapk not bound to the TPM: attestation key substitution")

        # 4. The enclave measurement signature must verify under the hapk.
        if not quote.hapk.verify(quote.report.payload(), quote.ems):
            raise AttestationError("enclave measurement signature invalid")

        # 5. Optionally pin the enclave identity.
        if expected_mrenclave is not None and \
                quote.report.mrenclave != expected_mrenclave:
            raise AttestationError("MRENCLAVE does not match expectation")

        # 6. Optionally refuse debug builds.
        if require_production and quote.report.debug:
            raise AttestationError(
                "enclave runs with the DEBUG attribute: refusing to "
                "provision secrets to a debuggable enclave")
        return quote.report
