"""Enclave data structures, kept close to their SGX counterparts.

"To be compatible with the official Intel SGX SDK, most data structures
involved in HyperEnclave (such as the SIGSTRUCT structure, the SECS page,
and the TCS page) are similar to that of SGX" (Sec 3.4).
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field

from repro.crypto.hashes import sha256
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey
from repro.errors import EnclaveError
from repro.hw.phys import PAGE_SIZE


class EnclaveMode(enum.Enum):
    """The flexible enclave operation modes (Sec 4).

    ``SGX`` is not a HyperEnclave mode: it tags enclaves running on the
    Intel SGX *baseline platform* the evaluation compares against, so the
    cost engine can key its tables uniformly.
    """

    GU = "gu"   # guest user mode (guest ring-3): the basic mode
    HU = "hu"   # host user mode (host ring-3): optimal world switches
    P = "p"     # guest privileged mode (guest ring-0/3): in-enclave
                # exception handling + own level-1 page table
    SGX = "sgx"  # Intel SGX baseline (comparison platform)


class PageType(enum.Enum):
    """Enclave page types (mirroring SGX's SECINFO page types)."""

    SECS = "secs"
    TCS = "tcs"
    REG = "reg"      # regular code/data
    SSA = "ssa"      # state save area


class PagePerm(enum.IntFlag):
    """RWX permissions carried per enclave page."""

    R = 1
    W = 2
    X = 4

    RW = R | W
    RX = R | X
    RWX = R | W | X


@dataclass
class EnclaveConfig:
    """The enclave's configuration file (XML in the SGX SDK).

    ``marshalling_buffer_size`` is HyperEnclave's addition: "The size of
    the marshalling buffer can be configured in the enclave's
    configuration file, with a default size" (Sec 5.3).
    """

    mode: EnclaveMode = EnclaveMode.GU
    heap_size: int = 4 * 1024 * 1024
    stack_size: int = 256 * 1024
    tcs_count: int = 4
    ssa_frames_per_tcs: int = 2      # >1 enables in-enclave exceptions
    marshalling_buffer_size: int = 64 * 1024
    debug: bool = False

    def __post_init__(self) -> None:
        for name in ("heap_size", "stack_size", "marshalling_buffer_size"):
            value = getattr(self, name)
            if value <= 0 or value % PAGE_SIZE:
                raise EnclaveError(
                    f"{name} must be a positive multiple of {PAGE_SIZE}")
        if self.tcs_count < 1:
            raise EnclaveError("an enclave needs at least one TCS")
        if self.ssa_frames_per_tcs < 1:
            raise EnclaveError("each TCS needs at least one SSA frame")


# SECS attribute bits (subset of SGX's ATTRIBUTES).
ATTR_DEBUG = 1 << 0


@dataclass
class Secs:
    """SGX Enclave Control Structure: identity and geometry of an enclave."""

    enclave_id: int
    base: int                  # ELRANGE base virtual address
    size: int                  # ELRANGE size (bytes)
    mode: EnclaveMode
    attributes: int = 0
    mrenclave: bytes = b""     # final measurement, set at EINIT
    mrsigner: bytes = b""      # hash of the SIGSTRUCT signer key
    isv_prod_id: int = 0
    isv_svn: int = 0

    @property
    def debug(self) -> bool:
        return bool(self.attributes & ATTR_DEBUG)

    def contains(self, va: int, size: int = 1) -> bool:
        """Is [va, va+size) inside ELRANGE?"""
        return self.base <= va and va + size <= self.base + self.size


@dataclass(eq=False)
class SsaFrame:
    """A state-save-area frame: the CPU context saved on an AEX."""

    regs: dict[str, int] = field(default_factory=dict)
    exception_vector: int | None = None
    exception_addr: int | None = None
    valid: bool = False


@dataclass(eq=False)
class Tcs:
    """Thread Control Structure: one per enclave thread (Sec 3.4)."""

    index: int
    entry_va: int                       # enclave entry point (OENTRY)
    ssa: list[SsaFrame] = field(default_factory=list)
    busy: bool = False
    current_ssa: int = 0                # CSSA

    def available_ssa(self) -> SsaFrame:
        """The SSA frame an AEX would save into; raises when exhausted."""
        if self.current_ssa >= len(self.ssa):
            raise EnclaveError(
                "SSA frames exhausted: nested exception overflow")
        return self.ssa[self.current_ssa]


@dataclass(frozen=True)
class Sigstruct:
    """The enclave signature structure (SIGSTRUCT).

    Carries the expected measurement and the vendor's signature over it.
    EINIT verifies the signature and compares measurements.
    """

    enclave_hash: bytes          # expected MRENCLAVE
    signer: RsaPublicKey
    signature: bytes
    isv_prod_id: int = 0
    isv_svn: int = 0

    def signed_payload(self) -> bytes:
        return (b"SIGSTRUCT" + self.enclave_hash
                + struct.pack("<HH", self.isv_prod_id, self.isv_svn))

    def verify(self) -> bool:
        return self.signer.verify(self.signed_payload(), self.signature)

    def mrsigner(self) -> bytes:
        """Hash of the signer's public key (SGX's MRSIGNER)."""
        return sha256(self.signer.to_bytes())

    @classmethod
    def sign(cls, enclave_hash: bytes, key: RsaKeyPair, *,
             isv_prod_id: int = 0, isv_svn: int = 0) -> "Sigstruct":
        unsigned = cls(enclave_hash=enclave_hash, signer=key.public,
                       signature=b"", isv_prod_id=isv_prod_id,
                       isv_svn=isv_svn)
        return cls(enclave_hash=enclave_hash, signer=key.public,
                   signature=key.sign(unsigned.signed_payload()),
                   isv_prod_id=isv_prod_id, isv_svn=isv_svn)
