"""The in-monitor representation of one enclave.

RustMonitor owns everything in here: the enclave's page table (built from
monitor-pool frames), the committed-page map, the TCS/SSA structures, the
measurement log, and the marshalling-buffer registration.  The primary OS
never sees any of it (Sec 3.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import EnclaveError, PageFault, SecurityViolation
from repro.hw.paging import PageTable, PageTableFlags
from repro.hw.phys import PAGE_SIZE
from repro.monitor.measurement import MeasurementLog
from repro.monitor.structs import (EnclaveConfig, EnclaveMode, PagePerm,
                                   PageType, Secs, SsaFrame, Tcs)

# Default ELRANGE base: high in the canonical lower half, far from the
# primary OS's process mappings.
ENCLAVE_BASE_VA = 0x2000_0000_0000


def perms_to_flags(perms: PagePerm) -> PageTableFlags:
    """Translate RWX page permissions into PTE flags."""
    flags = PageTableFlags.PRESENT | PageTableFlags.USER
    if perms & PagePerm.W:
        flags |= PageTableFlags.WRITABLE
    if not perms & PagePerm.X:
        flags |= PageTableFlags.NX
    return flags


class EnclaveState(enum.Enum):
    """Enclave lifecycle (mirrors SGX: ECREATE -> EADD* -> EINIT -> run)."""

    CREATED = "created"          # after ECREATE, accepting EADDs
    INITIALIZED = "initialized"  # after EINIT, runnable
    DESTROYED = "destroyed"      # after EREMOVE


@dataclass
class CommittedPage:
    """One enclave page: where it lives and what it is."""

    offset: int                  # byte offset within ELRANGE
    pa: int                      # host-physical frame
    page_type: PageType
    perms: PagePerm


@dataclass
class ReservedRegion:
    """An ELRANGE region that demand-commits on first touch (EDMM-style)."""

    start_va: int
    end_va: int
    perms: PagePerm

    def contains(self, va: int) -> bool:
        return self.start_va <= va < self.end_va


@dataclass
class MarshallingBuffer:
    """The shared parameter-passing window (Sec 3.2 / 5.3).

    Lives in the application's *normal* memory; pinned and pre-populated
    by the uRTS, then registered with RustMonitor at EINIT, which maps it
    into the enclave's page table after checking it lies entirely outside
    ELRANGE.
    """

    base_va: int
    size: int
    frames: list[int]            # pinned normal-memory frames, in order

    def contains(self, va: int, size: int = 1) -> bool:
        return self.base_va <= va and va + size <= self.base_va + self.size


class Enclave:
    """Monitor-side enclave state."""

    def __init__(self, enclave_id: int, config: EnclaveConfig, *,
                 base: int, size: int, page_table: PageTable) -> None:
        from repro.monitor.structs import ATTR_DEBUG
        attributes = ATTR_DEBUG if config.debug else 0
        self.secs = Secs(enclave_id=enclave_id, base=base, size=size,
                         mode=config.mode, attributes=attributes)
        self.config = config
        self.state = EnclaveState.CREATED
        self.pt = page_table
        self.pages: dict[int, CommittedPage] = {}     # keyed by offset
        self.reserved: list[ReservedRegion] = []
        self.tcs_list: list[Tcs] = []
        self.measurement = MeasurementLog()
        self.measurement.ecreate(base, size, config.mode.value, attributes)
        self.marshalling: MarshallingBuffer | None = None
        # Exception handler the enclave registered (two-phase handling for
        # GU/HU; direct IDT dispatch for P).
        self.exception_handler = None
        # P-Enclave bookkeeping: which vectors are white-listed in-enclave.
        self.whitelisted_vectors: set[int] = set()
        # The AEP (asynchronous exit pointer) registered at EENTER; EEXIT
        # may only return there (enclave-malware defense, Sec 6).
        self.registered_aep: int | None = None
        self.interrupted_tcs: Tcs | None = None

    # -- identity -----------------------------------------------------------

    @property
    def enclave_id(self) -> int:
        return self.secs.enclave_id

    @property
    def mode(self) -> EnclaveMode:
        return self.secs.mode

    @property
    def mrenclave(self) -> bytes:
        if not self.measurement.finalized:
            raise EnclaveError("enclave not initialized: no measurement yet")
        return self.secs.mrenclave

    # -- state guards ---------------------------------------------------------

    def require_state(self, *states: EnclaveState) -> None:
        if self.state not in states:
            raise EnclaveError(
                f"enclave {self.enclave_id} is {self.state.value}, needs "
                f"{[s.value for s in states]}")

    # -- page management (called by RustMonitor only) ---------------------------

    def add_page(self, offset: int, pa: int, page_type: PageType,
                 perms: PagePerm, *, measure: bool, content: bytes) -> None:
        self.require_state(EnclaveState.CREATED)
        self._check_offset(offset)
        if offset in self.pages:
            raise EnclaveError(f"page at offset {offset:#x} already added")
        self.pages[offset] = CommittedPage(offset, pa, page_type, perms)
        self.pt.map(self.secs.base + offset, pa, perms_to_flags(perms))
        if measure:
            self.measurement.eadd(offset, page_type, perms, content)

    def commit_page(self, va: int, pa: int, perms: PagePerm) -> None:
        """Demand-commit a page at runtime (monitor page-fault path)."""
        self.require_state(EnclaveState.INITIALIZED)
        offset = va - self.secs.base
        self._check_offset(offset)
        self.pages[offset] = CommittedPage(offset, pa, PageType.REG, perms)
        self.pt.map(self.secs.base + offset, pa, perms_to_flags(perms))

    def reserve(self, start_va: int, size: int, perms: PagePerm) -> None:
        """Declare a demand-committed region (heap/stack growth)."""
        if not self.secs.contains(start_va, size):
            raise EnclaveError("reserved region outside ELRANGE")
        self.reserved.append(ReservedRegion(start_va, start_va + size, perms))

    def reserved_region_for(self, va: int) -> ReservedRegion | None:
        for region in self.reserved:
            if region.contains(va):
                return region
        return None

    def protect_page(self, va: int, perms: PagePerm) -> None:
        """Change an existing page's permissions (EMODPR/EMODPE path)."""
        offset = (va - self.secs.base) & ~(PAGE_SIZE - 1)
        page = self.pages.get(offset)
        if page is None:
            raise EnclaveError(f"no committed page at {va:#x}")
        page.perms = perms
        self.pt.protect(self.secs.base + offset, perms_to_flags(perms))

    def page_at(self, va: int) -> CommittedPage | None:
        offset = (va - self.secs.base) & ~(PAGE_SIZE - 1)
        return self.pages.get(offset)

    def _check_offset(self, offset: int) -> None:
        if offset % PAGE_SIZE:
            raise EnclaveError(f"unaligned page offset {offset:#x}")
        if not 0 <= offset < self.secs.size:
            raise EnclaveError(
                f"offset {offset:#x} outside ELRANGE of size "
                f"{self.secs.size:#x}")

    # -- marshalling buffer ------------------------------------------------------

    def register_marshalling_buffer(self, base_va: int, size: int,
                                    frames: list[int]) -> None:
        """Map the pinned buffer into the enclave's page table.

        "RustMonitor ensures the address range of the marshalling buffer
        is outside the enclave address range" (Sec 6) — the crafted-address
        attack this blocks is exercised by the security tests.
        """
        if base_va % PAGE_SIZE or size % PAGE_SIZE:
            raise EnclaveError("marshalling buffer must be page aligned")
        if len(frames) != size // PAGE_SIZE:
            raise EnclaveError("marshalling buffer frame list size mismatch")
        end = base_va + size
        if base_va < self.secs.base + self.secs.size and \
                end > self.secs.base:
            raise SecurityViolation(
                "marshalling buffer overlaps the enclave address range")
        from repro.hw.phys import OwnerKind
        for pa in frames:
            owner = self.pt.phys.owner_of(pa)
            if owner.kind is not OwnerKind.NORMAL:
                raise SecurityViolation(
                    f"marshalling buffer frame {pa:#x} is "
                    f"{owner.kind.value} memory, not pinned normal memory")
        for i, pa in enumerate(frames):
            self.pt.map(base_va + i * PAGE_SIZE, pa,
                        perms_to_flags(PagePerm.RW))
        self.marshalling = MarshallingBuffer(base_va, size, frames)

    # -- memory access (the enclave's own loads/stores) ----------------------------

    def translate(self, va: int, *, write: bool = False) -> int:
        """Translate an enclave virtual address through the enclave's PT.

        Anything not mapped there — i.e. anything that is neither enclave
        memory nor the marshalling buffer — faults.  This is what confines
        enclave malware (Sec 6).
        """
        return self.pt.translate(va, write=write, user=True).pa

    def accessible(self, va: int, size: int = 1, *, write: bool = False) -> bool:
        """Can the enclave touch [va, va+size)?"""
        try:
            for page_va in range(va & ~(PAGE_SIZE - 1), va + size, PAGE_SIZE):
                self.pt.translate(page_va, write=write, user=True)
        except PageFault:
            return False
        return True

    # -- threads ------------------------------------------------------------------

    def add_tcs(self, entry_va: int, ssa_frames: int) -> Tcs:
        tcs = Tcs(index=len(self.tcs_list), entry_va=entry_va,
                  ssa=[SsaFrame() for _ in range(ssa_frames)])
        self.tcs_list.append(tcs)
        return tcs

    def acquire_tcs(self) -> Tcs:
        """Find a free TCS for an ECALL (one TCS per enclave thread)."""
        for tcs in self.tcs_list:
            if not tcs.busy:
                tcs.busy = True
                return tcs
        raise EnclaveError("all TCSs busy: out of enclave threads")

    def release_tcs(self, tcs: Tcs) -> None:
        tcs.busy = False
