"""RustMonitor: the trusted security monitor (the paper's core contribution).

The monitor runs in monitor mode (VMX root, ring 0) and:

* manages the reserved physical memory (its own pool + the enclave page
  cache) — Sec 5.1,
* emulates the privileged SGX instructions (ECREATE/EADD/EINIT/...) that
  the kernel module invokes through hypercalls — Sec 3.4,
* owns every enclave's page table and page-fault handling, cutting the
  primary OS out of the loop (the anti-controlled-channel design) — Sec 3.2,
* registers and checks the marshalling buffer — Sec 5.3,
* drives world switches for the three enclave operation modes — Sec 4,
* measures enclaves and signs attestation quotes chained to the TPM —
  Sec 3.3.
"""

from repro.monitor.structs import (EnclaveMode, EnclaveConfig, PageType,
                                   Sigstruct, Tcs, Secs)
from repro.monitor.enclave import Enclave, EnclaveState
from repro.monitor.rustmonitor import RustMonitor
from repro.monitor.boot import BootChain, BootResult, measured_late_launch
from repro.monitor.attestation import (AttestationQuote, QuoteVerifier,
                                       PlatformGoldenValues)

__all__ = [
    "EnclaveMode",
    "EnclaveConfig",
    "PageType",
    "Sigstruct",
    "Tcs",
    "Secs",
    "Enclave",
    "EnclaveState",
    "RustMonitor",
    "BootChain",
    "BootResult",
    "measured_late_launch",
    "AttestationQuote",
    "QuoteVerifier",
    "PlatformGoldenValues",
]
