"""Measured late launch (Sec 3.3, Figure 3).

The boot chain runs CRTM -> BIOS -> grub -> kernel -> initramfs, extending
each component into the TPM PCRs.  The RustMonitor image travels inside
the initramfs and is measured and launched in *early userspace*, before
any disk-backed userspace runs; the monitor then takes monitor mode,
initializes its keys, and demotes the primary OS into the normal VM — a
type-2 load that runs as a type-1 hypervisor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.hashes import sha256
from repro.hw.machine import Machine
from repro.monitor import attestation as att
from repro.monitor.rustmonitor import RustMonitor

DEFAULT_MONITOR_IMAGE = b"RustMonitor v1.0 (7,500 lines of Rust)"


@dataclass
class BootComponent:
    """One link in the measurement chain."""

    name: str
    image: bytes
    pcr: int


def default_components(monitor_image: bytes) -> list[BootComponent]:
    """The stock boot chain, with the monitor inside the initramfs."""
    return [
        BootComponent("crtm", b"CRTM microcode v1", att.PCR_CRTM),
        BootComponent("bios", b"AMI BIOS build 4711", att.PCR_BIOS),
        BootComponent("grub", b"GRUB 2.04 + kernel cmdline memmap=2G!1G",
                      att.PCR_GRUB),
        BootComponent("kernel", b"Linux 4.19.91 vmlinuz", att.PCR_KERNEL),
        BootComponent("initramfs", b"initramfs image containing: "
                      + monitor_image, att.PCR_INITRAMFS),
        BootComponent("rustmonitor", monitor_image, att.PCR_MONITOR),
    ]


@dataclass
class BootChain:
    """A measured boot sequence over a machine's TPM."""

    components: list[BootComponent]

    def run(self, machine: Machine) -> None:
        """Measure-then-execute each component (CRTM first)."""
        for component in self.components:
            machine.tpm.extend(component.pcr, sha256(component.image))


@dataclass
class BootResult:
    """Everything the launch produced."""

    monitor: RustMonitor
    sealed_root_key: bytes
    golden: att.PlatformGoldenValues
    components: list[BootComponent] = field(default_factory=list)


def measured_late_launch(machine: Machine, *,
                         monitor_image: bytes = DEFAULT_MONITOR_IMAGE,
                         sealed_root_key: bytes | None = None,
                         components: list[BootComponent] | None = None,
                         monitor_private_size: int | None = None,
                         ) -> BootResult:
    """Boot the platform and launch RustMonitor (Figure 3).

    ``sealed_root_key`` is the blob a previous boot stored on disk; pass
    it to recover the same K_root (which only works if every measured
    component is unchanged).  ``components`` lets tests boot a tampered
    chain.
    """
    chain = BootChain(components or default_components(monitor_image))
    chain.run(machine)

    # The kernel module launches the monitor in early userspace; the
    # monitor claims the reserved region and the highest privilege level.
    monitor = RustMonitor(machine, monitor_private_size=monitor_private_size)
    sealed = monitor.initialize_keys(sealed_root_key)
    monitor.demote_primary_os()

    golden = att.PlatformGoldenValues(
        pcr_values={idx: machine.tpm.read_pcr(idx) for idx in att.QUOTE_PCRS},
        ek_public=machine.tpm.ek_public)
    return BootResult(monitor=monitor, sealed_root_key=sealed, golden=golden,
                      components=chain.components)
