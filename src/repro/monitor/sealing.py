"""Key derivation for sealing and reports (Sec 3.3 "Secret key generation").

"All other key materials, including the enclave's sealing key and report
key are derived from K_root and the enclave's measurement."  Two sealing
policies mirror SGX: MRENCLAVE (this exact enclave only) and MRSIGNER
(any enclave from the same vendor, enabling upgrades to unseal old data).
"""

from __future__ import annotations

import enum
import struct

from repro.crypto.hashes import hkdf


class SealPolicy(enum.Enum):
    """Which identity the sealing key binds to."""

    MRENCLAVE = "mrenclave"
    MRSIGNER = "mrsigner"


class KeyDerivation:
    """Derives per-enclave keys from the platform root key."""

    def __init__(self, k_root: bytes) -> None:
        if len(k_root) < 16:
            raise ValueError("root key too short")
        self._k_root = k_root

    def seal_key(self, *, mrenclave: bytes, mrsigner: bytes,
                 policy: SealPolicy, isv_svn: int = 0) -> bytes:
        """The enclave's 256-bit sealing key under ``policy``."""
        if policy is SealPolicy.MRENCLAVE:
            identity = b"enclave" + mrenclave
        else:
            # Keyed by signer identity + SVN floor so a newer version of
            # the same vendor's enclave can unseal older data.
            identity = b"signer" + mrsigner + struct.pack("<H", isv_svn)
        return hkdf(self._k_root, info=b"seal-key" + identity)

    def report_key(self, *, mrenclave: bytes) -> bytes:
        """The key MACing local attestation reports for this enclave."""
        return hkdf(self._k_root, info=b"report-key" + mrenclave)

    def attestation_key_seed(self) -> bytes:
        """Seed for RustMonitor's RSA attestation key pair."""
        return hkdf(self._k_root, info=b"hypervisor-attestation-key")
