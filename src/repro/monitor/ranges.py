"""A set of disjoint address ranges.

Used as the normal VM's nested page table: HyperEnclave "installs huge
pages in NPT when possible" (Appendix A.2), so the NPT is effectively a
small number of giant mappings — which is exactly an interval set.  The
monitor removes the reserved region from it ("RustMonitor prevents the
primary OS to access the reserved physical memory by removing the
corresponding mappings from its NPT", Sec 6).
"""

from __future__ import annotations

import bisect


class RangeSet:
    """Disjoint, sorted half-open integer ranges with add/remove/query."""

    def __init__(self) -> None:
        self._starts: list[int] = []
        self._ends: list[int] = []

    def add(self, start: int, end: int) -> None:
        """Insert [start, end), merging with neighbours."""
        if start >= end:
            raise ValueError("empty range")
        i = bisect.bisect_left(self._ends, start)
        j = bisect.bisect_right(self._starts, end)
        if i < j:
            start = min(start, self._starts[i])
            end = max(end, self._ends[j - 1])
        self._starts[i:j] = [start]
        self._ends[i:j] = [end]

    def remove(self, start: int, end: int) -> None:
        """Delete [start, end), splitting ranges as needed."""
        if start >= end:
            raise ValueError("empty range")
        i = bisect.bisect_right(self._ends, start)
        new_starts: list[int] = []
        new_ends: list[int] = []
        while i < len(self._starts) and self._starts[i] < end:
            s, e = self._starts[i], self._ends[i]
            del self._starts[i], self._ends[i]
            if s < start:
                new_starts.append(s)
                new_ends.append(start)
            if e > end:
                new_starts.append(end)
                new_ends.append(e)
        self._starts[i:i] = new_starts
        self._ends[i:i] = new_ends

    def contains(self, addr: int) -> bool:
        """Is ``addr`` inside some range?"""
        i = bisect.bisect_right(self._starts, addr) - 1
        return i >= 0 and addr < self._ends[i]

    def contains_range(self, start: int, end: int) -> bool:
        """Is the whole of [start, end) inside a single range?"""
        if start >= end:
            raise ValueError("empty range")
        i = bisect.bisect_right(self._starts, start) - 1
        return i >= 0 and end <= self._ends[i]

    def ranges(self) -> list[tuple[int, int]]:
        return list(zip(self._starts, self._ends))

    def __len__(self) -> int:
        return len(self._starts)
