"""RustMonitor: hypercall surface and enclave lifecycle management.

The monitor is the only code that touches enclave page tables, the EPC
free-page pool, the measurement logs, K_root and the attestation key.
The primary OS reaches it exclusively through hypercalls (relayed by the
kernel module's ioctl interface), and enclaves through the emulated
ENCLU leaves and the page-fault path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashes import hkdf, hmac_sha256, sha256
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, cached_keypair
from repro.errors import (EnclaveError, MonitorError, PageFault,
                          SecurityViolation, TpmError)
from repro.hw import costs
from repro.hw.machine import Machine
from repro.hw.paging import PageTable
from repro.hw.phys import (MONITOR, PAGE_SIZE, FramePool, OwnerKind,
                           enclave_owner)
from repro.monitor import attestation as att
from repro.monitor.enclave import ENCLAVE_BASE_VA, Enclave, EnclaveState
from repro.monitor.ranges import RangeSet
from repro.monitor.sealing import KeyDerivation, SealPolicy
from repro.monitor.structs import (EnclaveConfig, EnclaveMode, PagePerm,
                                   PageType, Sigstruct)
from repro.monitor.swap import (EnclaveSwapState, UntrustedSwapStore,
                                derive_swap_key, swap_in_page,
                                swap_out_page)
from repro.monitor.world import WorldSwitchEngine
from repro.sanitizer import invariants
from repro.sanitizer.violation import SAN_OWNER

FLOOD_DIGEST = sha256(b"HYPERENCLAVE-PCR-FLOOD")


@dataclass(frozen=True)
class LocalReport:
    """An EREPORT result for local attestation, MACed with the target's
    report key."""

    mrenclave: bytes
    mrsigner: bytes
    report_data: bytes
    target_mrenclave: bytes
    mac: bytes

    def payload(self) -> bytes:
        return (b"LOCAL-REPORT" + self.mrenclave + self.mrsigner
                + sha256(self.report_data) + self.target_mrenclave)


class RustMonitor:
    """The security monitor (monitor mode, VMX root ring 0)."""

    def __init__(self, machine: Machine, *,
                 monitor_private_size: int | None = None) -> None:
        self.machine = machine
        cfg = machine.config
        if monitor_private_size is None:
            # An eighth of the reservation, capped at 256 MB, for the
            # monitor's own structures; the rest is enclave memory (EPC).
            monitor_private_size = min(256 * 1024 * 1024,
                                       cfg.reserved_size // 8)
        if monitor_private_size >= cfg.reserved_size:
            raise MonitorError("monitor private region exceeds reservation")

        # The invariant sanitizer, when REPRO_SANITIZE=1 (None otherwise).
        self._sanitizer = machine.sanitizer
        if self._sanitizer is not None:
            self._sanitizer.on_monitor_boot()

        # Claim the grub-reserved physical region (Sec 5.1).
        machine.phys.set_owner(cfg.reserved_base, MONITOR,
                               npages=cfg.reserved_size // PAGE_SIZE)
        self.monitor_pool = FramePool(machine.phys, cfg.reserved_base,
                                      monitor_private_size, MONITOR)
        self.epc_pool = FramePool(machine.phys,
                                  cfg.reserved_base + monitor_private_size,
                                  cfg.reserved_size - monitor_private_size,
                                  MONITOR)
        self.epc_size = cfg.reserved_size - monitor_private_size

        # Normal VM NPT (huge-page interval set): all of memory except the
        # reservation (R-1).
        self.normal_npt = RangeSet()
        self.normal_npt.add(0, cfg.phys_size)
        self.normal_npt.remove(cfg.reserved_base,
                               cfg.reserved_base + cfg.reserved_size)

        self.world = WorldSwitchEngine(machine.cpu, machine.tlb,
                                       machine.telemetry)
        self.enclaves: dict[int, Enclave] = {}
        self._next_enclave_id = 1
        self._keys: KeyDerivation | None = None
        self._attestation_key: RsaKeyPair | None = None
        self.os_demoted = False
        self.hypercalls = 0
        self.tlb_shootdowns = 0
        # Page-swap machinery: the backing store lives in untrusted
        # normal memory (the OS provides it); the per-enclave swap state
        # (keys, versions) stays in monitor memory.
        self.swap_store = UntrustedSwapStore()
        self._swap_states: dict[int, EnclaveSwapState] = {}
        # (victim_enclave_id, aggressor_enclave_id) -> frames reclaimed
        # under pool pressure.  Observability bookkeeping only: kept out
        # of _state_for_hash so attaching a timeline never moves the
        # state-hash baselines.
        self.epc_steals: dict[tuple[int, int], int] = {}

        # Fold monitor state into Machine.state_hash() checkpoints, and
        # give forensic bundles a deep page-table dump on demand.
        machine.state_providers["monitor"] = self._state_for_hash
        machine.dump_providers["monitor"] = self._state_dump

        # A cycle-domain timeline sampler attached before monitor boot
        # gets the EPC/swap/world series registered here.
        if machine.telemetry.timeline is not None:
            from repro.telemetry.timeline import register_monitor_probes
            register_monitor_probes(machine.telemetry.timeline, self)

    def _state_for_hash(self) -> dict:
        """Monitor-owned state for ``Machine.state_fingerprint()``.

        Page-table *contents* live in physical frames already hashed by
        the hardware layer; here we fold the metadata that lives in
        Python objects: enclave lifecycles, EPC/monitor pool free lists,
        the normal VM's NPT ranges, and swap versions.
        """
        enclaves = {}
        for eid, enc in self.enclaves.items():
            enclaves[eid] = {
                "state": enc.state,
                "pt_root": enc.pt.root_pa,
                "asid": enc.pt.asid,
                "pages": {offset: (p.pa, p.page_type, p.perms)
                          for offset, p in enc.pages.items()},
                "tcs": len(enc.tcs_list),
                "vectors": enc.whitelisted_vectors,
            }
        swaps = {}
        for eid, state in self._swap_states.items():
            swaps[eid] = {
                "version": state._version,
                "records": {va: (r.token, r.version, r.perms)
                            for va, r in state.records.items()},
            }
        return {
            "enclaves": enclaves,
            "next_enclave_id": self._next_enclave_id,
            "hypercalls": self.hypercalls,
            "os_demoted": self.os_demoted,
            "epc_free": self.epc_pool.state_digest(),
            "monitor_free": self.monitor_pool.state_digest(),
            "normal_npt": self.normal_npt.ranges(),
            "swap": swaps,
        }

    def _state_dump(self) -> dict:
        """Deep monitor state for forensic bundles (full PT walks)."""
        enclaves = {}
        for eid, enc in self.enclaves.items():
            enclaves[str(eid)] = {
                "state": enc.state.value,
                "mode": enc.config.mode.value,
                "base": enc.secs.base,
                "size": enc.secs.size,
                "pt_root": enc.pt.root_pa,
                "asid": enc.pt.asid,
                "committed_pages": len(enc.pages),
                "page_table": [
                    {"va": va, "pa": pa, "flags": int(flags)}
                    for va, pa, flags in enc.pt.mappings()],
            }
        return {
            "enclaves": enclaves,
            "hypercalls": self.hypercalls,
            "os_demoted": self.os_demoted,
            "epc_free_pages": self.epc_pool.free_pages,
            "monitor_free_pages": self.monitor_pool.free_pages,
            "swapped_pages": {
                str(eid): sorted(state.records)
                for eid, state in self._swap_states.items()},
        }

    # ------------------------------------------------------------------ boot --

    # repro-lint: disable=R003 -- boot-time key derivation before any guest
    # exists; no hypercall round-trip to charge (staticcheck: charge-exempt)
    def initialize_keys(self, sealed_root_key: bytes | None = None) -> bytes:
        """Create or unseal K_root, derive the attestation key, extend the
        hapk into the TPM, and flood the boot PCRs (Sec 3.3).

        Returns the sealed K_root blob to be stored on (untrusted) disk.
        """
        tpm = self.machine.tpm
        if sealed_root_key is None:
            k_root = tpm.random(32)
        else:
            k_root = tpm.unseal(sealed_root_key)   # fails if PCRs changed
        sealed = tpm.seal(k_root, att.BOOT_PCRS)
        self._keys = KeyDerivation(k_root)
        self._attestation_key = cached_keypair(
            self._keys.attestation_key_seed())
        tpm.extend(att.PCR_HAPK, self.hapk.fingerprint())
        # Flood so the demoted OS can never reproduce the unseal policy.
        for idx in att.BOOT_PCRS:
            tpm.extend(idx, FLOOD_DIGEST)
        return sealed

    # repro-lint: disable=R003 -- one-shot boot transition before any
    # measured op sequence starts (staticcheck: charge-exempt)
    def demote_primary_os(self) -> None:
        """Drop the primary OS into the normal VM and arm DMA protection."""
        self.machine.iommu.enable()
        self.os_demoted = True

    @property
    def hapk(self) -> RsaPublicKey:
        if self._attestation_key is None:
            raise MonitorError("keys not initialized")
        return self._attestation_key.public

    @property
    def keys(self) -> KeyDerivation:
        if self._keys is None:
            raise MonitorError("keys not initialized")
        return self._keys

    # --------------------------------------------------------------- helpers --

    def _charge_hypercall(self, op: str) -> None:
        self.hypercalls += 1
        tel = self.machine.telemetry
        tracer = tel.requests
        token = (tracer.begin_segment("hypercall", op)
                 if tracer is not None else None)
        self.machine.cycles.charge(costs.HYPERCALL_ROUNDTRIP, "hypercall")
        if tracer is not None:
            tracer.end_segment(token)
        if tel.ring.enabled:
            tel.ring.record("hypercall", op)
        if tel.enabled:
            tel.registry.counter("monitor", "hypercalls", op=op).inc()

    def _enclave(self, enclave_id: int) -> Enclave:
        enclave = self.enclaves.get(enclave_id)
        if enclave is None:
            raise EnclaveError(f"no such enclave {enclave_id}")
        return enclave

    def _sanitize_op(self, op: str) -> None:
        """Attribute subsequent frame transitions to ``op``."""
        if self._sanitizer is not None:
            self._sanitizer.set_op(op)

    def _sanitize_check(self, op: str, enclave_id: int | None = None,
                        page_va: int | None = None) -> None:
        """Run the after-op invariant checks (no-op when not sanitizing)."""
        if self._sanitizer is not None:
            self._sanitizer.after_monitor_op(self, op, enclave_id, page_va)

    def _tlb_shootdown(self, enclave_id: int, page_va: int) -> None:
        """Invalidate one page everywhere it may be cached.

        On a single CPU this is a local INVLPG; with more CPUs the
        monitor IPIs every other core and waits for acknowledgements —
        the cost that makes frequent permission flips expensive on big
        boxes (and why P-Enclaves managing their own single-vCPU page
        table win the GC scenario).
        """
        self.machine.tlb.invlpg(enclave_id, page_va)
        self.tlb_shootdowns += 1
        remote = self.machine.config.num_cpus - 1
        if remote > 0:
            tracer = self.machine.telemetry.requests
            token = (tracer.begin_segment("tlb_shootdown")
                     if tracer is not None else None)
            self.machine.cycles.charge(
                costs.IPI_BASE_CYCLES + remote * costs.IPI_PER_CPU_CYCLES,
                "tlb-shootdown")
            if tracer is not None:
                tracer.end_segment(token)

    def allow_dma_device(self, device: str) -> None:
        """Grant a device DMA windows over normal memory only (R-3)."""
        self._charge_hypercall("allow_dma_device")
        for start, end in self.normal_npt.ranges():
            self.machine.iommu.allow(device, start, end - start)

    # ----------------------------------------------------- normal VM policing --

    # repro-lint: disable=R003 -- models the *hardware* NPT walk, free in
    # the monitor's cycle model; the caller's memory touch pays the cost
    # (staticcheck: charge-exempt)
    def check_normal_access(self, pa: int, length: int = 1) -> None:
        """R-1: normal-mode software may not touch reserved/enclave frames.

        The hardware analogue is an NPT violation; the OS simulation calls
        this on every physical access it performs for itself or apps.
        """
        if not self.normal_npt.contains_range(pa, pa + length):
            raise SecurityViolation(
                f"NPT violation: normal-mode access to protected physical "
                f"memory at {pa:#x}")
        owner = self.machine.phys.owner_of(pa)
        if owner.kind in (OwnerKind.MONITOR, OwnerKind.ENCLAVE):
            raise SecurityViolation(
                f"normal-mode access to {owner.kind.value} frame at {pa:#x}")

    # -------------------------------------------------- enclave lifecycle ------

    def ecreate(self, config: EnclaveConfig, *, size: int,
                base: int = ENCLAVE_BASE_VA) -> int:
        """Emulated ECREATE: allocate the enclave and its page table."""
        self._charge_hypercall("ecreate")
        self._sanitize_op("ecreate")
        if size <= 0 or size % PAGE_SIZE:
            raise EnclaveError("ELRANGE size must be page aligned")
        enclave_id = self._next_enclave_id
        self._next_enclave_id += 1
        pt = PageTable(self.machine.phys, self.monitor_pool.alloc,
                       self.monitor_pool.free,
                       stats=self.machine.telemetry.paging_stats("enclave"),
                       asid=enclave_id)
        enclave = Enclave(enclave_id, config, base=base, size=size,
                          page_table=pt)
        self.enclaves[enclave_id] = enclave
        self._sanitize_check("ecreate", enclave_id)
        return enclave_id

    def eadd(self, enclave_id: int, offset: int, content: bytes = b"", *,
             page_type: PageType = PageType.REG,
             perms: PagePerm = PagePerm.RW, measure: bool = True) -> None:
        """Emulated EADD: commit one measured page from the EPC pool."""
        self._charge_hypercall("eadd")
        self._sanitize_op("eadd")
        enclave = self._enclave(enclave_id)
        enclave.require_state(EnclaveState.CREATED)
        if len(content) > PAGE_SIZE:
            raise EnclaveError("EADD content exceeds one page")
        pa = self.epc_pool.alloc(enclave_owner(enclave_id))
        if content:
            self.machine.phys.write(pa, content)
        enclave.add_page(offset, pa, page_type, perms, measure=measure,
                         content=content)
        self._sanitize_check("eadd", enclave_id)

    def add_tcs(self, enclave_id: int, offset: int, entry_va: int) -> int:
        """Add a TCS page plus its SSA frames; returns the TCS index."""
        enclave = self._enclave(enclave_id)
        self.eadd(enclave_id, offset, page_type=PageType.TCS,
                  perms=PagePerm.RW)
        tcs = enclave.add_tcs(entry_va, enclave.config.ssa_frames_per_tcs)
        return tcs.index

    def reserve_region(self, enclave_id: int, start_va: int, size: int,
                       perms: PagePerm = PagePerm.RW) -> None:
        """Declare a demand-committed region (EDMM: on-demand heap/stack)."""
        self._charge_hypercall("reserve_region")
        self._enclave(enclave_id).reserve(start_va, size, perms)

    def einit(self, enclave_id: int, sigstruct: Sigstruct, *,
              marshalling: tuple[int, int, list[int]] | None = None) -> bytes:
        """Emulated EINIT: verify SIGSTRUCT, finalize the measurement, and
        register the marshalling buffer.  Returns MRENCLAVE."""
        self._charge_hypercall("einit")
        enclave = self._enclave(enclave_id)
        enclave.require_state(EnclaveState.CREATED)
        if not sigstruct.verify():
            raise SecurityViolation("SIGSTRUCT signature invalid")
        mrenclave = enclave.measurement.finalize()
        if mrenclave != sigstruct.enclave_hash:
            raise SecurityViolation(
                "enclave measurement does not match SIGSTRUCT: the loaded "
                "image differs from what the vendor signed")
        enclave.secs.mrenclave = mrenclave
        enclave.secs.mrsigner = sigstruct.mrsigner()
        enclave.secs.isv_prod_id = sigstruct.isv_prod_id
        enclave.secs.isv_svn = sigstruct.isv_svn

        if marshalling is not None:
            base_va, size, frames = marshalling
            for pa in frames:
                owner = self.machine.phys.owner_of(pa)
                if owner.kind is not OwnerKind.NORMAL:
                    raise SecurityViolation(
                        "marshalling buffer frames must be normal memory")
            enclave.register_marshalling_buffer(base_va, size, frames)

        enclave.state = EnclaveState.INITIALIZED
        if self._sanitizer is not None:
            self._sanitizer.on_einit(enclave)
        self._sanitize_check("einit", enclave_id)
        return mrenclave

    def eremove(self, enclave_id: int) -> None:
        """Tear the enclave down; scrub and free every page."""
        self._charge_hypercall("eremove")
        self._sanitize_op("eremove")
        enclave = self._enclave(enclave_id)
        for page in enclave.pages.values():
            self.epc_pool.free(page.pa)
            self._assert_frame_freed(page.pa, "eremove")
        enclave.pages.clear()
        enclave.pt.destroy()
        enclave.state = EnclaveState.DESTROYED
        # Drop any swapped-out pages: their keys die with the enclave.
        swap_state = self._swap_states.pop(enclave_id, None)
        if swap_state is not None:
            for record in swap_state.records.values():
                self.swap_store.drop(record.token)
        self.machine.tlb.flush()
        del self.enclaves[enclave_id]
        if self._sanitizer is not None:
            self._sanitizer.on_enclave_removed(enclave_id)
        self._sanitize_check("eremove")

    def _assert_frame_freed(self, pa: int, op: str) -> None:
        """A just-released frame must be back in the free pool."""
        if self.machine.phys.owner_of(pa).kind is not OwnerKind.FREE:
            invariants.fail(
                self.machine, self._sanitizer, SAN_OWNER,
                f"{op}: frame {pa:#x} was released but is still owned by "
                f"{self.machine.phys.owner_of(pa).kind.value}",
                frame=pa // PAGE_SIZE)

    # ----------------------------------------------------------- runtime ------

    def handle_enclave_page_fault(self, enclave_id: int, va: int, *,
                                  write: bool = False) -> None:
        """The monitor-owned page-fault path (Sec 3.2).

        Demand-commits reserved regions from the EPC free list; anything
        else is re-raised to the enclave as a real fault.
        """
        enclave = self._enclave(enclave_id)
        enclave.require_state(EnclaveState.INITIALIZED)
        self._sanitize_op("page_fault")
        tel = self.machine.telemetry
        tel.event("pagefault", lambda: f"enclave={enclave_id} va={va:#x}")
        tracer = tel.requests
        token = (tracer.begin_segment("page_fault", f"{va:#x}")
                 if tracer is not None else None)
        try:
            with tel.span("monitor.pagefault", enclave=enclave_id):
                state = self._swap_states.get(enclave_id)
                if state is not None and \
                        (va & ~(PAGE_SIZE - 1)) in state.records:
                    swap_in_page(self, enclave, state, self.swap_store, va)
                    self._sanitize_check("page_fault", enclave_id, va)
                    return
                region = enclave.reserved_region_for(va)
                if region is not None and enclave.page_at(va) is None:
                    if enclave.mode is EnclaveMode.SGX:
                        # The SGX2 EDMM path: AEX out, driver EAUG,
                        # ERESUME, then the enclave must EACCEPT the
                        # page (Sec 3.2).
                        self.machine.cpu.charge_steps(
                            costs.AEX_STEPS["sgx"], "edmm-sgx2")
                        self.machine.cycles.charge(
                            costs.SGX2_EDMM_DRIVER_CYCLES, "edmm-sgx2")
                        self.machine.cpu.charge_steps(
                            costs.ERESUME_STEPS["sgx"], "edmm-sgx2")
                        self.machine.cycles.charge(
                            costs.SGX2_EACCEPT_CYCLES, "edmm-sgx2")
                    else:
                        # HyperEnclave: the trusted monitor commits the
                        # page.
                        self.machine.cpu.charge_steps(
                            costs.DEMAND_PAGING_PF_STEPS, "demand-paging")
                    pa = self._alloc_epc_frame(enclave_id)
                    enclave.commit_page(va & ~(PAGE_SIZE - 1), pa,
                                        region.perms)
                    self._sanitize_check("page_fault", enclave_id, va)
                    return
                raise PageFault(va, write=write, present=enclave.page_at(va)
                                is not None)
        finally:
            if tracer is not None:
                tracer.end_segment(token)

    def enclave_mprotect(self, enclave_id: int, va: int, npages: int,
                         perms: PagePerm) -> None:
        """Permission-change hypercall for GU/HU enclaves (Sec 3.2):
        update the monitor-held page table and shoot down the TLB.

        On the SGX2 baseline the same operation is an OCALL to the driver
        (EMODPR) followed by an in-enclave EACCEPT per page."""
        enclave = self._enclave(enclave_id)
        if enclave.mode is EnclaveMode.SGX:
            self.machine.cycles.charge(costs.ocall_expected("sgx"),
                                       "edmm-sgx2")
            self.machine.cycles.charge(costs.SGX2_EDMM_DRIVER_CYCLES,
                                       "edmm-sgx2")
            self.machine.cycles.charge(npages * costs.SGX2_EACCEPT_CYCLES,
                                       "edmm-sgx2")
        else:
            self._charge_hypercall("enclave_mprotect")
        self._sanitize_op("enclave_mprotect")
        for i in range(npages):
            page_va = va + i * PAGE_SIZE
            enclave.protect_page(page_va, perms)
            self.machine.cycles.charge(300, "pte-update")
            self._tlb_shootdown(enclave_id, page_va)
        self._sanitize_check("enclave_mprotect", enclave_id)

    def enclave_trim(self, enclave_id: int, va: int, npages: int) -> int:
        """EDMM page removal: scrub and return pages to the EPC pool.

        Returns the number of pages actually trimmed.  On HyperEnclave
        this is one hypercall; the SGX2 baseline pays the driver OCALL +
        per-page EACCEPT handshake (ETRACK/EREMOVE flow)."""
        enclave = self._enclave(enclave_id)
        enclave.require_state(EnclaveState.INITIALIZED)
        if enclave.mode is EnclaveMode.SGX:
            self.machine.cycles.charge(costs.ocall_expected("sgx"),
                                       "edmm-sgx2")
            self.machine.cycles.charge(costs.SGX2_EDMM_DRIVER_CYCLES,
                                       "edmm-sgx2")
        else:
            self._charge_hypercall("enclave_trim")
        self._sanitize_op("enclave_trim")
        trimmed = 0
        for i in range(npages):
            page_va = (va + i * PAGE_SIZE) & ~(PAGE_SIZE - 1)
            page = enclave.page_at(page_va)
            if page is None:
                continue
            enclave.pt.unmap(page_va)
            self.epc_pool.free(page.pa)
            self._assert_frame_freed(page.pa, "enclave_trim")
            del enclave.pages[page.offset]
            self._tlb_shootdown(enclave_id, page_va)
            self.machine.cycles.charge(300, "pte-update")
            if enclave.mode is EnclaveMode.SGX:
                self.machine.cycles.charge(costs.SGX2_EACCEPT_CYCLES,
                                           "edmm-sgx2")
            trimmed += 1
        self._sanitize_check("enclave_trim", enclave_id)
        return trimmed

    # ------------------------------------------------------- verification ------

    # repro-lint: disable=R003 -- verification harness outside the guest
    # cycle model, never called on a measured path (staticcheck: charge-exempt)
    def audit_invariants(self) -> None:
        """Check the monitor's global security invariants.

        The paper reports formal verification of RustMonitor as work in
        progress; this runtime auditor checks the properties that
        verification would prove, over the live state:

        I-1  every frame an enclave's page table maps is either owned by
             that enclave or is a registered marshalling-buffer frame;
        I-2  no two enclaves map the same physical frame (except nothing:
             marshalling buffers are per-enclave too);
        I-3  the normal VM's NPT never covers monitor/enclave frames;
        I-4  every committed enclave page is inside its ELRANGE and
             owned by the right enclave.

        The actual checkers live in :mod:`repro.sanitizer.invariants` so
        the auditor and the REPRO_SANITIZE=1 runtime sanitizer are one
        source of truth.  With the sanitizer attached, this additionally
        audits the shadow ownership model, the pending-TLB-shootdown set,
        swap version records, and frozen measurements.
        """
        invariants.audit_monitor(self)

    # ------------------------------------------------------- attestation -------

    def ereport(self, enclave_id: int, report_data: bytes,
                target_mrenclave: bytes) -> LocalReport:
        """Emulated EREPORT: a local report MACed with the *target*'s
        report key, so only the target enclave can verify it."""
        self._charge_hypercall("ereport")
        enclave = self._enclave(enclave_id)
        enclave.require_state(EnclaveState.INITIALIZED)
        report = LocalReport(
            mrenclave=enclave.secs.mrenclave,
            mrsigner=enclave.secs.mrsigner,
            report_data=report_data,
            target_mrenclave=target_mrenclave,
            mac=b"")
        mac = hmac_sha256(self.keys.report_key(mrenclave=target_mrenclave),
                          report.payload())
        return LocalReport(report.mrenclave, report.mrsigner,
                           report.report_data, report.target_mrenclave, mac)

    def verify_local_report(self, verifier_enclave_id: int,
                            report: LocalReport) -> bool:
        """The target side of local attestation (EGETKEY(REPORT) + CMAC)."""
        self._charge_hypercall("verify_local_report")
        verifier = self._enclave(verifier_enclave_id)
        if report.target_mrenclave != verifier.secs.mrenclave:
            return False
        key = self.keys.report_key(mrenclave=verifier.secs.mrenclave)
        return hmac_sha256(key, report.payload()) == report.mac

    def egetkey(self, enclave_id: int, *,
                policy: SealPolicy = SealPolicy.MRENCLAVE) -> bytes:
        """Emulated EGETKEY: the enclave's sealing key."""
        self._charge_hypercall("egetkey")
        enclave = self._enclave(enclave_id)
        enclave.require_state(EnclaveState.INITIALIZED)
        return self.keys.seal_key(mrenclave=enclave.secs.mrenclave,
                                  mrsigner=enclave.secs.mrsigner,
                                  policy=policy,
                                  isv_svn=enclave.secs.isv_svn)

    # ----------------------------------------------------------- page swap ------

    def _swap_state(self, enclave: Enclave) -> EnclaveSwapState:
        state = self._swap_states.get(enclave.enclave_id)
        if state is None:
            if not enclave.secs.mrenclave:
                raise MonitorError("swap before EINIT")
            state = EnclaveSwapState(
                derive_swap_key(self.keys, enclave.secs.mrenclave))
            self._swap_states[enclave.enclave_id] = state
        return state

    def swap_out(self, enclave_id: int, va: int, npages: int = 1) -> int:
        """Evict committed enclave pages to the untrusted backing store.

        Returns the number of pages evicted.  The enclave's next touch of
        an evicted page faults and transparently swaps it back in.
        """
        self._charge_hypercall("swap_out")
        self._sanitize_op("swap_out")
        enclave = self._enclave(enclave_id)
        enclave.require_state(EnclaveState.INITIALIZED)
        state = self._swap_state(enclave)
        evicted = 0
        for i in range(npages):
            page_va = (va + i * PAGE_SIZE) & ~(PAGE_SIZE - 1)
            if enclave.page_at(page_va) is None:
                continue
            swap_out_page(self, enclave, state, self.swap_store, page_va)
            self._sanitize_check("swap_out", enclave_id, page_va)
            evicted += 1
        return evicted

    def _reclaim_one_page(self, for_enclave: int) -> bool:
        """Pool pressure: evict a REG page from the fullest enclave.

        ``for_enclave`` is the allocation that triggered the reclaim;
        the (victim, aggressor) pair feeds the per-tenant steal
        attribution in the timeline telemetry.
        """
        candidates = [e for e in self.enclaves.values()
                      if e.state is EnclaveState.INITIALIZED]
        for enclave in sorted(candidates, key=lambda e: -len(e.pages)):
            state = self._swap_state(enclave)
            for page in list(enclave.pages.values()):
                page_va = enclave.secs.base + page.offset
                if page.page_type is PageType.REG and \
                        page_va not in state.records:
                    swap_out_page(self, enclave, state, self.swap_store,
                                  page_va)
                    pair = (enclave.enclave_id, for_enclave)
                    self.epc_steals[pair] = self.epc_steals.get(pair, 0) + 1
                    self.machine.telemetry.count(
                        "monitor", "epc.frames_stolen",
                        victim=enclave.enclave_id, aggressor=for_enclave)
                    tracer = self.machine.telemetry.requests
                    if tracer is not None:
                        tracer.note_steal(enclave.enclave_id, for_enclave)
                    return True
        return False

    def _alloc_epc_frame(self, enclave_id: int) -> int:
        """Allocate from the pool, reclaiming via swap when exhausted."""
        from repro.errors import PhysicalMemoryError
        try:
            return self.epc_pool.alloc(enclave_owner(enclave_id))
        except PhysicalMemoryError:
            if not self._reclaim_one_page(enclave_id):
                raise
            return self.epc_pool.alloc(enclave_owner(enclave_id))

    def debug_read(self, enclave_id: int, va: int, size: int) -> bytes:
        """Debugger access to enclave memory (EDBGRD analog).

        Only DEBUG enclaves allow it — production enclaves are opaque to
        everything below the monitor, debugger included.
        """
        self._charge_hypercall("debug_read")
        enclave = self._enclave(enclave_id)
        if not enclave.secs.debug:
            raise SecurityViolation(
                f"EDBGRD on production enclave {enclave_id}: denied")
        out = bytearray()
        while size > 0:
            pa = enclave.pt.translate(va, user=False).pa
            chunk = min(size, PAGE_SIZE - (va % PAGE_SIZE))
            out += self.machine.phys.read(pa, chunk)
            va += chunk
            size -= chunk
        return bytes(out)

    # -- monotonic counters (anti-rollback for sealed state) --------------------

    def _nv_index_for(self, enclave: Enclave) -> int:
        # Keyed by enclave *identity*, so the counter survives reboots and
        # reloads of the same enclave.
        return int.from_bytes(enclave.secs.mrenclave[:8], "little")

    def monotonic_counter_increment(self, enclave_id: int) -> int:
        """Bump this enclave's TPM NV counter; returns the new value."""
        enclave = self._enclave(enclave_id)
        enclave.require_state(EnclaveState.INITIALIZED)
        self._charge_hypercall("monotonic_counter_increment")
        index = self._nv_index_for(enclave)
        tpm = self.machine.tpm
        try:
            return tpm.nv_counter_increment(index)
        except TpmError:
            tpm.nv_counter_define(index)     # first use: lazily defined
            return tpm.nv_counter_increment(index)

    def monotonic_counter_read(self, enclave_id: int) -> int:
        enclave = self._enclave(enclave_id)
        enclave.require_state(EnclaveState.INITIALIZED)
        self._charge_hypercall("monotonic_counter_read")
        index = self._nv_index_for(enclave)
        try:
            return self.machine.tpm.nv_counter_read(index)
        except TpmError:
            return 0                          # never sealed anything yet

    def quote(self, enclave_id: int, report_data: bytes,
              nonce: bytes) -> att.AttestationQuote:
        """Produce the full HyperEnclave quote (Figure 4)."""
        self._charge_hypercall("quote")
        enclave = self._enclave(enclave_id)
        enclave.require_state(EnclaveState.INITIALIZED)
        report = att.EnclaveReport(
            mrenclave=enclave.secs.mrenclave,
            mrsigner=enclave.secs.mrsigner,
            isv_prod_id=enclave.secs.isv_prod_id,
            isv_svn=enclave.secs.isv_svn,
            report_data=report_data,
            attributes=enclave.secs.attributes)
        if self._attestation_key is None:
            raise MonitorError("keys not initialized")
        ems = self._attestation_key.sign(report.payload())
        tpm_quote = self.machine.tpm.quote(nonce, att.QUOTE_PCRS)
        return att.AttestationQuote(report=report, ems=ems, hapk=self.hapk,
                                    tpm_quote=tpm_quote)
