"""World switches: entering and leaving enclaves (Sec 4, Figure 6).

The engine charges the calibrated per-step costs from
:mod:`repro.hw.costs` while performing the real side effects — TLB flushes
(full for GU/P, per-ASID for HU), CPU mode changes, SSA save/restore on
asynchronous exits, and the EEXIT target check that blocks the
enclave-malware jump attack (Sec 6).
"""

from __future__ import annotations

from repro.errors import EnclaveError, SecurityViolation
from repro.hw import costs
from repro.hw.cpu import Cpu, CpuMode
from repro.hw.tlb import Tlb
from repro.monitor.enclave import Enclave
from repro.monitor.structs import EnclaveMode, Tcs
from repro.telemetry import NULL_SPAN, Telemetry

_ENCLAVE_CPU_MODE = {
    EnclaveMode.GU: CpuMode.GUEST_USER,
    EnclaveMode.HU: CpuMode.HOST_USER,
    EnclaveMode.P: CpuMode.GUEST_KERNEL,
    EnclaveMode.SGX: CpuMode.HOST_USER,   # SGX enclaves run in user mode
}


class WorldSwitchEngine:
    """Drives EENTER / EEXIT / AEX / ERESUME for one platform."""

    def __init__(self, cpu: Cpu, tlb: Tlb,
                 telemetry: Telemetry | None = None) -> None:
        self.cpu = cpu
        self.tlb = tlb
        self.telemetry = telemetry
        self.enters = 0
        self.exits = 0
        self.aexes = 0

    def _event(self, kind: str, detail_fn) -> None:
        # Detail strings are built lazily: the disabled path pays one
        # branch, never an f-string.
        tel = self.telemetry
        if tel is not None and tel.ring.enabled:
            tel.ring.record(kind, detail_fn())

    def _span(self, name: str, enclave: Enclave):
        tel = self.telemetry
        if tel is None or not tel.enabled:
            return NULL_SPAN
        return tel.span(name, enclave=enclave.enclave_id,
                        mode=enclave.mode.value)

    def _tracer(self):
        # The request tracer, when one is attached (one load + branch).
        tel = self.telemetry
        return None if tel is None else tel.requests

    @staticmethod
    def _mode_key(enclave: Enclave) -> str:
        return enclave.mode.value

    def _flush_for(self, enclave: Enclave) -> None:
        if enclave.mode in (EnclaveMode.HU, EnclaveMode.SGX):
            # HU switches CR3 with a fresh PCID and SGX tags enclave
            # translations; isolation comes from the ASID tags, so the
            # enclave's working set stays warm across switches.
            return
        # GU/P run under their own GPT+NPT: "TLBs are cleared upon world
        # switches to prevent illegal memory accesses using stale TLB
        # entries" (Sec 6).
        self.tlb.flush()

    # -- synchronous transitions ------------------------------------------------

    def eenter(self, enclave: Enclave, tcs: Tcs, aep: int) -> None:
        """Enter the enclave on thread ``tcs``; ``aep`` is the only
        address EEXIT may later return to."""
        if tcs not in enclave.tcs_list:
            raise EnclaveError("TCS does not belong to this enclave")
        mode = self._mode_key(enclave)
        tracer = self._tracer()
        token = (tracer.begin_segment("eenter", mode)
                 if tracer is not None else None)
        with self._span("world.eenter", enclave):
            self.cpu.charge_steps(costs.SWITCH_COSTS[mode].eenter,
                                  f"eenter:{mode}")
            self._flush_for(enclave)
        if tracer is not None:
            tracer.end_segment(token)
        enclave.registered_aep = aep
        self.cpu.mode = _ENCLAVE_CPU_MODE[enclave.mode]
        self.enters += 1
        self._event("eenter", lambda: f"enclave={enclave.enclave_id} "
                                      f"mode={mode} tcs={tcs.index}")

    def eexit(self, enclave: Enclave, target: int) -> None:
        """Leave the enclave; the jump target is validated against the AEP.

        "since the EEXIT instruction is emulated by RustMonitor, it is
        easy to prevent such attacks by adding the validity check when
        EEXIT is invoked" (Sec 6).
        """
        if enclave.registered_aep is None:
            raise EnclaveError("EEXIT without a prior EENTER")
        if target != enclave.registered_aep:
            raise SecurityViolation(
                f"EEXIT to {target:#x} blocked: only the registered AEP "
                f"{enclave.registered_aep:#x} is a legal exit target")
        mode = self._mode_key(enclave)
        tracer = self._tracer()
        token = (tracer.begin_segment("eexit", mode)
                 if tracer is not None else None)
        with self._span("world.eexit", enclave):
            self.cpu.charge_steps(costs.SWITCH_COSTS[mode].eexit,
                                  f"eexit:{mode}")
            self._flush_for(enclave)
        if tracer is not None:
            tracer.end_segment(token)
        self.cpu.mode = CpuMode.GUEST_USER
        self.exits += 1
        self._event("eexit",
                    lambda: f"enclave={enclave.enclave_id} mode={mode}")

    # -- asynchronous exits ----------------------------------------------------------

    def aex(self, enclave: Enclave, tcs: Tcs, vector: int,
            fault_addr: int | None = None) -> None:
        """Asynchronous enclave exit: save state to the SSA, scrub, leave."""
        frame = tcs.available_ssa()
        frame.regs = dict(self.cpu.current.regs) if self.cpu.current else {}
        frame.exception_vector = vector
        frame.exception_addr = fault_addr
        frame.valid = True
        tcs.current_ssa += 1
        enclave.interrupted_tcs = tcs
        mode = self._mode_key(enclave)
        tracer = self._tracer()
        token = (tracer.begin_segment("aex", f"vector:{vector}")
                 if tracer is not None else None)
        with self._span("world.aex", enclave):
            self.cpu.charge_steps(costs.AEX_STEPS[mode], f"aex:{mode}")
            self._flush_for(enclave)
        if tracer is not None:
            tracer.end_segment(token)
        self.cpu.mode = CpuMode.GUEST_KERNEL   # the primary OS takes over
        self.aexes += 1
        self._event("aex",
                    lambda: f"enclave={enclave.enclave_id} vector={vector}")

    def eresume(self, enclave: Enclave, tcs: Tcs) -> None:
        """Resume an interrupted enclave thread from its SSA frame."""
        if tcs.current_ssa == 0:
            raise EnclaveError("ERESUME with no saved SSA frame")
        tcs.current_ssa -= 1
        frame = tcs.ssa[tcs.current_ssa]
        frame.valid = False
        enclave.interrupted_tcs = None
        mode = self._mode_key(enclave)
        tracer = self._tracer()
        token = (tracer.begin_segment("eresume", mode)
                 if tracer is not None else None)
        with self._span("world.eresume", enclave):
            self.cpu.charge_steps(costs.ERESUME_STEPS[mode],
                                  f"eresume:{mode}")
            self._flush_for(enclave)
        if tracer is not None:
            tracer.end_segment(token)
        self.cpu.mode = _ENCLAVE_CPU_MODE[enclave.mode]
        self._event("eresume",
                    lambda: f"enclave={enclave.enclave_id} mode={mode}")

    # -- SDK-path cost hooks (charged by the runtimes) -----------------------------

    def charge_ecall_warmup(self, enclave: Enclave) -> None:
        self.cpu.cycles.charge(
            costs.TLB_WARMUP_EXTRA[self._mode_key(enclave)], "tlb-warmup")

    def charge_ocall_warmup(self, enclave: Enclave) -> None:
        self.cpu.cycles.charge(
            costs.OCALL_WARMUP_EXTRA[self._mode_key(enclave)], "tlb-warmup")
