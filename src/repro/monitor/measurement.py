"""Enclave measurement (MRENCLAVE construction).

"During enclave creation, all pages added to the enclave (including the
corresponding page content, page type, and RWX permissions) are measured
by RustMonitor to generate the enclave measurement" (Sec 3.3).  The
intermediate state lives in RustMonitor's memory, invisible to the
primary OS and the enclaves.
"""

from __future__ import annotations

import hashlib
import struct

from repro.errors import EnclaveError
from repro.monitor.structs import PagePerm, PageType


class MeasurementLog:
    """An incremental SHA-256 measurement over enclave build operations."""

    def __init__(self) -> None:
        self._hash = hashlib.sha256()
        self._finalized: bytes | None = None
        self.pages_measured = 0

    def ecreate(self, base: int, size: int, mode_value: str,
                attributes: int = 0) -> None:
        """Measure the ECREATE parameters (geometry, mode, attributes).

        Attributes include the DEBUG bit, so a debug build can never
        impersonate a production enclave's identity.
        """
        self._ensure_open()
        self._hash.update(b"ECREATE")
        self._hash.update(struct.pack("<QQQ", base, size, attributes))
        self._hash.update(mode_value.encode())

    def eadd(self, offset: int, page_type: PageType, perms: PagePerm,
             content: bytes) -> None:
        """Measure one added page: offset, type, permissions, content."""
        self._ensure_open()
        if len(content) > 4096:
            raise EnclaveError("page content larger than a page")
        self._hash.update(b"EADD")
        self._hash.update(struct.pack("<Q", offset))
        self._hash.update(page_type.value.encode())
        self._hash.update(struct.pack("<B", int(perms)))
        self._hash.update(hashlib.sha256(content).digest())
        self.pages_measured += 1

    def finalize(self) -> bytes:
        """EINIT: freeze and return MRENCLAVE."""
        if self._finalized is None:
            self._finalized = self._hash.digest()
        return self._finalized

    @property
    def finalized(self) -> bool:
        return self._finalized is not None

    def _ensure_open(self) -> None:
        if self._finalized is not None:
            raise EnclaveError("measurement already finalized by EINIT")
