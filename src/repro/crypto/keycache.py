"""Precomputed deterministic RSA key material.

Every RSA key in the simulation is derived deterministically from a seed
(TPM EK/AIK, RustMonitor's attestation key), so for a given seed the
Miller-Rabin search in :func:`repro.crypto.rsa.generate_keypair` always
lands on the same primes.  Re-running that search is the single most
expensive step of booting a machine — a quarter second of modular
exponentiation per platform — and it is pure recomputation of values
that never change.

This module ships the primes for the seeds the benchmarks and tests
boot with, committed as ``keycache.json`` next to this file.  On a
cache hit :func:`lookup` rebuilds the exact key pair the search would
have produced (same ``p``/``q`` order, same derived ``d``), so key
material, quotes, measurements and state fingerprints are bit-identical
with or without the cache.

The cache is auditable, not magic:

* ``python -m repro.crypto.keycache verify`` re-runs the full keygen
  for every committed entry and fails on any mismatch.
* ``REPRO_KEYCACHE_RECORD=<path>`` makes every cache miss append a JSON
  line to ``<path>``; ``python -m repro.crypto.keycache merge <path>``
  folds recorded entries back into ``keycache.json``.
"""

from __future__ import annotations

import json
import os
import pathlib

_CACHE_PATH = pathlib.Path(__file__).with_name("keycache.json")

# seed-hex -> {"bits": int, "e": int, "p": hex, "q": hex}; loaded lazily.
_entries: dict[tuple[int, int, str], tuple[int, int]] | None = None


def _load() -> dict[tuple[int, int, str], tuple[int, int]]:
    global _entries
    if _entries is None:
        _entries = {}
        if _CACHE_PATH.exists():
            doc = json.loads(_CACHE_PATH.read_text())
            for entry in doc.get("entries", []):
                key = (entry["bits"], entry["e"], entry["seed"])
                _entries[key] = (int(entry["p"], 16), int(entry["q"], 16))
    return _entries


def lookup(bits: int, seed: bytes, e: int):
    """The key pair keygen would derive for (bits, seed, e), or None."""
    primes = _load().get((bits, e, seed.hex()))
    if primes is None:
        return None
    from repro.crypto.rsa import RsaKeyPair, RsaPublicKey
    p, q = primes
    d = pow(e, -1, (p - 1) * (q - 1))
    return RsaKeyPair(public=RsaPublicKey(n=p * q, e=e), d=d, p=p, q=q)


def observe_miss(bits: int, seed: bytes, e: int, pair) -> None:
    """Record a freshly computed key pair when recording is enabled."""
    # repro-lint: disable=SC001 -- record-mode knob: gates whether a key is
    # *saved* to disk, never what the simulation computes or charges
    path = os.environ.get("REPRO_KEYCACHE_RECORD")
    if not path:
        return
    line = json.dumps({"bits": bits, "e": e, "seed": seed.hex(),
                       "p": format(pair.p, "x"), "q": format(pair.q, "x")})
    with open(path, "a") as fh:
        fh.write(line + "\n")


def _write(entries: dict) -> None:
    doc = {"entries": [
        {"bits": bits, "e": e, "seed": seed_hex,
         "p": format(p, "x"), "q": format(q, "x")}
        for (bits, e, seed_hex), (p, q) in sorted(entries.items())
    ]}
    _CACHE_PATH.write_text(json.dumps(doc, indent=1) + "\n")


def _cmd_merge(paths: list[str]) -> int:
    entries = dict(_load())
    added = 0
    for path in paths:
        for line in pathlib.Path(path).read_text().splitlines():
            if not line.strip():
                continue
            rec = json.loads(line)
            key = (rec["bits"], rec["e"], rec["seed"])
            value = (int(rec["p"], 16), int(rec["q"], 16))
            if entries.get(key) != value:
                entries[key] = value
                added += 1
    _write(entries)
    print(f"keycache: {len(entries)} entries ({added} added/updated)")
    return 0


def _cmd_verify() -> int:
    from repro.crypto import rsa
    failures = 0
    entries = _load()
    for (bits, e, seed_hex), (p, q) in sorted(entries.items()):
        seed = bytes.fromhex(seed_hex)
        # Run the real search, bypassing the cache.
        drbg = rsa.Drbg(seed)
        half = bits // 2
        while True:
            got_p = rsa._generate_prime(half, drbg)
            got_q = rsa._generate_prime(bits - half, drbg)
            if got_p == got_q:
                continue
            n = got_p * got_q
            if n.bit_length() != bits:
                continue
            try:
                pow(e, -1, (got_p - 1) * (got_q - 1))
            except ValueError:
                continue
            break
        if (got_p, got_q) != (p, q):
            print(f"MISMATCH bits={bits} seed={seed_hex[:16]}…")
            failures += 1
        else:
            print(f"ok bits={bits} seed={seed_hex[:16]}…")
    print(f"keycache: {len(entries)} entries, {failures} mismatches")
    return 1 if failures else 0


def main(argv: list[str]) -> int:
    """CLI entry point: ``verify`` or ``merge <jsonl>...``."""
    if argv[:1] == ["verify"]:
        return _cmd_verify()
    if argv[:1] == ["merge"] and len(argv) > 1:
        return _cmd_merge(argv[1:])
    print("usage: python -m repro.crypto.keycache verify | merge <jsonl>...")
    return 2


if __name__ == "__main__":
    import sys
    raise SystemExit(main(sys.argv[1:]))
