"""Hashing, MAC, and key-derivation helpers built on :mod:`hashlib`."""

from __future__ import annotations

import hashlib
import hmac as _hmac

DIGEST_SIZE = 32


def sha256(*chunks: bytes) -> bytes:
    """SHA-256 over the concatenation of ``chunks``."""
    h = hashlib.sha256()
    for chunk in chunks:
        h.update(chunk)
    return h.digest()


def hmac_sha256(key: bytes, *chunks: bytes) -> bytes:
    """HMAC-SHA-256 over the concatenation of ``chunks``."""
    mac = _hmac.new(key, digestmod=hashlib.sha256)
    for chunk in chunks:
        mac.update(chunk)
    return mac.digest()


def constant_time_eq(a: bytes, b: bytes) -> bool:
    """Timing-safe comparison (delegates to :func:`hmac.compare_digest`)."""
    return _hmac.compare_digest(a, b)


def hkdf(ikm: bytes, *, salt: bytes = b"", info: bytes = b"",
         length: int = 32) -> bytes:
    """HKDF-SHA-256 (RFC 5869): extract-then-expand key derivation."""
    if length <= 0 or length > 255 * DIGEST_SIZE:
        raise ValueError(f"invalid HKDF output length {length}")
    prk = hmac_sha256(salt or b"\x00" * DIGEST_SIZE, ikm)
    out = b""
    block = b""
    counter = 1
    while len(out) < length:
        block = hmac_sha256(prk, block, info, bytes([counter]))
        out += block
        counter += 1
    return out[:length]
