"""A SHA-256-CTR stream cipher with encrypt-then-MAC AEAD, plus a DRBG.

Used by the TPM's seal operation and by the enclave sealing API.  The
construction is textbook: ``keystream[i] = SHA256(key || nonce || i)``,
ciphertext is XOR, and an HMAC-SHA-256 tag covers nonce, associated data
and ciphertext.  It is real (decryption fails on any tampering), small,
and needs no third-party packages.
"""

from __future__ import annotations

import struct

from repro.crypto.hashes import (DIGEST_SIZE, constant_time_eq, hmac_sha256,
                                 sha256)
from repro.errors import SealError

NONCE_SIZE = 16
TAG_SIZE = DIGEST_SIZE


def _keystream_xor(key: bytes, nonce: bytes, data: bytes) -> bytes:
    out = bytearray(len(data))
    for block in range(0, len(data), DIGEST_SIZE):
        pad = sha256(key, nonce, struct.pack("<Q", block // DIGEST_SIZE))
        chunk = data[block:block + DIGEST_SIZE]
        for i, byte in enumerate(chunk):
            out[block + i] = byte ^ pad[i]
    return bytes(out)


def _split_keys(key: bytes) -> tuple[bytes, bytes]:
    enc = sha256(b"enc", key)
    mac = sha256(b"mac", key)
    return enc, mac


def aead_encrypt(key: bytes, nonce: bytes, plaintext: bytes,
                 aad: bytes = b"") -> bytes:
    """Encrypt-then-MAC.  Returns ``nonce || ciphertext || tag``."""
    if len(nonce) != NONCE_SIZE:
        raise ValueError(f"nonce must be {NONCE_SIZE} bytes")
    enc_key, mac_key = _split_keys(key)
    ciphertext = _keystream_xor(enc_key, nonce, plaintext)
    tag = hmac_sha256(mac_key, nonce, aad, ciphertext)
    return nonce + ciphertext + tag


def aead_decrypt(key: bytes, blob: bytes, aad: bytes = b"") -> bytes:
    """Verify the tag and decrypt; raises :class:`SealError` on tamper."""
    if len(blob) < NONCE_SIZE + TAG_SIZE:
        raise SealError("sealed blob too short")
    nonce = blob[:NONCE_SIZE]
    ciphertext = blob[NONCE_SIZE:-TAG_SIZE]
    tag = blob[-TAG_SIZE:]
    enc_key, mac_key = _split_keys(key)
    expected = hmac_sha256(mac_key, nonce, aad, ciphertext)
    if not constant_time_eq(tag, expected):
        raise SealError("authentication tag mismatch")
    return _keystream_xor(enc_key, nonce, ciphertext)


class Drbg:
    """Deterministic random bit generator (hash-counter construction).

    The TPM's RNG and key generation use this so a seeded simulation is
    fully reproducible while an unseeded one draws entropy from
    :func:`os.urandom`.
    """

    def __init__(self, seed: bytes | None = None) -> None:
        if seed is None:
            import os
            # repro-lint: disable=SC001 -- entropy fallback only when the
            # caller omits a seed; every simulated component passes one
            seed = os.urandom(32)
        self._state = sha256(b"drbg-init", seed)
        self._counter = 0

    def read(self, n: int) -> bytes:
        """Return ``n`` pseudo-random bytes and advance the state."""
        out = b""
        while len(out) < n:
            self._counter += 1
            out += sha256(self._state, struct.pack("<Q", self._counter))
        self._state = sha256(b"drbg-ratchet", self._state)
        return out[:n]

    def position(self) -> str:
        """A fingerprint of the generator position (state + counter).

        Two Drbg instances with equal positions will produce identical
        future output — the property machine state hashing needs.
        """
        return sha256(self._state, struct.pack("<Q", self._counter)).hex()

    def randint_bits(self, bits: int) -> int:
        """A random integer with exactly ``bits`` bits (MSB set)."""
        if bits < 2:
            raise ValueError("need at least 2 bits")
        nbytes = (bits + 7) // 8
        value = int.from_bytes(self.read(nbytes), "big")
        value &= (1 << bits) - 1
        value |= 1 << (bits - 1)
        return value
