"""Finite-field Diffie-Hellman for the attested secure channel.

A classic MODP group (RFC 2409 Oakley group 2, 1024-bit, generator 2) —
pure-Python ``pow`` makes the exchange a few milliseconds.  Used by
:mod:`repro.sdk.channel` where local-attestation reports authenticate the
public values (the SIGMA idea the paper's attestation flow follows).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashes import hkdf, sha256

# RFC 2409, Second Oakley Group (1024-bit MODP).
P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF",
    16)
G = 2


@dataclass(frozen=True)
class DhKeyPair:
    """One side's ephemeral exchange key."""

    private: int
    public: int

    def shared_secret(self, peer_public: int) -> bytes:
        """The raw shared secret with ``peer_public``."""
        if not 2 <= peer_public <= P - 2:
            raise ValueError("peer public value out of range")
        secret = pow(peer_public, self.private, P)
        if secret in (1, P - 1):
            raise ValueError("degenerate shared secret")
        return secret.to_bytes((P.bit_length() + 7) // 8, "big")


def generate_keypair(entropy: bytes) -> DhKeyPair:
    """Derive an ephemeral key pair from caller-provided entropy."""
    if len(entropy) < 16:
        raise ValueError("need at least 128 bits of entropy")
    private = int.from_bytes(sha256(b"dh-priv", entropy) * 2, "big") % (P - 3)
    private += 2
    return DhKeyPair(private=private, public=pow(G, private, P))


def public_bytes(public: int) -> bytes:
    """Fixed-width big-endian encoding of a public value."""
    return public.to_bytes((P.bit_length() + 7) // 8, "big")


def session_key(shared: bytes, transcript: bytes) -> bytes:
    """Bind the session key to the handshake transcript."""
    return hkdf(shared, info=b"channel-session" + sha256(transcript))
