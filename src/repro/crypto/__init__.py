"""Minimal, dependency-free cryptographic primitives.

The TPM, RustMonitor's attestation key, sealing, and the SIGMA quote flow
all need real (verifiable) cryptography.  We implement a small but genuine
suite in pure Python:

* :mod:`repro.crypto.hashes` -- SHA-256 / HMAC / HKDF helpers.
* :mod:`repro.crypto.rsa`    -- RSA keygen (Miller-Rabin), PKCS#1-v1.5-style
  signatures over SHA-256.
* :mod:`repro.crypto.cipher` -- SHA-256-CTR stream cipher with an
  encrypt-then-MAC AEAD wrapper (used by TPM seal and enclave sealing).

Keys are generated from a deterministic DRBG when a seed is supplied so the
whole simulation is reproducible.
"""

from repro.crypto.hashes import sha256, hmac_sha256, hkdf
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, generate_keypair
from repro.crypto.cipher import aead_encrypt, aead_decrypt, Drbg

__all__ = [
    "sha256",
    "hmac_sha256",
    "hkdf",
    "RsaKeyPair",
    "RsaPublicKey",
    "generate_keypair",
    "aead_encrypt",
    "aead_decrypt",
    "Drbg",
]
