"""Pure-Python RSA signatures (keygen, PKCS#1-v1.5-style sign/verify).

The TPM's EK/AIK and RustMonitor's attestation key are genuine RSA key
pairs.  Key sizes default to 1024 bits, which keygen handles in well under
a second with Miller-Rabin; the point is verifiable signatures inside the
simulation, not production-grade key lengths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.cipher import Drbg
from repro.crypto.hashes import sha256
from repro.errors import AttestationError

# DER prefix for a SHA-256 DigestInfo, as in PKCS#1 v1.5 signatures.
_SHA256_DIGEST_INFO = bytes.fromhex(
    "3031300d060960864801650304020105000420")

_SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47,
                 53, 59, 61, 67, 71, 73, 79, 83, 89, 97]


def _is_probable_prime(n: int, drbg: Drbg, rounds: int = 24) -> bool:
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = 2 + int.from_bytes(drbg.read(8), "big") % (n - 3)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _generate_prime(bits: int, drbg: Drbg) -> int:
    while True:
        candidate = drbg.randint_bits(bits) | 1
        if _is_probable_prime(candidate, drbg):
            return candidate


@dataclass(frozen=True)
class RsaPublicKey:
    """An RSA public key (n, e) with PKCS#1-v1.5-style verification."""

    n: int
    e: int

    @property
    def size_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Return True iff ``signature`` is a valid signature of ``message``."""
        if len(signature) != self.size_bytes:
            return False
        s = int.from_bytes(signature, "big")
        if s >= self.n:
            return False
        em = pow(s, self.e, self.n).to_bytes(self.size_bytes, "big")
        return em == _pad(message, self.size_bytes)

    def fingerprint(self) -> bytes:
        """SHA-256 over the serialized public key (used in PCR extends)."""
        return sha256(self.to_bytes())

    def to_bytes(self) -> bytes:
        n_bytes = self.n.to_bytes(self.size_bytes, "big")
        e_bytes = self.e.to_bytes(8, "big")
        return len(n_bytes).to_bytes(4, "big") + n_bytes + e_bytes

    @classmethod
    def from_bytes(cls, data: bytes) -> "RsaPublicKey":
        if len(data) < 12:
            raise AttestationError("truncated public key")
        n_len = int.from_bytes(data[:4], "big")
        if len(data) != 4 + n_len + 8:
            raise AttestationError("malformed public key")
        n = int.from_bytes(data[4:4 + n_len], "big")
        e = int.from_bytes(data[4 + n_len:], "big")
        return cls(n=n, e=e)


def _pad(message: bytes, size: int) -> bytes:
    """EMSA-PKCS1-v1_5 encoding of SHA256(message)."""
    t = _SHA256_DIGEST_INFO + sha256(message)
    if size < len(t) + 11:
        raise AttestationError("RSA modulus too small for SHA-256 padding")
    ps = b"\xff" * (size - len(t) - 3)
    return b"\x00\x01" + ps + b"\x00" + t


@dataclass(frozen=True)
class RsaKeyPair:
    """An RSA key pair; ``sign`` uses the CRT for speed."""

    public: RsaPublicKey
    d: int
    p: int
    q: int

    def sign(self, message: bytes) -> bytes:
        size = self.public.size_bytes
        em = int.from_bytes(_pad(message, size), "big")
        # CRT: compute m^d mod p and mod q, then recombine.
        dp = self.d % (self.p - 1)
        dq = self.d % (self.q - 1)
        qinv = pow(self.q, -1, self.p)
        m1 = pow(em, dp, self.p)
        m2 = pow(em, dq, self.q)
        h = (qinv * (m1 - m2)) % self.p
        s = m2 + h * self.q
        return s.to_bytes(size, "big")


# Deterministic key pairs are expensive to regenerate; memoize by seed.
_CACHE: dict[tuple[int, bytes], "RsaKeyPair"] = {}


def cached_keypair(seed: bytes, bits: int = 1024) -> "RsaKeyPair":
    """A deterministic key pair, generated once per (seed, bits)."""
    key = (bits, seed)
    if key not in _CACHE:
        _CACHE[key] = generate_keypair(bits, seed=seed)
    return _CACHE[key]


def generate_keypair(bits: int = 1024, *, seed: bytes | None = None,
                     e: int = 65537) -> RsaKeyPair:
    """Generate an RSA key pair; deterministic when ``seed`` is given.

    Seeded generation first consults the committed precomputed-prime
    cache (:mod:`repro.crypto.keycache`): the search below always lands
    on the same primes for a given seed, so a hit returns the identical
    key pair without the Miller-Rabin wall-clock cost.
    """
    if bits < 512:
        raise ValueError("RSA keys below 512 bits cannot carry SHA-256 sigs")
    if seed is not None:
        from repro.crypto import keycache
        cached = keycache.lookup(bits, seed, e)
        if cached is not None:
            return cached
    drbg = Drbg(seed)
    half = bits // 2
    while True:
        p = _generate_prime(half, drbg)
        q = _generate_prime(bits - half, drbg)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        try:
            d = pow(e, -1, phi)
        except ValueError:
            continue
        pair = RsaKeyPair(public=RsaPublicKey(n=n, e=e), d=d, p=p, q=q)
        if seed is not None:
            keycache.observe_miss(bits, seed, e, pair)
        return pair
