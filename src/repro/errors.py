"""Exception hierarchy for the HyperEnclave reproduction.

Every layer of the stack (hardware, monitor, OS, SDK) raises exceptions
derived from :class:`ReproError` so callers can catch simulation faults
separately from programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the simulation."""


class HardwareError(ReproError):
    """A fault at the simulated-hardware layer (bad PA, bad frame, ...)."""


class PhysicalMemoryError(HardwareError):
    """Access to an invalid or unowned physical address."""


class PageFault(HardwareError):
    """Raised by the MMU when a translation fails.

    Mirrors the x86 #PF semantics we care about: the faulting virtual
    address, whether the access was a write / instruction fetch, and
    whether the fault came from a not-present entry or a protection
    violation.
    """

    def __init__(self, vaddr: int, *, write: bool = False, user: bool = True,
                 present: bool = False, fetch: bool = False) -> None:
        self.vaddr = vaddr
        self.write = write
        self.user = user
        self.present = present
        self.fetch = fetch
        kind = "protection" if present else "not-present"
        op = "write" if write else ("fetch" if fetch else "read")
        super().__init__(f"#PF {kind} on {op} at {vaddr:#x}")


class NestedPageFault(PageFault):
    """A fault during the second-dimension (NPT) walk."""


class SecurityViolation(ReproError):
    """An operation the TEE must forbid was attempted.

    These are the checks the paper's security requirements R-1..R-3 and
    the enclave-malware defenses enforce; the security test-suite asserts
    they fire.
    """


class TpmError(ReproError):
    """TPM command failure (bad PCR index, unseal policy mismatch, ...)."""


class SealError(TpmError):
    """Unsealing failed: wrong platform, wrong PCRs, or corrupt blob."""


class MonitorError(ReproError):
    """RustMonitor rejected a hypercall or enclave operation."""


class EnclaveError(MonitorError):
    """Invalid enclave lifecycle operation (bad state, bad page, ...)."""


class AttestationError(ReproError):
    """Quote generation or verification failed."""


class OsError(ReproError):
    """Primary-OS level failure (bad ioctl, bad mmap, no such process)."""


class SdkError(ReproError):
    """Enclave SDK misuse (bad ECALL id, marshalling overflow, ...)."""


class EdlError(SdkError):
    """The EDL parser rejected an interface definition."""
