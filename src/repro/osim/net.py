"""Loopback networking.

The Lighttpd and Redis evaluations run clients "over the local loopback"
(Sec 7.4).  We model a loopback with per-message queues and a kernel
network-stack cost per send/receive; NIC interrupt arrivals (which force
AEXes out of running enclaves) are derived from the machine's interrupt
model by the benchmark drivers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import OsError
from repro.hw.machine import Machine

# Kernel TCP/IP stack cost per send or receive of one message (loopback:
# no wire, but checksums, socket locks and copies are real).
STACK_CYCLES_PER_MSG = 30_000
STACK_CYCLES_PER_BYTE = 0.12


@dataclass
class Connection:
    """One established loopback connection (bidirectional queues)."""

    client_to_server: deque[bytes] = field(default_factory=deque)
    server_to_client: deque[bytes] = field(default_factory=deque)
    open: bool = True

    def close(self) -> None:
        self.open = False


class Loopback:
    """The loopback interface: listeners and connections."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self._listeners: dict[int, deque[Connection]] = {}
        self.messages_sent = 0

    # -- server side ----------------------------------------------------------

    def listen(self, port: int) -> None:
        if port in self._listeners:
            raise OsError(f"port {port} already bound")
        self._listeners[port] = deque()

    def accept(self, port: int) -> Connection:
        queue = self._listeners.get(port)
        if queue is None:
            raise OsError(f"nothing listening on port {port}")
        if not queue:
            raise OsError(f"no pending connection on port {port}")
        return queue.popleft()

    def has_pending(self, port: int) -> bool:
        queue = self._listeners.get(port)
        return bool(queue)

    # -- client side -----------------------------------------------------------

    def connect(self, port: int) -> Connection:
        queue = self._listeners.get(port)
        if queue is None:
            raise OsError(f"connection refused on port {port}")
        conn = Connection()
        queue.append(conn)
        return conn

    # -- data transfer -----------------------------------------------------------

    def _charge(self, nbytes: int) -> None:
        self.machine.cycles.charge(
            STACK_CYCLES_PER_MSG + nbytes * STACK_CYCLES_PER_BYTE, "netstack")

    def send(self, conn: Connection, data: bytes, *,
             from_client: bool) -> None:
        if not conn.open:
            raise OsError("send on closed connection")
        self._charge(len(data))
        self.messages_sent += 1
        if from_client:
            conn.client_to_server.append(data)
        else:
            conn.server_to_client.append(data)

    def recv(self, conn: Connection, *, from_client: bool) -> bytes | None:
        """Pop one message; None when the queue is empty."""
        queue = conn.client_to_server if from_client else conn.server_to_client
        if not queue:
            return None
        data = queue.popleft()
        self._charge(len(data))
        return data
