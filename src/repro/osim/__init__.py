"""The untrusted primary OS (the "normal mode" world).

A deliberately small Linux-shaped kernel: processes with real page tables,
mmap (including ``MAP_POPULATE`` and page pinning, which the marshalling
buffer needs), signal delivery (the first phase of two-phase exception
handling), a round-robin scheduler, an in-memory VFS, loopback sockets,
and the ``/dev/hyper_enclave`` kernel module that relays ioctls to
RustMonitor hypercalls (Sec 5.2).

Nothing in here is trusted: after the measured late launch the monitor
polices every physical access this layer makes (R-1) and every DMA its
devices issue (R-3).
"""

from repro.osim.kernel import Kernel
from repro.osim.process import Process, VmArea
from repro.osim.kmod import HyperEnclaveDevice, Ioctl

__all__ = ["Kernel", "Process", "VmArea", "HyperEnclaveDevice", "Ioctl"]
