"""The HyperEnclave kernel module: /dev/hyper_enclave (Sec 5.2).

Loaded by the primary OS at boot (the loading itself happens inside
``measured_late_launch``); afterwards it exposes the emulated privileged
SGX operations to applications as ioctls, each of which is a syscall into
the kernel plus a hypercall into RustMonitor.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import OsError
from repro.monitor.rustmonitor import RustMonitor
from repro.osim.kernel import Kernel


class Ioctl(enum.Enum):
    """Command numbers of /dev/hyper_enclave."""

    ECREATE = 0xA001
    EADD = 0xA002
    ADD_TCS = 0xA003
    RESERVE_REGION = 0xA004
    EINIT = 0xA005
    EREMOVE = 0xA006
    MPROTECT = 0xA007
    PIN_BUFFER = 0xA008


class HyperEnclaveDevice:
    """The character device the uRTS opens."""

    path = "/dev/hyper_enclave"

    def __init__(self, kernel: Kernel, monitor: RustMonitor) -> None:
        self.kernel = kernel
        self.monitor = monitor

    def ioctl(self, process, command: Ioctl, **args: Any):
        """Dispatch one ioctl: a syscall plus the corresponding hypercall."""
        self.kernel.charge_syscall(300)
        if command is Ioctl.ECREATE:
            return self.monitor.ecreate(args["config"], size=args["size"],
                                        base=args.get(
                                            "base", _default_base()))
        if command is Ioctl.EADD:
            return self.monitor.eadd(
                args["enclave_id"], args["offset"],
                args.get("content", b""),
                page_type=args["page_type"], perms=args["perms"],
                measure=args.get("measure", True))
        if command is Ioctl.ADD_TCS:
            return self.monitor.add_tcs(args["enclave_id"], args["offset"],
                                        args["entry_va"])
        if command is Ioctl.RESERVE_REGION:
            return self.monitor.reserve_region(
                args["enclave_id"], args["start_va"], args["size"],
                args.get("perms", _default_perms()))
        if command is Ioctl.EINIT:
            return self.monitor.einit(args["enclave_id"], args["sigstruct"],
                                      marshalling=args.get("marshalling"))
        if command is Ioctl.EREMOVE:
            return self.monitor.eremove(args["enclave_id"])
        if command is Ioctl.MPROTECT:
            return self.monitor.enclave_mprotect(
                args["enclave_id"], args["va"], args["npages"],
                args["perms"])
        if command is Ioctl.PIN_BUFFER:
            return self.kernel.pin(process, args["vma"])
        raise OsError(f"unknown ioctl {command}")


def _default_base() -> int:
    from repro.monitor.enclave import ENCLAVE_BASE_VA
    return ENCLAVE_BASE_VA


def _default_perms():
    from repro.monitor.structs import PagePerm
    return PagePerm.RW
