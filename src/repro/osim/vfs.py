"""A small in-memory filesystem.

Used twice: by the primary OS (baseline servers read their documents from
it) and — a separate instance — inside the LibOS, where Occlum keeps an
encrypted in-enclave FS.
"""

from __future__ import annotations

from repro.errors import OsError

_READ_CYCLES_PER_BYTE = 0.75
_LOOKUP_CYCLES = 350


class Vfs:
    """Path -> bytes with simple cost accounting."""

    def __init__(self, charge=None) -> None:
        self._files: dict[str, bytes] = {}
        self._charge = charge or (lambda cycles, cat: None)

    def write_file(self, path: str, data: bytes) -> None:
        self._normalize(path)
        self._charge(_LOOKUP_CYCLES + len(data) * _READ_CYCLES_PER_BYTE,
                     "vfs")
        self._files[path] = bytes(data)

    def read_file(self, path: str) -> bytes:
        self._normalize(path)
        self._charge(_LOOKUP_CYCLES, "vfs")
        data = self._files.get(path)
        if data is None:
            raise OsError(f"no such file: {path}")
        self._charge(len(data) * _READ_CYCLES_PER_BYTE, "vfs")
        return data

    def exists(self, path: str) -> bool:
        self._charge(_LOOKUP_CYCLES, "vfs")
        return path in self._files

    def stat(self, path: str) -> int:
        """Size in bytes."""
        self._charge(_LOOKUP_CYCLES, "vfs")
        data = self._files.get(path)
        if data is None:
            raise OsError(f"no such file: {path}")
        return len(data)

    def unlink(self, path: str) -> None:
        self._charge(_LOOKUP_CYCLES, "vfs")
        if path not in self._files:
            raise OsError(f"no such file: {path}")
        del self._files[path]

    def listdir(self) -> list[str]:
        return sorted(self._files)

    @staticmethod
    def _normalize(path: str) -> None:
        if not path.startswith("/"):
            raise OsError(f"paths must be absolute: {path!r}")
