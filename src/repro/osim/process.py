"""Processes and their address spaces."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import OsError, PageFault
from repro.hw.paging import PageTable, PageTableFlags
from repro.hw.phys import PAGE_SIZE

# Classic layout constants.
CODE_BASE = 0x0000_0040_0000
HEAP_BASE = 0x0000_1000_0000
MMAP_BASE = 0x7F00_0000_0000


@dataclass
class VmArea:
    """One mmap'd region of a process address space."""

    start: int
    size: int
    writable: bool
    populated: bool
    pinned: bool = False
    frames: list[int] = field(default_factory=list)

    @property
    def end(self) -> int:
        return self.start + self.size

    def contains(self, va: int, size: int = 1) -> bool:
        return self.start <= va and va + size <= self.end


class Process:
    """A primary-OS process: page table, VMAs, signal handlers."""

    def __init__(self, pid: int, page_table: PageTable) -> None:
        self.pid = pid
        self.pt = page_table
        self.vmas: list[VmArea] = []
        self._mmap_cursor = MMAP_BASE
        self.heap_top = HEAP_BASE
        self.signal_handlers: dict[int, Callable[..., object]] = {}
        self.enclaves: dict[int, object] = {}   # uRTS-managed handles
        self.alive = True

    def next_mmap_va(self, size: int) -> int:
        """Pick a fresh address in the mmap region."""
        va = self._mmap_cursor
        self._mmap_cursor += ((size + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)) \
            + PAGE_SIZE   # guard gap
        return va

    def vma_at(self, va: int, size: int = 1) -> VmArea | None:
        for vma in self.vmas:
            if vma.contains(va, size):
                return vma
        return None

    def register_signal_handler(self, signal: int,
                                handler: Callable[..., object]) -> None:
        self.signal_handlers[signal] = handler

    def translate(self, va: int, *, write: bool = False) -> int:
        """Translate through the process page table (user access)."""
        if not self.alive:
            raise OsError(f"process {self.pid} has exited")
        return self.pt.translate(va, write=write, user=True).pa
