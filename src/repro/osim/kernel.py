"""The primary-OS kernel.

Runs in the normal VM's guest ring 0.  Owns normal memory, process page
tables, mmap/brk, pinning (for the marshalling buffer), signal delivery
and a round-robin run queue.  Every physical frame it hands out is normal
memory; every access it mediates is subject to the monitor's NPT check.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.errors import OsError, PageFault
from repro.hw import costs, memaccess
from repro.hw.machine import Machine
from repro.hw.paging import PageTable, PageTableFlags
from repro.hw.phys import NORMAL, PAGE_SIZE, FramePool
from repro.monitor.rustmonitor import RustMonitor
from repro.osim.process import Process, VmArea

# Signal numbers we model.
SIGSEGV = 11
SIGILL = 4

_KERNEL_RESERVED_LOW = 16 * 1024 * 1024   # kernel text/data below here


class Kernel:
    """The untrusted primary OS."""

    def __init__(self, machine: Machine,
                 monitor: RustMonitor | None = None) -> None:
        self.machine = machine
        self.monitor = monitor
        # Normal memory: everything below the reserved region.
        pool_base = _KERNEL_RESERVED_LOW
        pool_size = machine.config.reserved_base - pool_base
        self.frame_pool = FramePool(machine.phys, pool_base, pool_size,
                                    NORMAL)
        self.processes: dict[int, Process] = {}
        self._next_pid = 1
        self.run_queue: deque[int] = deque()
        self.syscalls = 0
        # Running inside the normal VM: fresh guest mappings need nested
        # (NPT) fills.  Huge NPT pages keep this small (Appendix A.2).
        self.virtualized = monitor is not None
        # Fold OS state into Machine.state_hash(); deep dumps go to the
        # forensic bundles.
        machine.state_providers["kernel"] = self._state_for_hash
        machine.dump_providers["kernel"] = self._state_dump

    def _state_for_hash(self) -> dict:
        """Kernel-owned state for ``Machine.state_fingerprint()``."""
        processes = {}
        for pid, proc in self.processes.items():
            processes[pid] = {
                "pt_root": proc.pt.root_pa,
                "asid": proc.pt.asid,
                "alive": proc.alive,
                "vmas": [(v.start, v.size, v.writable, v.populated,
                          v.pinned, v.frames) for v in proc.vmas],
            }
        return {
            "processes": processes,
            "next_pid": self._next_pid,
            "run_queue": list(self.run_queue),
            "syscalls": self.syscalls,
            "free": self.frame_pool.state_digest(),
        }

    def _state_dump(self) -> dict:
        """Deep OS state for forensic bundles (full PT walks)."""
        processes = {}
        for pid, proc in self.processes.items():
            processes[str(pid)] = {
                "alive": proc.alive,
                "pt_root": proc.pt.root_pa,
                "asid": proc.pt.asid,
                "vmas": [{"start": v.start, "size": v.size,
                          "writable": v.writable, "pinned": v.pinned,
                          "frames": len(v.frames)} for v in proc.vmas],
                "page_table": [
                    {"va": va, "pa": pa, "flags": int(flags)}
                    for va, pa, flags in proc.pt.mappings()],
            }
        return {
            "processes": processes,
            "run_queue": list(self.run_queue),
            "syscalls": self.syscalls,
            "free_pages": self.frame_pool.free_pages,
        }

    def _charge_npt_fill(self, pages: int = 1) -> None:
        # One 2 MB huge NPT entry covers 512 guest pages, so the per-page
        # amortized fill cost is tiny — the paper's <1% result.
        if self.virtualized:
            self.machine.cycles.charge(60 * pages / 512.0, "npt-fill")

    # -- processes ------------------------------------------------------------

    def spawn(self) -> Process:
        """Create a process with a fresh page table."""
        pid = self._next_pid
        self._next_pid += 1
        pt = PageTable(self.machine.phys, self.frame_pool.alloc,
                       self.frame_pool.free,
                       stats=self.machine.telemetry.paging_stats("os"))
        if self.machine.sanitizer is not None:
            # Process page tables are untrusted: the sanitizer rejects any
            # attempt to map monitor/enclave frames through them.
            self.machine.sanitizer.register_untrusted_pt(pt)
        process = Process(pid, pt)
        self.processes[pid] = process
        self.run_queue.append(pid)
        return process

    def exit(self, process: Process) -> None:
        for vma in process.vmas:
            for pa in vma.frames:
                self.frame_pool.free(pa)
        process.pt.destroy()
        if self.machine.sanitizer is not None:
            self.machine.sanitizer.unregister_untrusted_pt(process.pt)
        process.alive = False
        self.processes.pop(process.pid, None)
        if process.pid in self.run_queue:
            self.run_queue.remove(process.pid)

    def schedule(self) -> Process | None:
        """Round-robin pick (charges a context-switch cost)."""
        if not self.run_queue:
            return None
        pid = self.run_queue.popleft()
        self.run_queue.append(pid)
        self.machine.cycles.charge(costs.SYSCALL_ROUNDTRIP * 10, "ctxsw")
        return self.processes[pid]

    # -- syscall mechanics -------------------------------------------------------

    def charge_syscall(self, work_cycles: float = 0.0) -> None:
        """Ring switch + kernel work for one system call."""
        self.syscalls += 1
        self.machine.cycles.charge(costs.SYSCALL_ROUNDTRIP, "syscall")
        if work_cycles:
            self.machine.cycles.charge(work_cycles, "kernel-work")
        self.machine.telemetry.count("os", "syscalls")

    # -- memory management ----------------------------------------------------------

    def mmap(self, process: Process, size: int, *, writable: bool = True,
             populate: bool = False, addr: int | None = None) -> VmArea:
        """Anonymous mmap; ``populate`` commits frames eagerly
        (MAP_POPULATE, used for the marshalling buffer, Sec 5.3)."""
        with self.machine.telemetry.span("os.mmap", pid=process.pid,
                                         populate=populate):
            self.charge_syscall(500)
            if size <= 0 or size % PAGE_SIZE:
                raise OsError("mmap size must be a positive page multiple")
            start = addr if addr is not None else process.next_mmap_va(size)
            if process.vma_at(start) or process.vma_at(start + size - 1):
                raise OsError(
                    f"mmap range at {start:#x} overlaps an existing VMA")
            vma = VmArea(start=start, size=size, writable=writable,
                         populated=populate)
            process.vmas.append(vma)
            if populate:
                flags = PageTableFlags.URW if writable else PageTableFlags.UR
                for i in range(size // PAGE_SIZE):
                    pa = self.frame_pool.alloc()
                    vma.frames.append(pa)
                    process.pt.map(start + i * PAGE_SIZE, pa, flags)
                # Guest PTE fills + page zeroing are the dominant cost.
                self.machine.cycles.charge(180 * (size // PAGE_SIZE),
                                           "pte-fill")
                self._charge_npt_fill(size // PAGE_SIZE)
            return vma

    def munmap(self, process: Process, vma: VmArea) -> None:
        self.charge_syscall(400)
        if vma.pinned:
            raise OsError("cannot munmap a pinned region")
        for i, pa in enumerate(vma.frames):
            process.pt.unmap(vma.start + i * PAGE_SIZE)
            self.frame_pool.free(pa)
        process.vmas.remove(vma)

    def pin(self, process: Process, vma: VmArea) -> None:
        """Pin a populated VMA: no swapping or compaction for its frames.

        The uRTS issues this ioctl for the marshalling buffer so its
        GPA->HPA mapping stays fixed for the enclave's lifetime.
        """
        if not vma.populated:
            raise OsError("only populated regions can be pinned")
        vma.pinned = True

    def handle_user_fault(self, process: Process, va: int, *,
                          write: bool = False) -> None:
        """Demand-page a non-populated VMA page."""
        vma = process.vma_at(va)
        if vma is None:
            raise PageFault(va, write=write)
        if write and not vma.writable:
            raise PageFault(va, write=True, present=True)
        page_va = va & ~(PAGE_SIZE - 1)
        pa = self.frame_pool.alloc()
        vma.frames.append(pa)
        flags = PageTableFlags.URW if vma.writable else PageTableFlags.UR
        process.pt.map(page_va, pa, flags)
        self.machine.cycles.charge(costs.DRAM_CYCLES + 800, "os-fault")
        self._charge_npt_fill()

    # -- user memory access (policed by the monitor) -----------------------------------

    def user_read(self, process: Process, va: int, size: int) -> bytes:
        """Read user memory on behalf of the process (R-1 enforced)."""
        def translate(page_va: int) -> int:
            try:
                pa = process.translate(page_va)
            except PageFault:
                self.handle_user_fault(process, page_va)
                pa = process.translate(page_va)
            self._police(pa)
            return pa
        return memaccess.copy_in(self.machine.phys, translate, va, size)

    def user_write(self, process: Process, va: int, data: bytes) -> None:
        """Write user memory on behalf of the process (R-1 enforced)."""
        def translate(page_va: int) -> int:
            try:
                pa = process.translate(page_va, write=True)
            except PageFault as fault:
                if fault.present:
                    raise
                self.handle_user_fault(process, page_va, write=True)
                pa = process.translate(page_va, write=True)
            self._police(pa)
            return pa
        memaccess.copy_out(self.machine.phys, translate, va, data)

    def _police(self, pa: int) -> None:
        if self.monitor is not None and self.monitor.os_demoted:
            self.monitor.check_normal_access(pa)

    # -- signals -------------------------------------------------------------------------

    def deliver_signal(self, process: Process, signal: int,
                       **info: object) -> object:
        """Dispatch a signal to the process's registered handler.

        This is the kernel leg of two-phase exception handling: the AEX
        lands in the OS, which signals the uRTS handler.
        """
        self.machine.cycles.charge(costs.OS_SIGNAL_DISPATCH, "signal")
        self.machine.telemetry.event(
            "signal", lambda: f"pid={process.pid} sig={signal}")
        handler = process.signal_handlers.get(signal)
        if handler is None:
            raise OsError(
                f"process {process.pid} killed by unhandled signal {signal}")
        return handler(**info)
