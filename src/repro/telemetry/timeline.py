"""Cycle-domain timeline sampling: the time axis of the telemetry stack.

A :class:`TimelineSampler` snapshots a configurable set of series at a
fixed *simulated-cycle* interval.  It is driven by the machine's
:class:`~repro.hw.cycles.CycleCounter` — ``charge()`` notifies the
sampler when the running total crosses the next sample boundary — so
samples are a pure function of the op sequence: never host time, hence
bit-reproducible across runs, across ``REPRO_FASTPATH`` modes, and
through flight-recorder replay.

Probe discipline (what keeps the A/B fast-path equivalence exact):

* Probes must read state that changes at *op* granularity (pool free
  lists, resident-page maps, swap versions, world-switch counters).
  Values mutated by ``charge()`` itself — ``total``, ``by_category`` —
  are off limits: a batched fast-path charge crosses a boundary in one
  jump where the legacy loop crosses it mid-batch, so sampling them
  would read different intermediate values per mode.
* Cycle-domain series instead receive the *boundary* cycle (the row's
  own timestamp), which is identical in every mode by construction.
* When one charge jumps several boundaries at once, the sampler emits
  one row **per crossed boundary**, all carrying the same probe values:
  the legacy path crossing those boundaries one small charge at a time
  observes the same (batch-invariant) state, so row counts and contents
  match bit-for-bit.

Sampling is zero-cycle-perturbation like every other observer here: the
sampler only *reads* simulated state, never charges, and the disabled
path in ``charge()`` is a single attribute load and branch.

On top of the raw rows the module derives per-tenant rollups and
*pressure episodes* (contiguous intervals where the swap-out rate
crosses a threshold, attributed to victim/aggressor tenants), and
exports three ways: a timeline JSON document, Perfetto counter-track
events for the Chrome trace, and a stdlib-only HTML report with inline
SVG sparklines (see ``python -m repro.telemetry timeline``).
"""

from __future__ import annotations

import json
from html import escape
from typing import Callable

#: Default sample cadence, in simulated cycles.
DEFAULT_INTERVAL = 250_000

#: Default pressure-episode trigger: pages swapped out per interval.
DEFAULT_EPISODE_THRESHOLD = 4.0

TIMELINE_VERSION = 1
TIMELINE_KIND = "hyperenclave-timeline"

#: Tenant-keyed series folded into :func:`tenant_rollups` (the pair
#: series ``epc.stolen_frames`` and the cpu-keyed ``vcpu.cycles`` have
#: their own key namespaces and are handled separately).
_TENANT_SERIES = ("epc.resident_pages", "swap.pages_out",
                  "swap.pages_in", "world.cycles")


class TimelineSampler:
    """Samples registered probes every ``interval`` simulated cycles.

    Probe kinds:

    * ``scalar`` — ``fn() -> number``, one value per row;
    * ``tenant`` — ``fn() -> {key: number}``, a labelled family per row
      (keys are enclave ids, or ``"victim->aggressor"`` pairs);
    * ``cycle`` / ``cycle-tenant`` — like the above but called with the
      row's boundary cycle, for series derived from the clock itself.
    """

    __slots__ = ("interval", "next_cycle", "label", "tenants", "samples",
                 "_probes")

    def __init__(self, interval: int = DEFAULT_INTERVAL, *,
                 label: str = "machine") -> None:
        interval = int(interval)
        if interval <= 0:
            raise ValueError(f"sample interval must be positive: {interval}")
        self.interval = interval
        # CycleCounter.charge() compares against this before calling in;
        # the disabled path never reaches on_charge at all.
        self.next_cycle = interval
        self.label = label
        #: enclave-id (as str) -> display name, applied at report time.
        self.tenants: dict[str, str] = {}
        self.samples: list[dict] = []
        self._probes: list[tuple[str, str, Callable]] = []

    # -- probe registration --------------------------------------------------

    def _add(self, name: str, kind: str, fn: Callable) -> None:
        self._probes = [p for p in self._probes if p[0] != name]
        self._probes.append((name, kind, fn))

    def add_probe(self, name: str, fn: Callable[[], float]) -> None:
        self._add(name, "scalar", fn)

    def add_tenant_probe(self, name: str, fn: Callable[[], dict]) -> None:
        self._add(name, "tenant", fn)

    def add_cycle_probe(self, name: str,
                        fn: Callable[[int], float]) -> None:
        self._add(name, "cycle", fn)

    def add_cycle_tenant_probe(self, name: str,
                               fn: Callable[[int], dict]) -> None:
        self._add(name, "cycle-tenant", fn)

    def name_tenant(self, enclave_id, display: str) -> None:
        """Attach a display name to an enclave id (used at report time,
        so naming mid-run never splits a series)."""
        self.tenants[str(enclave_id)] = str(display)

    # -- the sampling hook ---------------------------------------------------

    def on_charge(self, total: float) -> None:
        """Called by ``CycleCounter.charge`` once ``total`` has crossed
        ``next_cycle``; emits one row per crossed boundary."""
        boundary = self.next_cycle
        if total < boundary:
            return
        interval = self.interval
        scalars = []
        tenant_values = []
        cycle_probes = []
        for name, kind, fn in self._probes:
            if kind == "scalar":
                scalars.append((name, fn()))
            elif kind == "tenant":
                values = fn()
                if values:
                    tenant_values.append(
                        (name, {str(k): v for k, v in values.items()}))
            else:
                cycle_probes.append((name, kind, fn))
        last = int(total // interval) * interval
        samples = self.samples
        while boundary <= last:
            series = dict(scalars)
            tenants = {name: dict(values) for name, values in tenant_values}
            for name, kind, fn in cycle_probes:
                if kind == "cycle":
                    series[name] = fn(boundary)
                else:
                    values = fn(boundary)
                    if values:
                        tenants[name] = {str(k): v
                                         for k, v in values.items()}
            samples.append({"cycle": boundary, "series": series,
                            "tenants": tenants})
            boundary += interval
        self.next_cycle = boundary

    # -- export --------------------------------------------------------------

    def document(self) -> dict:
        """This sampler's timeline as a JSON-ready dict."""
        return {"label": self.label, "interval": self.interval,
                "tenants": dict(self.tenants),
                "samples": list(self.samples)}


# -- wiring ------------------------------------------------------------------


def register_machine_probes(sampler: TimelineSampler, machine) -> None:
    """The hardware-level series every timeline carries."""
    # The clock-domain series report the boundary cycle: identical in
    # every fast-path mode by construction (see the module docstring).
    sampler.add_cycle_probe("cycles.total", lambda boundary: boundary)
    # The cost model executes all simulated work on cpu0; extra CPUs
    # exist only as TLB-shootdown IPI targets.
    num_cpus = machine.config.num_cpus
    sampler.add_cycle_tenant_probe(
        "vcpu.cycles",
        lambda boundary: {f"cpu{i}": (boundary if i == 0 else 0)
                          for i in range(num_cpus)})


def register_monitor_probes(sampler: TimelineSampler, monitor) -> None:
    """The monitor-level series: EPC occupancy, swap, world switches.

    Called from ``RustMonitor.__init__`` when the machine already has a
    sampler attached; all probes read op-granularity state only.
    """
    sampler.add_probe("epc.free_frames",
                      lambda: monitor.epc_pool.free_pages)
    sampler.add_probe("world.enters", lambda: monitor.world.enters)
    sampler.add_probe("world.exits", lambda: monitor.world.exits)
    sampler.add_probe("world.aexes", lambda: monitor.world.aexes)
    sampler.add_probe("monitor.hypercalls", lambda: monitor.hypercalls)
    sampler.add_probe("tlb.shootdowns", lambda: monitor.tlb_shootdowns)
    sampler.add_tenant_probe(
        "epc.resident_pages",
        lambda: {eid: len(enc.pages)
                 for eid, enc in monitor.enclaves.items()})
    # EnclaveSwapState._version increments exactly once per swap-out,
    # so it doubles as the cumulative per-enclave swap-out counter; the
    # pages currently out are the not-yet-reloaded records.
    sampler.add_tenant_probe(
        "swap.pages_out",
        lambda: {eid: state._version
                 for eid, state in monitor._swap_states.items()})
    sampler.add_tenant_probe(
        "swap.pages_in",
        lambda: {eid: state._version - len(state.records)
                 for eid, state in monitor._swap_states.items()})
    sampler.add_tenant_probe(
        "epc.stolen_frames",
        lambda: {f"{victim}->{aggressor}": count
                 for (victim, aggressor), count
                 in monitor.epc_steals.items()})
    telemetry = monitor.machine.telemetry
    sampler.add_tenant_probe("world.cycles",
                             lambda: _world_cycles(telemetry))


def _world_cycles(telemetry) -> dict[str, float]:
    """Per-enclave world-switch cycles, read from the span metrics.

    Pure read-only iteration over the registry — interning anything here
    would let sampling perturb the exported metric set.
    """
    out: dict[str, float] = {}
    for (subsystem, name, labels), metric in telemetry.registry:
        if subsystem != "world" or not name.endswith(".cycles"):
            continue
        for key, value in labels:
            if key == "enclave":
                eid = str(value)
                out[eid] = out.get(eid, 0) + metric.value
    return out


def attach_machine(machine, *, interval: int = DEFAULT_INTERVAL,
                   label: str = "machine") -> TimelineSampler:
    """Attach a sampler to a machine (idempotent; relabels if present).

    A monitor constructed *after* this call registers its probes itself;
    for a pre-existing monitor call :func:`register_monitor_probes`.
    """
    sampler = machine.telemetry.timeline
    if sampler is None:
        sampler = TimelineSampler(interval, label=label)
        register_machine_probes(sampler, machine)
        machine.telemetry.timeline = sampler
        machine.cycles._timeline = sampler
    else:
        sampler.label = label
    return sampler


def detach_machine(machine) -> None:
    """Remove an attached sampler; the charge hook goes back to one
    load-and-branch."""
    machine.cycles._timeline = None
    machine.telemetry.timeline = None


# -- documents ---------------------------------------------------------------


def timeline_document(samplers) -> dict | None:
    """Fold one or more samplers into the timeline JSON document."""
    timelines = [s.document() for s in samplers if s is not None]
    if not timelines:
        return None
    return {"version": TIMELINE_VERSION, "kind": TIMELINE_KIND,
            "timelines": timelines}


def write_timeline(path, document: dict) -> None:
    """Schema-validate and write a timeline document."""
    from repro.telemetry.schema import validate_timeline
    validate_timeline(document)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_timeline(path) -> dict:
    """Load a timeline document — directly, or out of a bench artifact's
    ``timeline`` block."""
    from repro.telemetry.schema import validate_timeline
    with open(path, "r", encoding="utf-8") as fh:
        document = json.load(fh)
    if document.get("kind") != TIMELINE_KIND and "timeline" in document:
        document = document["timeline"]     # a bench artifact
    validate_timeline(document)
    return document


# -- series access -----------------------------------------------------------


def scalar_series(timeline: dict, name: str) -> list[tuple[int, float]]:
    """``[(cycle, value), ...]`` for one scalar series."""
    return [(s["cycle"], s["series"][name])
            for s in timeline["samples"] if name in s["series"]]


def tenant_series(timeline: dict, name: str) -> dict[str, list]:
    """``{key: [(cycle, value), ...]}`` for one tenant-keyed series."""
    out: dict[str, list] = {}
    for sample in timeline["samples"]:
        for key, value in sample["tenants"].get(name, {}).items():
            out.setdefault(key, []).append((sample["cycle"], value))
    return out


def rate_series(points: list[tuple[int, float]]) -> list[tuple[int, float]]:
    """Per-interval deltas of a cumulative series (row i covers the
    window ending at its cycle)."""
    return [(points[i][0], points[i][1] - points[i - 1][1])
            for i in range(1, len(points))]


def _tenant_values(sample: dict, name: str) -> dict:
    return sample["tenants"].get(name, {})


def _delta_map(start: dict, end: dict, name: str) -> dict[str, float]:
    first = _tenant_values(start, name)
    last = _tenant_values(end, name)
    keys = sorted(set(first) | set(last))
    return {k: last.get(k, 0) - first.get(k, 0) for k in keys}


def _pair(key: str) -> tuple[str, str]:
    victim, sep, aggressor = key.partition("->")
    return (victim, aggressor if sep else victim)


# -- pressure episodes -------------------------------------------------------


def detect_episodes(timeline: dict, *, series: str = "swap.pages_out",
                    threshold: float = DEFAULT_EPISODE_THRESHOLD,
                    min_intervals: int = 1) -> list[dict]:
    """Contiguous intervals where the total ``series`` rate >= threshold.

    Each episode reports its cycle span, depth (peak rate), total pages,
    and the victim/aggressor tenants: the victim is the tenant that lost
    the most frames (steal records preferred, swap-out delta as the
    fallback), the aggressor the tenant that took the most (resident-
    page growth as the fallback).
    """
    samples = timeline["samples"]
    episodes: list[dict] = []
    if len(samples) < 2:
        return episodes

    def total(i: int) -> float:
        return sum(_tenant_values(samples[i], series).values())

    run_start = None
    for i in range(1, len(samples)):
        if total(i) - total(i - 1) >= threshold:
            if run_start is None:
                run_start = i
        elif run_start is not None:
            episodes.append(_episode(timeline, samples, run_start, i - 1,
                                     series))
            run_start = None
    if run_start is not None:
        episodes.append(_episode(timeline, samples, run_start,
                                 len(samples) - 1, series))
    return [e for e in episodes if e["intervals"] >= min_intervals]


def _episode(timeline: dict, samples: list, i0: int, i1: int,
             series: str) -> dict:
    rates = [sum(_tenant_values(samples[i], series).values())
             - sum(_tenant_values(samples[i - 1], series).values())
             for i in range(i0, i1 + 1)]
    start, end = samples[i0 - 1], samples[i1]

    steal_delta = {k: v for k, v in
                   _delta_map(start, end, "epc.stolen_frames").items()
                   if v > 0}
    # Cross-tenant steals name the contention pair; self-steals (an
    # enclave thrashing its own working set) only decide when no other
    # tenant was involved.
    cross = {k: v for k, v in steal_delta.items()
             if _pair(k)[0] != _pair(k)[1]}
    chosen = cross or steal_delta
    victim = aggressor = None
    if chosen:
        stolen_from: dict[str, float] = {}
        stolen_by: dict[str, float] = {}
        for key, count in chosen.items():
            v, a = _pair(key)
            stolen_from[v] = stolen_from.get(v, 0) + count
            stolen_by[a] = stolen_by.get(a, 0) + count
        victim = max(sorted(stolen_from), key=lambda k: stolen_from[k])
        aggressor = max(sorted(stolen_by), key=lambda k: stolen_by[k])
    else:
        swapped = {k: v for k, v in _delta_map(start, end, series).items()
                   if v > 0}
        if swapped:
            victim = max(sorted(swapped), key=lambda k: swapped[k])
        grew = {k: v for k, v in
                _delta_map(start, end, "epc.resident_pages").items()
                if v > 0}
        if grew:
            aggressor = max(sorted(grew), key=lambda k: grew[k])

    names = timeline.get("tenants", {})
    return {
        "series": series,
        "start_cycle": start["cycle"],
        "end_cycle": end["cycle"],
        "intervals": i1 - i0 + 1,
        "pages": sum(rates),
        "depth": max(rates),
        "victim": None if victim is None else names.get(victim, victim),
        "aggressor": (None if aggressor is None
                      else names.get(aggressor, aggressor)),
    }


# -- per-tenant rollups ------------------------------------------------------


def tenant_rollups(timeline: dict) -> dict[str, dict]:
    """Whole-run aggregates per tenant, keyed by enclave id."""
    samples = timeline["samples"]
    names = timeline.get("tenants", {})
    keys = set(names)
    for sample in samples:
        for series in _TENANT_SERIES:
            keys.update(_tenant_values(sample, series))
    stolen_from: dict[str, dict] = {}
    stolen_by: dict[str, dict] = {}
    if samples:
        for key, count in sorted(
                _tenant_values(samples[-1], "epc.stolen_frames").items()):
            victim, aggressor = _pair(key)
            keys.add(victim)
            keys.add(aggressor)
            stolen_from.setdefault(victim, {})[aggressor] = count
            stolen_by.setdefault(aggressor, {})[victim] = count

    def last(series: str, key: str) -> float:
        for sample in reversed(samples):
            value = _tenant_values(sample, series).get(key)
            if value is not None:
                return value
        return 0

    out: dict[str, dict] = {}
    for key in sorted(keys):
        resident = [v for v in
                    (_tenant_values(s, "epc.resident_pages").get(key)
                     for s in samples) if v is not None]
        out[key] = {
            "tenant": names.get(key, key),
            "cycles": last("world.cycles", key),
            "epc_pages_peak": max(resident) if resident else 0,
            "epc_pages_mean": (round(sum(resident) / len(resident), 3)
                               if resident else 0),
            "pages_swapped_out": last("swap.pages_out", key),
            "pages_swapped_in": last("swap.pages_in", key),
            "stolen_from": {names.get(a, a): n for a, n in
                            sorted(stolen_from.get(key, {}).items())},
            "stolen_by": {names.get(v, v): n for v, n in
                          sorted(stolen_by.get(key, {}).items())},
        }
    return out


# -- Perfetto counter tracks -------------------------------------------------


def timeline_counter_events(timeline: dict, *, pid: int = 1) -> list[dict]:
    """Chrome-trace ``ph: "C"`` counter events (1 cycle = 1 us), merged
    into the span trace by the telemetry exporter."""
    names = timeline.get("tenants", {})
    events: list[dict] = []
    for sample in timeline["samples"]:
        ts = sample["cycle"]
        for name in sorted(sample["series"]):
            events.append({"ph": "C", "pid": pid, "tid": 0, "ts": ts,
                           "name": name,
                           "args": {"value": sample["series"][name]}})
        for name in sorted(sample["tenants"]):
            args = {str(names.get(k, k)): v for k, v in
                    sorted(sample["tenants"][name].items())}
            if args:
                events.append({"ph": "C", "pid": pid, "tid": 0, "ts": ts,
                               "name": name, "args": args})
    return events


# -- text report -------------------------------------------------------------


def timeline_report(document: dict, *,
                    threshold: float = DEFAULT_EPISODE_THRESHOLD) -> str:
    """A plain-text digest of a timeline document."""
    lines: list[str] = []
    for timeline in document["timelines"]:
        samples = timeline["samples"]
        lines.append(f"timeline [{timeline['label']}]: "
                     f"{len(samples)} samples every "
                     f"{timeline['interval']:,} cycles")
        if not samples:
            continue
        lines.append(f"  span: cycle {samples[0]['cycle']:,} .. "
                     f"{samples[-1]['cycle']:,}")
        series_names = sorted({name for s in samples for name in s["series"]})
        for name in series_names:
            points = scalar_series(timeline, name)
            values = [v for _, v in points]
            lines.append(f"  {name:<24} last={values[-1]:>12,.0f}  "
                         f"min={min(values):>12,.0f}  "
                         f"max={max(values):>12,.0f}")
        rollups = tenant_rollups(timeline)
        for key, roll in rollups.items():
            lines.append(
                f"  tenant {roll['tenant']} (enclave {key}): "
                f"epc peak/mean {roll['epc_pages_peak']}/"
                f"{roll['epc_pages_mean']} pages, "
                f"swapped out {roll['pages_swapped_out']} / "
                f"in {roll['pages_swapped_in']}")
        episodes = detect_episodes(timeline, threshold=threshold)
        lines.append(f"  pressure episodes (>= {threshold:g} pages/interval):"
                     f" {len(episodes)}")
        for ep in episodes:
            lines.append(
                f"    cycle {ep['start_cycle']:,} .. {ep['end_cycle']:,}: "
                f"{ep['pages']:g} pages over {ep['intervals']} intervals "
                f"(depth {ep['depth']:g}), victim={ep['victim']} "
                f"aggressor={ep['aggressor']}")
    return "\n".join(lines)


# -- HTML report -------------------------------------------------------------

_HTML_STYLE = """\
body { font: 14px/1.45 system-ui, sans-serif; margin: 2em auto;
       max-width: 64em; color: #1f2937; }
h1 { font-size: 1.4em; } h2 { font-size: 1.15em; margin-top: 1.6em; }
table { border-collapse: collapse; margin: .6em 0; }
th, td { border: 1px solid #d1d5db; padding: .25em .6em;
         text-align: left; font-variant-numeric: tabular-nums; }
th { background: #f3f4f6; }
svg { display: block; }
.quiet { color: #6b7280; }
"""


def _sparkline(points: list[tuple[int, float]], *, width: int = 260,
               height: int = 44, pad: int = 4) -> str:
    values = [v for _, v in points]
    if not values:
        return (f'<svg width="{width}" height="{height}"></svg>')
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1
    steps = max(len(values) - 1, 1)
    coords = []
    for i, value in enumerate(values):
        x = pad + (width - 2 * pad) * i / steps
        y = pad + (height - 2 * pad) * (1 - (value - lo) / span)
        coords.append(f"{x:.1f},{y:.1f}")
    return (f'<svg width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}">'
            f'<polyline fill="none" stroke="#2563eb" stroke-width="1.5" '
            f'points="{" ".join(coords)}"/></svg>')


def _series_row(name: str, points: list[tuple[int, float]]) -> str:
    values = [v for _, v in points]
    stats = (f"<td>{min(values):,.0f}</td><td>{max(values):,.0f}</td>"
             f"<td>{values[-1]:,.0f}</td>" if values
             else "<td></td><td></td><td></td>")
    return (f"<tr><td>{escape(name)}</td>{stats}"
            f"<td>{_sparkline(points)}</td></tr>")


def render_html(document: dict, *,
                threshold: float = DEFAULT_EPISODE_THRESHOLD) -> str:
    """A self-contained static HTML report (stdlib only, inline SVG)."""
    parts = ["<!DOCTYPE html>", "<html><head><meta charset=\"utf-8\">",
             "<title>HyperEnclave timeline report</title>",
             f"<style>{_HTML_STYLE}</style></head><body>",
             "<h1>HyperEnclave timeline report</h1>"]
    for timeline in document["timelines"]:
        samples = timeline["samples"]
        parts.append(f"<h2>{escape(str(timeline['label']))}</h2>")
        parts.append(
            f"<p class=\"quiet\">{len(samples)} samples every "
            f"{timeline['interval']:,} simulated cycles.</p>")
        if not samples:
            continue

        header = ("<tr><th>series</th><th>min</th><th>max</th>"
                  "<th>last</th><th>sparkline</th></tr>")
        rows = [header]
        for name in sorted({n for s in samples for n in s["series"]}):
            rows.append(_series_row(name, scalar_series(timeline, name)))
        names = timeline.get("tenants", {})
        for name in sorted({n for s in samples for n in s["tenants"]}):
            for key, points in sorted(tenant_series(timeline, name).items()):
                display = str(names.get(key, key))
                rows.append(_series_row(f"{name} [{display}]", points))
        parts.append("<table>" + "".join(rows) + "</table>")

        parts.append("<h2>Per-tenant rollups</h2>")
        rows = ["<tr><th>tenant</th><th>world cycles</th>"
                "<th>EPC peak</th><th>EPC mean</th><th>swapped out</th>"
                "<th>swapped in</th><th>stolen from</th>"
                "<th>stolen by</th></tr>"]
        for key, roll in tenant_rollups(timeline).items():
            stolen_from = ", ".join(f"{escape(str(a))}: {n:g}"
                                    for a, n in roll["stolen_from"].items())
            stolen_by = ", ".join(f"{escape(str(v))}: {n:g}"
                                  for v, n in roll["stolen_by"].items())
            rows.append(
                f"<tr><td>{escape(str(roll['tenant']))} "
                f"(enclave {escape(key)})</td>"
                f"<td>{roll['cycles']:,.0f}</td>"
                f"<td>{roll['epc_pages_peak']:g}</td>"
                f"<td>{roll['epc_pages_mean']:g}</td>"
                f"<td>{roll['pages_swapped_out']:g}</td>"
                f"<td>{roll['pages_swapped_in']:g}</td>"
                f"<td>{stolen_from}</td><td>{stolen_by}</td></tr>")
        parts.append("<table>" + "".join(rows) + "</table>")

        episodes = detect_episodes(timeline, threshold=threshold)
        parts.append(f"<h2>Pressure episodes "
                     f"(&ge; {threshold:g} pages/interval)</h2>")
        if not episodes:
            parts.append("<p class=\"quiet\">none detected</p>")
        else:
            rows = ["<tr><th>start cycle</th><th>end cycle</th>"
                    "<th>intervals</th><th>pages</th><th>depth</th>"
                    "<th>victim</th><th>aggressor</th></tr>"]
            for ep in episodes:
                rows.append(
                    f"<tr><td>{ep['start_cycle']:,}</td>"
                    f"<td>{ep['end_cycle']:,}</td>"
                    f"<td>{ep['intervals']}</td><td>{ep['pages']:g}</td>"
                    f"<td>{ep['depth']:g}</td>"
                    f"<td>{escape(str(ep['victim']))}</td>"
                    f"<td>{escape(str(ep['aggressor']))}</td></tr>")
            parts.append("<table>" + "".join(rows) + "</table>")
    parts.append("</body></html>")
    return "\n".join(parts)
