"""The per-machine telemetry hub: spans, events, metrics, collectors.

One :class:`Telemetry` instance hangs off every :class:`~repro.hw.machine.
Machine`.  It owns

* the :class:`~repro.hw.trace.TraceBuffer` event ring (the pre-existing
  tracing surface, kept as the raw-event backend),
* a :class:`~repro.telemetry.metrics.MetricsRegistry`,
* the cycle-accurate span API, and
* pull-based hardware collectors (TLB, LLC, encryption engine, paging)
  sampled at snapshot time.

Spans *observe* the simulated clock — they never charge cycles — so
enabling telemetry cannot perturb a calibrated benchmark.  Disabled,
``span()`` is a single branch returning a shared no-op context manager
and ``event()`` a single branch, so the disabled path stays bit-identical
to a build without telemetry.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.hw.trace import TraceBuffer
from repro.telemetry.metrics import MetricsRegistry, _label_key

# -- cycle-category -> subsystem attribution ---------------------------------
#
# Every cycle charged anywhere in the simulator carries a category string
# (see repro.hw.cycles.CycleCounter.charge).  This table folds those
# categories into the coarse subsystems the paper's evaluation talks
# about; because the mapping is total (unknown categories fall into
# "other"), per-subsystem totals always sum exactly to the run total.

_EXACT_SUBSYSTEM = {
    "hypercall": "monitor", "tlb-shootdown": "monitor",
    "pte-update": "monitor", "edmm-sgx2": "monitor",
    "demand-paging": "monitor", "swap-in": "monitor",
    "swap-out": "monitor", "interrupt": "monitor",
    "measure": "monitor", "seal": "monitor", "seal-key": "monitor",
    "tlb-warmup": "world",
    "sdk-ecall": "sdk", "sdk-ocall": "sdk", "memcpy": "sdk",
    "switchless": "sdk",
    "enclave-memory": "memory", "native-memory": "memory",
    "memory": "memory", "compute": "memory",
    "own-pt-update": "memory", "invlpg": "memory",
    "syscall": "os", "kernel-work": "os", "ctxsw": "os",
    "pte-fill": "os", "os-fault": "os", "signal": "os",
    "npt-fill": "os", "vfs": "os", "link": "os",
}
_PREFIX_SUBSYSTEM = {
    "eenter": "world", "eexit": "world", "aex": "world",
    "eresume": "world", "exception": "world", "pf": "world",
}


def subsystem_for_category(category: str) -> str:
    """Fold a cycle-charge category into a subsystem name."""
    sub = _EXACT_SUBSYSTEM.get(category)
    if sub is not None:
        return sub
    head = category.split(":", 1)[0]
    return _PREFIX_SUBSYSTEM.get(head, _EXACT_SUBSYSTEM.get(head, "other"))


def cycles_by_subsystem(breakdown: dict[str, int | float]
                        ) -> dict[str, int | float]:
    """Aggregate a per-category cycle breakdown into subsystems."""
    out: dict[str, int | float] = {}
    for category, cycles in breakdown.items():
        sub = subsystem_for_category(category)
        out[sub] = out.get(sub, 0) + cycles
    return out


class UnclosedSpanError(RuntimeError):
    """A snapshot was exported while spans were still open.

    An open span has not yet folded its cycles into its parent's
    self-cycle accounting, so any profile or snapshot taken now would
    silently misattribute cycles.  This is the runtime counterpart of
    lint rule R004 (spans must be context-managed).
    """


@dataclass(slots=True)
class SpanRecord:
    """One completed span (feeds the Chrome trace exporter).

    ``path`` is the exact ancestor stack (root first, this span last) at
    the moment the span opened — the profiler's collapsed-stack frames
    come straight from it, no sampling or reconstruction involved.
    """

    name: str
    labels: dict
    start_cycle: int
    dur_cycles: int
    self_cycles: int
    start_wall_ns: int
    dur_wall_ns: int
    depth: int
    error: bool
    path: tuple[str, ...] = ()
    # Host wall-time spent in this span minus enclosed child spans: the
    # wall-domain twin of ``self_cycles``, feeding the wall/efficiency
    # profiler (repro.profiler.wall).
    self_wall_ns: int = 0


class _NullSpan:
    """The shared disabled-path span: enter/exit are no-ops."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _CauseScope:
    """Context manager pushing a causal label onto the trace ring."""

    __slots__ = ("_ring", "_label")

    def __init__(self, ring: TraceBuffer, label: str) -> None:
        self._ring = ring
        self._label = label

    def __enter__(self) -> "_CauseScope":
        self._ring.push_cause(self._label)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._ring.pop_cause()
        return False


class Span:
    """A cycle-accurate, nesting measurement window.

    On exit the span aggregates into the registry under its subsystem
    (the ``name`` prefix before the first dot): call count, total
    cycles, *self* cycles (total minus enclosed child spans), a log-scale
    cycle histogram, and host wall-clock nanoseconds.
    """

    __slots__ = ("_telemetry", "name", "labels", "start_cycle",
                 "_start_wall", "_child_cycles", "_child_wall", "_depth",
                 "_path")

    def __init__(self, telemetry: "Telemetry", name: str,
                 labels: dict) -> None:
        self._telemetry = telemetry
        self.name = name
        self.labels = labels

    def __enter__(self) -> "Span":
        tel = self._telemetry
        self._child_cycles = 0
        self._child_wall = 0
        stack = tel._stack
        self._depth = len(stack)
        self._path = ((stack[-1]._path + (self.name,)) if stack
                      else (self.name,))
        stack.append(self)
        self._start_wall = time.perf_counter_ns()
        self.start_cycle = int(tel.cycles.total)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tel = self._telemetry
        dur = int(tel.cycles.total) - self.start_cycle
        dur_wall = time.perf_counter_ns() - self._start_wall
        stack = tel._stack
        # Unwind robustly: an exception may have skipped child exits.
        while stack:
            top = stack.pop()
            if top is self:
                break
        self_cycles = max(dur - self._child_cycles, 0)
        self_wall = max(dur_wall - self._child_wall, 0)
        if stack:
            stack[-1]._child_cycles += dur
            stack[-1]._child_wall += dur_wall
        labels = self.labels
        # The seven metrics a span feeds are fixed per (name, labels);
        # interning each through the registry on every exit dominates
        # span overhead, so the resolved cells are memoized on the
        # Telemetry (cleared alongside the registry in reset()).
        key = (self.name if not labels
               else (self.name, _label_key(labels)))
        metrics = tel._span_metrics.get(key)
        if metrics is None:
            subsystem, _, short = self.name.partition(".")
            short = short or subsystem
            reg = tel.registry
            metrics = (
                reg.counter(subsystem, short + ".calls", **labels),
                reg.counter(subsystem, short + ".cycles", **labels),
                reg.counter(subsystem, short + ".self_cycles", **labels),
                # Wall-domain metrics ride the same enabled-only path as
                # the cycle metrics: the single branch in
                # Telemetry.span() is the only disabled-path cost.
                # self_wall_ns counters sum exactly to root-span wall
                # time, so throughput wall shares need no profile.
                reg.counter(subsystem, short + ".wall_ns", **labels),
                reg.counter(subsystem, short + ".self_wall_ns", **labels),
                reg.histogram(subsystem, short + ".cycles_hist", **labels),
                reg.histogram(subsystem, short + ".wall_ns_hist", **labels),
            )
            tel._span_metrics[key] = metrics
        calls, cyc, self_cyc, wall, self_w, cyc_hist, wall_hist = metrics
        # Direct cell mutation: all increments here are non-negative by
        # construction (max() above), matching Counter.inc semantics.
        calls.value += 1
        cyc.value += dur
        self_cyc.value += self_cycles
        wall.value += dur_wall
        self_w.value += self_wall
        cyc_hist.observe(dur)
        wall_hist.observe(dur_wall)
        tel.spans.append(SpanRecord(
            self.name, labels, self.start_cycle, dur, self_cycles,
            self._start_wall, dur_wall, self._depth, exc_type is not None,
            self._path, self_wall))
        return False


class Telemetry:
    """The observability hub for one simulated machine."""

    def __init__(self, cycles, *, ring_capacity: int = 4096,
                 span_capacity: int = 65536) -> None:
        self.cycles = cycles
        self.registry = MetricsRegistry()
        self.ring = TraceBuffer(ring_capacity)
        self.ring.attach(cycles)
        self.ring.on_drop = self._on_ring_drop
        self.enabled = False
        self.spans: deque[SpanRecord] = deque(maxlen=span_capacity)
        self._stack: list[Span] = []
        self._collectors: dict[str, Callable[[], dict]] = {}
        self._paging: dict[str, object] = {}
        # (name[, sorted-labels]) -> the 7 metric cells a span feeds on
        # exit; see Span.__exit__.
        self._span_metrics: dict = {}
        # Cycle-domain timeline sampler (repro.telemetry.timeline);
        # attached by the sink or attach_machine, None when off.
        self.timeline = None
        # Request tracer (repro.telemetry.requests); same attach
        # discipline, None when off.
        self.requests = None

    # -- lifecycle -----------------------------------------------------------

    def enable(self) -> None:
        """Turn on spans, metrics, and the event ring."""
        self.enabled = True
        self.ring.enable()

    def disable(self) -> None:
        self.enabled = False
        self.ring.disable()

    def reset(self) -> None:
        """Drop all recorded data (metrics, spans, ring events)."""
        self.registry.clear()
        self._span_metrics.clear()
        self.spans.clear()
        self._stack.clear()
        self.ring.clear()

    # -- the hot-path API ----------------------------------------------------

    def span(self, name: str, **labels):
        """A cycle-accurate span; a shared no-op when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, labels)

    def open_span_names(self) -> list[str]:
        """Names of spans currently open, outermost first.

        Exporters call this to refuse snapshotting mid-span (see
        :class:`UnclosedSpanError`); it is always safe to call.
        """
        return [span.name for span in self._stack]

    def event(self, kind: str, detail="") -> None:
        """Record a raw event into the ring.

        ``detail`` may be a callable, evaluated only when the ring is
        enabled — call-sites never pay for f-string construction on the
        disabled path.
        """
        if not self.ring.enabled:
            return
        self.ring.record(kind, detail() if callable(detail) else detail)

    def count(self, subsystem: str, name: str, amount: int | float = 1,
              **labels) -> None:
        """Bump a counter iff telemetry is enabled (single branch off)."""
        if self.enabled:
            self.registry.counter(subsystem, name, **labels).inc(amount)

    def cause(self, label: str):
        """Enter a causal scope that tags every ring event inside it.

        The SDK pushes ``ecall:<name>`` / ``ocall:<name>`` scopes so
        events recorded kernel- and monitor-side inherit the edge call
        that caused them.  A shared no-op when the ring is disabled
        (single branch), mirroring :meth:`span`.
        """
        if not self.ring.enabled:
            return NULL_SPAN
        return _CauseScope(self.ring, label)

    def _on_ring_drop(self, n: int) -> None:
        """Ring wrap-around: surface the loss as a metric, not silence."""
        self.registry.counter("trace", "dropped_events").inc(n)

    # -- hardware collectors -------------------------------------------------

    def add_collector(self, name: str, fn: Callable[[], dict]) -> None:
        """Register a pull-based stats source sampled at snapshot time."""
        self._collectors[name] = fn

    def paging_stats(self, domain: str):
        """The shared paging-stat sink for one page-table domain."""
        from repro.hw.paging import PagingStats
        stats = self._paging.get(domain)
        if stats is None:
            stats = PagingStats()
            self._paging[domain] = stats
        return stats

    def hardware_stats(self) -> dict[str, dict]:
        """Sample every registered collector (plus paging domains)."""
        out = {name: dict(fn()) for name, fn in self._collectors.items()}
        if self._paging:
            out["paging"] = {domain: stats.as_dict()
                             for domain, stats in self._paging.items()}
        return out
