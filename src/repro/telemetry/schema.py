"""Schema validation for telemetry snapshot documents.

The container has no ``jsonschema`` package, so this is a small
hand-rolled structural validator for the format
:func:`repro.telemetry.export.snapshot_document` emits.  CI's smoke job
runs a benchmark with ``--telemetry-out`` and validates the result here::

    python -m repro.telemetry.schema out.json
"""

from __future__ import annotations

import json
import pathlib
import sys

_METRIC_TYPES = {"counter", "gauge", "histogram"}


class SchemaError(ValueError):
    """A snapshot document does not match the expected shape."""


def _require(condition: bool, where: str, message: str) -> None:
    if not condition:
        raise SchemaError(f"{where}: {message}")


def _check_number(value, where: str) -> None:
    _require(isinstance(value, (int, float)) and not isinstance(value, bool),
             where, f"expected a number, got {value!r}")


def _check_cycle_map(obj, where: str) -> None:
    _require(isinstance(obj, dict), where, "expected an object")
    for key, value in obj.items():
        _require(isinstance(key, str), where, f"non-string key {key!r}")
        _check_number(value, f"{where}.{key}")


def _check_metric(entry, where: str) -> None:
    _require(isinstance(entry, dict), where, "expected an object")
    for field in ("subsystem", "name", "type"):
        _require(isinstance(entry.get(field), str), where,
                 f"missing string field {field!r}")
    _require(entry["type"] in _METRIC_TYPES, where,
             f"unknown metric type {entry['type']!r}")
    _require(isinstance(entry.get("labels"), dict), where,
             "missing labels object")
    if entry["type"] in ("counter", "gauge"):
        _check_number(entry.get("value"), f"{where}.value")
    else:
        _check_number(entry.get("count"), f"{where}.count")
        _check_number(entry.get("sum"), f"{where}.sum")
        _require(isinstance(entry.get("buckets"), list), where,
                 "histogram needs a buckets list")
        for i, bucket in enumerate(entry["buckets"]):
            _require(isinstance(bucket, list) and len(bucket) == 3,
                     f"{where}.buckets[{i}]", "expected [lo, hi, count]")


def _check_machine(snap, where: str) -> None:
    _require(isinstance(snap, dict), where, "expected an object")
    _require(isinstance(snap.get("label"), str), where, "missing label")
    cycles = snap.get("cycles")
    _require(isinstance(cycles, dict), where, "missing cycles object")
    _check_number(cycles.get("total"), f"{where}.cycles.total")
    _check_cycle_map(cycles.get("by_category"), f"{where}.cycles.by_category")
    _check_cycle_map(cycles.get("by_subsystem"),
                     f"{where}.cycles.by_subsystem")
    total = cycles["total"]
    for which in ("by_category", "by_subsystem"):
        subtotal = sum(cycles[which].values())
        _require(abs(subtotal - total) <= max(0.01 * total, 1e-6),
                 f"{where}.cycles.{which}",
                 f"sums to {subtotal}, more than 1% off total {total}")
    _require(isinstance(snap.get("metrics"), list), where,
             "missing metrics list")
    for i, entry in enumerate(snap["metrics"]):
        _check_metric(entry, f"{where}.metrics[{i}]")
    _require(isinstance(snap.get("hardware"), dict), where,
             "missing hardware object")
    spans = snap.get("spans")
    _require(isinstance(spans, dict), where, "missing spans object")
    _check_number(spans.get("recorded"), f"{where}.spans.recorded")


def validate_snapshot(document) -> None:
    """Raise :class:`SchemaError` unless ``document`` is a valid snapshot."""
    _require(isinstance(document, dict), "$", "expected an object")
    _require(document.get("version") == 1, "$.version",
             f"unsupported version {document.get('version')!r}")
    _require(document.get("kind") == "hyperenclave-telemetry", "$.kind",
             f"unexpected kind {document.get('kind')!r}")
    machines = document.get("machines")
    _require(isinstance(machines, list) and machines, "$.machines",
             "expected a non-empty list")
    for i, snap in enumerate(machines):
        _check_machine(snap, f"$.machines[{i}]")
    combined = document.get("combined")
    _require(isinstance(combined, dict), "$.combined", "expected an object")
    _check_number(combined.get("total_cycles"), "$.combined.total_cycles")
    _check_cycle_map(combined.get("by_subsystem"), "$.combined.by_subsystem")
    total = combined["total_cycles"]
    machine_total = sum(s["cycles"]["total"] for s in machines)
    _require(abs(machine_total - total) <= max(0.01 * total, 1e-6),
             "$.combined.total_cycles",
             f"machines sum to {machine_total}, not {total}")
    subtotal = sum(combined["by_subsystem"].values())
    _require(abs(subtotal - total) <= max(0.01 * total, 1e-6),
             "$.combined.by_subsystem",
             f"sums to {subtotal}, more than 1% off total {total}")


def _check_sample(sample, where: str, previous_cycle) -> None:
    _require(isinstance(sample, dict), where, "expected an object")
    _check_number(sample.get("cycle"), f"{where}.cycle")
    if previous_cycle is not None:
        _require(sample["cycle"] > previous_cycle, f"{where}.cycle",
                 f"cycles must be strictly increasing "
                 f"({sample['cycle']} after {previous_cycle})")
    _check_cycle_map(sample.get("series"), f"{where}.series")
    tenants = sample.get("tenants")
    _require(isinstance(tenants, dict), where, "missing tenants object")
    for name, values in tenants.items():
        _require(isinstance(name, str), f"{where}.tenants",
                 f"non-string series name {name!r}")
        _check_cycle_map(values, f"{where}.tenants.{name}")


def _check_timeline(timeline, where: str) -> None:
    _require(isinstance(timeline, dict), where, "expected an object")
    _require(isinstance(timeline.get("label"), str), where, "missing label")
    _check_number(timeline.get("interval"), f"{where}.interval")
    _require(timeline["interval"] > 0, f"{where}.interval",
             f"interval must be positive, got {timeline['interval']!r}")
    tenants = timeline.get("tenants")
    _require(isinstance(tenants, dict), where, "missing tenants object")
    for key, name in tenants.items():
        _require(isinstance(key, str) and isinstance(name, str),
                 f"{where}.tenants", f"expected str -> str, got "
                 f"{key!r}: {name!r}")
    samples = timeline.get("samples")
    _require(isinstance(samples, list), where, "missing samples list")
    previous = None
    for i, sample in enumerate(samples):
        _check_sample(sample, f"{where}.samples[{i}]", previous)
        previous = sample["cycle"]


def validate_timeline(document) -> None:
    """Raise :class:`SchemaError` unless ``document`` is a valid timeline
    document (:func:`repro.telemetry.timeline.timeline_document`)."""
    _require(isinstance(document, dict), "$", "expected an object")
    _require(document.get("version") == 1, "$.version",
             f"unsupported version {document.get('version')!r}")
    _require(document.get("kind") == "hyperenclave-timeline", "$.kind",
             f"unexpected kind {document.get('kind')!r}")
    timelines = document.get("timelines")
    _require(isinstance(timelines, list) and timelines, "$.timelines",
             "expected a non-empty list")
    for i, timeline in enumerate(timelines):
        _check_timeline(timeline, f"$.timelines[{i}]")


def _check_segment(segment, where: str) -> None:
    _require(isinstance(segment, dict), where, "expected an object")
    _require(isinstance(segment.get("kind"), str), where, "missing kind")
    _check_number(segment.get("begin"), f"{where}.begin")
    _check_number(segment.get("end"), f"{where}.end")
    _require(segment["end"] >= segment["begin"], where,
             f"end {segment['end']} before begin {segment['begin']}")
    children = segment.get("segments")
    _require(isinstance(children, list), where, "missing segments list")
    for i, child in enumerate(children):
        _check_segment(child, f"{where}.segments[{i}]")


def _check_request(request, where: str) -> None:
    _require(isinstance(request, dict), where, "expected an object")
    _require(isinstance(request.get("id"), str), where, "missing id")
    for field in ("name", "tenant"):
        _require(isinstance(request.get(field), str), where,
                 f"missing string field {field!r}")
    for field in ("seq", "vcpu"):
        _check_number(request.get(field), f"{where}.{field}")
        _require(request[field] >= 0, f"{where}.{field}",
                 f"must be non-negative, got {request[field]!r}")
    _require(isinstance(request.get("error"), bool), where,
             "missing boolean error field")
    _check_number(request.get("begin"), f"{where}.begin")
    _check_number(request.get("end"), f"{where}.end")
    _require(request["end"] >= request["begin"], where,
             f"end {request['end']} before begin {request['begin']}")
    segments = request.get("segments")
    _require(isinstance(segments, list), where, "missing segments list")
    for i, segment in enumerate(segments):
        _check_segment(segment, f"{where}.segments[{i}]")
    _check_cycle_map(request.get("categories"), f"{where}.categories")
    _check_cycle_map(request.get("steals"), f"{where}.steals")


def _check_trace(trace, where: str) -> None:
    _require(isinstance(trace, dict), where, "expected an object")
    _require(isinstance(trace.get("label"), str), where, "missing label")
    tenants = trace.get("tenants")
    _require(isinstance(tenants, dict), where, "missing tenants object")
    for key, name in tenants.items():
        _require(isinstance(key, str) and isinstance(name, str),
                 f"{where}.tenants", f"expected str -> str, got "
                 f"{key!r}: {name!r}")
    requests = trace.get("requests")
    _require(isinstance(requests, list), where, "missing requests list")
    seen: dict[tuple, float] = {}
    for i, request in enumerate(requests):
        rwhere = f"{where}.requests[{i}]"
        _check_request(request, rwhere)
        key = (request["vcpu"], request["seq"])
        _require(key not in seen, rwhere,
                 f"duplicate (vcpu, seq) pair {key}")
        seen[key] = request["begin"]


def validate_requests(document) -> None:
    """Raise :class:`SchemaError` unless ``document`` is a valid requests
    document (:func:`repro.telemetry.requests.requests_document`)."""
    _require(isinstance(document, dict), "$", "expected an object")
    _require(document.get("version") == 1, "$.version",
             f"unsupported version {document.get('version')!r}")
    _require(document.get("kind") == "hyperenclave-requests", "$.kind",
             f"unexpected kind {document.get('kind')!r}")
    traces = document.get("traces")
    _require(isinstance(traces, list) and traces, "$.traces",
             "expected a non-empty list")
    for i, trace in enumerate(traces):
        _check_trace(trace, f"$.traces[{i}]")


def validate_file(path: str | pathlib.Path) -> dict:
    """Load and validate a document file; returns the parsed document.

    Dispatches on ``kind``: telemetry snapshots, timeline documents and
    requests documents are all accepted, as are bench artifacts carrying
    a ``timeline`` or ``requests`` block (the block is what gets
    validated; ``timeline`` wins when both are present).
    """
    document = json.loads(pathlib.Path(path).read_text())
    if isinstance(document, dict) \
            and document.get("kind") not in ("hyperenclave-timeline",
                                             "hyperenclave-requests"):
        if isinstance(document.get("timeline"), dict):
            document = document["timeline"]     # a bench artifact
        elif isinstance(document.get("requests"), dict):
            document = document["requests"]     # a bench artifact
    kind = document.get("kind") if isinstance(document, dict) else None
    if kind == "hyperenclave-timeline":
        validate_timeline(document)
    elif kind == "hyperenclave-requests":
        validate_requests(document)
    else:
        validate_snapshot(document)
    return document


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: validate one document file, exit non-zero on error."""
    args = argv if argv is not None else sys.argv[1:]
    if not args:
        print("usage: python -m repro.telemetry.schema DOCUMENT.json",
              file=sys.stderr)
        return 2
    try:
        document = validate_file(args[0])
    except (OSError, json.JSONDecodeError, SchemaError) as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    if document.get("kind") == "hyperenclave-timeline":
        samples = sum(len(t["samples"]) for t in document["timelines"])
        print(f"OK: {args[0]} ({len(document['timelines'])} timeline(s), "
              f"{samples} sample(s))")
    elif document.get("kind") == "hyperenclave-requests":
        requests = sum(len(t["requests"]) for t in document["traces"])
        print(f"OK: {args[0]} ({len(document['traces'])} trace(s), "
              f"{requests} request(s))")
    else:
        print(f"OK: {args[0]} ({len(document['machines'])} machine(s), "
              f"{document['combined']['total_cycles']:,.0f} cycles)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
