"""The metrics registry: counters, gauges, and log-scale histograms.

Every metric is keyed by ``(subsystem, name, labels)``, where ``labels``
is a small dict of dimensions (``enclave=3``, ``cpu=0``, ``func="nop"``)
— the per-enclave / per-vCPU attribution the paper's evaluation tables
need.  Metrics are cheap mutable cells; the registry interns them so hot
paths can hold a reference and skip the lookup.

Histograms are log-scale (base-2 buckets), which fits cycle costs that
span five orders of magnitude: an EENTER (~1.2 k cycles) and an EPC swap
(~15 k cycles) land in well-separated buckets without configuration.
"""

from __future__ import annotations

from typing import Iterable, Iterator

MetricKey = tuple[str, str, tuple[tuple[str, object], ...]]

# The quantiles the latency summaries report (Stress-SGX-style tails).
SUMMARY_QUANTILES = (50.0, 95.0, 99.0)


def percentile_from_buckets(buckets: Iterable[Iterable[float]],
                            count: int, q: float,
                            lo_clamp: float | None = None,
                            hi_clamp: float | None = None) -> float | None:
    """The q-th percentile of a bucketed distribution, interpolated.

    ``buckets`` is the snapshot form ``[[lo, hi, n], ...]`` (any bucket
    scheme with half-open ``[lo, hi)`` ranges, sorted ascending).  Within
    the bucket holding the target rank the observation mass is assumed
    uniform, so the estimate is linear between the bucket bounds — on
    log2 buckets the worst-case error is one bucket width (a factor of
    two), which the tests pin against exact numpy percentiles.  The
    estimate is clamped to the observed ``[min, max]`` when known, which
    makes single-observation and single-bucket histograms exact at the
    edges.  Returns None for an empty distribution.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile out of range: {q}")
    if count <= 0:
        return None
    occupied = [(lo, hi, n) for lo, hi, n in buckets if n > 0]
    if not occupied:
        return None
    target = (q / 100.0) * count
    cumulative = 0.0
    value: float | None = None
    for lo, hi, n in occupied:
        if cumulative + n >= target:
            value = lo + (hi - lo) * max(target - cumulative, 0.0) / n
            break
        cumulative += n
    if value is None:               # q == 100 edge / float drift: top bucket
        value = occupied[-1][1]
    if lo_clamp is not None:
        value = max(value, lo_clamp)
    if hi_clamp is not None:
        value = min(value, hi_clamp)
    return value


def _label_key(labels: dict[str, object]) -> tuple[tuple[str, object], ...]:
    # Sort by key name only: label *values* may mix types (enclave_id=3
    # vs enclave_id="boot"), and comparing those would raise TypeError.
    return tuple(sorted(labels.items(), key=lambda kv: kv[0]))


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter decrement: {amount}")
        self.value += amount

    def snapshot(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A value that can move in both directions (pool sizes, depths)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def add(self, delta: int | float) -> None:
        self.value += delta

    def snapshot(self) -> dict:
        return {"value": self.value}


class Histogram:
    """A log-scale (power-of-two bucket) histogram.

    Bucket ``0`` holds observations below 1; bucket ``k`` (k >= 1) holds
    observations in ``[2**(k-1), 2**k)``.
    """

    __slots__ = ("counts", "total", "count", "min", "max")
    kind = "histogram"

    def __init__(self) -> None:
        self.counts: dict[int, int] = {}
        self.total = 0
        self.count = 0
        self.min: int | float | None = None
        self.max: int | float | None = None

    @staticmethod
    def bucket_index(value: int | float) -> int:
        if value < 1:
            return 0
        return int(value).bit_length()

    @staticmethod
    def bucket_bounds(index: int) -> tuple[int, int]:
        """The ``[lo, hi)`` range bucket ``index`` covers."""
        if index < 0:
            raise ValueError(f"negative bucket index: {index}")
        if index == 0:
            return (0, 1)
        return (1 << (index - 1), 1 << index)

    def observe(self, value: int | float) -> None:
        # bucket_index inlined: this runs twice per span exit.
        index = int(value).bit_length() if value >= 1 else 0
        self.counts[index] = self.counts.get(index, 0) + 1
        self.total += value
        self.count += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def percentile(self, q: float) -> float | None:
        """The q-th percentile, linearly interpolated inside its bucket.

        See :func:`percentile_from_buckets` for the estimation model;
        None on an empty histogram.
        """
        buckets = ([*self.bucket_bounds(i), n]
                   for i, n in sorted(self.counts.items()))
        return percentile_from_buckets(buckets, self.count, q,
                                       lo_clamp=self.min, hi_clamp=self.max)

    def percentiles(self, qs: Iterable[float] = SUMMARY_QUANTILES
                    ) -> dict[str, float]:
        """``{"p50": ..., "p95": ..., "p99": ...}``; empty when no data."""
        out = {}
        for q in qs:
            value = self.percentile(q)
            if value is not None:
                out[f"p{q:g}"] = value
        return out

    def snapshot(self) -> dict:
        buckets = [[*self.bucket_bounds(i), n]
                   for i, n in sorted(self.counts.items())]
        return {"count": self.count, "sum": self.total,
                "min": self.min, "max": self.max, "buckets": buckets}


class MetricsRegistry:
    """All metrics of one machine, interned by (subsystem, name, labels)."""

    def __init__(self) -> None:
        self._metrics: dict[MetricKey, Counter | Gauge | Histogram] = {}

    def _intern(self, cls, subsystem: str, name: str,
                labels: dict[str, object]):
        key = (subsystem, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls()
            self._metrics[key] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {subsystem}.{name}{dict(key[2])} already registered "
                f"as {metric.kind}, not {cls.kind}")
        return metric

    def counter(self, subsystem: str, name: str, **labels) -> Counter:
        return self._intern(Counter, subsystem, name, labels)

    def gauge(self, subsystem: str, name: str, **labels) -> Gauge:
        return self._intern(Gauge, subsystem, name, labels)

    def histogram(self, subsystem: str, name: str, **labels) -> Histogram:
        return self._intern(Histogram, subsystem, name, labels)

    def clear(self) -> None:
        self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[tuple[MetricKey, object]]:
        return iter(self._metrics.items())

    def snapshot(self) -> list[dict]:
        """All metrics as JSON-ready dicts, deterministically ordered."""
        out = []
        for (subsystem, name, labels) in sorted(
                self._metrics, key=lambda k: (k[0], k[1], repr(k[2]))):
            metric = self._metrics[(subsystem, name, labels)]
            entry = {"subsystem": subsystem, "name": name,
                     "labels": {k: v for k, v in labels},
                     "type": metric.kind}
            entry.update(metric.snapshot())
            out.append(entry)
        return out
