"""Request-scoped causal tracing: the *why was this call slow* layer.

A :class:`RequestTracer` assigns a deterministic trace id to every
top-level edge call (``EnclaveHandle.ecall``) and carries that context
across the enclave boundary: world switches, nested ocalls, hypercalls,
page faults, TLB shootdowns and swap in/out executed on behalf of the
request are recorded as a *causal segment tree* with cycle-domain
begin/end stamps.  ``repro.analysis.critpath`` turns the trees into
critical paths, tail-latency tables and cross-tenant interference
reports.

Determinism contract (same bar as the timeline sampler):

* Trace ids derive from ``(machine label, vcpu, monotonic per-vCPU
  counter)`` — never host time, so ids are bit-identical across runs,
  ``REPRO_FASTPATH`` modes, and flight-recorder replay.
* Hooks only *read* simulated state (``cycles.total`` and the category
  breakdown at op boundaries, which are batch-invariant: every touch
  issues exactly one charge in every fast-path mode).  The tracer never
  charges a cycle — tracing on/off cannot move a figure, fingerprint or
  journal event.
* The disabled path at every hook site is a single attribute load and
  ``is not None`` branch; with a tracer attached but no open request
  (e.g. enclave build-time hypercalls) the hook is one list check.

Segment kinds written by the instrumented paths: ``ecall`` (nested
re-entry), ``ocall``, ``eenter`` / ``eexit`` / ``aex`` / ``eresume``
(world switches), ``hypercall``, ``page_fault``, ``tlb_shootdown``,
``swap_in`` and ``swap_out``.
"""

from __future__ import annotations

import json

REQUESTS_VERSION = 1
REQUESTS_KIND = "hyperenclave-requests"


class RequestTracer:
    """Records one causal segment tree per top-level edge call.

    Attach with :func:`attach_machine`; the SDK / monitor hook sites
    find the tracer at ``machine.telemetry.requests``.  All begin/end
    tokens are the segment records themselves — ``end_*`` unwinds the
    open stack down to the token, so an exception that abandons inner
    segments still leaves a balanced tree.
    """

    __slots__ = ("label", "tenants", "requests", "_cycles", "_seq",
                 "_stack")

    def __init__(self, cycles, *, label: str = "machine") -> None:
        self.label = label
        #: enclave-id (as str) -> display name, applied at report time.
        self.tenants: dict[str, str] = {}
        #: completed request records, in completion order.
        self.requests: list[dict] = []
        self._cycles = cycles
        #: vcpu -> next sequence number (monotonic, per-vCPU).
        self._seq: dict[int, int] = {}
        self._stack: list[dict] = []

    # -- naming --------------------------------------------------------------

    def name_tenant(self, enclave_id, display: str) -> None:
        """Attach a display name to an enclave id (report-time only, so
        naming mid-run never splits an attribution)."""
        self.tenants[str(enclave_id)] = str(display)

    # -- request lifecycle ---------------------------------------------------

    def begin_request(self, name: str, enclave_id, *, vcpu: int = 0) -> dict:
        """Open a top-level request (or, re-entrantly, a nested ``ecall``
        segment under the already-open request)."""
        cycle = int(self._cycles.total)
        if self._stack:
            # An ecall issued from inside an ocall handler: same trace
            # context, one more hop in the causal tree.
            segment = {"kind": "ecall", "name": str(name),
                       "begin": cycle, "end": None, "segments": []}
            self._stack[-1]["segments"].append(segment)
            self._stack.append(segment)
            return segment
        seq = self._seq.get(vcpu, 0)
        self._seq[vcpu] = seq + 1
        record = {
            "seq": seq,
            "vcpu": int(vcpu),
            "name": str(name),
            "tenant": str(enclave_id),
            "begin": cycle,
            "end": None,
            "error": False,
            "categories": {},
            "steals": {},
            "segments": [],
            # Snapshot for the end-of-request category delta; stripped
            # before the record is published.
            "_cat0": dict(self._cycles.by_category),
        }
        self._stack.append(record)
        return record

    def end_request(self, token, *, error: bool = False) -> None:
        """Close a request opened by :meth:`begin_request`."""
        if token is None:
            return
        if "seq" not in token:       # a nested-ecall segment
            self.end_segment(token)
            return
        if not any(entry is token for entry in self._stack):
            return
        cycle = int(self._cycles.total)
        while self._stack:
            top = self._stack.pop()
            if top.get("end") is None:
                top["end"] = cycle
            if top is token:
                break
        base = token.pop("_cat0")
        categories: dict[str, float] = {}
        for category, value in self._cycles.by_category.items():
            delta = value - base.get(category, 0)
            if delta:
                categories[category] = (int(delta)
                                        if float(delta).is_integer()
                                        else delta)
        token["categories"] = categories
        token["error"] = bool(error)
        self.requests.append(token)

    # -- segments ------------------------------------------------------------

    def begin_segment(self, kind: str, name=None) -> dict | None:
        """Open a child segment of the innermost open scope; a no-op
        (returns ``None``) when no request is in flight."""
        if not self._stack:
            return None
        segment = {"kind": kind, "begin": int(self._cycles.total),
                   "end": None, "segments": []}
        if name is not None:
            segment["name"] = str(name)
        self._stack[-1]["segments"].append(segment)
        self._stack.append(segment)
        return segment

    def end_segment(self, token) -> None:
        """Close a segment, unwinding any abandoned inner segments."""
        if token is None:
            return
        if not any(entry is token for entry in self._stack):
            return
        cycle = int(self._cycles.total)
        while self._stack:
            top = self._stack.pop()
            if top.get("end") is None:
                top["end"] = cycle
            if top is token:
                return

    # -- attribution ---------------------------------------------------------

    def note_steal(self, victim, aggressor) -> None:
        """Record an EPC frame steal performed on behalf of the open
        request (the request's tenant is the aggressor)."""
        if not self._stack:
            return
        root = self._stack[0]
        if "seq" not in root:
            return
        key = f"{victim}->{aggressor}"
        root["steals"][key] = root["steals"].get(key, 0) + 1

    # -- export --------------------------------------------------------------

    def request_id(self, record: dict) -> str:
        """The deterministic trace id: ``label/cpuN/seq``."""
        return f"{self.label}/cpu{record['vcpu']}/{record['seq']}"

    def document(self) -> dict:
        """This tracer's requests as a JSON-ready trace dict."""
        exported = []
        for record in self.requests:
            out = {k: v for k, v in record.items() if not k.startswith("_")}
            out["id"] = self.request_id(record)
            exported.append(out)
        return {"label": self.label, "tenants": dict(self.tenants),
                "requests": exported}


# -- wiring ------------------------------------------------------------------


def attach_machine(machine, *, label: str = "machine") -> RequestTracer:
    """Attach a request tracer to a machine (idempotent; relabels if
    one is already attached)."""
    tracer = machine.telemetry.requests
    if tracer is None:
        tracer = RequestTracer(machine.cycles, label=label)
        machine.telemetry.requests = tracer
    else:
        tracer.label = label
    return tracer


def detach_machine(machine) -> None:
    """Remove an attached tracer; every hook site goes back to one
    load-and-branch."""
    machine.telemetry.requests = None


# -- documents ---------------------------------------------------------------


def requests_document(tracers) -> dict | None:
    """Fold one or more tracers into the requests JSON document."""
    traces = [t.document() for t in tracers if t is not None]
    if not traces:
        return None
    return {"version": REQUESTS_VERSION, "kind": REQUESTS_KIND,
            "traces": traces}


def write_requests(path, document: dict) -> None:
    """Schema-validate and write a requests document."""
    from repro.telemetry.schema import validate_requests
    validate_requests(document)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_requests(path) -> dict:
    """Load a requests document — directly, or out of a bench
    artifact's ``requests`` block."""
    from repro.telemetry.schema import validate_requests
    with open(path, "r", encoding="utf-8") as fh:
        document = json.load(fh)
    if document.get("kind") != REQUESTS_KIND and "requests" in document:
        document = document["requests"]     # a bench artifact
    validate_requests(document)
    return document


# -- Perfetto flow events ----------------------------------------------------

#: Segment kinds that carry a flow step (``ph: "t"``): the hops that
#: move a request across the boundary and back.
_FLOW_STEP_KINDS = frozenset(
    ("ocall", "ecall", "eenter", "eexit", "aex", "eresume"))


def _flow_steps(segments: list, out: list) -> None:
    for segment in segments:
        if segment["kind"] in _FLOW_STEP_KINDS:
            out.append(segment)
        _flow_steps(segment["segments"], out)


def request_flow_events(trace: dict, *, pid: int = 1) -> list[dict]:
    """Chrome-trace flow events (``ph: "s"/"t"/"f"``) linking each
    request's ecall → ocall → resume spans across the trace."""
    events: list[dict] = []
    for record in trace["requests"]:
        # Deterministic numeric flow id from (pid, vcpu, seq): never
        # host time, unique within a trace file.
        flow_id = pid * 1_000_000 + record["vcpu"] * 100_000 + record["seq"]
        name = f"request:{record['name']}"
        args = {"request": record["id"], "tenant": record["tenant"]}
        tid = record["vcpu"]
        events.append({"ph": "s", "cat": "request", "name": name,
                       "id": flow_id, "pid": pid, "tid": tid,
                       "ts": record["begin"], "args": args})
        steps: list[dict] = []
        _flow_steps(record["segments"], steps)
        for segment in steps:
            events.append({"ph": "t", "cat": "request", "name": name,
                           "id": flow_id, "pid": pid, "tid": tid,
                           "ts": segment["begin"], "args": args})
        events.append({"ph": "f", "cat": "request", "name": name,
                       "id": flow_id, "pid": pid, "tid": tid,
                       "ts": record["end"], "bp": "e", "args": args})
    return events
