"""Telemetry exporters: JSON snapshot, Chrome trace_event, top-N text.

The JSON snapshot is the machine-readable "where did the cycles go"
breakdown every benchmark can emit (``--telemetry-out``); its shape is
validated by :mod:`repro.telemetry.schema`.  The Chrome trace file loads
directly in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``:
spans become complete ("X") events on the simulated-cycle timebase, one
process per machine, with 1 simulated cycle rendered as 1 microsecond.
"""

from __future__ import annotations

import json
import pathlib
import warnings

from repro.telemetry.core import (Telemetry, UnclosedSpanError,
                                  cycles_by_subsystem)

SNAPSHOT_VERSION = 1
SNAPSHOT_KIND = "hyperenclave-telemetry"


def _guard_open_spans(telemetry: Telemetry, label: str,
                      strict: bool) -> list[str]:
    """Refuse (or warn about) exporting while spans are still open.

    An open span has not yet attributed its cycles to its parent, so a
    snapshot taken now would carry wrong self-cycle numbers — the
    runtime counterpart of lint rule R004.
    """
    open_names = telemetry.open_span_names()
    if open_names:
        message = (f"telemetry export for {label!r} with "
                   f"{len(open_names)} span(s) still open: "
                   f"{' > '.join(open_names)}; self-cycle attribution "
                   f"would be wrong (close every span before exporting)")
        if strict:
            raise UnclosedSpanError(message)
        warnings.warn(message, RuntimeWarning, stacklevel=3)
    return open_names


# -- JSON snapshot -----------------------------------------------------------

def machine_snapshot(telemetry: Telemetry, label: str = "machine", *,
                     strict: bool = True) -> dict:
    """One machine's telemetry as a JSON-ready dict.

    Raises :class:`UnclosedSpanError` if any span is still open; pass
    ``strict=False`` to downgrade to a ``RuntimeWarning`` naming the
    open spans.
    """
    open_names = _guard_open_spans(telemetry, label, strict)
    breakdown = telemetry.cycles.breakdown()
    return {
        "label": label,
        "cycles": {
            "total": telemetry.cycles.total,
            "by_category": breakdown,
            "by_subsystem": cycles_by_subsystem(breakdown),
        },
        "metrics": telemetry.registry.snapshot(),
        "hardware": telemetry.hardware_stats(),
        "spans": {"recorded": len(telemetry.spans),
                  "open": len(open_names)},
    }


def snapshot_document(items: list[tuple[str, Telemetry]], *,
                      strict: bool = True) -> dict:
    """The full snapshot: per-machine sections plus combined totals.

    ``combined.by_subsystem`` sums exactly to ``combined.total_cycles``
    because the category -> subsystem mapping is total.
    """
    machines = [machine_snapshot(tel, label, strict=strict)
                for label, tel in items]
    total = 0
    by_subsystem: dict[str, int | float] = {}
    for snap in machines:
        total += snap["cycles"]["total"]
        for sub, cycles in snap["cycles"]["by_subsystem"].items():
            by_subsystem[sub] = by_subsystem.get(sub, 0) + cycles
    return {
        "version": SNAPSHOT_VERSION,
        "kind": SNAPSHOT_KIND,
        "machines": machines,
        "combined": {"total_cycles": total, "by_subsystem": by_subsystem},
    }


# -- derived summaries (latency percentiles, wall shares) --------------------

# The span families whose per-enclave latency distributions matter for
# serving: edge calls (sdk.*) and world switches (world.*).  os/monitor
# spans are keyed by pid/frame, not enclave, and stay out of the table.
LATENCY_SUBSYSTEMS = ("sdk", "world")


def _merge_histogram(into: dict, snap_entry: dict) -> None:
    """Fold one histogram metric snapshot into a bucket accumulator."""
    for lo, hi, n in snap_entry["buckets"]:
        into["buckets"][(lo, hi)] = into["buckets"].get((lo, hi), 0) + n
    into["count"] += snap_entry["count"]
    for bound, pick in (("min", min), ("max", max)):
        value = snap_entry.get(bound)
        if value is not None:
            into[bound] = value if into[bound] is None \
                else pick(into[bound], value)


def latency_summaries(document: dict,
                      subsystems: tuple[str, ...] = LATENCY_SUBSYSTEMS
                      ) -> dict:
    """Per-enclave latency percentiles from the span cycle histograms.

    Shape: ``{machine: {enclave: {"sdk.ecall": {count, p50, p95, p99}}}}``.
    Histograms are merged across every other label dimension (func, cpu,
    mode), keyed by the ``enclave`` span label.  Latencies are *simulated
    cycles*, so the summary is deterministic and can sit under the exact
    bench gate; the log2-bucket interpolation error is bounded by one
    bucket (see :func:`repro.telemetry.metrics.percentile_from_buckets`).
    """
    from repro.telemetry.metrics import (SUMMARY_QUANTILES,
                                         percentile_from_buckets)
    out: dict[str, dict] = {}
    for snap in document["machines"]:
        merged: dict[tuple[str, str], dict] = {}
        for entry in snap["metrics"]:
            if entry["type"] != "histogram" \
                    or not entry["name"].endswith(".cycles_hist") \
                    or entry["subsystem"] not in subsystems \
                    or "enclave" not in entry["labels"]:
                continue
            enclave = str(entry["labels"]["enclave"])
            span = f"{entry['subsystem']}." \
                   f"{entry['name'].removesuffix('.cycles_hist')}"
            acc = merged.setdefault((enclave, span), {
                "buckets": {}, "count": 0, "min": None, "max": None})
            _merge_histogram(acc, entry)
        machine_table: dict[str, dict] = {}
        for (enclave, span), acc in sorted(merged.items()):
            buckets = [[lo, hi, n] for (lo, hi), n
                       in sorted(acc["buckets"].items())]
            row = {"count": acc["count"]}
            for q in SUMMARY_QUANTILES:
                row[f"p{q:g}"] = percentile_from_buckets(
                    buckets, acc["count"], q,
                    lo_clamp=acc["min"], hi_clamp=acc["max"])
            machine_table.setdefault(enclave, {})[span] = row
        if machine_table:
            out[snap["label"]] = machine_table
    return out


def wall_ns_by_subsystem(document: dict) -> dict[str, int | float]:
    """Span-attributed host wall-time per subsystem, from a snapshot.

    Sums the ``.self_wall_ns`` span counters, so nested spans are not
    double-counted: the total equals root-span wall time.  Snapshots
    that predate the wall-domain counters return ``{}``.
    """
    out: dict[str, int | float] = {}
    for snap in document["machines"]:
        for entry in snap["metrics"]:
            if entry["type"] == "counter" \
                    and entry["name"].endswith(".self_wall_ns"):
                sub = entry["subsystem"]
                out[sub] = out.get(sub, 0) + entry["value"]
    return out


# -- Chrome trace_event ------------------------------------------------------

def chrome_trace_events(telemetry: Telemetry, *, pid: int = 1,
                        label: str = "machine") -> list[dict]:
    """One machine's spans as Chrome trace_event dicts."""
    events: list[dict] = [{
        "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
        "args": {"name": f"{label} (1 cycle = 1 us)"},
    }]
    span_events: list[dict] = []
    tids: set[int] = {0}
    for record in telemetry.spans:
        tid = record.labels.get("cpu", 0)
        tids.add(tid)
        args = {k: v for k, v in record.labels.items()}
        args["self_cycles"] = record.self_cycles
        args["wall_ns"] = record.dur_wall_ns
        if record.error:
            args["error"] = True
        span_events.append({
            "name": record.name,
            "cat": record.name.partition(".")[0],
            "ph": "X",
            "ts": record.start_cycle,
            "dur": record.dur_cycles,
            "pid": pid,
            "tid": tid,
            "args": args,
        })
    # Thread-name metadata so the trace UI labels rows "vcpu0" instead
    # of bare tids; one event per tid the spans actually used.
    for tid in sorted(tids):
        events.append({"ph": "M", "name": "thread_name", "pid": pid,
                       "tid": tid, "args": {"name": f"vcpu{tid}"}})
    events.extend(span_events)
    # A machine with an attached timeline sampler contributes Perfetto
    # counter tracks on the same cycle timebase.
    sampler = getattr(telemetry, "timeline", None)
    if sampler is not None and sampler.samples:
        from repro.telemetry.timeline import timeline_counter_events
        events.extend(timeline_counter_events(sampler.document(), pid=pid))
    # A machine with a request tracer contributes flow events linking
    # each request's ecall -> ocall -> resume spans.
    tracer = getattr(telemetry, "requests", None)
    if tracer is not None and tracer.requests:
        from repro.telemetry.requests import request_flow_events
        events.extend(request_flow_events(tracer.document(), pid=pid))
    return events


def chrome_trace_document(items: list[tuple[str, Telemetry]]) -> dict:
    """A loadable ``{"traceEvents": [...]}`` document, one pid/machine."""
    events: list[dict] = []
    for pid, (label, tel) in enumerate(items, start=1):
        events.extend(chrome_trace_events(tel, pid=pid, label=label))
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"timebase": "simulated cycles (1 cycle = 1 us)"}}


# -- plain-text top-N report -------------------------------------------------

def top_report(document: dict, n: int = 10) -> str:
    """A human-readable top-N digest of a snapshot document."""
    out = ["Telemetry: where the cycles went", "=" * 40]
    combined = document["combined"]
    total = combined["total_cycles"] or 1
    out.append(f"total simulated cycles: {combined['total_cycles']:,.0f} "
               f"across {len(document['machines'])} machine(s)")
    out.append("")
    out.append(f"top subsystems (of {len(combined['by_subsystem'])}):")
    ranked = sorted(combined["by_subsystem"].items(),
                    key=lambda kv: -kv[1])[:n]
    for sub, cycles in ranked:
        out.append(f"  {sub:<12} {cycles:>16,.0f}  ({100 * cycles / total:5.1f}%)")
    merged: dict[str, int | float] = {}
    for snap in document["machines"]:
        for category, cycles in snap["cycles"]["by_category"].items():
            merged[category] = merged.get(category, 0) + cycles
    out.append("")
    out.append(f"top categories (of {len(merged)}):")
    for category, cycles in sorted(merged.items(), key=lambda kv: -kv[1])[:n]:
        out.append(f"  {category:<16} {cycles:>16,.0f}  "
                   f"({100 * cycles / total:5.1f}%)")
    return "\n".join(out)


# -- file writer -------------------------------------------------------------

def trace_path_for(snapshot_path: str | pathlib.Path) -> pathlib.Path:
    """The Chrome-trace sibling of a snapshot path (x.json -> x.trace.json)."""
    path = pathlib.Path(snapshot_path)
    return path.with_name(path.stem + ".trace.json")


def write_telemetry(snapshot_path: str | pathlib.Path,
                    items: list[tuple[str, Telemetry]]
                    ) -> tuple[pathlib.Path, pathlib.Path]:
    """Write the JSON snapshot and its Chrome trace; returns both paths."""
    snapshot_path = pathlib.Path(snapshot_path)
    document = snapshot_document(items)
    from repro.telemetry.schema import validate_snapshot
    validate_snapshot(document)
    snapshot_path.write_text(json.dumps(document, indent=2, sort_keys=True))
    trace_path = trace_path_for(snapshot_path)
    trace_path.write_text(json.dumps(chrome_trace_document(items)))
    return snapshot_path, trace_path
