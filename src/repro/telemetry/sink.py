"""The process-wide telemetry sink: collect every machine a run creates.

A :class:`TelemetrySink` tracks ``(label, Telemetry)`` pairs while it is
active.  :class:`~repro.hw.machine.Machine` consults :func:`current` at
construction time and registers its telemetry hub automatically, so *any*
workload — a benchmark, a test, an app driver — captures every machine it
touches without per-call-site plumbing.  Call sites that know a better
name (the benchmark conftest labels machines by enclave mode) re-register
the same hub and simply upgrade its label: registration is idempotent by
telemetry identity.

This is the backend behind ``--telemetry-out`` (see
``benchmarks/telemetry_cli.py``) and ``python -m repro.bench run``.
"""

from __future__ import annotations

from repro.telemetry.core import Telemetry
from repro.telemetry.export import (snapshot_document, top_report,
                                    write_telemetry)

_ACTIVE: "TelemetrySink | None" = None


class TelemetrySink:
    """Collects the telemetry hubs of every machine a run creates."""

    def __init__(self, *, timeline_interval: int | None = None,
                 trace_requests: bool = False) -> None:
        self._items: list[tuple[str, Telemetry]] = []
        self._labels: set[str] = set()
        self._index: dict[int, int] = {}    # id(telemetry) -> items index
        self._machines: dict[int, object] = {}  # id(telemetry) -> Machine
        self._cycles: list[tuple[str, object]] = []  # bare CycleCounters
        # When set, every machine registered here gets a cycle-domain
        # timeline sampler at this cadence (repro.telemetry.timeline).
        self._timeline_interval = timeline_interval
        # When true, every machine registered here gets a request tracer
        # (repro.telemetry.requests).
        self._trace_requests = trace_requests

    def _dedupe(self, label: str) -> str:
        base, n = label, 1
        while label in self._labels:
            n += 1
            label = f"{base}-{n}"
        self._labels.add(label)
        return label

    def register(self, label: str, telemetry: Telemetry,
                 machine=None) -> str:
        """Track one machine's telemetry (enabling it).

        Re-registering an already-tracked hub renames it (explicit
        labels beat the auto-generated ``machine-N`` ones) instead of
        duplicating the entry.  Returns the de-duplicated label used.
        """
        if machine is not None:
            self._machines[id(telemetry)] = machine
            if self._timeline_interval is not None:
                from repro.telemetry.timeline import attach_machine
                attach_machine(machine, interval=self._timeline_interval,
                               label=label)
            if self._trace_requests:
                from repro.telemetry.requests import \
                    attach_machine as attach_tracer
                attach_tracer(machine, label=label)
        slot = self._index.get(id(telemetry))
        if slot is not None:
            old_label, _ = self._items[slot]
            self._labels.discard(old_label)
            label = self._dedupe(label)
            self._items[slot] = (label, telemetry)
            if telemetry.timeline is not None:
                telemetry.timeline.label = label
            if telemetry.requests is not None:
                telemetry.requests.label = label
            return label
        label = self._dedupe(label)
        telemetry.enable()
        self._index[id(telemetry)] = len(self._items)
        self._items.append((label, telemetry))
        if telemetry.timeline is not None:
            telemetry.timeline.label = label
        if telemetry.requests is not None:
            telemetry.requests.label = label
        return label

    def auto_register(self, telemetry: Telemetry, machine=None) -> str:
        """The machine-construction hook: register under ``machine-N``."""
        return self.register(f"machine-{len(self._items) + 1}", telemetry,
                             machine=machine)

    def unregister(self, telemetry: Telemetry) -> bool:
        """Stop tracking one hub (disabling it); frees its label.

        Returns True when the hub was tracked.  Symmetric with
        :meth:`register`'s enable, so a machine handed back to a caller
        leaves no residual observation cost and the label can be reused.
        """
        slot = self._index.pop(id(telemetry), None)
        if slot is None:
            return False
        label, _ = self._items.pop(slot)
        self._labels.discard(label)
        machine = self._machines.pop(id(telemetry), None)
        if machine is not None and self._timeline_interval is not None:
            from repro.telemetry.timeline import detach_machine
            detach_machine(machine)
        if machine is not None and self._trace_requests:
            from repro.telemetry.requests import \
                detach_machine as detach_tracer
            detach_tracer(machine)
        self._index = {id(tel): i for i, (_, tel) in enumerate(self._items)}
        telemetry.disable()
        return True

    def register_cycles(self, label: str, counter) -> str:
        """Track a bare :class:`~repro.hw.cycles.CycleCounter`.

        Kernels that drive hardware models directly (no Machine, no
        Telemetry hub — e.g. the Figure 11 memory-latency sweep) register
        their counters here so the throughput gate can still attribute
        simulated cycles to the run.  Counters are read lazily at
        document/throughput time, so registration itself observes
        nothing.  Returns the de-duplicated label used.
        """
        label = self._dedupe(label)
        self._cycles.append((label, counter))
        return label

    def bare_cycles_total(self) -> int:
        """The summed total of every registered bare counter."""
        return sum(counter.total for _, counter in self._cycles)

    def machines(self) -> list[tuple[str, object]]:
        """The registered ``(label, Machine)`` pairs, in creation order.

        Only machines registered through the construction hook (or with
        an explicit ``machine=``) appear; bare-telemetry registrations
        have no machine to fingerprint.
        """
        out = []
        for label, telemetry in self._items:
            machine = self._machines.get(id(telemetry))
            if machine is not None:
                out.append((label, machine))
        return out

    def state_fingerprints(self) -> dict[str, str]:
        """label -> Machine.state_hash() for every tracked machine."""
        return {label: machine.state_hash()
                for label, machine in self.machines()}

    @property
    def items(self) -> list[tuple[str, Telemetry]]:
        """The registered ``(label, telemetry)`` pairs, in creation order."""
        return list(self._items)

    def timelines(self) -> list:
        """The attached timeline samplers, in registration order."""
        return [telemetry.timeline for _, telemetry in self._items
                if telemetry.timeline is not None]

    def timeline_document(self) -> dict | None:
        """The timeline JSON document, or None when nothing sampled."""
        from repro.telemetry.timeline import timeline_document
        return timeline_document(self.timelines())

    def request_tracers(self) -> list:
        """The attached request tracers, in registration order."""
        return [telemetry.requests for _, telemetry in self._items
                if telemetry.requests is not None]

    def requests_document(self) -> dict | None:
        """The requests JSON document, or None when nothing traced."""
        from repro.telemetry.requests import requests_document
        return requests_document(self.request_tracers())

    def document(self, *, strict: bool = True) -> dict:
        """The snapshot document for everything registered so far."""
        return snapshot_document(self._items, strict=strict)

    def write(self, snapshot_path) -> tuple:
        """Write snapshot + Chrome trace; returns both paths."""
        return write_telemetry(snapshot_path, self._items)

    def report(self, n: int = 10) -> str:
        """The plain-text top-N digest for this run."""
        return top_report(self.document(), n)


def activate(sink: TelemetrySink) -> None:
    """Make ``sink`` the process-wide active sink."""
    global _ACTIVE
    _ACTIVE = sink


def deactivate() -> None:
    """Clear the active sink."""
    global _ACTIVE
    _ACTIVE = None


def current() -> TelemetrySink | None:
    """The active sink, or None when telemetry capture is not requested."""
    return _ACTIVE


class capture:
    """Context manager activating a fresh sink for the enclosed run::

        with sink.capture() as s:
            run_experiment()
        document = s.document()
    """

    def __init__(self, timeline_interval: int | None = None,
                 trace_requests: bool = False) -> None:
        self.sink = TelemetrySink(timeline_interval=timeline_interval,
                                  trace_requests=trace_requests)

    def __enter__(self) -> TelemetrySink:
        activate(self.sink)
        return self.sink

    def __exit__(self, exc_type, exc, tb) -> bool:
        deactivate()
        return False
