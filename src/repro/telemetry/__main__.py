"""The telemetry CLI: ``python -m repro.telemetry {timeline,requests} ...``.

``timeline`` commands operate on timeline JSON documents — written
directly by :func:`repro.telemetry.timeline.write_timeline`, or embedded
as the ``timeline`` block of a bench artifact (``python -m repro.bench
run --timeline``); both are accepted everywhere a path is.

    timeline report   EPC_PRESSURE.json          # text digest
    timeline episodes EPC_PRESSURE.json --min 1  # exit 1 below --min
    timeline html     EPC_PRESSURE.json -o report.html

``requests`` commands operate on request-trace documents
(:func:`repro.telemetry.requests.write_requests`, or the ``requests``
block of a bench artifact from ``--requests``):

    requests report       RUN.json         # per-tenant latency tables
    requests slowest      RUN.json -n 5    # critical paths of the tail
    requests interference RUN.json         # cross-tenant steal report
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.telemetry.schema import SchemaError
from repro.telemetry.timeline import (DEFAULT_EPISODE_THRESHOLD,
                                      detect_episodes, load_timeline,
                                      render_html, timeline_report)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("document", help="timeline JSON or bench artifact")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_EPISODE_THRESHOLD,
                        help="episode trigger: pages swapped out per "
                             "interval (default %(default)s)")


def _add_requests_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("document", help="requests JSON or bench artifact")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="inspect cycle-domain timeline and request telemetry")
    commands = parser.add_subparsers(dest="command", required=True)

    timeline = commands.add_parser(
        "timeline", help="report on a sampled timeline")
    actions = timeline.add_subparsers(dest="action", required=True)

    report = actions.add_parser("report", help="plain-text digest")
    _add_common(report)
    report.set_defaults(fn=_cmd_report)

    episodes = actions.add_parser(
        "episodes", help="list pressure episodes (exit 1 below --min)")
    _add_common(episodes)
    episodes.add_argument("--min", type=int, default=0, dest="minimum",
                          help="fail unless at least this many episodes "
                               "were detected (default %(default)s)")
    episodes.set_defaults(fn=_cmd_episodes)

    html = actions.add_parser("html", help="static HTML report")
    _add_common(html)
    html.add_argument("-o", "--output", default=None,
                      help="output path (default: input stem + .html)")
    html.set_defaults(fn=_cmd_html)

    requests = commands.add_parser(
        "requests", help="report on traced requests")
    req_actions = requests.add_subparsers(dest="action", required=True)

    req_report = req_actions.add_parser(
        "report", help="per-tenant latency tables with tail causes")
    _add_requests_common(req_report)
    req_report.set_defaults(fn=_cmd_requests_report)

    slowest = req_actions.add_parser(
        "slowest", help="the slowest requests and their critical paths")
    _add_requests_common(slowest)
    slowest.add_argument("-n", "--limit", type=int, default=10,
                         help="how many requests (default %(default)s)")
    slowest.set_defaults(fn=_cmd_requests_slowest)

    interference = req_actions.add_parser(
        "interference", help="cross-tenant EPC-steal interference report")
    _add_requests_common(interference)
    interference.add_argument("--min-frames", type=int, default=0,
                              help="fail unless at least this many frames "
                                   "were stolen (default %(default)s)")
    interference.set_defaults(fn=_cmd_requests_interference)
    return parser


def _cmd_report(args) -> int:
    print(timeline_report(load_timeline(args.document),
                          threshold=args.threshold))
    return 0


def _cmd_episodes(args) -> int:
    document = load_timeline(args.document)
    found = 0
    for timeline in document["timelines"]:
        for ep in detect_episodes(timeline, threshold=args.threshold):
            found += 1
            print(f"[{timeline['label']}] cycle {ep['start_cycle']:,} .. "
                  f"{ep['end_cycle']:,}: {ep['pages']:g} pages over "
                  f"{ep['intervals']} interval(s), depth {ep['depth']:g}, "
                  f"victim={ep['victim']} aggressor={ep['aggressor']}")
    print(f"{found} episode(s) at threshold {args.threshold:g}")
    if found < args.minimum:
        print(f"FAIL: expected at least {args.minimum}", file=sys.stderr)
        return 1
    return 0


def _cmd_html(args) -> int:
    document = load_timeline(args.document)
    output = args.output
    if output is None:
        source = pathlib.Path(args.document)
        output = source.with_name(source.stem + ".html")
    pathlib.Path(output).write_text(
        render_html(document, threshold=args.threshold), encoding="utf-8")
    print(f"wrote {output}")
    return 0


def _cmd_requests_report(args) -> int:
    from repro.analysis.critpath import requests_report
    from repro.telemetry.requests import load_requests
    print(requests_report(load_requests(args.document)))
    return 0


def _cmd_requests_slowest(args) -> int:
    from repro.analysis.critpath import slowest_requests
    from repro.telemetry.requests import load_requests
    print(slowest_requests(load_requests(args.document), limit=args.limit))
    return 0


def _cmd_requests_interference(args) -> int:
    from repro.analysis.critpath import (interference_report,
                                         interference_text)
    from repro.telemetry.requests import load_requests
    document = load_requests(args.document)
    print(interference_text(document))
    frames = sum(sum(entry["pairs"].values())
                 for entry in interference_report(document))
    if frames < args.min_frames:
        print(f"FAIL: {frames:g} frame(s) stolen, expected at least "
              f"{args.min_frames}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (OSError, json.JSONDecodeError, SchemaError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
