"""Platform-wide telemetry: metrics registry, cycle-accurate spans,
event ring, and exporters (JSON snapshot / Chrome trace / top-N text).

See docs/OBSERVABILITY.md for the full API and file formats.
"""

from repro.telemetry.core import (NULL_SPAN, Span, SpanRecord, Telemetry,
                                  UnclosedSpanError, cycles_by_subsystem,
                                  subsystem_for_category)
from repro.telemetry.metrics import (Counter, Gauge, Histogram,
                                     MetricsRegistry)
from repro.telemetry.export import (chrome_trace_document,
                                    machine_snapshot, snapshot_document,
                                    top_report, trace_path_for,
                                    write_telemetry)
from repro.telemetry.schema import SchemaError, validate_snapshot

__all__ = [
    "NULL_SPAN", "Span", "SpanRecord", "Telemetry", "UnclosedSpanError",
    "cycles_by_subsystem", "subsystem_for_category",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "chrome_trace_document", "machine_snapshot", "snapshot_document",
    "top_report", "trace_path_for", "write_telemetry",
    "SchemaError", "validate_snapshot",
]
