"""Platform-wide telemetry: metrics registry, cycle-accurate spans,
event ring, and exporters (JSON snapshot / Chrome trace / top-N text).

See docs/OBSERVABILITY.md for the full API and file formats.
"""

from repro.telemetry.core import (NULL_SPAN, Span, SpanRecord, Telemetry,
                                  UnclosedSpanError, cycles_by_subsystem,
                                  subsystem_for_category)
from repro.telemetry.metrics import (SUMMARY_QUANTILES, Counter, Gauge,
                                     Histogram, MetricsRegistry,
                                     percentile_from_buckets)
from repro.telemetry.export import (chrome_trace_document,
                                    latency_summaries, machine_snapshot,
                                    snapshot_document, top_report,
                                    trace_path_for, wall_ns_by_subsystem,
                                    write_telemetry)
from repro.telemetry.schema import (SchemaError, validate_requests,
                                    validate_snapshot, validate_timeline)
from repro.telemetry.timeline import (TimelineSampler, attach_machine,
                                      detach_machine, detect_episodes,
                                      register_monitor_probes, render_html,
                                      tenant_rollups, timeline_document,
                                      write_timeline)
from repro.telemetry.requests import (RequestTracer, load_requests,
                                      request_flow_events,
                                      requests_document, write_requests)

__all__ = [
    "NULL_SPAN", "Span", "SpanRecord", "Telemetry", "UnclosedSpanError",
    "cycles_by_subsystem", "subsystem_for_category",
    "SUMMARY_QUANTILES", "Counter", "Gauge", "Histogram",
    "MetricsRegistry", "percentile_from_buckets",
    "chrome_trace_document", "latency_summaries", "machine_snapshot",
    "snapshot_document", "top_report", "trace_path_for",
    "wall_ns_by_subsystem", "write_telemetry",
    "SchemaError", "validate_requests", "validate_snapshot",
    "validate_timeline",
    "TimelineSampler", "attach_machine", "detach_machine",
    "detect_episodes", "register_monitor_probes", "render_html",
    "tenant_rollups", "timeline_document", "write_timeline",
    "RequestTracer", "load_requests", "request_flow_events",
    "requests_document", "write_requests",
]
