"""Common structure for platform ports."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.monitor.structs import EnclaveMode


class PortError(ReproError):
    """The port mapping is incomplete or inconsistent."""


class SwitchMechanism(enum.Enum):
    """How a world switch enters/leaves the monitor on this ISA."""

    HYPERCALL = "hypercall"       # HVC / VM exit / virtual trap
    SYSCALL = "syscall"           # SVC / ECALL-to-supervisor / SYSCALL
    ERET = "eret"                 # exception return into a lower level


@dataclass(frozen=True)
class LevelMapping:
    """Where one HyperEnclave software module lives on the target ISA."""

    module: str                   # "monitor" | "primary-os" | "app" | mode
    level: str                    # e.g. "EL2", "VS-mode"
    entry: SwitchMechanism | None = None    # how the monitor reaches it
    entry_cycles: int | None = None         # estimated switch cost
    notes: str = ""


@dataclass(frozen=True)
class PortMapping:
    """A complete HyperEnclave port to one ISA."""

    isa: str
    stage2_name: str              # the 2-level-translation feature name
    has_tpm_story: str            # how root-of-trust is provided
    levels: tuple[LevelMapping, ...] = field(default_factory=tuple)

    def for_module(self, module: str) -> LevelMapping:
        for mapping in self.levels:
            if mapping.module == module:
                return mapping
        raise PortError(f"{self.isa}: no mapping for module {module!r}")

    def enclave_mapping(self, mode: EnclaveMode) -> LevelMapping:
        return self.for_module(f"enclave-{mode.value}")


REQUIRED_MODULES = ("monitor", "primary-os", "app",
                    "enclave-gu", "enclave-p", "enclave-hu")


def validate_port(port: PortMapping) -> None:
    """Check completeness and the paper's structural claims."""
    for module in REQUIRED_MODULES:
        port.for_module(module)             # raises if missing

    monitor = port.for_module("monitor")
    if monitor.entry is not None:
        raise PortError(f"{port.isa}: the monitor is entered by traps, "
                        f"it has no entry mechanism of its own")

    # Every enclave mode must be reachable, with a cost estimate.
    for mode in (EnclaveMode.GU, EnclaveMode.HU, EnclaveMode.P):
        mapping = port.enclave_mapping(mode)
        if mapping.entry is None or not mapping.entry_cycles:
            raise PortError(
                f"{port.isa}: enclave mode {mode.value} lacks an entry "
                f"mechanism or cost estimate")

    # Structural claim from Table 1: the host-user-style mode (ring/
    # syscall switches) must be cheaper to enter than trap-based modes.
    hu = port.enclave_mapping(EnclaveMode.HU)
    gu = port.enclave_mapping(EnclaveMode.GU)
    p = port.enclave_mapping(EnclaveMode.P)
    if not hu.entry_cycles < gu.entry_cycles <= p.entry_cycles:
        raise PortError(
            f"{port.isa}: expected HU < GU <= P entry costs, got "
            f"{hu.entry_cycles}/{gu.entry_cycles}/{p.entry_cycles}")

    # The primary OS must sit *below* the monitor's privilege.
    if monitor.level == port.for_module("primary-os").level:
        raise PortError(f"{port.isa}: primary OS shares the monitor level")
