"""The RISC-V port (Sec 8).

"The RISC-V H-extension specification has evolved to v0.6.1 ... Both ARM
and RISC-V virtualization support two-level address translation.
Research has been conducted to support firmware TPM on RISC-V."

RustMonitor runs in HS-mode; the primary OS is demoted into VS-mode with
its apps in VU-mode; enclaves map to VU (GU-style), VS (P-style) or
plain U-mode under HS (HU-style).  G-stage translation provides the
memory isolation.
"""

from repro.ports.base import LevelMapping, PortMapping, SwitchMechanism

RISCV_PORT = PortMapping(
    isa="riscv",
    stage2_name="G-stage translation (H-extension v0.6.1+)",
    has_tpm_story="firmware TPM (Boubakri et al., DATE'21)",
    levels=(
        LevelMapping("monitor", "HS-mode",
                     notes="RustMonitor as a thin HS-mode hypervisor"),
        LevelMapping("primary-os", "VS-mode", SwitchMechanism.ERET, 650,
                     notes="SRET into the virtualized supervisor"),
        LevelMapping("app", "VU-mode", SwitchMechanism.ERET, 140),
        LevelMapping("enclave-gu", "VU-mode", SwitchMechanism.HYPERCALL,
                     1500,
                     notes="own VS-stage + G-stage tables; virtual trap "
                           "to enter"),
        LevelMapping("enclave-p", "VS-mode", SwitchMechanism.HYPERCALL,
                     1700,
                     notes="guest-privileged: own stvec (in-enclave "
                           "traps) and satp page table"),
        LevelMapping("enclave-hu", "U-mode", SwitchMechanism.SYSCALL, 1000,
                     notes="host user under HS: ECALL/SRET switches"),
    ),
)
