"""The ARMv8 port (Sec 8).

"The monitor mode for RustMonitor can be mapped to EL2; the normal mode
for the primary OS and untrusted part of the applications can be mapped
to EL1 and EL0 respectively; the secure mode for enclaves can be mapped
flexibly to EL1 or EL0.  Memory isolation can be supported similarly with
the support of stage 2 address translations."

Costs are estimates in the same currency as ``repro.hw.costs``:
HVC/ERET round trips on ARMv8 are comparable to VMX transitions, and
VHE (E2H) gives an EL0-under-EL2 context that plays HU-Enclave's role.
"""

from repro.ports.base import LevelMapping, PortMapping, SwitchMechanism

ARMV8_PORT = PortMapping(
    isa="armv8",
    stage2_name="stage-2 translation (VMSAv8-64)",
    has_tpm_story="discrete TPM on ARM servers, or firmware TPM",
    levels=(
        LevelMapping("monitor", "EL2",
                     notes="RustMonitor as a thin EL2 hypervisor"),
        LevelMapping("primary-os", "EL1", SwitchMechanism.ERET, 700,
                     notes="demoted via ERET after late launch"),
        LevelMapping("app", "EL0", SwitchMechanism.ERET, 150),
        LevelMapping("enclave-gu", "EL0", SwitchMechanism.HYPERCALL, 1650,
                     notes="own stage-1 + stage-2 tables; HVC to enter"),
        LevelMapping("enclave-p", "EL1", SwitchMechanism.HYPERCALL, 1800,
                     notes="guest-privileged: own VBAR_EL1 (in-enclave "
                           "exceptions) and TTBR0/1_EL1 page tables"),
        LevelMapping("enclave-hu", "EL0 (E2H host)", SwitchMechanism.ERET,
                     1100,
                     notes="VHE host-user context: ERET/SVC switches, no "
                           "stage-2 in the path"),
    ),
)
