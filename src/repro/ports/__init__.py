"""Cross-platform port models (Sec 8, "HyperEnclave on other platforms").

The paper argues HyperEnclave is ISA-portable because it only needs
two-level address translation and a TPM: on ARMv8 the software modules
map onto exception levels, on RISC-V onto H-extension modes.  These
modules make that argument executable: each port declares the privilege
mapping for every HyperEnclave mode, the entry/exit mechanisms, and a
world-switch cost structure analogous to the x86 tables, and a shared
checker validates that the mapping is complete and self-consistent.
"""

from repro.ports.base import (LevelMapping, PortMapping, SwitchMechanism,
                              validate_port)
from repro.ports.armv8 import ARMV8_PORT
from repro.ports.riscv import RISCV_PORT

ALL_PORTS = {"armv8": ARMV8_PORT, "riscv": RISCV_PORT}

__all__ = ["LevelMapping", "PortMapping", "SwitchMechanism",
           "validate_port", "ARMV8_PORT", "RISCV_PORT", "ALL_PORTS"]
