"""The LibOS interface the servers are written against."""

from __future__ import annotations

# The untrusted half of the LibOS interface: spliced into the EDL of any
# enclave that links the LibOS (network must leave the enclave; the FS
# doesn't).
LIBOS_EDL_UNTRUSTED = """
        uint64 ocall_net_listen(uint64 port);
        uint64 ocall_net_accept(uint64 port);
        uint64 ocall_net_recv([out, size=cap] bytes buf, uint64 cap,
                              uint64 conn);
        uint64 ocall_net_send([in, size=n] bytes data, uint64 n,
                              uint64 conn);
        uint64 ocall_net_close(uint64 conn);
"""

# Maximum message the LibOS socket layer moves per OCALL.
RECV_CAPACITY = 64 * 1024

# In-LibOS syscall dispatch (Occlum handles syscalls inside the enclave).
LIBOS_SYSCALL_CYCLES = 260


class Libos:
    """POSIX-ish surface: files and server-side sockets."""

    # -- filesystem -----------------------------------------------------------

    def write_file(self, path: str, data: bytes) -> None:
        raise NotImplementedError

    def read_file(self, path: str) -> bytes:
        raise NotImplementedError

    def stat(self, path: str) -> int:
        raise NotImplementedError

    def exists(self, path: str) -> bool:
        raise NotImplementedError

    # -- sockets ----------------------------------------------------------------

    def listen(self, port: int) -> None:
        raise NotImplementedError

    def accept(self, port: int) -> int:
        """Returns a connection id."""
        raise NotImplementedError

    def recv(self, conn: int) -> bytes | None:
        raise NotImplementedError

    def send(self, conn: int, data: bytes) -> None:
        raise NotImplementedError

    def close(self, conn: int) -> None:
        raise NotImplementedError
